#!/usr/bin/env bash
# Dist smoke: gate on the N=1 bit-identity test, run a 2-worker
# in-process epoch through the cascade_dist CLI, then the same run as
# two real processes over TCP loopback (leader backgrounded), and
# assert all three transports report identical per-epoch losses.
# Used by CI; runnable locally:
#
#   cargo build --release -p cascade-dist --bin cascade_dist
#   bash scripts/dist_smoke.sh target/release/cascade_dist
set -euo pipefail

BIN="${1:?usage: dist_smoke.sh <path-to-cascade_dist>}"
WORK="$(mktemp -d)"
LEADER_PID=""
trap '[ -n "$LEADER_PID" ] && kill "$LEADER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

echo "dist_smoke: gating on the N=1 bit-identity test"
cargo test -q --release --offline -p cascade-dist --test identity \
  n1_dist_is_bit_identical_to_serial >/dev/null

# All transports must agree on every flag except --mode/--worker.
RUN_ARGS=(--dataset wiki --model tgn --workers 2 --epochs 2 \
  --batch 64 --chunk 128 --dim 8 --scale 0.003 --seed 33 --data-seed 29)

echo "dist_smoke: 2-worker in-process epoch"
"$BIN" --mode inproc "${RUN_ARGS[@]}" | tee "$WORK/inproc.log"
grep -q '^epoch ' "$WORK/inproc.log"
grep -q 'batches logged' "$WORK/inproc.log"

# TCP loopback: two real processes sharing nothing but the socket.
PORT=$(( (RANDOM % 20000) + 20000 ))
ADDR="127.0.0.1:$PORT"
echo "dist_smoke: TCP loopback on $ADDR"
"$BIN" --mode leader --addr "$ADDR" "${RUN_ARGS[@]}" \
  >"$WORK/leader.log" 2>&1 &
LEADER_PID=$!

# The follower retries until the leader's listener is up.
FOLLOWER_OK=""
for _ in $(seq 1 50); do
  if "$BIN" --mode follower --worker 1 --addr "$ADDR" "${RUN_ARGS[@]}" \
    >"$WORK/follower.log" 2>&1; then
    FOLLOWER_OK=1
    break
  fi
  kill -0 "$LEADER_PID" 2>/dev/null || { cat "$WORK/leader.log"; exit 1; }
  sleep 0.2
done
[ -n "$FOLLOWER_OK" ] || { echo "follower never connected"; cat "$WORK/follower.log"; exit 1; }
wait "$LEADER_PID"
LEADER_PID=""
cat "$WORK/leader.log"

# Every transport and every replica trained the same model: the
# per-epoch loss lines must match bit-rendered across all three logs.
for log in leader follower; do
  grep '^epoch ' "$WORK/$log.log" >"$WORK/$log.losses"
done
grep '^epoch ' "$WORK/inproc.log" >"$WORK/inproc.losses"
cmp -s "$WORK/leader.losses" "$WORK/follower.losses" || {
  echo "dist_smoke: leader and follower replicas diverged"
  diff "$WORK/leader.losses" "$WORK/follower.losses" || true
  exit 1
}
cmp -s "$WORK/inproc.losses" "$WORK/leader.losses" || {
  echo "dist_smoke: TCP and in-process transports diverged"
  diff "$WORK/inproc.losses" "$WORK/leader.losses" || true
  exit 1
}

echo "dist_smoke: OK"
