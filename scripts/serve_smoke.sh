#!/usr/bin/env bash
# Serve smoke: train a tiny checkpoint, start cascade_serve on an
# ephemeral port, exercise every endpoint over HTTP, kill -9 the
# process, restart it against the same WAL, and assert the replayed
# server answers bit-identically at the same watermark and keeps
# accepting. Used by CI; runnable locally:
#
#   cargo build --release -p cascade-serve --bin cascade_serve
#   bash scripts/serve_smoke.sh target/release/cascade_serve
set -euo pipefail

BIN="${1:?usage: serve_smoke.sh <path-to-cascade_serve>}"
WORK="$(mktemp -d)"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

# Serving dims must match the training run (--dim and the feature width;
# parameters are node-count independent, so --nodes is free to differ).
NODES=32
DIM=8
FEATURES='[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]' # cascade_train synth dims are 8

echo "serve_smoke: training a tiny checkpoint"
cargo run -q --release --offline -p cascade-bench --bin cascade_train -- \
  --dataset wiki --model tgn --strategy tgl --epochs 1 --scale 0.001 \
  --dim "$DIM" --save "$WORK/model.ckpt" >/dev/null

SERVE_ARGS=(--load "$WORK/model.ckpt" --arch tgn --nodes "$NODES" \
  --dim "$DIM" --feature-dim 8 --port 0 --wal "$WORK/serve.wal" \
  --snapshot "$WORK/serve_state.ckpt" --snapshot-every 8 --wal-chunk 4)

start_server() {
  "$BIN" "${SERVE_ARGS[@]}" >"$WORK/server.log" 2>&1 &
  SERVER_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's|^listening on http://||p' "$WORK/server.log" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/server.log"; exit 1; }
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "server never bound"; cat "$WORK/server.log"; exit 1; }
}

req() { # method path [body] -> response body (fails the script on non-200)
  local method="$1" path="$2" body="${3:-}"
  curl -sS -f -X "$method" "http://$ADDR$path" ${body:+-d "$body"}
}

ingest_body() { # first count -> JSON body
  local first="$1" count="$2" events="" i
  for ((i = first; i < first + count; i++)); do
    events+="${events:+,}{\"src\": $((i % NODES)), \"dst\": $(((i * 3 + 1) % NODES)), \"time\": $i.0, \"features\": $FEATURES}"
  done
  printf '{"events": [%s]}' "$events"
}

start_server
echo "serve_smoke: server up at $ADDR (pid $SERVER_PID)"

# Ingest two batches, query, check stats.
req POST /ingest "$(ingest_body 0 6)" | grep -q '"total_acked":6'
req POST /ingest "$(ingest_body 6 6)" | grep -q '"total_acked":12'
PREDICT='{"src": 1, "dsts": [2, 3], "time": 100.0}'
BEFORE="$(req POST /predict "$PREDICT")"
echo "$BEFORE" | grep -q '"snapshot_events":12'
req GET /stats | grep -q '"events_acked":12'

# Error paths stay typed (non-200, hence raw curl without -f).
[ "$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/predict" -d 'not json')" = 400 ]
[ "$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/nope")" = 404 ]

# Kill without ceremony; restart must replay the WAL to the same state.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
start_server
echo "serve_smoke: restarted at $ADDR (pid $SERVER_PID)"
grep -q "recovered 12 events" "$WORK/server.log"

AFTER="$(req POST /predict "$PREDICT")"
echo "$AFTER" | grep -q '"snapshot_events":12'
[ "$BEFORE" = "$AFTER" ] || {
  echo "serve_smoke: scores diverged across restart"
  echo "before: $BEFORE"
  echo "after:  $AFTER"
  exit 1
}

# And it keeps accepting after recovery.
req POST /ingest "$(ingest_body 12 4)" | grep -q '"total_acked":16'

echo "serve_smoke: OK"
