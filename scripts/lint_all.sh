#!/usr/bin/env bash
# Whole-workspace lint gate: runs cascade-lint over every crate plus
# examples/ and the top-level tests/, verifies those trees actually made
# it into the walk, and leaves a machine-readable JSON report for CI to
# upload. Used by CI; runnable locally:
#
#   bash scripts/lint_all.sh [report-path]
#
# Exit status is cascade-lint's: 0 clean, 1 new findings (the report is
# still written so the artifact shows *what* fired), 2 usage/IO error.
set -euo pipefail

cd "$(dirname "$0")/.."
REPORT="${1:-bench_results/lint_report.json}"
mkdir -p "$(dirname "$REPORT")"

LINT=(cargo run -q --release --offline -p cascade-lint --)

# The walk starts at the workspace root, so examples/ and tests/ ride
# along with the crates — but prove it rather than assume it, so a
# future SKIP_PREFIXES edit can't silently shrink the gate.
FILES="$("${LINT[@]}" --list-files)"
for tree in crates/ examples/ tests/; do
  grep -q "^$tree" <<<"$FILES" || {
    echo "lint_all: no files from $tree in the walk — gate coverage shrank" >&2
    exit 2
  }
done
echo "lint_all: walking $(wc -l <<<"$FILES") files (crates/, examples/, tests/ all covered)"

STATUS=0
"${LINT[@]}" --baseline lint_baseline.json --format json >"$REPORT" || STATUS=$?
if [ "$STATUS" -ge 2 ]; then
  echo "lint_all: cascade-lint failed to run (status $STATUS)" >&2
  exit "$STATUS"
fi

grep -q '"files_scanned"' "$REPORT" || {
  echo "lint_all: report at $REPORT is missing the files_scanned field" >&2
  exit 2
}
echo "lint_all: report written to $REPORT (exit $STATUS)"
exit "$STATUS"
