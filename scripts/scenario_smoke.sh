#!/usr/bin/env bash
# Scenario smoke: exercise the cascade_scenario CLI end to end on the
# committed recipes, heavily scaled down for CI wall-clock. Covers the
# recipe catalog, generate-then-train-from-store (out-of-core), the
# on-the-fly adversarial runs, and the structured report contract
# (seed, host_parallelism, peak RSS, per-phase losses).
# Used by CI; runnable locally:
#
#   cargo build --release -p cascade-scenario --bin cascade_scenario
#   bash scripts/scenario_smoke.sh target/release/cascade_scenario
set -euo pipefail

BIN="${1:?usage: scenario_smoke.sh <path-to-cascade_scenario>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
export CASCADE_BENCH_DIR="$WORK/reports"

echo "scenario_smoke: recipe catalog lists every committed recipe"
"$BIN" --list | tee "$WORK/list.log"
for r in gdelt_full mag_scale adv_flash_crowd adv_churn adv_skew_shift adv_reorder; do
  grep -q "$r.json" "$WORK/list.log"
done
if grep -q INVALID "$WORK/list.log"; then
  echo "scenario_smoke: catalog contains an invalid recipe"
  exit 1
fi

echo "scenario_smoke: generate a scaled GDELT cut, then train out-of-core from it"
"$BIN" --recipe recipes/gdelt_full.json --scale 0.002 \
  --generate-only --out "$WORK/gdelt_cut.cevt"
"$BIN" --recipe recipes/gdelt_full.json --scale 0.002 \
  --train --store "$WORK/gdelt_cut.cevt" | tee "$WORK/gdelt.log"
grep -q 'report ->' "$WORK/gdelt.log"

echo "scenario_smoke: every adversarial recipe trains on the fly"
for r in adv_flash_crowd adv_churn adv_skew_shift adv_reorder; do
  "$BIN" --recipe "recipes/$r.json" --scale 0.01 --train \
    | tee "$WORK/$r.log"
  grep -q '^\[train\]' "$WORK/$r.log"
done

echo "scenario_smoke: reports carry their provenance and telemetry"
for f in "$WORK"/reports/scenario_*.json; do
  grep -q '"seed"' "$f"
  grep -q '"host_parallelism"' "$f"
  grep -q '"peak_rss_bytes"' "$f"
  grep -q '"events_per_sec"' "$f"
done
grep -q '"phase_losses"' "$WORK"/reports/scenario_gdelt_full_0.002.json
grep -q '"reorder_policy":"buffered-reorder(256)"' \
  "$WORK"/reports/scenario_adv_reorder_0.01.json

echo "scenario_smoke: OK"
