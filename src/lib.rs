#![warn(missing_docs)]
//! # cascade
//!
//! Umbrella crate for the Cascade TGNN training framework — a from-scratch
//! Rust reproduction of *"Cascade: A Dependency-Aware Efficient Training
//! Framework for Temporal Graph Neural Networks"* (ASPLOS 2025).
//!
//! Each subsystem lives in its own crate and is re-exported here under a
//! short module name:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `cascade-tensor` | dense f32 tensors + autograd |
//! | [`nn`] | `cascade-nn` | layers, losses, optimizers |
//! | [`tgraph`] | `cascade-tgraph` | event streams, datasets, samplers |
//! | [`models`] | `cascade-models` | JODIE / TGN / APAN / DySAT / TGAT |
//! | [`core`] | `cascade-core` | the Cascade scheduler + trainer |
//! | [`exec`] | `cascade-exec` | staleness-aware pipelined executor |
//! | [`store`] | `cascade-store` | chunked on-disk event store + WAL |
//! | [`serve`] | `cascade-serve` | online serving with live ingest |
//! | [`baselines`] | `cascade-baselines` | TGL, TGLite, NeutronStream, ETC |
//!
//! The [`prelude`] collects the handful of types a typical training
//! program needs.
//!
//! # Examples
//!
//! ```
//! use cascade::prelude::*;
//!
//! let data = SynthConfig::wiki().with_scale(0.003).generate(1);
//! let mut model = MemoryTgnn::new(
//!     ModelConfig::tgn().with_dims(8, 4).with_neighbors(2),
//!     data.num_nodes(),
//!     data.features().dim(),
//!     7,
//! );
//! let mut scheduler = CascadeScheduler::new(CascadeConfig {
//!     preset_batch_size: 64,
//!     ..CascadeConfig::default()
//! });
//! let report = train(
//!     &mut model,
//!     &data,
//!     &mut scheduler,
//!     &TrainConfig { epochs: 1, eval_batch_size: 64, ..TrainConfig::default() },
//! );
//! assert!(report.num_batches > 0);
//! ```

pub use cascade_baselines as baselines;
pub use cascade_core as core;
pub use cascade_exec as exec;
pub use cascade_models as models;
pub use cascade_nn as nn;
pub use cascade_serve as serve;
pub use cascade_store as store;
pub use cascade_tensor as tensor;
pub use cascade_tgraph as tgraph;

/// The types most training programs need, in one import.
pub mod prelude {
    pub use cascade_core::{
        evaluate, train, BatchingStrategy, CascadeConfig, CascadeScheduler, FixedBatching,
        TrainConfig, TrainReport,
    };
    pub use cascade_exec::{train_pipelined, PipelineConfig};
    pub use cascade_models::{MemoryTgnn, ModelConfig};
    pub use cascade_nn::{Adam, Module};
    pub use cascade_tgraph::{Dataset, Event, EventStream, NodeId, SynthConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_covers_the_training_loop() {
        use crate::prelude::*;
        let data = SynthConfig::mooc().with_scale(0.0008).generate(1);
        let mut model = MemoryTgnn::new(
            ModelConfig::jodie().with_dims(4, 2),
            data.num_nodes(),
            data.features().dim(),
            1,
        );
        let mut s = FixedBatching::new(32);
        let report = train(
            &mut model,
            &data,
            &mut s,
            &TrainConfig {
                epochs: 1,
                eval_batch_size: 32,
                ..TrainConfig::default()
            },
        );
        assert!(report.val_loss.is_finite());
    }
}
