//! End-to-end training across every model × strategy combination.

use cascade_baselines::{tgl, Etc, NeutronStream};
use cascade_core::{train, BatchingStrategy, CascadeConfig, CascadeScheduler, TrainConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_tgraph::{Dataset, SynthConfig};

fn tiny_dataset() -> Dataset {
    SynthConfig::wiki()
        .with_scale(0.006)
        .with_node_scale(0.02)
        .with_feature_dim(4)
        .generate(3)
}

fn tiny_model(data: &Dataset, base: ModelConfig) -> MemoryTgnn {
    MemoryTgnn::new(
        base.with_dims(8, 4).with_neighbors(2),
        data.num_nodes(),
        data.features().dim(),
        7,
    )
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        lr: 1e-3,
        eval_batch_size: 48,
        clip_norm: Some(5.0),
        ..TrainConfig::default()
    }
}

fn strategies() -> Vec<Box<dyn BatchingStrategy>> {
    vec![
        Box::new(tgl(48)),
        Box::new(CascadeScheduler::new(CascadeConfig {
            preset_batch_size: 48,
            ..CascadeConfig::default()
        })),
        Box::new(CascadeScheduler::new(
            CascadeConfig {
                preset_batch_size: 48,
                ..CascadeConfig::default()
            }
            .without_sg_filter(),
        )),
        Box::new(NeutronStream::new(48)),
        Box::new(Etc::new(48)),
    ]
}

#[test]
fn every_model_trains_under_every_strategy() {
    let data = tiny_dataset();
    for base in ModelConfig::all() {
        for mut strategy in strategies() {
            let mut model = tiny_model(&data, base.clone());
            let report = train(&mut model, &data, strategy.as_mut(), &tiny_cfg());
            assert!(
                report.val_loss.is_finite(),
                "{} under {} produced non-finite loss",
                base.name,
                report.strategy
            );
            assert!(report.num_batches > 0);
            assert!(report.avg_batch_size > 0.0);
            assert!(
                report.final_train_loss.is_finite(),
                "{} train loss NaN",
                base.name
            );
        }
    }
}

#[test]
fn losses_decrease_with_more_epochs() {
    let data = tiny_dataset();
    let mut model = tiny_model(&data, ModelConfig::tgn());
    let cfg = TrainConfig {
        epochs: 6,
        ..tiny_cfg()
    };
    let mut strategy = tgl(48);
    let report = train(&mut model, &data, &mut strategy, &cfg);
    let first = report.epoch_losses.first().copied().unwrap();
    let last = report.epoch_losses.last().copied().unwrap();
    assert!(
        last < first,
        "epoch losses did not decrease: {:?}",
        report.epoch_losses
    );
}

#[test]
fn cascade_reduces_batch_count_without_blowing_up_loss() {
    let data = tiny_dataset();
    let cfg = tiny_cfg();

    let mut baseline_model = tiny_model(&data, ModelConfig::tgn());
    let mut baseline = tgl(48);
    let base = train(&mut baseline_model, &data, &mut baseline, &cfg);

    let mut cascade_model = tiny_model(&data, ModelConfig::tgn());
    let mut cascade = CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 48,
        ..CascadeConfig::default()
    });
    let cas = train(&mut cascade_model, &data, &mut cascade, &cfg);

    assert!(
        cas.num_batches <= base.num_batches,
        "cascade used more batches ({} vs {})",
        cas.num_batches,
        base.num_batches
    );
    assert!(
        cas.val_loss < base.val_loss * 1.5,
        "cascade loss blew up: {} vs {}",
        cas.val_loss,
        base.val_loss
    );
}

#[test]
fn lite_models_train_under_cascade() {
    let data = tiny_dataset();
    for base in [ModelConfig::tgn(), ModelConfig::tgat()] {
        let mut model = MemoryTgnn::new(
            base.with_dims(8, 4).with_neighbors(2).with_lite(),
            data.num_nodes(),
            data.features().dim(),
            7,
        );
        let mut cascade = CascadeScheduler::new(CascadeConfig {
            preset_batch_size: 48,
            ..CascadeConfig::default()
        });
        let report = train(&mut model, &data, &mut cascade, &tiny_cfg());
        assert!(report.val_loss.is_finite());
    }
}

#[test]
fn modeled_time_at_least_wall_time_without_pipeline() {
    let data = tiny_dataset();
    let mut model = tiny_model(&data, ModelConfig::jodie());
    let mut strategy = tgl(48);
    let cfg = TrainConfig {
        sim_batch_overhead_events: 100.0,
        ..tiny_cfg()
    };
    let report = train(&mut model, &data, &mut strategy, &cfg);
    assert!(report.modeled_time >= report.total_time);

    // Overhead disabled: modeled equals measured.
    let mut model = tiny_model(&data, ModelConfig::jodie());
    let mut strategy = tgl(48);
    let report = train(&mut model, &data, &mut strategy, &tiny_cfg());
    assert_eq!(report.modeled_time, report.total_time);
}

#[test]
fn space_breakdown_is_complete() {
    let data = tiny_dataset();
    let mut model = tiny_model(&data, ModelConfig::tgn());
    let mut cascade = CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 48,
        ..CascadeConfig::default()
    });
    let report = train(&mut model, &data, &mut cascade, &tiny_cfg());
    assert!(report.space.dependency_table > 0);
    assert!(report.space.stable_flags > 0);
    assert!(report.space.graph > 0);
    assert!(report.space.edge_features > 0);
    assert!(report.space.model > 0);
    assert!(report.space.memory > 0);
    let fr: f64 = report.space.fractions().iter().map(|(_, f)| f).sum();
    assert!((fr - 1.0).abs() < 1e-9);
}

#[test]
fn node_memories_stay_bounded() {
    // Every memory updater ends in tanh or a convex combination with a
    // tanh candidate, so memories must remain in [-1, 1] throughout
    // training — the stability property the SG-Filter's cosine measure
    // relies on.
    let data = tiny_dataset();
    for base in ModelConfig::all() {
        let mut model = tiny_model(&data, base.clone());
        let mut strat = tgl(48);
        let _ = train(&mut model, &data, &mut strat, &tiny_cfg());
        for n in 0..data.num_nodes() as u32 {
            let m = model.memory().snapshot(cascade_tgraph::NodeId(n));
            assert!(
                m.iter().all(|v| v.abs() <= 1.0 + 1e-5),
                "{}: node {} memory escaped [-1, 1]: {:?}",
                base.name,
                n,
                m
            );
        }
    }
}

#[test]
fn batch_history_is_recorded() {
    let data = tiny_dataset();
    let mut model = tiny_model(&data, ModelConfig::jodie());
    let mut strat = tgl(48);
    let report = train(&mut model, &data, &mut strat, &tiny_cfg());
    assert_eq!(report.batch_sizes.len(), report.num_batches);
    assert_eq!(report.batch_losses.len(), report.num_batches);
    let total: u32 = report.batch_sizes.iter().sum();
    assert_eq!(total as usize, data.train_range().len() * report.epochs);
}
