//! Determinism: identical seeds must yield identical datasets, identical
//! batch boundaries, and identical losses.

use cascade_core::{train, CascadeConfig, CascadeScheduler, FixedBatching, TrainConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_tgraph::{Dataset, SynthConfig};

fn data(seed: u64) -> Dataset {
    SynthConfig::reddit()
        .with_scale(0.0015)
        .with_node_scale(0.01)
        .with_feature_dim(4)
        .generate(seed)
}

fn run(seed: u64, cascade: bool) -> (f32, Vec<f32>, usize) {
    let data = data(7);
    let mut model = MemoryTgnn::new(
        ModelConfig::tgn().with_dims(8, 4).with_neighbors(2),
        data.num_nodes(),
        data.features().dim(),
        seed,
    );
    let cfg = TrainConfig {
        epochs: 2,
        eval_batch_size: 32,
        ..TrainConfig::default()
    };
    let report = if cascade {
        let mut s = CascadeScheduler::new(CascadeConfig {
            preset_batch_size: 32,
            seed,
            ..CascadeConfig::default()
        });
        train(&mut model, &data, &mut s, &cfg)
    } else {
        let mut s = FixedBatching::new(32);
        train(&mut model, &data, &mut s, &cfg)
    };
    (report.val_loss, report.epoch_losses, report.num_batches)
}

#[test]
fn identical_seeds_identical_runs() {
    for cascade in [false, true] {
        let a = run(11, cascade);
        let b = run(11, cascade);
        assert_eq!(a.0, b.0, "val losses differ (cascade={})", cascade);
        assert_eq!(a.1, b.1, "epoch losses differ");
        assert_eq!(a.2, b.2, "batch counts differ");
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(11, false);
    let b = run(12, false);
    assert_ne!(a.0, b.0, "different model seeds gave identical loss");
}

#[test]
fn dataset_generation_is_stable() {
    let a = data(5);
    let b = data(5);
    assert_eq!(a.num_events(), b.num_events());
    assert_eq!(a.stream().events(), b.stream().events());
    assert_eq!(a.features().row(0), b.features().row(0));
}

#[test]
fn models_start_identical_across_strategies() {
    // Same model seed: the first-epoch starting loss is determined by the
    // weights, so the first batch's loss under fixed batching must match a
    // fixed batching re-run exactly.
    let a = run(3, false);
    let b = run(3, false);
    assert_eq!(a.1[0], b.1[0]);
}
