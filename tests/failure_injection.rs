//! Degenerate inputs and extremes: single nodes, empty histories, θ_sim
//! limits, tiny and huge `Max_r`, zero-width features.

use cascade_core::{
    evaluate, train, CascadeConfig, CascadeScheduler, DependencyTable, FixedBatching, SgFilter,
    TgDiffuser, TrainConfig,
};
use cascade_models::{MemoryDelta, MemoryTgnn, ModelConfig};
use cascade_tgraph::{Dataset, EdgeFeatures, Event, EventStream, NodeId, SynthConfig};

fn stream(pairs: &[(u32, u32)]) -> EventStream {
    EventStream::new(
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| Event::new(s, d, i as f64))
            .collect(),
    )
    .unwrap()
}

#[test]
fn two_node_graph_trains() {
    let events: Vec<(u32, u32)> = (0..40).map(|i| (i % 2, (i + 1) % 2)).collect();
    let data = Dataset::new("two", stream(&events), EdgeFeatures::none());
    let mut model = MemoryTgnn::new(
        ModelConfig::tgn().with_dims(4, 2).with_neighbors(1),
        data.num_nodes(),
        0,
        1,
    );
    let mut strat = FixedBatching::new(8);
    let cfg = TrainConfig {
        epochs: 2,
        eval_batch_size: 8,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &data, &mut strat, &cfg);
    assert!(report.val_loss.is_finite());
}

#[test]
fn self_loop_events_are_handled() {
    let data = Dataset::new(
        "selfloop",
        stream(&[
            (0, 0),
            (1, 1),
            (0, 1),
            (1, 0),
            (0, 0),
            (1, 1),
            (0, 1),
            (1, 0),
        ]),
        EdgeFeatures::none(),
    );
    let mut model = MemoryTgnn::new(ModelConfig::jodie().with_dims(4, 2), data.num_nodes(), 0, 1);
    let out = model.process_batch(data.stream().events(), 0, data.features());
    assert!(out.loss.item().is_finite());
}

#[test]
fn zero_feature_dim_works_everywhere() {
    let data = SynthConfig::wiki()
        .with_scale(0.003)
        .with_node_scale(0.01)
        .with_feature_dim(0)
        .generate(2);
    assert_eq!(data.features().dim(), 0);
    for base in ModelConfig::all() {
        let mut model = MemoryTgnn::new(
            base.with_dims(4, 2).with_neighbors(2),
            data.num_nodes(),
            0,
            1,
        );
        let mut strat = CascadeScheduler::new(CascadeConfig {
            preset_batch_size: 32,
            ..CascadeConfig::default()
        });
        let cfg = TrainConfig {
            epochs: 1,
            eval_batch_size: 32,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data, &mut strat, &cfg);
        assert!(report.val_loss.is_finite());
    }
}

#[test]
fn theta_zero_marks_non_opposing_updates_stable() {
    let mut f = SgFilter::new(3, 0.0);
    f.observe(&[
        MemoryDelta {
            node: NodeId(0),
            pre: vec![1.0, 0.0],
            post: vec![0.0, 1.0], // orthogonal: sim 0 ≥ θ
        },
        MemoryDelta {
            node: NodeId(1),
            pre: vec![1.0, 0.0],
            post: vec![-1.0, 0.0], // anti-parallel: sim −1 < θ
        },
    ]);
    assert!(f.flags()[0]);
    assert!(!f.flags()[1]);
    assert_eq!(f.epoch_stable_ratio(), 0.5);
}

#[test]
fn theta_one_only_accepts_collinear_updates() {
    let mut f = SgFilter::new(3, 1.0);
    f.observe(&[
        MemoryDelta {
            node: NodeId(0),
            pre: vec![2.0, 0.0],
            post: vec![4.0, 0.0],
        },
        MemoryDelta {
            node: NodeId(1),
            pre: vec![1.0, 0.0],
            post: vec![1.0, 0.001],
        },
    ]);
    assert!(f.flags()[0]);
    assert!(!f.flags()[1]);
}

#[test]
fn max_r_one_still_partitions() {
    let events = stream(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]);
    let t = DependencyTable::build(events.events(), 4);
    let mut d = TgDiffuser::new(t, 1);
    let stable = vec![false; 4];
    let mut start = 0;
    let mut n = 0;
    while start < 6 {
        start = d.next_boundary(start, 6, &stable);
        n += 1;
        assert!(n <= 6);
    }
}

#[test]
fn huge_max_r_takes_whole_stream() {
    let events = stream(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let t = DependencyTable::build(events.events(), 4);
    let mut d = TgDiffuser::new(t, usize::MAX / 2);
    assert_eq!(d.next_boundary(0, 4, &[false; 4]), 4);
}

#[test]
fn evaluate_on_empty_validation_range_is_nan() {
    // 4 events: train 0..2, val 3..3 (empty).
    let data = Dataset::new(
        "tiny",
        stream(&[(0, 1), (1, 2), (2, 0), (0, 2)]),
        EdgeFeatures::none(),
    );
    assert!(data.val_range().is_empty() || !data.val_range().is_empty());
    let mut model = MemoryTgnn::new(ModelConfig::jodie().with_dims(4, 2), 3, 0, 1);
    let v = evaluate(&mut model, &data, 2);
    // Either a finite loss (non-empty range) or NaN (empty) — never panic.
    assert!(v.loss.is_finite() || v.loss.is_nan());
}

#[test]
fn single_event_batches_everywhere() {
    let data = Dataset::new(
        "drip",
        stream(&[
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 2),
            (1, 0),
            (2, 1),
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 2),
        ]),
        EdgeFeatures::none(),
    );
    let mut model = MemoryTgnn::new(
        ModelConfig::tgn().with_dims(4, 2).with_neighbors(1),
        3,
        0,
        1,
    );
    let mut strat = FixedBatching::new(1);
    let cfg = TrainConfig {
        epochs: 1,
        eval_batch_size: 1,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &data, &mut strat, &cfg);
    assert_eq!(report.avg_batch_size, 1.0);
    assert!(report.val_loss.is_finite());
}

#[test]
fn score_links_on_cold_model() {
    let model = MemoryTgnn::new(
        ModelConfig::tgn().with_dims(4, 2).with_neighbors(2),
        5,
        0,
        1,
    );
    let feats = EdgeFeatures::none();
    let scores = model.score_links(NodeId(0), &[NodeId(1), NodeId(2)], 10.0, &feats);
    assert_eq!(scores.len(), 2);
    assert!(scores.iter().all(|s| s.is_finite()));
}

#[test]
fn cascade_on_stream_smaller_than_preset() {
    let data = Dataset::new(
        "short",
        stream(&[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 2),
            (1, 3),
            (2, 4),
            (3, 0),
            (4, 1),
        ]),
        EdgeFeatures::none(),
    );
    let mut model = MemoryTgnn::new(ModelConfig::jodie().with_dims(4, 2), 5, 0, 1);
    let mut strat = CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 1000, // far larger than the stream
        ..CascadeConfig::default()
    });
    let cfg = TrainConfig {
        epochs: 1,
        eval_batch_size: 4,
        ..TrainConfig::default()
    };
    let report = train(&mut model, &data, &mut strat, &cfg);
    assert!(report.val_loss.is_finite() || report.val_loss.is_nan());
}
