//! Out-of-core acceptance: training from a `cascade-store` file through
//! the streaming driver must be **bit-identical** — gradient effects
//! (post-step parameters), node memories, and losses — to in-memory
//! training over the same events with the same chunk geometry, and a
//! run suspended mid-epoch and resumed from its checkpoint must match
//! the uninterrupted run bit for bit.

use cascade_core::{
    train, train_streaming, train_streaming_with_options, BatchingStrategy, CascadeConfig,
    CascadeScheduler, FixedBatching, StreamCheckpoint, StreamOptions, StreamOutcome, TrainConfig,
    TrainReport,
};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_store::{export_dataset, StreamingEventSource};
use cascade_tgraph::{Dataset, SynthConfig};

const CHUNK: usize = 128;
const MODEL_SEED: u64 = 17;

fn dataset() -> Dataset {
    SynthConfig::wiki().with_scale(0.004).generate(23)
}

fn model(data: &Dataset) -> MemoryTgnn {
    MemoryTgnn::new(
        ModelConfig::tgn().with_dims(8, 4).with_neighbors(3),
        data.num_nodes(),
        data.features().dim(),
        MODEL_SEED,
    )
}

fn cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        eval_batch_size: 64,
        scale_lr_with_batch: true,
        ..TrainConfig::default()
    }
}

fn cascade_strategy() -> CascadeScheduler {
    CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 64,
        chunk_size: Some(CHUNK),
        ..CascadeConfig::default()
    })
}

fn store_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cascade-ident-{}-{}.evt", tag, std::process::id()))
}

/// Asserts every result field that must be bit-equal between two runs.
fn assert_bit_identical(a: &TrainReport, b: &TrainReport, what: &str) {
    assert_eq!(a.batch_sizes, b.batch_sizes, "{what}: batch boundaries");
    let a_bits: Vec<u32> = a.batch_losses.iter().map(|x| x.to_bits()).collect();
    let b_bits: Vec<u32> = b.batch_losses.iter().map(|x| x.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "{what}: batch losses");
    let a_ep: Vec<u32> = a.epoch_losses.iter().map(|x| x.to_bits()).collect();
    let b_ep: Vec<u32> = b.epoch_losses.iter().map(|x| x.to_bits()).collect();
    assert_eq!(a_ep, b_ep, "{what}: epoch losses");
    assert_eq!(
        a.val_loss.to_bits(),
        b.val_loss.to_bits(),
        "{what}: validation loss"
    );
    assert_eq!(
        a.val_ap.to_bits(),
        b.val_ap.to_bits(),
        "{what}: validation AP"
    );
}

fn run_streaming(
    data: &Dataset,
    path: &std::path::Path,
    strategy: &mut dyn BatchingStrategy,
) -> (TrainReport, Vec<u8>) {
    let mut m = model(data);
    let mut source = StreamingEventSource::open(path, 2).expect("store opens");
    let report = train_streaming(&mut m, &mut source, strategy, &cfg()).expect("streams cleanly");
    (report, m.export_state())
}

#[test]
fn streaming_cascade_is_bit_identical_to_in_memory() {
    let data = dataset();
    let path = store_path("cascade");
    export_dataset(&data, &path, CHUNK).expect("export succeeds");

    let mut m_mem = model(&data);
    let mut s_mem = cascade_strategy();
    let mem = train(&mut m_mem, &data, &mut s_mem, &cfg());

    let mut s_str = cascade_strategy();
    let (stream, state) = run_streaming(&data, &path, &mut s_str);
    std::fs::remove_file(&path).ok();

    assert_bit_identical(&mem, &stream, "cascade streaming vs in-memory");
    // Post-step parameters, node memories, and mailboxes, bit for bit.
    assert_eq!(
        m_mem.export_state(),
        state,
        "cascade: model state diverged between streaming and in-memory"
    );
    // Out-of-core resident events must be a strict subset of the stream.
    assert!(
        stream.space.graph < mem.space.graph,
        "streaming window ({}) not smaller than full stream ({})",
        stream.space.graph,
        mem.space.graph
    );
}

#[test]
fn streaming_fixed_batching_handles_chunk_straddle() {
    let data = dataset();
    let path = store_path("fixed");
    export_dataset(&data, &path, CHUNK).expect("export succeeds");

    // 48 does not divide 128, so batches straddle chunk boundaries and
    // the rolling window must retain straddled prefixes.
    let mut m_mem = model(&data);
    let mut s_mem = FixedBatching::new(48);
    let mem = train(&mut m_mem, &data, &mut s_mem, &cfg());

    let mut s_str = FixedBatching::new(48);
    let (stream, state) = run_streaming(&data, &path, &mut s_str);
    std::fs::remove_file(&path).ok();

    assert_bit_identical(&mem, &stream, "fixed streaming vs in-memory");
    assert_eq!(m_mem.export_state(), state, "fixed: model state diverged");
}

fn resume_roundtrip(
    data: &Dataset,
    path: &std::path::Path,
    make_strategy: &dyn Fn() -> Box<dyn BatchingStrategy>,
    suspend_at: (usize, usize),
    what: &str,
) {
    let mut s_full = make_strategy();
    let (full, full_state) = run_streaming(data, path, s_full.as_mut());

    // First leg: train until the suspension point, get a checkpoint.
    let mut m1 = model(data);
    let mut src1 = StreamingEventSource::open(path, 2).expect("store opens");
    let mut s1 = make_strategy();
    let outcome = train_streaming_with_options(
        &mut m1,
        &mut src1,
        s1.as_mut(),
        &cfg(),
        StreamOptions {
            suspend_after: Some(suspend_at),
            resume_from: None,
        },
    )
    .expect("first leg streams cleanly");
    let StreamOutcome::Suspended(ck) = outcome else {
        panic!("{what}: run completed without suspending");
    };
    assert_eq!((ck.epoch, ck.chunk), suspend_at);

    // The checkpoint survives serialization (what a file would hold).
    let restored =
        StreamCheckpoint::from_bytes(&ck.to_bytes()).expect("checkpoint bytes roundtrip");
    assert_eq!(restored, *ck);

    // Second leg: fresh model (same constructor seed — the negative
    // sampler key is configuration), fresh strategy, fresh source.
    let mut m2 = model(data);
    let mut src2 = StreamingEventSource::open(path, 2).expect("store reopens");
    let mut s2 = make_strategy();
    let outcome = train_streaming_with_options(
        &mut m2,
        &mut src2,
        s2.as_mut(),
        &cfg(),
        StreamOptions {
            suspend_after: None,
            resume_from: Some(restored),
        },
    )
    .expect("resumed leg streams cleanly");
    let StreamOutcome::Completed(resumed) = outcome else {
        panic!("{what}: resumed run suspended again");
    };

    assert_bit_identical(&full, &resumed, what);
    assert_eq!(
        full_state,
        m2.export_state(),
        "{what}: model state diverged after resume"
    );
}

#[test]
fn mid_epoch_resume_matches_uninterrupted_cascade() {
    let data = dataset();
    let path = store_path("resume-cascade");
    export_dataset(&data, &path, CHUNK).expect("export succeeds");
    // Suspend in the second epoch at chunk 1: the restored scheduler
    // must carry Max_r, ABS convergence state, and stable flags over.
    resume_roundtrip(
        &data,
        &path,
        &|| Box::new(cascade_strategy()),
        (1, 1),
        "cascade resume",
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn mid_epoch_resume_matches_uninterrupted_fixed_straddle() {
    let data = dataset();
    let path = store_path("resume-fixed");
    export_dataset(&data, &path, CHUNK).expect("export succeeds");
    // Batch size 48 straddles the 128-event chunk boundary, so the
    // checkpoint's start_event lies inside chunk 1 and resume must
    // replay the processed prefix of that chunk.
    resume_roundtrip(
        &data,
        &path,
        &|| Box::new(FixedBatching::new(48)),
        (1, 1),
        "fixed straddle resume",
    );
    std::fs::remove_file(&path).ok();
}
