//! The paper's worked examples (Figures 7, 8, 9) through the public API —
//! the strongest fidelity check available without the authors' code.

use cascade_core::{max_endurance_profiling, Abs, DependencyTable, SgFilter, TgDiffuser};
use cascade_models::MemoryDelta;
use cascade_tgraph::{Event, NodeId};

/// The 12-event stream of Figures 7–9 (nodes a..d are 10..13; event 7 is
/// the edge a–4, consistent with every table row in the figure).
fn figure7_events() -> Vec<Event> {
    let pairs = [
        (1, 2),
        (1, 7),
        (1, 8),
        (1, 9),
        (10, 11),
        (10, 12),
        (10, 13),
        (10, 4),
        (1, 3),
        (1, 5),
        (1, 6),
        (3, 4),
    ];
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| Event::new(s as u32, d as u32, i as f64))
        .collect()
}

#[test]
fn figure7a_dependency_table() {
    let t = DependencyTable::build(&figure7_events(), 14);
    // Every row of the printed table.
    assert_eq!(t.entry(NodeId(1)), &[0, 1, 2, 3, 8, 9, 10, 11]);
    assert_eq!(t.entry(NodeId(2)), &[0, 1, 2, 3, 8, 9, 10]);
    assert_eq!(t.entry(NodeId(3)), &[8, 9, 10, 11]);
    assert_eq!(t.entry(NodeId(4)), &[7, 11]);
    assert_eq!(t.entry(NodeId(5)), &[9, 10]);
    assert_eq!(t.entry(NodeId(7)), &[1, 2, 3, 8, 9, 10]);
    assert_eq!(t.entry(NodeId(8)), &[2, 3, 8, 9, 10]);
    assert_eq!(t.entry(NodeId(9)), &[3, 8, 9, 10]);
    assert_eq!(t.entry(NodeId(10)), &[4, 5, 6, 7, 11]);
    assert_eq!(t.entry(NodeId(11)), &[4, 5, 6, 7]);
    assert_eq!(t.entry(NodeId(12)), &[5, 6, 7]);
    assert_eq!(t.entry(NodeId(13)), &[6, 7]);
}

#[test]
fn figure7b_last_tolerable_event() {
    let t = DependencyTable::build(&figure7_events(), 14);
    let mut d = TgDiffuser::new(t, 4);
    // "the batch's last event is e(8) since any events after this one may
    // use intolerably expired information on node_1 or node_2"
    assert_eq!(d.next_boundary(0, 12, &[false; 14]), 8);
}

#[test]
fn figure8b_stable_nodes_relax_the_barrier() {
    let t = DependencyTable::build(&figure7_events(), 14);
    let mut d = TgDiffuser::new(t, 4);
    let mut stable = vec![false; 14];
    for n in [1, 2, 7] {
        stable[n] = true;
    }
    // "we can further expand batch size from 8 to 10"
    assert_eq!(d.next_boundary(0, 12, &stable), 10);
}

#[test]
fn figure8a_similarity_flags() {
    // Nodes with cosine similarity above 0.9 are flagged stable.
    let mut f = SgFilter::new(14, 0.9);
    f.observe(&[
        MemoryDelta {
            node: NodeId(1),
            pre: vec![1.0, 0.1],
            post: vec![0.98, 0.12],
        },
        MemoryDelta {
            node: NodeId(3),
            pre: vec![1.0, 0.0],
            post: vec![-0.2, 0.9],
        },
    ]);
    assert!(f.flags()[1]);
    assert!(!f.flags()[3]);
}

#[test]
fn figure9_max_endurance_profiling() {
    let t = DependencyTable::build(&figure7_events(), 14);
    // Sample batch size 4 over 12 events: 3 batches, each with Max
    // Endurance 4 (node_1 in batches 0 and 2; nodes a/b in batch 1).
    let stats = max_endurance_profiling(&t, 12, 4, 0);
    assert_eq!(stats.batch_count, 3);
    assert!((stats.mean - 4.0).abs() < 1e-9);
    assert_eq!(stats.max, 4);
    assert_eq!(stats.min, 4);
}

#[test]
fn equations_5_to_7_decay_schedule() {
    let stats = max_endurance_profiling(&DependencyTable::build(&figure7_events(), 14), 12, 4, 0);
    let abs = Abs::from_stats(stats);
    // Initial Max_r = 2 × mr_mean = 8.
    assert_eq!(abs.initial_max_r(), 8);
    // Decay is monotone non-increasing in the batch index and never
    // drops below mr_min.
    let mut last = abs.initial_max_r();
    for i in [1usize, 10, 100, 10_000] {
        let r = abs.decayed_max_r(i);
        assert!(r <= last);
        assert!(r >= stats.min);
        last = r;
    }
}

#[test]
fn batches_of_figure7_partition_without_stable_flags() {
    let t = DependencyTable::build(&figure7_events(), 14);
    let mut d = TgDiffuser::new(t, 4);
    let stable = vec![false; 14];
    let mut start = 0;
    let mut sizes = Vec::new();
    while start < 12 {
        let end = d.next_boundary(start, 12, &stable);
        sizes.push(end - start);
        start = end;
    }
    assert_eq!(sizes.iter().sum::<usize>(), 12);
    assert_eq!(sizes[0], 8, "first batch must match Figure 7(b)");
}
