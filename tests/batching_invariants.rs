//! Cross-strategy batching invariants, property-tested over generated
//! streams via the in-repo `cascade-util` harness (seeded cases,
//! `CASCADE_PROP_CASES` controls the count, default 64).

use cascade_baselines::{tgl, Etc, NeutronStream};
use cascade_core::{BatchingStrategy, CascadeConfig, CascadeScheduler};
use cascade_tgraph::{DetRng, Event, EventStream, SynthConfig};
use cascade_util::{check, prop_assert, prop_assert_eq, Gen};

fn partition(
    strategy: &mut dyn BatchingStrategy,
    events: &[Event],
    num_nodes: usize,
) -> Vec<usize> {
    strategy.prepare(events, num_nodes);
    strategy.reset_epoch();
    let mut boundaries = Vec::new();
    let mut start = 0;
    while start < events.len() {
        let end = strategy.next_batch_end(start, events.len());
        assert!(end > start, "{} made no progress", strategy.name());
        assert!(
            end <= events.len(),
            "{} overran the stream",
            strategy.name()
        );
        boundaries.push(end);
        start = end;
    }
    boundaries
}

fn arbitrary_stream(g: &mut Gen) -> (Vec<Event>, usize) {
    let nodes = g.usize_in(2..30);
    let events = g.usize_in(20..200);
    let mut rng = DetRng::new(g.u64());
    let evs: Vec<Event> = (0..events)
        .map(|i| {
            let s = rng.index(nodes) as u32;
            let mut d = rng.index(nodes) as u32;
            if d == s {
                d = (d + 1) % nodes as u32;
            }
            Event::new(s, d, i as f64)
        })
        .collect();
    (evs, nodes)
}

#[test]
fn all_strategies_partition_any_stream() {
    check("all_strategies_partition_any_stream", |g| {
        let (events, nodes) = arbitrary_stream(g);
        let strategies: Vec<Box<dyn BatchingStrategy>> = vec![
            Box::new(tgl(16)),
            Box::new(NeutronStream::new(16)),
            Box::new(Etc::new(16)),
            Box::new(CascadeScheduler::new(CascadeConfig {
                preset_batch_size: 16,
                ..CascadeConfig::default()
            })),
            Box::new(CascadeScheduler::new(
                CascadeConfig {
                    preset_batch_size: 16,
                    ..CascadeConfig::default()
                }
                .with_chunk_size(37),
            )),
        ];
        for mut s in strategies {
            let b = partition(s.as_mut(), &events, nodes);
            prop_assert_eq!(*b.last().unwrap(), events.len());
            prop_assert!(b.windows(2).all(|w| w[0] < w[1]));
        }
        Ok(())
    });
}

#[test]
fn cascade_boundaries_repeat_across_epochs() {
    check("cascade_boundaries_repeat_across_epochs", |g| {
        let (events, nodes) = arbitrary_stream(g);
        let mut s = CascadeScheduler::new(
            CascadeConfig {
                preset_batch_size: 16,
                ..CascadeConfig::default()
            }
            .without_sg_filter(),
        );
        let first = partition(&mut s, &events, nodes);
        s.reset_epoch();
        let mut second = Vec::new();
        let mut start = 0;
        while start < events.len() {
            let end = s.next_batch_end(start, events.len());
            second.push(end);
            start = end;
        }
        prop_assert_eq!(first, second);
        Ok(())
    });
}

#[test]
fn etc_never_exceeds_detected_loss() {
    check("etc_never_exceeds_detected_loss", |g| {
        let (events, nodes) = arbitrary_stream(g);
        let mut s = Etc::new(16);
        s.prepare(&events, nodes);
        let threshold = s.threshold();
        let mut start = 0;
        while start < events.len() {
            let end = s.next_batch_end(start, events.len());
            // Recompute the admitted batch's loss independently.
            let mut counts = std::collections::HashMap::new();
            let mut loss = 0usize;
            for e in &events[start..end] {
                for n in [e.src, e.dst] {
                    let c = counts.entry(n).or_insert(0usize);
                    if *c > 0 {
                        loss += 1;
                    }
                    *c += 1;
                }
            }
            // Single-event batches are always admissible (progress).
            if end - start > 1 {
                prop_assert!(
                    loss <= threshold,
                    "batch {}..{} loss {} > threshold {}",
                    start,
                    end,
                    loss,
                    threshold
                );
            }
            start = end;
        }
        Ok(())
    });
}

#[test]
fn neutron_extension_is_node_disjoint() {
    check("neutron_extension_is_node_disjoint", |g| {
        let (events, nodes) = arbitrary_stream(g);
        let base = 8;
        let mut s = NeutronStream::new(base);
        s.prepare(&events, nodes);
        let mut start = 0;
        while start < events.len() {
            let end = s.next_batch_end(start, events.len());
            let base_end = (start + base).min(events.len());
            // Every extension event shares no node with the batch prefix
            // before it.
            let mut seen = std::collections::HashSet::new();
            for e in &events[start..base_end] {
                seen.insert(e.src);
                seen.insert(e.dst);
            }
            for e in &events[base_end..end] {
                prop_assert!(
                    !seen.contains(&e.src) && !seen.contains(&e.dst),
                    "event ({:?}, {:?}) overlaps the batch prefix",
                    e.src,
                    e.dst
                );
                seen.insert(e.src);
                seen.insert(e.dst);
            }
            start = end;
        }
        Ok(())
    });
}

#[test]
fn cascade_average_batch_grows_on_sparse_profile() {
    let data = SynthConfig::wiki_talk()
        .with_scale(0.0006)
        .with_node_scale(0.004)
        .with_feature_dim(0)
        .generate(1);
    let events = data.stream().events();
    let mut s = CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 64,
        ..CascadeConfig::default()
    });
    let b = partition(&mut s, events, data.num_nodes());
    let avg = events.len() as f64 / b.len() as f64;
    assert!(avg > 64.0 * 1.5, "sparse expansion too small: {:.0}", avg);
}

#[test]
fn chunked_and_dense_agree_when_chunk_covers_stream() {
    let data = SynthConfig::wiki()
        .with_scale(0.004)
        .with_node_scale(0.012)
        .with_feature_dim(0)
        .generate(5);
    let events = data.stream().events();

    let cfg = CascadeConfig {
        preset_batch_size: 32,
        ..CascadeConfig::default()
    }
    .without_sg_filter();
    let mut dense = CascadeScheduler::new(cfg.clone());
    let mut chunked = CascadeScheduler::new(cfg.with_chunk_size(events.len() + 10));
    let a = partition(&mut dense, events, data.num_nodes());
    let b = partition(&mut chunked, events, data.num_nodes());
    assert_eq!(a, b);
}

#[test]
fn stream_round_trips_through_event_stream() {
    let data = SynthConfig::mooc()
        .with_scale(0.002)
        .with_feature_dim(0)
        .generate(9);
    let rebuilt = EventStream::new(data.stream().events().to_vec()).unwrap();
    assert_eq!(rebuilt.len(), data.num_events());
    assert_eq!(rebuilt.num_nodes(), data.stream().num_nodes());
}
