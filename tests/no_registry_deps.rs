//! Regression test for the zero-dependency policy: every dependency in
//! every manifest of this workspace must be a path-internal `cascade-*`
//! crate. Offline CI (and air-gapped checkouts) break the moment a
//! registry dependency is reintroduced, so this fails fast at `cargo
//! test` time instead of at the first `cargo build` without a network.

use std::fs;
use std::path::{Path, PathBuf};

/// Section headers whose entries are dependency declarations. Dotted
/// forms like `[dependencies.foo]` are handled separately.
const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

fn manifests() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut found = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ directory") {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            found.push(manifest);
        }
    }
    assert!(
        found.len() >= 8,
        "expected the workspace root and at least 7 member manifests, found {}",
        found.len()
    );
    found
}

/// Returns the offending `(line_number, line)` pairs of `manifest`:
/// dependency entries that are not path-internal `cascade-*` crates.
fn violations(manifest: &Path) -> Vec<(usize, String)> {
    let text = fs::read_to_string(manifest)
        .unwrap_or_else(|e| panic!("read {}: {}", manifest.display(), e));
    let mut bad = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let header = header.trim_start_matches('[').trim_end_matches(']');
            // `[dependencies.foo]` / `[target.'cfg(..)'.dependencies.foo]`
            // declare the dependency `foo` in the header itself.
            if let Some((section, name)) = header.rsplit_once('.') {
                if DEP_SECTIONS.iter().any(|s| section.ends_with(s)) && !name.starts_with("cascade")
                {
                    bad.push((idx + 1, raw.to_string()));
                }
            }
            in_dep_section = DEP_SECTIONS.iter().any(|s| header.ends_with(s));
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let name = line.split('=').next().unwrap_or("").trim();
        if !name.starts_with("cascade") {
            bad.push((idx + 1, raw.to_string()));
        }
    }
    bad
}

#[test]
fn every_dependency_is_a_path_internal_cascade_crate() {
    let mut report = String::new();
    for manifest in manifests() {
        for (line_no, line) in violations(&manifest) {
            report.push_str(&format!(
                "{}:{}: non-cascade dependency `{}`\n",
                manifest.display(),
                line_no,
                line.trim()
            ));
        }
    }
    assert!(
        report.is_empty(),
        "registry dependencies are not allowed in this workspace \
         (see DESIGN.md, zero-dependency policy):\n{}",
        report
    );
}

#[test]
fn workspace_dependency_values_are_path_entries() {
    // Belt and braces: even a `cascade-*` name could smuggle in a
    // registry version requirement; the workspace table must map every
    // dependency to a `path = "crates/..."` entry.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let text = fs::read_to_string(&root).expect("workspace manifest");
    let mut in_table = false;
    let mut checked = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if !in_table || line.is_empty() || line.starts_with('#') {
            continue;
        }
        assert!(
            line.contains("path = \"crates/"),
            "workspace dependency is not path-internal: {}",
            line
        );
        checked += 1;
    }
    assert!(
        checked >= 7,
        "expected at least 7 workspace path dependencies, saw {}",
        checked
    );
}

#[test]
fn no_banned_crate_names_anywhere_in_manifests() {
    // The crates this workspace used to pull from the registry. Substring
    // match over dependency lines only (comments may mention them).
    let banned = ["proptest", "criterion", "crossbeam", "parking_lot", "serde"];
    for manifest in manifests() {
        let text = fs::read_to_string(&manifest).expect("manifest");
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            for b in banned {
                assert!(
                    !line.contains(b),
                    "{}:{}: mentions banned crate `{}`: {}",
                    manifest.display(),
                    idx + 1,
                    b,
                    line
                );
            }
        }
    }
}
