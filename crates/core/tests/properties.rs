//! Property-based tests for the dependency table, diffuser, and ABS,
//! running on the in-repo `cascade-util` harness (seeded cases,
//! `CASCADE_PROP_CASES` controls the count, default 64).

use cascade_core::{max_endurance_profiling, Abs, DependencyTable, SgFilter, TgDiffuser};
use cascade_models::MemoryDelta;
use cascade_tgraph::{DetRng, Event, NodeId};
use cascade_util::{check, prop_assert, prop_assert_eq, Gen};

fn random_events(g: &mut Gen) -> (Vec<Event>, usize) {
    let nodes = g.usize_in(2..20);
    let events = g.usize_in(10..120);
    let mut rng = DetRng::new(g.u64());
    let evs: Vec<Event> = (0..events)
        .map(|i| {
            let s = rng.index(nodes) as u32;
            let d = rng.index(nodes) as u32;
            Event::new(s, d, i as f64)
        })
        .collect();
    (evs, nodes)
}

/// Reference (slow, obviously correct) dependency entry for one node.
fn reference_entry(events: &[Event], n: NodeId) -> Vec<usize> {
    let mut out = std::collections::BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        if e.touches(n) {
            out.insert(i);
            let q = if e.src == n { e.dst } else { e.src };
            if q != n {
                for (j, f) in events.iter().enumerate().skip(i + 1) {
                    if f.touches(q) {
                        out.insert(j);
                    }
                }
            }
        }
    }
    out.into_iter().collect()
}

#[test]
fn dependency_table_matches_reference() {
    check("dependency_table_matches_reference", |g| {
        let (events, nodes) = random_events(g);
        let table = DependencyTable::build(&events, nodes);
        for n in 0..nodes as u32 {
            prop_assert_eq!(
                table.entry(NodeId(n)),
                reference_entry(&events, NodeId(n)),
                "node {}",
                n
            );
        }
        Ok(())
    });
}

#[test]
fn chunked_tables_match_per_chunk_reference() {
    check("chunked_tables_match_per_chunk_reference", |g| {
        let (events, nodes) = random_events(g);
        let chunk = 17usize;
        for (c, slice) in events.chunks(chunk).enumerate() {
            let t = DependencyTable::build_range(slice, nodes, c * chunk);
            for n in 0..nodes as u32 {
                let local: Vec<usize> = reference_entry(slice, NodeId(n))
                    .into_iter()
                    .map(|i| i + c * chunk)
                    .collect();
                prop_assert_eq!(t.entry(NodeId(n)), local, "chunk {} node {}", c, n);
            }
        }
        Ok(())
    });
}

/// The core Cascade invariant: within any produced batch, every
/// non-stable node has at most `Max_r` relevant events.
#[test]
fn no_node_exceeds_its_endurance_budget() {
    check("no_node_exceeds_its_endurance_budget", |g| {
        let (events, nodes) = random_events(g);
        let max_r = g.usize_in(1..8);
        let table = DependencyTable::build(&events, nodes);
        let mut d = TgDiffuser::new(table.clone(), max_r);
        let stable = vec![false; nodes];
        let mut start = 0;
        while start < events.len() {
            let end = d.next_boundary(start, events.len(), &stable);
            // Count each node's relevant events inside [start, end).
            for n in 0..nodes as u32 {
                let entry = table.entry(NodeId(n));
                let inside = entry.iter().filter(|&&e| e >= start && e < end).count();
                // The progress guarantee can admit a single event past the
                // budget when max_r would stall the stream.
                let slack = if end == start + 1 { max_r + 2 } else { max_r };
                prop_assert!(
                    inside <= slack,
                    "node {} saw {} relevant events in {}..{} (Max_r {})",
                    n,
                    inside,
                    start,
                    end,
                    max_r
                );
            }
            start = end;
        }
        Ok(())
    });
}

#[test]
fn stable_flags_only_ever_widen_batches() {
    check("stable_flags_only_ever_widen_batches", |g| {
        let (events, nodes) = random_events(g);
        let max_r = g.usize_in(1..6);
        let stable_node = g.usize_in(0..20);
        let table = DependencyTable::build(&events, nodes);
        let mut plain = TgDiffuser::new(table.clone(), max_r);
        let mut relaxed = TgDiffuser::new(table, max_r);
        let none = vec![false; nodes];
        let mut some = vec![false; nodes];
        some[stable_node % nodes] = true;

        let a = plain.next_boundary(0, events.len(), &none);
        let b = relaxed.next_boundary(0, events.len(), &some);
        prop_assert!(b >= a, "stabilizing a node shrank the batch: {} < {}", b, a);
        Ok(())
    });
}

#[test]
fn profiling_stats_are_ordered() {
    check("profiling_stats_are_ordered", |g| {
        let (events, nodes) = random_events(g);
        let bs = g.usize_in(2..32);
        let table = DependencyTable::build(&events, nodes);
        let stats = max_endurance_profiling(&table, events.len(), bs, 1);
        prop_assert!(stats.min <= stats.max);
        prop_assert!(stats.mean >= stats.min as f64 - 1e-9);
        prop_assert!(stats.mean <= stats.max as f64 + 1e-9);
        prop_assert_eq!(stats.batch_count, events.len().div_ceil(bs));

        let abs = Abs::from_stats(stats);
        let init = abs.initial_max_r();
        prop_assert!(init >= stats.min.max(1));
        for i in [0usize, 7, 100, 5000] {
            let r = abs.decayed_max_r(i);
            prop_assert!(r >= stats.min.max(1), "batch {}: {} below floor", i, r);
            prop_assert!(r <= init, "batch {}: {} above initial", i, r);
        }
        Ok(())
    });
}

#[test]
fn sgfilter_flags_reflect_last_update() {
    check("sgfilter_flags_reflect_last_update", |g| {
        // Drive the filter with synthetic cosine values via constructed
        // vectors: v = [1, 0], post = [c, sqrt(1-c^2)] has cosine c.
        let sims: Vec<(u32, f32)> = (0..g.usize_in(1..40))
            .map(|_| (g.usize_in(0..10) as u32, g.f32_in(-1.0..1.0)))
            .collect();
        let mut filter = SgFilter::new(10, 0.9);
        let mut last: std::collections::HashMap<u32, f32> = Default::default();
        for &(node, c) in &sims {
            let c = c.clamp(-0.999, 0.999);
            let delta = MemoryDelta {
                node: NodeId(node),
                pre: vec![1.0, 0.0],
                post: vec![c, (1.0 - c * c).sqrt()],
            };
            filter.observe(std::slice::from_ref(&delta));
            last.insert(node, c);
        }
        for (node, c) in last {
            prop_assert_eq!(
                filter.flags()[node as usize],
                c >= 0.9 - 1e-4,
                "node {} cosine {}",
                node,
                c
            );
        }
        Ok(())
    });
}
