//! Out-of-core training: the streaming counterpart of
//! [`train`](crate::train), consuming the event stream chunk by chunk
//! from an [`EventSource`] while keeping only a bounded rolling window
//! of events resident.
//!
//! The driver replicates the serial trainer's batch loop operation for
//! operation, so a streaming run is **bit-identical** (gradients,
//! memories, post-step parameters) to an in-memory run over the same
//! events with the same chunk geometry (`CascadeConfig::chunk_size =
//! Some(source chunk size)` for the Cascade strategy). The pipelined
//! executor in `cascade-exec` reuses the same driver through the
//! [`ChunkProvider`] trait, so overlap changes wall-clock only, never
//! results.
//!
//! Mid-stream suspend/resume: [`StreamOptions::suspend_after`] stops the
//! run just before a chunk is entered and returns a
//! [`StreamCheckpoint`]; resuming from it reproduces the uninterrupted
//! run bit for bit (model parameters, node memories, optimizer moments,
//! scheduler monitors).

// cascade-lint: allow-file(det-wallclock): stage timings land in TrainReport telemetry only; batch boundaries, chunk handoffs, and checkpoints are derived purely from event data.
use std::time::{Duration, Instant};

use cascade_models::MemoryTgnn;
use cascade_nn::{average_precision, binary_accuracy, clip_grad_norm, Adam, Module};
use cascade_tgraph::{EdgeFeatures, Event, EventSource, SourceError};

use crate::batching::{BatchingStrategy, PrebuiltTable};
use crate::instrument::{SpaceBreakdown, StageTimings};
use crate::trainer::{EvalReport, TrainConfig, TrainReport};

/// Stream geometry the driver needs up front (mirrors the accessors of
/// [`EventSource`], so pipelined executors can capture it before moving
/// the source into a loader thread).
#[derive(Clone, Debug)]
pub struct StreamMeta {
    /// Source name, used as the report's dataset name.
    pub name: String,
    /// Number of nodes the stream covers.
    pub num_nodes: usize,
    /// Total events in the stream.
    pub num_events: usize,
    /// Edge-feature width.
    pub feature_dim: usize,
    /// Nominal chunk size.
    pub chunk_size: usize,
}

impl StreamMeta {
    /// Captures the geometry of `source`.
    pub fn of(source: &dyn EventSource) -> Self {
        StreamMeta {
            name: source.name(),
            num_nodes: source.num_nodes(),
            num_events: source.num_events(),
            feature_dim: source.feature_dim(),
            chunk_size: source.chunk_size(),
        }
    }
}

/// One chunk handed to the streaming driver, optionally with a
/// dependency table prebuilt off the critical path.
#[derive(Debug)]
pub struct ProvidedChunk {
    /// Chunk index in the stream.
    pub index: usize,
    /// Global id of `events[0]`.
    pub base: usize,
    /// The chunk's events.
    pub events: Vec<Event>,
    /// Row-major feature rows for `events`.
    pub features: Vec<f32>,
    /// Table built ahead by a pipeline stage (`None` = driver builds).
    pub prebuilt: Option<PrebuiltTable>,
}

/// What feeds chunks to [`train_streaming_with_provider`]: either a
/// plain [`EventSource`] adapter or `cascade-exec`'s prefetching loader.
pub trait ChunkProvider {
    /// Yields the next chunk of the current pass, `Ok(None)` when the
    /// pass is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates source failures (I/O, corruption).
    fn next(&mut self) -> Result<Option<ProvidedChunk>, SourceError>;

    /// Rewinds to chunk 0 for the next pass.
    ///
    /// # Errors
    ///
    /// Propagates source failures.
    fn reset(&mut self) -> Result<(), SourceError>;
}

struct SourceProvider<'a> {
    source: &'a mut dyn EventSource,
}

impl ChunkProvider for SourceProvider<'_> {
    fn next(&mut self) -> Result<Option<ProvidedChunk>, SourceError> {
        Ok(self.source.next_chunk()?.map(|c| ProvidedChunk {
            index: c.index,
            base: c.base,
            events: c.events,
            features: c.features,
            prebuilt: None,
        }))
    }

    fn reset(&mut self) -> Result<(), SourceError> {
        self.source.reset()
    }
}

/// Suspend/resume controls for a streaming run.
#[derive(Debug, Default)]
pub struct StreamOptions {
    /// Stop just before entering chunk `k` of epoch `e` and return a
    /// checkpoint: `Some((e, k))`.
    pub suspend_after: Option<(usize, usize)>,
    /// Continue a run from a previously returned checkpoint.
    pub resume_from: Option<StreamCheckpoint>,
}

/// How a streaming run ended.
#[derive(Debug)]
pub enum StreamOutcome {
    /// Ran to completion.
    Completed(Box<TrainReport>),
    /// Stopped at the requested suspension point.
    Suspended(Box<StreamCheckpoint>),
}

/// Everything needed to continue a streaming run mid-epoch: taken just
/// before chunk `chunk` of epoch `epoch` is entered, with `start_event`
/// the next unprocessed event.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamCheckpoint {
    /// Epoch the run stopped in.
    pub epoch: usize,
    /// Chunk about to be entered when the run stopped.
    pub chunk: usize,
    /// Global id of the next unprocessed event.
    pub start_event: usize,
    /// Serialized model state ([`MemoryTgnn::export_state`]).
    pub model: Vec<u8>,
    /// Serialized optimizer state ([`Adam::export_state`]).
    pub optimizer: Vec<u8>,
    /// Serialized strategy state
    /// ([`BatchingStrategy::export_state`]).
    pub strategy: Vec<u8>,
    /// Report accumulators carried across the suspension.
    pub progress: CheckpointProgress,
}

/// The report accumulators a checkpoint carries so the resumed run's
/// [`TrainReport`] matches the uninterrupted one.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckpointProgress {
    /// Bit pattern of the suspended epoch's running loss sum.
    pub loss_sum_bits: u64,
    /// Events processed in the suspended epoch.
    pub event_sum: usize,
    /// Batches processed in the suspended epoch.
    pub batch_idx: usize,
    /// Batches processed across all epochs so far.
    pub num_batches: usize,
    /// Largest batch seen so far.
    pub max_batch: usize,
    /// Mean losses of completed epochs.
    pub epoch_losses: Vec<f32>,
    /// Sizes of every batch so far.
    pub batch_sizes: Vec<u32>,
    /// Losses of every batch so far.
    pub batch_losses: Vec<f32>,
}

const CHECKPOINT_MAGIC: [u8; 4] = *b"CSCK";

impl StreamCheckpoint {
    /// Serializes the checkpoint (callers handle file I/O).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&CHECKPOINT_MAGIC);
        buf.push(1u8); // version
        for v in [
            self.epoch as u64,
            self.chunk as u64,
            self.start_event as u64,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for blob in [&self.model, &self.optimizer, &self.strategy] {
            buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            buf.extend_from_slice(blob);
        }
        let p = &self.progress;
        buf.extend_from_slice(&p.loss_sum_bits.to_le_bytes());
        for v in [
            p.event_sum as u64,
            p.batch_idx as u64,
            p.num_batches as u64,
            p.max_batch as u64,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&(p.epoch_losses.len() as u32).to_le_bytes());
        for x in &p.epoch_losses {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        buf.extend_from_slice(&(p.batch_sizes.len() as u32).to_le_bytes());
        for x in &p.batch_sizes {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        buf.extend_from_slice(&(p.batch_losses.len() as u32).to_le_bytes());
        for x in &p.batch_losses {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        buf
    }

    /// Deserializes a checkpoint written by
    /// [`to_bytes`](StreamCheckpoint::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns a description on a bad magic, unsupported version, or
    /// truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = bytes
                .get(*off..*off + n)
                .ok_or("checkpoint truncated".to_string())?;
            *off += n;
            Ok(s)
        };
        let read_u64 = |off: &mut usize| -> Result<u64, String> {
            Ok(u64::from_le_bytes(
                take(off, 8)?.try_into().expect("slice is 8 bytes"),
            ))
        };
        let read_u32 = |off: &mut usize| -> Result<u32, String> {
            Ok(u32::from_le_bytes(
                take(off, 4)?.try_into().expect("slice is 4 bytes"),
            ))
        };
        if take(&mut off, 4)? != CHECKPOINT_MAGIC {
            return Err("not a cascade streaming checkpoint".to_string());
        }
        if *take(&mut off, 1)?.first().expect("slice is 1 byte") != 1 {
            return Err("unsupported checkpoint version".to_string());
        }
        let epoch = read_u64(&mut off)? as usize;
        let chunk = read_u64(&mut off)? as usize;
        let start_event = read_u64(&mut off)? as usize;
        let mut blobs = Vec::with_capacity(3);
        for _ in 0..3 {
            let len = read_u64(&mut off)? as usize;
            blobs.push(take(&mut off, len)?.to_vec());
        }
        let strategy = blobs.pop().expect("three blobs pushed");
        let optimizer = blobs.pop().expect("two blobs remain");
        let model = blobs.pop().expect("one blob remains");
        let loss_sum_bits = read_u64(&mut off)?;
        let event_sum = read_u64(&mut off)? as usize;
        let batch_idx = read_u64(&mut off)? as usize;
        let num_batches = read_u64(&mut off)? as usize;
        let max_batch = read_u64(&mut off)? as usize;
        let n = read_u32(&mut off)? as usize;
        let mut epoch_losses = Vec::with_capacity(n);
        for _ in 0..n {
            epoch_losses.push(f32::from_le_bytes(
                take(&mut off, 4)?.try_into().expect("slice is 4 bytes"),
            ));
        }
        let n = read_u32(&mut off)? as usize;
        let mut batch_sizes = Vec::with_capacity(n);
        for _ in 0..n {
            batch_sizes.push(read_u32(&mut off)?);
        }
        let n = read_u32(&mut off)? as usize;
        let mut batch_losses = Vec::with_capacity(n);
        for _ in 0..n {
            batch_losses.push(f32::from_le_bytes(
                take(&mut off, 4)?.try_into().expect("slice is 4 bytes"),
            ));
        }
        Ok(StreamCheckpoint {
            epoch,
            chunk,
            start_event,
            model,
            optimizer,
            strategy,
            progress: CheckpointProgress {
                loss_sum_bits,
                event_sum,
                batch_idx,
                num_batches,
                max_batch,
                epoch_losses,
                batch_sizes,
                batch_losses,
            },
        })
    }
}

/// The rolling event window: a contiguous slice `[win_base, loaded_end)`
/// of the stream, plus the epoch's accumulated feature rows (features
/// are indexed by global event id, so rows are retained for the whole
/// epoch while events are dropped once consumed).
struct Window {
    buf: Vec<Event>,
    win_base: usize,
    feats: EdgeFeatures,
    chunks_loaded: usize,
    peak_events: usize,
}

impl Window {
    fn new(feature_dim: usize) -> Self {
        Window {
            buf: Vec::new(),
            win_base: 0,
            feats: if feature_dim == 0 {
                EdgeFeatures::none()
            } else {
                EdgeFeatures::new(Vec::new(), feature_dim)
            },
            chunks_loaded: 0,
            peak_events: 0,
        }
    }

    fn loaded_end(&self) -> usize {
        self.win_base + self.buf.len()
    }

    fn clear_for_epoch(&mut self) {
        self.buf.clear();
        self.win_base = 0;
        self.feats.clear_rows();
        self.chunks_loaded = 0;
    }

    /// Appends one chunk from `provider`; returns its prebuilt table.
    fn load_next(
        &mut self,
        provider: &mut dyn ChunkProvider,
    ) -> Result<Option<(usize, PrebuiltTable)>, SourceError> {
        let Some(chunk) = provider.next()? else {
            return Err(SourceError::new(format!(
                "stream ended at event {} before the requested range",
                self.loaded_end()
            )));
        };
        if chunk.base != self.loaded_end() || chunk.index != self.chunks_loaded {
            return Err(SourceError::at_chunk(
                chunk.index,
                format!(
                    "out-of-order chunk: got base {}, expected {}",
                    chunk.base,
                    self.loaded_end()
                ),
            ));
        }
        self.chunks_loaded += 1;
        self.buf.extend_from_slice(&chunk.events);
        self.feats.push_rows(&chunk.features);
        self.peak_events = self.peak_events.max(self.buf.len());
        Ok(chunk.prebuilt.map(|p| (chunk.index, p)))
    }

    /// Drops events below `keep_from` (already consumed and not needed
    /// for any future chunk entry).
    fn drop_below(&mut self, keep_from: usize) {
        if keep_from > self.win_base {
            self.buf.drain(0..keep_from - self.win_base);
            self.win_base = keep_from;
        }
    }

    /// The slice of global event range `[from, to)`.
    fn slice(&self, from: usize, to: usize) -> &[Event] {
        &self.buf[from - self.win_base..to - self.win_base]
    }
}

/// Trains `model` from a chunked event source without materializing the
/// stream, then evaluates on the validation split. Results are
/// bit-identical to [`train`](crate::train) over the imported dataset
/// when the strategy uses the same chunk geometry.
///
/// # Errors
///
/// Returns a [`SourceError`] when the source fails (I/O, corruption),
/// ends early, or the strategy does not support streaming.
pub fn train_streaming(
    model: &mut MemoryTgnn,
    source: &mut dyn EventSource,
    strategy: &mut dyn BatchingStrategy,
    cfg: &TrainConfig,
) -> Result<TrainReport, SourceError> {
    match train_streaming_with_options(model, source, strategy, cfg, StreamOptions::default())? {
        StreamOutcome::Completed(report) => Ok(*report),
        StreamOutcome::Suspended(_) => {
            // cascade-lint: allow(panic-macro): default StreamOptions carry no suspension point, so the driver can only complete
            unreachable!("no suspension point was requested")
        }
    }
}

/// [`train_streaming`] with suspend/resume controls.
///
/// # Errors
///
/// As [`train_streaming`], plus a [`SourceError`] when a checkpoint does
/// not match the model/strategy shapes.
pub fn train_streaming_with_options(
    model: &mut MemoryTgnn,
    source: &mut dyn EventSource,
    strategy: &mut dyn BatchingStrategy,
    cfg: &TrainConfig,
    opts: StreamOptions,
) -> Result<StreamOutcome, SourceError> {
    let meta = StreamMeta::of(source);
    let mut provider = SourceProvider { source };
    train_streaming_with_provider(model, &meta, &mut provider, strategy, cfg, opts)
}

/// The shared streaming driver: everything between a chunk provider and
/// a finished [`TrainReport`]. `cascade-exec`'s pipelined streaming path
/// calls this with its prefetching loader, so serial and pipelined
/// streaming are bit-identical by construction.
///
/// # Errors
///
/// As [`train_streaming`].
///
/// # Panics
///
/// Panics if `cfg.epochs == 0` or the stream's training split is empty.
#[allow(clippy::too_many_lines)]
pub fn train_streaming_with_provider(
    model: &mut MemoryTgnn,
    meta: &StreamMeta,
    provider: &mut dyn ChunkProvider,
    strategy: &mut dyn BatchingStrategy,
    cfg: &TrainConfig,
    opts: StreamOptions,
) -> Result<StreamOutcome, SourceError> {
    assert!(cfg.epochs > 0, "need at least one epoch");
    let n = meta.num_events;
    let n_train = n * 70 / 100;
    let val_end = n * 85 / 100;
    assert!(n_train > 0, "empty training range");
    let chunk_size = meta.chunk_size.max(1);
    let train_chunks = n_train.div_ceil(chunk_size);
    let chunk_start = |k: usize| k * chunk_size;

    if !strategy.prepare_streaming(n_train, meta.num_nodes, chunk_size) {
        return Err(SourceError::new(format!(
            "strategy {} does not support streaming",
            strategy.name()
        )));
    }
    model.set_compute_threads(cfg.compute_threads.max(1));

    let t_total = Instant::now();
    let params = model.parameters();
    let mut opt = Adam::new(params.clone(), cfg.lr);

    let mut model_time = Duration::ZERO;
    let mut measured_lookup = Duration::ZERO;
    let mut stages = StageTimings::default();
    let mut num_batches = 0usize;
    let mut max_batch = 0usize;
    let mut epoch_losses: Vec<f32> = Vec::with_capacity(cfg.epochs);
    let mut batch_sizes: Vec<u32> = Vec::new();
    let mut batch_losses: Vec<f32> = Vec::new();

    let mut window = Window::new(meta.feature_dim);
    let mut prebuilt: Vec<(usize, PrebuiltTable)> = Vec::new();

    // Resume bookkeeping: where to start, and the suspended epoch's
    // partial accumulators.
    let mut start_epoch = 0usize;
    let mut resume_setup: Option<(usize, usize, usize, f64, usize)> = None;
    if let Some(ck) = opts.resume_from {
        strategy
            .import_state(&ck.strategy)
            .map_err(SourceError::new)?;
        model.import_state(&ck.model).map_err(SourceError::new)?;
        opt.import_state(&ck.optimizer).map_err(SourceError::new)?;
        let p = ck.progress;
        num_batches = p.num_batches;
        max_batch = p.max_batch;
        epoch_losses = p.epoch_losses;
        batch_sizes = p.batch_sizes;
        batch_losses = p.batch_losses;
        start_epoch = ck.epoch;
        resume_setup = Some((
            ck.chunk,
            ck.start_event,
            p.batch_idx,
            f64::from_bits(p.loss_sum_bits),
            p.event_sum,
        ));
    }

    let mut first_pass = true;
    for epoch in start_epoch..cfg.epochs {
        let mut start;
        let mut next_enter;
        let mut batch_idx;
        let mut loss_sum;
        let mut event_sum;
        if let Some((sk, se, bi, ls, es)) = resume_setup.take() {
            // Resumed mid-epoch: skip over the already-processed chunks,
            // feeding features and replaying adjacency, without touching
            // the restored model/strategy state.
            while window.chunks_loaded < sk {
                let loaded_from = window.loaded_end();
                let _ = window.load_next(provider)?;
                let replay_to = window.loaded_end().min(se);
                if replay_to > loaded_from {
                    model.replay_adjacency(window.slice(loaded_from, replay_to), loaded_from);
                }
                window.drop_below(window.loaded_end().min(chunk_start(sk)));
            }
            // A batch may have straddled into chunk `sk` before the
            // suspension: load it and replay its processed prefix.
            if se > chunk_start(sk) {
                while window.loaded_end() < se {
                    let _ = window.load_next(provider)?;
                }
                model.replay_adjacency(window.slice(chunk_start(sk), se), chunk_start(sk));
            }
            start = se;
            next_enter = sk;
            batch_idx = bi;
            loss_sum = ls;
            event_sum = es;
        } else {
            if !first_pass {
                provider.reset()?;
            }
            window.clear_for_epoch();
            prebuilt.clear();
            model.reset_state();
            strategy.reset_epoch();
            start = 0;
            next_enter = 0;
            batch_idx = 0;
            loss_sum = 0.0f64;
            event_sum = 0usize;
        }
        first_pass = false;

        while start < n_train {
            if let Some((se, sk)) = opts.suspend_after {
                if epoch == se && next_enter == sk && start >= chunk_start(sk) {
                    return Ok(StreamOutcome::Suspended(Box::new(StreamCheckpoint {
                        epoch,
                        chunk: sk,
                        start_event: start,
                        model: model.export_state(),
                        optimizer: opt.export_state(),
                        strategy: strategy.export_state(),
                        progress: CheckpointProgress {
                            loss_sum_bits: loss_sum.to_bits(),
                            event_sum,
                            batch_idx,
                            num_batches,
                            max_batch,
                            epoch_losses: epoch_losses.clone(),
                            batch_sizes: batch_sizes.clone(),
                            batch_losses: batch_losses.clone(),
                        },
                    })));
                }
            }

            // Announce every chunk whose events the next batch may need.
            while next_enter < train_chunks && chunk_start(next_enter) <= start {
                let cs = chunk_start(next_enter);
                let ce = (cs + chunk_size).min(n);
                while window.chunks_loaded <= next_enter {
                    if let Some(pb) = window.load_next(provider)? {
                        prebuilt.push(pb);
                    }
                }
                let table = prebuilt
                    .iter()
                    .position(|(idx, _)| *idx == next_enter)
                    .map(|at| prebuilt.swap_remove(at).1);
                // The last training chunk is entered truncated at the
                // split boundary; the window keeps the full chunk for
                // the validation pass.
                strategy.enter_chunk(next_enter, cs, window.slice(cs, ce.min(n_train)), table);
                next_enter += 1;
            }

            let t0 = Instant::now();
            let end = strategy.next_batch_end(start, n_train);
            let scan_elapsed = t0.elapsed();
            measured_lookup += scan_elapsed;
            stages.scan.record(scan_elapsed);
            debug_assert!(end > start && end <= n_train);

            // A fixed-size batch can straddle into a chunk that is not
            // entered yet; its events must still be resident.
            let t_load = Instant::now();
            while window.loaded_end() < end {
                if let Some(pb) = window.load_next(provider)? {
                    prebuilt.push(pb);
                }
            }
            stages.scan.stall += t_load.elapsed();

            let t1 = Instant::now();
            if cfg.scale_lr_with_batch {
                let scale = ((end - start) as f32 / cfg.eval_batch_size as f32).sqrt();
                opt.set_lr(cfg.lr * scale);
            }
            let fwd = model.forward_batch(window.slice(start, end), start, &window.feats);
            let loss = fwd.loss.item();
            fwd.loss.backward();
            if let Some(c) = cfg.clip_norm {
                clip_grad_norm(&params, c);
            }
            opt.step();
            let compute_elapsed = t1.elapsed();
            stages.compute.record(compute_elapsed);
            stages.record_shards(&fwd.shard_busy, cfg.compute_threads.max(1));

            let t2 = Instant::now();
            let deltas =
                model.apply_batch(window.slice(start, end), start, &window.feats, fwd.pending);
            let update_elapsed = t2.elapsed();
            stages.update.record(update_elapsed);
            model_time += compute_elapsed + update_elapsed;

            // Batch boundary: trim the arena to its steady-state set.
            cascade_tensor::arena::reset();

            strategy.after_batch(batch_idx, loss);
            strategy.observe_updates(&deltas);

            let size = end - start;
            batch_sizes.push(size as u32);
            batch_losses.push(loss);
            loss_sum += loss as f64 * size as f64;
            event_sum += size;
            max_batch = max_batch.max(size);
            num_batches += 1;
            batch_idx += 1;
            start = end;

            // Consumed events are dropped; events of a chunk that was
            // straddled into but not yet entered are retained for its
            // coming `enter_chunk`.
            let next_chunk_at = if next_enter < train_chunks {
                chunk_start(next_enter)
            } else {
                start
            };
            window.drop_below(start.min(next_chunk_at));
        }
        epoch_losses.push((loss_sum / event_sum.max(1) as f64) as f32);
    }

    let total_time = t_total.elapsed();

    // Same latency model as the in-memory trainer (see `train`): charge
    // the simulated per-batch accelerator overhead, credit back
    // background table builds bounded by the non-stall portion.
    let events_processed = (n_train * cfg.epochs) as f64;
    let per_event = model_time.as_secs_f64() / events_processed.max(1.0);
    let overhead =
        Duration::from_secs_f64(per_event * cfg.sim_batch_overhead_events * num_batches as f64);
    let background = strategy.timers().background_build;
    let stall = strategy.timers().build_table;
    let overlap_credit = background.saturating_sub(stall).min(total_time / 2);
    let modeled_time = (total_time + overhead).saturating_sub(overlap_credit);

    // Validation: continue the rolling window past the training split,
    // replicating `evaluate_range` at the fixed evaluation batch size.
    let val = {
        if n_train >= val_end {
            EvalReport {
                loss: f32::NAN,
                average_precision: f32::NAN,
                accuracy: f32::NAN,
            }
        } else {
            let mut start = n_train;
            let mut loss_sum = 0.0f64;
            let mut count = 0usize;
            let mut logits = Vec::new();
            let mut labels = Vec::new();
            while start < val_end {
                let end = (start + cfg.eval_batch_size).min(val_end);
                while window.loaded_end() < end {
                    let _ = window.load_next(provider)?;
                }
                let out = model.process_batch(window.slice(start, end), start, &window.feats);
                loss_sum += out.loss.item() as f64 * (end - start) as f64;
                count += end - start;
                labels.extend(std::iter::repeat_n(1.0, out.pos_logits.len()));
                logits.extend(out.pos_logits);
                labels.extend(std::iter::repeat_n(0.0, out.neg_logits.len()));
                logits.extend(out.neg_logits);
                start = end;
                window.drop_below(start);
            }
            EvalReport {
                loss: (loss_sum / count as f64) as f32,
                average_precision: average_precision(&logits, &labels),
                accuracy: binary_accuracy(&logits, &labels),
            }
        }
    };

    let timers = strategy.timers();
    let build_time = timers.build_table;
    let lookup_time = if timers.lookup > Duration::ZERO {
        timers.lookup
    } else {
        measured_lookup
    };

    let strat_space = strategy.space();
    let space = SpaceBreakdown {
        dependency_table: strat_space.dependency_bytes,
        stable_flags: strat_space.flag_bytes,
        // Out-of-core: the graph term is the peak resident window, not
        // the full stream (the headline saving of streaming training).
        graph: window.peak_events * std::mem::size_of::<Event>(),
        edge_features: window.feats.size_bytes(),
        model: model.parameter_count() * std::mem::size_of::<f32>(),
        mailbox: model.mailbox_size_bytes(),
        memory: model.memory_size_bytes(),
        plane_shards: model.plane().num_shards(),
    };

    Ok(StreamOutcome::Completed(Box::new(TrainReport {
        strategy: strategy.name(),
        model: model.name().to_string(),
        dataset: meta.name.clone(),
        epochs: cfg.epochs,
        total_time,
        modeled_time,
        build_time,
        lookup_time,
        model_time,
        num_batches,
        avg_batch_size: (n_train * cfg.epochs) as f64 / num_batches.max(1) as f64,
        max_batch_size: max_batch,
        final_train_loss: *epoch_losses.last().unwrap_or(&f32::NAN),
        val_loss: val.loss,
        val_ap: val.average_precision,
        val_accuracy: val.accuracy,
        epoch_losses,
        batch_sizes,
        batch_losses,
        space,
        stages,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_roundtrips_through_bytes() {
        let ck = StreamCheckpoint {
            epoch: 2,
            chunk: 7,
            start_event: 901,
            model: vec![1, 2, 3],
            optimizer: vec![4, 5],
            strategy: vec![],
            progress: CheckpointProgress {
                loss_sum_bits: 0.625f64.to_bits(),
                event_sum: 901,
                batch_idx: 14,
                num_batches: 200,
                max_batch: 99,
                epoch_losses: vec![0.5, 0.25],
                batch_sizes: vec![10, 20, 30],
                batch_losses: vec![0.9, 0.8, 0.7],
            },
        };
        let bytes = ck.to_bytes();
        assert_eq!(
            StreamCheckpoint::from_bytes(&bytes).expect("roundtrips"),
            ck
        );
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        assert!(StreamCheckpoint::from_bytes(b"not a checkpoint").is_err());
        assert!(StreamCheckpoint::from_bytes(&CHECKPOINT_MAGIC).is_err());
        let mut bytes = StreamCheckpoint {
            epoch: 0,
            chunk: 0,
            start_event: 0,
            model: vec![],
            optimizer: vec![],
            strategy: vec![],
            progress: CheckpointProgress::default(),
        }
        .to_bytes();
        bytes[4] = 9; // unsupported version
        assert!(StreamCheckpoint::from_bytes(&bytes).is_err());
    }
}
