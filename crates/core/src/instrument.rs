//! Space accounting (Figure 13(c) / Figure 14), the hardware-utilization
//! proxy behind the §3.1 motivation numbers, and the per-stage pipeline
//! telemetry shared by the serial trainer and the `cascade-exec`
//! pipelined executor.

use std::fmt;
use std::time::Duration;

/// Wall-clock accounting of one pipeline stage.
///
/// `busy` is time spent doing the stage's own work, `stall` is time spent
/// blocked on a neighboring stage (waiting on a queue), and `items` is
/// the number of batches the stage processed. In the serial trainer the
/// stalls are zero by construction; in the pipelined executor
/// `stall < busy` on the driver stages is the signature of successful
/// overlap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTiming {
    /// Time spent in the stage's own work.
    pub busy: Duration,
    /// Time spent blocked on an adjacent stage's queue.
    pub stall: Duration,
    /// Batches processed by the stage.
    pub items: usize,
}

impl StageTiming {
    /// Adds one processed item's busy time.
    pub fn record(&mut self, busy: Duration) {
        self.busy += busy;
        self.items += 1;
    }

    /// Busy plus stall time — the stage's total wall-clock footprint.
    pub fn wall(&self) -> Duration {
        self.busy + self.stall
    }

    /// Items per second of busy time (0 when nothing ran).
    pub fn throughput(&self) -> f64 {
        if self.busy.is_zero() {
            return 0.0;
        }
        self.items as f64 / self.busy.as_secs_f64()
    }
}

/// Telemetry of the three-stage batch pipeline (§2.2 / Figure 3):
/// boundary **scan**, model **compute**, and memory **update**.
///
/// Produced by both the serial [`train`](crate::train) loop (stalls are
/// zero) and `cascade-exec`'s `train_pipelined` (scan runs on a scout
/// thread, so its busy time overlaps the driver stages).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Stage A: batch-boundary scan (scheduler lookup + feedback ingest).
    pub scan: StageTiming,
    /// Stage B: embedding, loss, backward, optimizer step.
    pub compute: StageTiming,
    /// Stage C: memory write-back, message generation, adjacency.
    pub update: StageTiming,
    /// Per-shard forward telemetry of stage B's shard-parallel batch
    /// compute: entry `j` accumulates shard `j`'s forward busy time across
    /// all batches, and its `stall` is the straggler gap to the batch's
    /// slowest shard when more than one worker thread ran.
    ///
    /// A sub-division of `compute.busy`, **not** an extra pipeline stage:
    /// excluded from [`total_busy`](Self::total_busy) /
    /// [`total_stall`](Self::total_stall) so serial invariants (zero total
    /// stall, `compute.busy + update.busy == model_time`) are unchanged.
    pub shard_compute: Vec<StageTiming>,
}

impl StageTimings {
    /// Sum of all stages' busy time.
    pub fn total_busy(&self) -> Duration {
        self.scan.busy + self.compute.busy + self.update.busy
    }

    /// Sum of all stages' stall time.
    pub fn total_stall(&self) -> Duration {
        self.scan.stall + self.compute.stall + self.update.stall
    }

    /// Stall time of the driver stages (compute + update) — the time the
    /// critical path actually waited on the pipeline. The scan stage's
    /// stall is a helper thread idling and does not delay training.
    pub fn driver_stall(&self) -> Duration {
        self.compute.stall + self.update.stall
    }

    /// Folds one batch's per-shard forward busy times into
    /// `shard_compute`. With `threads > 1` each shard is also charged the
    /// straggler gap to the batch's slowest shard as stall; a serial run
    /// has no straggler, so its gap is definitionally zero.
    pub fn record_shards(&mut self, busy: &[Duration], threads: usize) {
        if busy.is_empty() {
            return;
        }
        if self.shard_compute.len() < busy.len() {
            self.shard_compute
                .resize(busy.len(), StageTiming::default());
        }
        let slowest = busy.iter().copied().max().unwrap_or_default();
        for (shard, &b) in self.shard_compute.iter_mut().zip(busy.iter()) {
            shard.record(b);
            if threads > 1 {
                shard.stall += slowest - b;
            }
        }
    }

    /// Total forward busy time across compute shards — the portion of
    /// `compute.busy` that was eligible for worker-thread overlap.
    pub fn shard_busy_total(&self) -> Duration {
        self.shard_compute.iter().map(|s| s.busy).sum()
    }

    /// Total straggler gap across compute shards (zero for serial runs).
    pub fn shard_stall_total(&self) -> Duration {
        self.shard_compute.iter().map(|s| s.stall).sum()
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, s) in [
            ("scan", &self.scan),
            ("compute", &self.compute),
            ("update", &self.update),
        ] {
            write!(
                f,
                "{} busy {:?} stall {:?} ({} items) | ",
                label, s.busy, s.stall, s.items
            )?;
        }
        if !self.shard_compute.is_empty() {
            write!(
                f,
                "shards x{} busy {:?} straggler {:?} | ",
                self.shard_compute.len(),
                self.shard_busy_total(),
                self.shard_stall_total()
            )?;
        }
        write!(f, "driver stall {:?}", self.driver_stall())
    }
}

/// Bytes held by every component of a training run — the stacked bars of
/// Figure 13(c).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceBreakdown {
    /// Dependency table ("DT").
    pub dependency_table: usize,
    /// Node stable flags ("SF").
    pub stable_flags: usize,
    /// Event stream ("Graph").
    pub graph: usize,
    /// Edge features.
    pub edge_features: usize,
    /// Model parameters.
    pub model: usize,
    /// Pending mailbox messages.
    pub mailbox: usize,
    /// Node memory matrix.
    pub memory: usize,
    /// Shards the memory plane is partitioned into (1 = monolithic).
    /// A count, not a byte term — excluded from [`total`](Self::total).
    pub plane_shards: usize,
}

impl SpaceBreakdown {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.dependency_table
            + self.stable_flags
            + self.graph
            + self.edge_features
            + self.model
            + self.mailbox
            + self.memory
    }

    /// `(label, fraction)` pairs in the Figure 13(c) ordering.
    pub fn fractions(&self) -> Vec<(&'static str, f64)> {
        let total = self.total().max(1) as f64;
        vec![
            ("DT", self.dependency_table as f64 / total),
            ("SF", self.stable_flags as f64 / total),
            ("Graph", self.graph as f64 / total),
            ("EdgeFeature", self.edge_features as f64 / total),
            ("Model", self.model as f64 / total),
            ("Mailbox", self.mailbox as f64 / total),
            ("Memory", self.memory as f64 / total),
        ]
    }
}

impl fmt::Display for SpaceBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, frac) in self.fractions() {
            write!(f, "{} {:.1}% | ", label, frac * 100.0)?;
        }
        write!(f, "total {} B", self.total())
    }
}

/// Analytic GPU-utilization proxy calibrated against the §3.1
/// measurements: training TGN on WIKI at batch size 900 showed 17.2% SM /
/// 15.2% memory utilization; 6000 showed 39.8% / 34.2%.
///
/// The model is a saturating curve `u(B) = u_max · B / (B + C)` with
/// `C = 2000` events; it exists so the motivation experiment can report
/// the *shape* of the utilization argument without GPU counters.
///
/// # Examples
///
/// ```
/// use cascade_core::UtilizationProxy;
///
/// let u = UtilizationProxy::default();
/// assert!((u.sm_utilization(900.0) - 0.172).abs() < 0.02);
/// assert!((u.sm_utilization(6000.0) - 0.398).abs() < 0.04);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct UtilizationProxy {
    /// Asymptotic SM utilization.
    pub sm_max: f64,
    /// Asymptotic memory-bandwidth utilization.
    pub mem_max: f64,
    /// Half-saturation batch size.
    pub half_batch: f64,
}

impl Default for UtilizationProxy {
    fn default() -> Self {
        UtilizationProxy {
            sm_max: 0.55,
            mem_max: 0.47,
            half_batch: 2000.0,
        }
    }
}

impl UtilizationProxy {
    /// Streaming-multiprocessor utilization at the given batch size.
    pub fn sm_utilization(&self, batch: f64) -> f64 {
        self.sm_max * batch / (batch + self.half_batch)
    }

    /// Memory utilization at the given batch size.
    pub fn mem_utilization(&self, batch: f64) -> f64 {
        self.mem_max * batch / (batch + self.half_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let s = SpaceBreakdown {
            dependency_table: 10,
            stable_flags: 5,
            graph: 30,
            edge_features: 40,
            model: 10,
            mailbox: 3,
            memory: 2,
            plane_shards: 4,
        };
        let sum: f64 = s.fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(s.total(), 100, "shard count is telemetry, not bytes");
    }

    #[test]
    fn empty_breakdown_is_safe() {
        let s = SpaceBreakdown::default();
        assert_eq!(s.total(), 0);
        let sum: f64 = s.fractions().iter().map(|(_, f)| f).sum();
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn stage_timing_accumulates_and_reports() {
        let mut t = StageTiming::default();
        t.record(Duration::from_millis(10));
        t.record(Duration::from_millis(30));
        t.stall += Duration::from_millis(5);
        assert_eq!(t.items, 2);
        assert_eq!(t.busy, Duration::from_millis(40));
        assert_eq!(t.wall(), Duration::from_millis(45));
        assert!((t.throughput() - 50.0).abs() < 1e-6);
        assert_eq!(StageTiming::default().throughput(), 0.0);
    }

    #[test]
    fn stage_timings_totals() {
        let mut s = StageTimings::default();
        s.scan.record(Duration::from_millis(1));
        s.scan.stall += Duration::from_millis(100);
        s.compute.record(Duration::from_millis(20));
        s.compute.stall += Duration::from_millis(2);
        s.update.record(Duration::from_millis(3));
        assert_eq!(s.total_busy(), Duration::from_millis(24));
        assert_eq!(s.total_stall(), Duration::from_millis(102));
        assert_eq!(s.driver_stall(), Duration::from_millis(2));
        let text = s.to_string();
        assert!(
            text.contains("scan") && text.contains("driver stall"),
            "{}",
            text
        );
    }

    #[test]
    fn record_shards_tracks_busy_and_straggler_gap() {
        let mut s = StageTimings::default();
        let busy = [Duration::from_millis(4), Duration::from_millis(10)];
        // Serial evaluation: no straggler gap, busy still recorded.
        s.record_shards(&busy, 1);
        assert_eq!(s.shard_compute.len(), 2);
        assert_eq!(s.shard_busy_total(), Duration::from_millis(14));
        assert_eq!(s.shard_stall_total(), Duration::ZERO);
        // Parallel evaluation: shard 0 waits 6 ms on the slowest shard.
        s.record_shards(&busy, 2);
        assert_eq!(s.shard_busy_total(), Duration::from_millis(28));
        assert_eq!(s.shard_stall_total(), Duration::from_millis(6));
        assert_eq!(s.shard_compute[0].items, 2);
        // Shard telemetry never leaks into the pipeline totals.
        assert_eq!(s.total_busy(), Duration::ZERO);
        assert_eq!(s.total_stall(), Duration::ZERO);
        assert!(s.to_string().contains("shards x2"), "{}", s);
    }

    #[test]
    fn record_shards_ignores_unsharded_batches() {
        let mut s = StageTimings::default();
        s.record_shards(&[], 4);
        assert!(s.shard_compute.is_empty());
    }

    #[test]
    fn utilization_is_monotone_and_bounded() {
        let u = UtilizationProxy::default();
        let mut last = 0.0;
        for b in [100.0, 900.0, 3000.0, 6000.0, 100000.0] {
            let v = u.sm_utilization(b);
            assert!(v > last);
            assert!(v < u.sm_max);
            last = v;
        }
    }

    #[test]
    fn calibration_matches_section31() {
        let u = UtilizationProxy::default();
        assert!((u.sm_utilization(900.0) - 0.172).abs() < 0.02);
        assert!((u.mem_utilization(900.0) - 0.152).abs() < 0.02);
        assert!((u.sm_utilization(6000.0) - 0.398).abs() < 0.04);
        assert!((u.mem_utilization(6000.0) - 0.342).abs() < 0.02);
    }
}
