//! The [`BatchingStrategy`] abstraction every scheduler (Cascade and the
//! baselines) implements, plus the fixed-size strategy used as the
//! universal fallback.

use std::time::Duration;

use cascade_models::MemoryDelta;
use cascade_tgraph::{Event, EventId};

/// Wall-clock spent inside a strategy, split the way Figures 13(b) and
/// 14(c) report it. Strategies with no auxiliary structures report zeros
/// and the trainer falls back to its own coarse measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct StrategyTimers {
    /// Dependency-structure construction (including pipeline stalls
    /// waiting for a chunk table).
    pub build_table: Duration,
    /// Batch-boundary lookup and pointer updates.
    pub lookup: Duration,
    /// Build work performed by a pipelined background builder while
    /// training proceeded (off the critical path in the paper's
    /// CPU-builds-while-GPU-trains deployment; on a single test core it
    /// contends with training, so the trainer credits it back in the
    /// modeled latency).
    pub background_build: Duration,
}

/// Space consumed by a strategy's auxiliary structures (the "DT" and "SF"
/// bars of Figure 13(c)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StrategySpace {
    /// Dependency-table (or dependency-graph) bytes.
    pub dependency_bytes: usize,
    /// Stable-flag bytes.
    pub flag_bytes: usize,
}

/// Decides where each training batch ends.
///
/// The [`train`](crate::train) loop drives one strategy per run: it calls
/// [`prepare`](BatchingStrategy::prepare) once before training,
/// [`reset_epoch`](BatchingStrategy::reset_epoch) at each epoch start,
/// [`next_batch_end`](BatchingStrategy::next_batch_end) to segment the
/// stream, and feeds back losses and memory transitions.
pub trait BatchingStrategy {
    /// Human-readable strategy name (used in reports).
    fn name(&self) -> String;

    /// One-time preprocessing over the training stream (dependency-table
    /// construction, endurance profiling, …). Called before epoch 0.
    fn prepare(&mut self, _events: &[Event], _num_nodes: usize) {}

    /// Resets per-epoch state (event pointers, stable flags, convergence
    /// monitors).
    fn reset_epoch(&mut self) {}

    /// Returns the exclusive end of the batch starting at `start`; must
    /// satisfy `start < end <= limit`.
    fn next_batch_end(&mut self, start: EventId, limit: EventId) -> EventId;

    /// Observes the training loss of the batch just processed.
    fn after_batch(&mut self, _batch_idx: usize, _train_loss: f32) {}

    /// Observes the node-memory transitions the batch applied.
    fn observe_updates(&mut self, _deltas: &[MemoryDelta]) {}

    /// Auxiliary-structure space accounting.
    fn space(&self) -> StrategySpace {
        StrategySpace::default()
    }

    /// Fine-grained phase timing, when the strategy tracks it.
    fn timers(&self) -> StrategyTimers {
        StrategyTimers::default()
    }
}

/// Fixed-size batching: the discipline of TGL and every conventional
/// TGNN trainer (§2.3). Also reused with a larger size as the paper's
/// "TGL-LB" comparison point (Figure 12(b)).
///
/// # Examples
///
/// ```
/// use cascade_core::{BatchingStrategy, FixedBatching};
///
/// let mut s = FixedBatching::new(900);
/// assert_eq!(s.next_batch_end(0, 10_000), 900);
/// assert_eq!(s.next_batch_end(9_500, 10_000), 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct FixedBatching {
    batch_size: usize,
    label: String,
}

impl FixedBatching {
    /// Creates a fixed-size strategy.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        FixedBatching {
            batch_size,
            label: format!("TGL(bs={})", batch_size),
        }
    }

    /// Overrides the report label (e.g. `TGL-LB`).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

impl BatchingStrategy for FixedBatching {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn next_batch_end(&mut self, start: EventId, limit: EventId) -> EventId {
        assert!(start < limit, "next_batch_end on empty range");
        (start + self.batch_size).min(limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_partitions_stream() {
        let mut s = FixedBatching::new(3);
        let mut start = 0;
        let mut sizes = Vec::new();
        while start < 10 {
            let end = s.next_batch_end(start, 10);
            sizes.push(end - start);
            start = end;
        }
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn label_override() {
        let s = FixedBatching::new(4200).with_label("TGL-LB");
        assert_eq!(s.name(), "TGL-LB");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero() {
        let _ = FixedBatching::new(0);
    }

    #[test]
    fn default_space_is_zero() {
        let s = FixedBatching::new(10);
        assert_eq!(s.space(), StrategySpace::default());
    }
}
