//! The [`BatchingStrategy`] abstraction every scheduler (Cascade and the
//! baselines) implements, plus the fixed-size strategy used as the
//! universal fallback.

use std::time::Duration;

use cascade_models::MemoryDelta;
use cascade_tgraph::{Event, EventId};

use crate::dependency::DependencyTable;

/// Wall-clock spent inside a strategy, split the way Figures 13(b) and
/// 14(c) report it. Strategies with no auxiliary structures report zeros
/// and the trainer falls back to its own coarse measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct StrategyTimers {
    /// Dependency-structure construction (including pipeline stalls
    /// waiting for a chunk table).
    pub build_table: Duration,
    /// Batch-boundary lookup and pointer updates.
    pub lookup: Duration,
    /// Build work performed by a pipelined background builder while
    /// training proceeded (off the critical path in the paper's
    /// CPU-builds-while-GPU-trains deployment; on a single test core it
    /// contends with training, so the trainer credits it back in the
    /// modeled latency).
    pub background_build: Duration,
}

/// Space consumed by a strategy's auxiliary structures (the "DT" and "SF"
/// bars of Figure 13(c)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StrategySpace {
    /// Dependency-table (or dependency-graph) bytes.
    pub dependency_bytes: usize,
    /// Stable-flag bytes.
    pub flag_bytes: usize,
}

/// How a streaming strategy wants per-chunk dependency tables built —
/// enough for a pipeline stage to construct chunk `k+1`'s table off the
/// critical path while chunk `k` trains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableSpec {
    /// Node-count dimension every table is built against.
    pub num_nodes: usize,
    /// Build first-incidence-only tables (the truncated-backprop
    /// variant) instead of full per-node event lists. Only honored for
    /// the chunk at base 0; later chunks always need the range build.
    pub incident_only: bool,
}

impl TableSpec {
    /// Builds the dependency table for a chunk of `events` starting at
    /// global id `base`, exactly as the owning strategy would.
    pub fn build(&self, base: EventId, events: &[Event]) -> DependencyTable {
        if self.incident_only && base == 0 {
            DependencyTable::build_incident_only(events, self.num_nodes)
        } else {
            DependencyTable::build_range(events, self.num_nodes, base)
        }
    }
}

/// A dependency table built ahead of time by a pipeline stage, with the
/// wall-clock the build cost (credited to the strategy's
/// `background_build` timer rather than the critical path).
#[derive(Clone, Debug)]
pub struct PrebuiltTable {
    /// The finished table.
    pub table: DependencyTable,
    /// Wall-clock the background build took.
    pub work: Duration,
}

/// Decides where each training batch ends.
///
/// The [`train`](crate::train) loop drives one strategy per run: it calls
/// [`prepare`](BatchingStrategy::prepare) once before training,
/// [`reset_epoch`](BatchingStrategy::reset_epoch) at each epoch start,
/// [`next_batch_end`](BatchingStrategy::next_batch_end) to segment the
/// stream, and feeds back losses and memory transitions.
pub trait BatchingStrategy {
    /// Human-readable strategy name (used in reports).
    fn name(&self) -> String;

    /// One-time preprocessing over the training stream (dependency-table
    /// construction, endurance profiling, …). Called before epoch 0.
    fn prepare(&mut self, _events: &[Event], _num_nodes: usize) {}

    /// Resets per-epoch state (event pointers, stable flags, convergence
    /// monitors).
    fn reset_epoch(&mut self) {}

    /// Returns the exclusive end of the batch starting at `start`; must
    /// satisfy `start < end <= limit`.
    fn next_batch_end(&mut self, start: EventId, limit: EventId) -> EventId;

    /// Observes the training loss of the batch just processed.
    fn after_batch(&mut self, _batch_idx: usize, _train_loss: f32) {}

    /// Observes the node-memory transitions the batch applied.
    fn observe_updates(&mut self, _deltas: &[MemoryDelta]) {}

    /// Auxiliary-structure space accounting.
    fn space(&self) -> StrategySpace {
        StrategySpace::default()
    }

    /// Fine-grained phase timing, when the strategy tracks it.
    fn timers(&self) -> StrategyTimers {
        StrategyTimers::default()
    }

    // ---- streaming protocol (out-of-core training) ------------------

    /// Switches the strategy into streaming mode: instead of a one-shot
    /// [`prepare`](BatchingStrategy::prepare) over the full training
    /// slice, the driver announces chunks one at a time via
    /// [`enter_chunk`](BatchingStrategy::enter_chunk). Returns `false`
    /// when the strategy cannot stream (the driver then refuses the run
    /// with a typed error rather than silently diverging). Must be
    /// idempotent: pipelined executors call it before spawning their
    /// loader to learn the [`table_spec`](BatchingStrategy::table_spec).
    fn prepare_streaming(
        &mut self,
        _total_train: usize,
        _num_nodes: usize,
        _chunk_size: usize,
    ) -> bool {
        false
    }

    /// How this strategy's per-chunk dependency tables are built, so a
    /// pipeline stage can prebuild them. `None` when the strategy needs
    /// no tables.
    fn table_spec(&self) -> Option<TableSpec> {
        None
    }

    /// Announces that the stream has reached chunk `idx`, whose events
    /// start at global id `base`. `prebuilt` carries a table constructed
    /// off the critical path when a pipeline stage ran ahead; otherwise
    /// the strategy builds its own.
    fn enter_chunk(
        &mut self,
        _idx: usize,
        _base: EventId,
        _events: &[Event],
        _prebuilt: Option<PrebuiltTable>,
    ) {
    }

    /// Serializes the strategy's adaptive state (convergence monitors,
    /// stable flags, batch counters) for a mid-stream checkpoint.
    fn export_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by
    /// [`export_state`](BatchingStrategy::export_state).
    ///
    /// # Errors
    ///
    /// Returns a description when the bytes do not match this strategy.
    fn import_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

/// Fixed-size batching: the discipline of TGL and every conventional
/// TGNN trainer (§2.3). Also reused with a larger size as the paper's
/// "TGL-LB" comparison point (Figure 12(b)).
///
/// # Examples
///
/// ```
/// use cascade_core::{BatchingStrategy, FixedBatching};
///
/// let mut s = FixedBatching::new(900);
/// assert_eq!(s.next_batch_end(0, 10_000), 900);
/// assert_eq!(s.next_batch_end(9_500, 10_000), 10_000);
/// ```
#[derive(Clone, Debug)]
pub struct FixedBatching {
    batch_size: usize,
    label: String,
}

impl FixedBatching {
    /// Creates a fixed-size strategy.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        FixedBatching {
            batch_size,
            label: format!("TGL(bs={})", batch_size),
        }
    }

    /// Overrides the report label (e.g. `TGL-LB`).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

impl BatchingStrategy for FixedBatching {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn next_batch_end(&mut self, start: EventId, limit: EventId) -> EventId {
        assert!(start < limit, "next_batch_end on empty range");
        (start + self.batch_size).min(limit)
    }

    // Fixed batching is stateless across chunks: streaming is trivially
    // supported with no tables and no checkpoint state.
    fn prepare_streaming(
        &mut self,
        _total_train: usize,
        _num_nodes: usize,
        _chunk_size: usize,
    ) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_partitions_stream() {
        let mut s = FixedBatching::new(3);
        let mut start = 0;
        let mut sizes = Vec::new();
        while start < 10 {
            let end = s.next_batch_end(start, 10);
            sizes.push(end - start);
            start = end;
        }
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn label_override() {
        let s = FixedBatching::new(4200).with_label("TGL-LB");
        assert_eq!(s.name(), "TGL-LB");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero() {
        let _ = FixedBatching::new(0);
    }

    #[test]
    fn default_space_is_zero() {
        let s = FixedBatching::new(10);
        assert_eq!(s.space(), StrategySpace::default());
    }
}
