//! The Topology-Aware Graph Diffuser (§4.2, Algorithm 3): per-node event
//! pointers over the dependency table and the last-tolerable-event lookup
//! that decides batch boundaries.

use std::sync::Arc;

use cascade_tgraph::EventId;

use crate::dependency::DependencyTable;

/// Looks up the last tolerable event for each batch.
///
/// Each node tolerates at most `max_r` relevant events (entries of its
/// dependency-table list) per batch — the *Maximum Revisit Endurance* of
/// §4.2. The batch boundary is the minimum first-intolerable event over
/// all non-stable nodes; stable nodes (flagged by the SG-Filter) are
/// skipped, which is exactly how temporal independence relaxes the
/// boundary in Figure 8(b).
///
/// # Examples
///
/// Reproducing the Figure 7(b) walk-through (`Max_r = 4`):
///
/// ```
/// use cascade_core::{DependencyTable, TgDiffuser};
/// use cascade_tgraph::Event;
///
/// let pairs = [(1, 2), (1, 7), (1, 8), (1, 9), (10, 11), (10, 12),
///              (10, 13), (10, 4), (1, 3), (1, 5), (1, 6), (3, 4)];
/// let events: Vec<Event> = pairs.iter().enumerate()
///     .map(|(i, &(s, d))| Event::new(s as u32, d as u32, i as f64))
///     .collect();
/// let table = DependencyTable::build(&events, 14);
/// let mut diffuser = TgDiffuser::new(table, 4);
/// let no_stable = vec![false; 14];
/// // Node 1's fifth relevant event is e(8): the batch ends there.
/// assert_eq!(diffuser.next_boundary(0, 12, &no_stable), 8);
/// ```
#[derive(Clone, Debug)]
pub struct TgDiffuser {
    table: Arc<DependencyTable>,
    pointers: Vec<usize>,
    max_r: usize,
    threads: usize,
}

impl TgDiffuser {
    /// Creates a diffuser over a dependency table with the given initial
    /// `Max_r`.
    ///
    /// # Panics
    ///
    /// Panics if `max_r == 0` (every batch would be empty).
    pub fn new(table: impl Into<Arc<DependencyTable>>, max_r: usize) -> Self {
        assert!(max_r > 0, "Max_r must be at least 1");
        let table = table.into();
        let pointers = vec![0; table.num_nodes()];
        TgDiffuser {
            table,
            pointers,
            max_r,
            threads: 1,
        }
    }

    /// Sets the worker-thread count for the loop-parallel scans of
    /// Algorithm 3 (the paper runs the TG-Diffuser on 32 CPU threads).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Current `Max_r`.
    pub fn max_r(&self) -> usize {
        self.max_r
    }

    /// Updates `Max_r` (driven by the Adaptive Batch Sensor).
    ///
    /// # Panics
    ///
    /// Panics if `max_r == 0`.
    pub fn set_max_r(&mut self, max_r: usize) {
        assert!(max_r > 0, "Max_r must be at least 1");
        self.max_r = max_r;
    }

    /// The dependency table driving this diffuser.
    pub fn table(&self) -> &DependencyTable {
        &self.table
    }

    /// Replaces the table (chunk transition) and rewinds all pointers.
    pub fn swap_table(&mut self, table: impl Into<Arc<DependencyTable>>) {
        let table = table.into();
        self.pointers.fill(0);
        if self.pointers.len() < table.num_nodes() {
            self.pointers.resize(table.num_nodes(), 0);
        }
        self.table = table;
    }

    /// Rewinds all event pointers (epoch start).
    pub fn reset(&mut self) {
        self.pointers.fill(0);
    }

    /// Computes the exclusive end of the batch starting at `start`
    /// (Algorithm 3), bounded by `limit`, and advances the node pointers
    /// past the consumed events.
    ///
    /// `stable[n]` marks nodes whose temporal dependencies the SG-Filter
    /// has broken; they impose no boundary but their pointers still move.
    ///
    /// The returned end is always at least `start + 1` so training makes
    /// progress even when `Max_r` would forbid any event (the guard the
    /// paper leaves implicit).
    ///
    /// # Panics
    ///
    /// Panics if `start >= limit` or `stable.len()` differs from the node
    /// count.
    pub fn next_boundary(&mut self, start: EventId, limit: EventId, stable: &[bool]) -> EventId {
        assert!(start < limit, "next_boundary on empty range");
        assert_eq!(
            stable.len(),
            self.table.num_nodes(),
            "stable flag width mismatch"
        );

        // The loop-parallel scans of Algorithm 3: partitioned over worker
        // threads when configured, a single pass otherwise.
        let n_nodes = self.table.num_nodes();
        let k = if self.threads > 1 && n_nodes > 256 {
            let table = &self.table;
            let pointers = &self.pointers;
            let max_r = self.max_r;
            let chunk = n_nodes.div_ceil(self.threads);
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..self.threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n_nodes);
                    if lo >= hi {
                        break;
                    }
                    handles.push(
                        scope.spawn(move || scan_min(table, pointers, stable, max_r, lo, hi)),
                    );
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("diffuser scan worker panicked"))
                    .min()
                    .unwrap_or(EventId::MAX)
            })
        } else {
            scan_min(&self.table, &self.pointers, stable, self.max_r, 0, n_nodes)
        };

        let end = k.min(limit).max(start + 1);

        // Advance pointers past every event consumed by this batch.
        let table = Arc::clone(&self.table);
        if self.threads > 1 && n_nodes > 256 {
            let chunk = n_nodes.div_ceil(self.threads);
            std::thread::scope(|scope| {
                for (t, slot) in self.pointers.chunks_mut(chunk).enumerate() {
                    let lo = t * chunk;
                    let table = &table;
                    scope.spawn(move || {
                        for (off, p) in slot.iter_mut().enumerate() {
                            let n = lo + off;
                            if *p < table.entry_len(n) {
                                *p = (*p).max(table.entry_lower_bound(n, end));
                            }
                        }
                    });
                }
            });
        } else {
            for n in 0..n_nodes {
                let p = &mut self.pointers[n];
                if *p < table.entry_len(n) {
                    *p = (*p).max(table.entry_lower_bound(n, end));
                }
            }
        }
        end
    }
}

/// One worker's share of Algorithm 3's min-reduction.
fn scan_min(
    table: &DependencyTable,
    pointers: &[usize],
    stable: &[bool],
    max_r: usize,
    lo: usize,
    hi: usize,
) -> EventId {
    let mut k = EventId::MAX;
    for n in lo..hi {
        if stable[n] {
            continue;
        }
        let cur = pointers[n];
        if cur >= table.entry_len(n) {
            // All of this node's events are consumed: no constraint.
            continue;
        }
        // The first intolerable event is the (Max_r + 1)-th unprocessed
        // relevant event; if fewer remain, the node never objects.
        if let Some(en) = table.entry_at(n, cur + max_r) {
            k = k.min(en);
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_tgraph::Event;

    fn figure7_events() -> Vec<Event> {
        let pairs = [
            (1, 2),
            (1, 7),
            (1, 8),
            (1, 9),
            (10, 11),
            (10, 12),
            (10, 13),
            (10, 4),
            (1, 3),
            (1, 5),
            (1, 6),
            (3, 4),
        ];
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| Event::new(s as u32, d as u32, i as f64))
            .collect()
    }

    fn diffuser(max_r: usize) -> TgDiffuser {
        let events = figure7_events();
        TgDiffuser::new(DependencyTable::build(&events, 14), max_r)
    }

    #[test]
    fn figure7b_boundary_is_8() {
        let mut d = diffuser(4);
        assert_eq!(d.next_boundary(0, 12, &[false; 14]), 8);
    }

    #[test]
    fn figure8b_stable_nodes_extend_to_10() {
        // Figure 8(b): with nodes 1, 2, 7 stable, the barrier at e(8)
        // disappears and the batch extends to e(10).
        let mut d = diffuser(4);
        let mut stable = vec![false; 14];
        stable[1] = true;
        stable[2] = true;
        stable[7] = true;
        // Nodes 8 and 9 still constrain: their entries are
        // [2,3,8,9,10] and [3,8,9,10]; with Max_r = 4 the first
        // intolerable events are 10 and none respectively.
        assert_eq!(d.next_boundary(0, 12, &stable), 10);
    }

    #[test]
    fn all_stable_runs_to_limit() {
        let mut d = diffuser(1);
        assert_eq!(d.next_boundary(0, 12, &[true; 14]), 12);
    }

    #[test]
    fn boundaries_partition_stream() {
        let mut d = diffuser(2);
        let stable = vec![false; 14];
        let mut start = 0;
        let mut boundaries = Vec::new();
        while start < 12 {
            let end = d.next_boundary(start, 12, &stable);
            assert!(end > start && end <= 12);
            boundaries.push(end);
            start = end;
        }
        assert_eq!(*boundaries.last().unwrap(), 12);
    }

    #[test]
    fn larger_max_r_never_shrinks_batches() {
        for r in 1..6 {
            let mut small = diffuser(r);
            let mut large = diffuser(r + 1);
            let stable = vec![false; 14];
            let b_small = small.next_boundary(0, 12, &stable);
            let b_large = large.next_boundary(0, 12, &stable);
            assert!(
                b_large >= b_small,
                "Max_r {} -> {}: {} < {}",
                r,
                r + 1,
                b_large,
                b_small
            );
        }
    }

    #[test]
    fn progress_guaranteed_with_tiny_max_r() {
        let mut d = diffuser(1);
        let stable = vec![false; 14];
        let mut start = 0;
        let mut iterations = 0;
        while start < 12 {
            start = d.next_boundary(start, 12, &stable);
            iterations += 1;
            assert!(iterations <= 12, "no progress");
        }
    }

    #[test]
    fn pointers_reset_between_epochs() {
        let mut d = diffuser(4);
        let stable = vec![false; 14];
        let first = d.next_boundary(0, 12, &stable);
        d.reset();
        assert_eq!(d.next_boundary(0, 12, &stable), first);
    }

    #[test]
    fn swap_table_rewinds() {
        let events = figure7_events();
        let mut d = diffuser(4);
        let stable = vec![false; 14];
        let _ = d.next_boundary(0, 12, &stable);
        d.swap_table(DependencyTable::build(&events, 14));
        assert_eq!(d.next_boundary(0, 12, &stable), 8);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_max_r() {
        let _ = diffuser(0);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use cascade_tgraph::{DetRng, Event};

    fn random_events(n_nodes: usize, n_events: usize, seed: u64) -> Vec<Event> {
        let mut rng = DetRng::new(seed);
        (0..n_events)
            .map(|i| {
                Event::new(
                    rng.index(n_nodes) as u32,
                    rng.index(n_nodes) as u32,
                    i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_boundaries_match_sequential() {
        // Node count above the parallel threshold so workers actually run.
        let events = random_events(400, 2000, 3);
        let table = DependencyTable::build(&events, 400);
        let mut seq = TgDiffuser::new(table.clone(), 5);
        let mut par = TgDiffuser::new(table, 5).with_threads(4);
        let stable = vec![false; 400];
        let mut start = 0;
        while start < events.len() {
            let a = seq.next_boundary(start, events.len(), &stable);
            let b = par.next_boundary(start, events.len(), &stable);
            assert_eq!(a, b, "divergence at start {}", start);
            start = a;
        }
    }

    #[test]
    fn parallel_respects_stable_flags() {
        let events = random_events(300, 1200, 9);
        let table = DependencyTable::build(&events, 300);
        let mut seq = TgDiffuser::new(table.clone(), 3);
        let mut par = TgDiffuser::new(table, 3).with_threads(3);
        let mut stable = vec![false; 300];
        for i in (0..300).step_by(7) {
            stable[i] = true;
        }
        assert_eq!(
            seq.next_boundary(0, events.len(), &stable),
            par.next_boundary(0, events.len(), &stable)
        );
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        let table = DependencyTable::build(&[], 1);
        let _ = TgDiffuser::new(table, 1).with_threads(0);
    }
}
