#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # cascade-core
//!
//! The Cascade dependency-aware TGNN training framework (ASPLOS'25) —
//! the primary contribution of the paper this workspace reproduces.
//!
//! Cascade adaptively grows training batches without staling node
//! memories, through three cooperating mechanisms (§4):
//!
//! * [`DependencyTable`] + [`TgDiffuser`] — the Topology-Aware Graph
//!   Diffuser packs spatially independent events into one batch by giving
//!   every node a per-batch relevant-event budget (`Max_r`) and ending the
//!   batch at the first intolerable event (Algorithms 2–3).
//! * [`SgFilter`] — the Similarity-Aware Graph Filter breaks temporal
//!   dependencies on nodes whose memories have stabilized (cosine
//!   similarity of pre/post-update memories above θ_sim).
//! * [`Abs`] — the Adaptive Batch Sensor profiles Maximum Revisit
//!   Endurance statistics at the preset batch size and decays `Max_r`
//!   logarithmically when convergence stalls (Equations 5–7).
//!
//! [`CascadeScheduler`] composes all three behind the
//! [`BatchingStrategy`] trait; [`train`] runs any strategy against any
//! [`MemoryTgnn`](cascade_models::MemoryTgnn) model and measures
//! everything the paper's figures report.
//!
//! # Examples
//!
//! ```
//! use cascade_core::{train, CascadeConfig, CascadeScheduler, TrainConfig};
//! use cascade_models::{MemoryTgnn, ModelConfig};
//! use cascade_tgraph::SynthConfig;
//!
//! let data = SynthConfig::wiki().with_scale(0.004).generate(1);
//! let mut model = MemoryTgnn::new(
//!     ModelConfig::tgn().with_dims(8, 4).with_neighbors(3),
//!     data.num_nodes(),
//!     data.features().dim(),
//!     7,
//! );
//! let mut cascade = CascadeScheduler::new(CascadeConfig {
//!     preset_batch_size: 64,
//!     ..CascadeConfig::default()
//! });
//! let report = train(
//!     &mut model,
//!     &data,
//!     &mut cascade,
//!     &TrainConfig { epochs: 1, eval_batch_size: 64, ..TrainConfig::default() },
//! );
//! assert!(report.num_batches >= 1);
//! assert!(report.val_loss.is_finite());
//! ```

mod abs;
mod batching;
mod dependency;
mod diffuser;
mod instrument;
mod scheduler;
mod sgfilter;
mod streaming;
mod trainer;

pub use abs::{max_endurance_profiling, Abs, EnduranceStats};
pub use batching::{
    BatchingStrategy, FixedBatching, PrebuiltTable, StrategySpace, StrategyTimers, TableSpec,
};
pub use dependency::DependencyTable;
pub use diffuser::TgDiffuser;
pub use instrument::{SpaceBreakdown, StageTiming, StageTimings, UtilizationProxy};
pub use scheduler::{CascadeConfig, CascadeScheduler};
pub use sgfilter::SgFilter;
pub use streaming::{
    train_streaming, train_streaming_with_options, train_streaming_with_provider,
    CheckpointProgress, ChunkProvider, ProvidedChunk, StreamCheckpoint, StreamMeta, StreamOptions,
    StreamOutcome,
};
pub use trainer::{
    evaluate, evaluate_range, train, train_with_observer, EvalReport, TrainConfig, TrainReport,
};
