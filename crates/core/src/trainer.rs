//! The strategy-agnostic training loop (Algorithm 1's outer structure)
//! and its measurement report.

// cascade-lint: allow-file(det-wallclock): stage timings land in EpochReport/StageTimings telemetry only; no Duration ever feeds batching, scheduling, or learning decisions.
use std::time::{Duration, Instant};

use cascade_models::{MemoryDelta, MemoryTgnn};
use cascade_nn::{average_precision, binary_accuracy, clip_grad_norm, Adam, Module};
use cascade_tgraph::Dataset;

use crate::batching::BatchingStrategy;
use crate::instrument::{SpaceBreakdown, StageTimings};

/// Training-run configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of epochs over the training range.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Batch size used for validation (the paper evaluates everything at
    /// 900 regardless of the training strategy).
    pub eval_batch_size: usize,
    /// Optional global gradient-norm clip.
    pub clip_norm: Option<f32>,
    /// Simulated-accelerator per-batch overhead, in event-equivalents of
    /// model compute. The paper's speedups arise from GPU underutilization
    /// at small batches (17.2% SM utilization at BS = 900, §3.1; a 71%
    /// latency cut going to BS = 6000, Figure 2). On one CPU core that
    /// effect does not exist, so it is modeled: each batch is charged this
    /// many events' worth of measured per-event compute, which reproduces
    /// the paper's own utilization curve exactly (see
    /// [`UtilizationProxy`](crate::UtilizationProxy)). The calibrated
    /// value at the paper's scale is 4877 event-equivalents per 900-event
    /// batch; scale it by `preset/900`. Zero disables the model, making
    /// [`TrainReport::modeled_time`] equal measured wall time.
    pub sim_batch_overhead_events: f64,
    /// Square-root learning-rate scaling with batch size, relative to
    /// `eval_batch_size`: `lr_eff = lr · √(B / eval_batch_size)`. The
    /// standard compensation for larger batches taking fewer optimizer
    /// steps; applied uniformly to every strategy.
    pub scale_lr_with_batch: bool,
    /// Worker threads for shard-parallel batch compute inside the model's
    /// forward pass. The shard layout is fixed by batch size, so any value
    /// here produces bit-identical parameters and memories — higher values
    /// only trade wall-clock time (clamped to at least 1).
    pub compute_threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            lr: 1e-3,
            eval_batch_size: 900,
            clip_norm: Some(5.0),
            sim_batch_overhead_events: 0.0,
            scale_lr_with_batch: false,
            compute_threads: 1,
        }
    }
}

/// Everything a training run measured — the raw material of every figure
/// in the evaluation.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Strategy name.
    pub strategy: String,
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Epochs trained.
    pub epochs: usize,
    /// End-to-end wall-clock (preprocessing + training, excluding
    /// validation).
    pub total_time: Duration,
    /// `total_time` plus the simulated accelerator per-batch overhead
    /// (equals `total_time` when the overhead model is disabled). The
    /// latency figures report this.
    pub modeled_time: Duration,
    /// Dependency-structure construction time.
    pub build_time: Duration,
    /// Batch-boundary lookup time.
    pub lookup_time: Duration,
    /// Model compute time (forward, backward, optimizer).
    pub model_time: Duration,
    /// Total batches processed across all epochs.
    pub num_batches: usize,
    /// Mean training batch size.
    pub avg_batch_size: f64,
    /// Largest training batch.
    pub max_batch_size: usize,
    /// Mean training loss of the final epoch.
    pub final_train_loss: f32,
    /// Validation loss at `eval_batch_size` after training.
    pub val_loss: f32,
    /// Validation link-prediction average precision.
    pub val_ap: f32,
    /// Validation binary accuracy (logit sign vs label).
    pub val_accuracy: f32,
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Every training batch's size, in processing order across epochs
    /// (the raw series behind Figure 12(a)).
    pub batch_sizes: Vec<u32>,
    /// Every training batch's loss, matching `batch_sizes`.
    pub batch_losses: Vec<f32>,
    /// Space accounting at end of run.
    pub space: SpaceBreakdown,
    /// Per-stage wall-time / stall / throughput telemetry. Serial runs
    /// report zero stalls; pipelined runs (`cascade-exec`) report the
    /// scout thread's scan stage overlapping the driver stages.
    pub stages: StageTimings,
}

impl TrainReport {
    /// Events processed per second of total time.
    pub fn throughput(&self, events_per_epoch: usize) -> f64 {
        let total = (events_per_epoch * self.epochs) as f64;
        total / self.total_time.as_secs_f64().max(1e-12)
    }
}

/// Trains `model` on `data`'s training range with the given batching
/// strategy, then evaluates on the validation range.
///
/// See [`train_with_observer`] for a variant that surfaces per-batch
/// memory transitions (used by the Figure 5 stable-ratio experiment).
pub fn train(
    model: &mut MemoryTgnn,
    data: &Dataset,
    strategy: &mut dyn BatchingStrategy,
    cfg: &TrainConfig,
) -> TrainReport {
    train_with_observer(model, data, strategy, cfg, &mut |_, _| {})
}

/// [`train`] with a per-batch observer receiving `(epoch, deltas)` for
/// every processed batch.
///
/// # Panics
///
/// Panics if the dataset's training range is empty or `cfg.epochs == 0`.
pub fn train_with_observer(
    model: &mut MemoryTgnn,
    data: &Dataset,
    strategy: &mut dyn BatchingStrategy,
    cfg: &TrainConfig,
    observer: &mut dyn FnMut(usize, &[MemoryDelta]),
) -> TrainReport {
    assert!(cfg.epochs > 0, "need at least one epoch");
    model.set_compute_threads(cfg.compute_threads.max(1));
    let train_range = data.train_range();
    assert!(!train_range.is_empty(), "empty training range");
    let events = data.stream().events();
    let n_train = train_range.end;

    let t_total = Instant::now();

    // Preprocessing (dependency tables, profiling).
    let t_prep = Instant::now();
    strategy.prepare(&events[train_range.clone()], data.num_nodes());
    let measured_prepare = t_prep.elapsed();

    let params = model.parameters();
    let mut opt = Adam::new(params.clone(), cfg.lr);

    let mut model_time = Duration::ZERO;
    let mut measured_lookup = Duration::ZERO;
    let mut stages = StageTimings::default();
    let mut num_batches = 0usize;
    let mut max_batch = 0usize;
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut batch_sizes: Vec<u32> = Vec::new();
    let mut batch_losses: Vec<f32> = Vec::new();

    for epoch in 0..cfg.epochs {
        model.reset_state();
        strategy.reset_epoch();

        let mut start = 0usize;
        let mut batch_idx = 0usize;
        let mut loss_sum = 0.0f64;
        let mut event_sum = 0usize;
        while start < n_train {
            let t0 = Instant::now();
            let end = strategy.next_batch_end(start, n_train);
            let scan_elapsed = t0.elapsed();
            measured_lookup += scan_elapsed;
            stages.scan.record(scan_elapsed);
            debug_assert!(end > start && end <= n_train);

            let t1 = Instant::now();
            if cfg.scale_lr_with_batch {
                let scale = ((end - start) as f32 / cfg.eval_batch_size as f32).sqrt();
                opt.set_lr(cfg.lr * scale);
            }
            let fwd = model.forward_batch(&events[start..end], start, data.features());
            let loss = fwd.loss.item();
            fwd.loss.backward();
            if let Some(c) = cfg.clip_norm {
                clip_grad_norm(&params, c);
            }
            opt.step();
            let compute_elapsed = t1.elapsed();
            stages.compute.record(compute_elapsed);
            stages.record_shards(&fwd.shard_busy, cfg.compute_threads.max(1));

            let t2 = Instant::now();
            let deltas =
                model.apply_batch(&events[start..end], start, data.features(), fwd.pending);
            let update_elapsed = t2.elapsed();
            stages.update.record(update_elapsed);
            model_time += compute_elapsed + update_elapsed;

            // Batch boundary: the graph is dropped and its buffers are back
            // in the arena; trim the pool to its steady-state working set.
            cascade_tensor::arena::reset();

            strategy.after_batch(batch_idx, loss);
            strategy.observe_updates(&deltas);
            observer(epoch, &deltas);

            let size = end - start;
            batch_sizes.push(size as u32);
            batch_losses.push(loss);
            loss_sum += loss as f64 * size as f64;
            event_sum += size;
            max_batch = max_batch.max(size);
            num_batches += 1;
            batch_idx += 1;
            start = end;
        }
        epoch_losses.push((loss_sum / event_sum.max(1) as f64) as f32);
    }

    let total_time = t_total.elapsed();

    // Simulated accelerator: charge each batch the configured number of
    // event-equivalents of measured per-event model compute.
    let events_processed = (n_train * cfg.epochs) as f64;
    let per_event = model_time.as_secs_f64() / events_processed.max(1.0);
    let overhead =
        Duration::from_secs_f64(per_event * cfg.sim_batch_overhead_events * num_batches as f64);
    // Pipelined background table building shares this test machine's one
    // core with training (inflating measured time), but runs on otherwise
    // idle CPU in the modeled CPU-preprocess/GPU-train deployment: credit
    // it back, bounded by the non-stall portion of the run.
    let background = strategy.timers().background_build;
    let stall = strategy.timers().build_table;
    let overlap_credit = background.saturating_sub(stall).min(total_time / 2);
    let modeled_time = (total_time + overhead).saturating_sub(overlap_credit);

    // Validation at the fixed evaluation batch size, memory carried over
    // from the final training epoch, no weight updates.
    let val = evaluate(model, data, cfg.eval_batch_size);

    // Prefer the strategy's fine-grained timers when available.
    let timers = strategy.timers();
    let build_time = if timers.build_table > Duration::ZERO {
        timers.build_table
    } else {
        measured_prepare
    };
    let lookup_time = if timers.lookup > Duration::ZERO {
        timers.lookup
    } else {
        measured_lookup
    };

    let strat_space = strategy.space();
    let space = SpaceBreakdown {
        dependency_table: strat_space.dependency_bytes,
        stable_flags: strat_space.flag_bytes,
        graph: std::mem::size_of_val(events),
        edge_features: data.features().size_bytes(),
        model: model.parameter_count() * std::mem::size_of::<f32>(),
        mailbox: model.mailbox_size_bytes(),
        memory: model.memory_size_bytes(),
        plane_shards: model.plane().num_shards(),
    };

    TrainReport {
        strategy: strategy.name(),
        model: model.name().to_string(),
        dataset: data.name().to_string(),
        epochs: cfg.epochs,
        total_time,
        modeled_time,
        build_time,
        lookup_time,
        model_time,
        num_batches,
        avg_batch_size: (n_train * cfg.epochs) as f64 / num_batches.max(1) as f64,
        max_batch_size: max_batch,
        final_train_loss: *epoch_losses.last().unwrap_or(&f32::NAN),
        val_loss: val.loss,
        val_ap: val.average_precision,
        val_accuracy: val.accuracy,
        epoch_losses,
        batch_sizes,
        batch_losses,
        space,
        stages,
    }
}

/// Link-prediction evaluation metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalReport {
    /// Mean BCE loss.
    pub loss: f32,
    /// Average precision of true edges vs negative samples.
    pub average_precision: f32,
    /// Fraction of logits on the correct side of zero.
    pub accuracy: f32,
}

/// Evaluates over the dataset's validation range at the given batch size;
/// memories advance but weights do not.
///
/// Returns `NaN` metrics for an empty validation range.
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn evaluate(model: &mut MemoryTgnn, data: &Dataset, batch_size: usize) -> EvalReport {
    evaluate_range(model, data, data.val_range(), batch_size)
}

/// Evaluates over an explicit event range (e.g. the test split).
///
/// # Panics
///
/// Panics if `batch_size == 0` or the range exceeds the stream.
pub fn evaluate_range(
    model: &mut MemoryTgnn,
    data: &Dataset,
    range: std::ops::Range<usize>,
    batch_size: usize,
) -> EvalReport {
    assert!(batch_size > 0, "eval batch size must be positive");
    if range.is_empty() {
        return EvalReport {
            loss: f32::NAN,
            average_precision: f32::NAN,
            accuracy: f32::NAN,
        };
    }
    let events = data.stream().events();
    let mut start = range.start;
    let mut loss_sum = 0.0f64;
    let mut n = 0usize;
    let mut logits = Vec::new();
    let mut labels = Vec::new();
    while start < range.end {
        let end = (start + batch_size).min(range.end);
        let out = model.process_batch(&events[start..end], start, data.features());
        loss_sum += out.loss.item() as f64 * (end - start) as f64;
        n += end - start;
        labels.extend(std::iter::repeat_n(1.0, out.pos_logits.len()));
        logits.extend(out.pos_logits);
        labels.extend(std::iter::repeat_n(0.0, out.neg_logits.len()));
        logits.extend(out.neg_logits);
        start = end;
    }
    EvalReport {
        loss: (loss_sum / n as f64) as f32,
        average_precision: average_precision(&logits, &labels),
        accuracy: binary_accuracy(&logits, &labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::FixedBatching;
    use crate::scheduler::{CascadeConfig, CascadeScheduler};
    use cascade_models::ModelConfig;
    use cascade_tgraph::SynthConfig;

    fn tiny_dataset() -> Dataset {
        SynthConfig::wiki().with_scale(0.005).generate(9)
    }

    fn tiny_model(data: &Dataset) -> MemoryTgnn {
        MemoryTgnn::new(
            ModelConfig::tgn().with_dims(8, 4).with_neighbors(3),
            data.num_nodes(),
            data.features().dim(),
            3,
        )
    }

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            lr: 1e-3,
            eval_batch_size: 64,
            clip_norm: Some(5.0),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn fixed_batching_report_is_consistent() {
        let data = tiny_dataset();
        let mut model = tiny_model(&data);
        let mut strat = FixedBatching::new(64);
        let r = train(&mut model, &data, &mut strat, &tiny_cfg());
        assert_eq!(r.epochs, 2);
        assert!(r.val_loss.is_finite());
        assert!(r.avg_batch_size <= 64.0 + 1e-9);
        assert!(r.max_batch_size <= 64);
        assert_eq!(r.epoch_losses.len(), 2);
        assert!(r.space.graph > 0);
        assert!(r.space.model > 0);
    }

    #[test]
    fn cascade_report_has_bigger_batches() {
        let data = tiny_dataset();
        let cfg = tiny_cfg();

        let mut m1 = tiny_model(&data);
        let mut fixed = FixedBatching::new(64);
        let fixed_r = train(&mut m1, &data, &mut fixed, &cfg);

        let mut m2 = tiny_model(&data);
        let mut cascade = CascadeScheduler::new(CascadeConfig {
            preset_batch_size: 64,
            ..CascadeConfig::default()
        });
        let cascade_r = train(&mut m2, &data, &mut cascade, &cfg);

        assert!(
            cascade_r.avg_batch_size > fixed_r.avg_batch_size,
            "cascade {} <= fixed {}",
            cascade_r.avg_batch_size,
            fixed_r.avg_batch_size
        );
        assert!(cascade_r.num_batches < fixed_r.num_batches);
        assert!(cascade_r.space.dependency_table > 0);
    }

    #[test]
    fn serial_report_records_stage_timings() {
        let data = tiny_dataset();
        let mut model = tiny_model(&data);
        let mut strat = FixedBatching::new(64);
        let r = train(&mut model, &data, &mut strat, &tiny_cfg());
        assert_eq!(r.stages.scan.items, r.num_batches);
        assert_eq!(r.stages.compute.items, r.num_batches);
        assert_eq!(r.stages.update.items, r.num_batches);
        assert!(r.stages.compute.busy > Duration::ZERO);
        // Serial execution never waits on a queue.
        assert_eq!(r.stages.total_stall(), Duration::ZERO);
        // The coarse model_time is exactly the two driver stages.
        assert_eq!(r.stages.compute.busy + r.stages.update.busy, r.model_time);
    }

    #[test]
    fn training_loss_decreases_over_epochs() {
        let data = tiny_dataset();
        let mut model = tiny_model(&data);
        let mut strat = FixedBatching::new(64);
        let cfg = TrainConfig {
            epochs: 4,
            ..tiny_cfg()
        };
        let r = train(&mut model, &data, &mut strat, &cfg);
        assert!(
            r.epoch_losses.last().unwrap() < r.epoch_losses.first().unwrap(),
            "losses: {:?}",
            r.epoch_losses
        );
    }

    #[test]
    fn observer_sees_updates() {
        let data = tiny_dataset();
        let mut model = tiny_model(&data);
        let mut strat = FixedBatching::new(64);
        let mut seen = 0usize;
        let _ = train_with_observer(&mut model, &data, &mut strat, &tiny_cfg(), &mut |_, d| {
            seen += d.len();
        });
        assert!(seen > 0, "observer never saw a memory update");
    }

    #[test]
    fn evaluate_is_deterministic_given_state() {
        let data = tiny_dataset();
        let mut model = tiny_model(&data);
        let mut strat = FixedBatching::new(64);
        let r1 = train(&mut model, &data, &mut strat, &tiny_cfg());
        assert!(r1.val_loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn rejects_zero_epochs() {
        let data = tiny_dataset();
        let mut model = tiny_model(&data);
        let mut strat = FixedBatching::new(64);
        let cfg = TrainConfig {
            epochs: 0,
            ..tiny_cfg()
        };
        let _ = train(&mut model, &data, &mut strat, &cfg);
    }
}
