//! The node–event Dependency Table (§4.2, Algorithm 2) and its
//! chunk-based variant for large-scale graphs.

use cascade_tgraph::{Event, EventId};

/// Per-node sorted lists of the events that may affect — or rely on — the
/// node.
///
/// Entry `n` contains:
///
/// 1. every event incident to node `n`, and
/// 2. for each incident event `e(i) = e_nq`, every event incident to the
///    neighbor `q` with index greater than `i` (the neighbor's *future*
///    events — past events of a not-yet-connected neighbor are
///    independent, and only 1-hop neighbors propagate directly).
///
/// The table is built once before training and never updated (§4.2). The
/// paper used C++ `std::set` entries; sorted, deduplicated `Vec`s have
/// identical semantics with better locality.
///
/// # Examples
///
/// Reproduces the worked example of Figure 7(a):
///
/// ```
/// use cascade_core::DependencyTable;
/// use cascade_tgraph::{Event, NodeId};
///
/// // Events 0..=11 of Figure 7: e12 e17 e18 e19 e_ab e_ac e_ad e_a5 e13 e15 e16 e34
/// let events = [
///     (1, 2), (1, 7), (1, 8), (1, 9), (10, 11), (10, 12),
///     (10, 13), (10, 4), (1, 3), (1, 5), (1, 6), (3, 4),
/// ];
/// let events: Vec<Event> = events
///     .iter()
///     .enumerate()
///     .map(|(i, &(s, d))| Event::new(s as u32, d as u32, i as f64))
///     .collect();
/// let table = DependencyTable::build(&events, 14);
/// assert_eq!(table.entry(NodeId(1)), &[0, 1, 2, 3, 8, 9, 10, 11]);
/// assert_eq!(table.entry(NodeId(2)), &[0, 1, 2, 3, 8, 9, 10]);
/// assert_eq!(table.entry(NodeId(3)), &[8, 9, 10, 11]);
/// assert_eq!(table.entry(NodeId(10)), &[4, 5, 6, 7, 11]);
/// ```
#[derive(Clone, Debug)]
pub struct DependencyTable {
    /// Entries are stored as `u32` offsets from `base` (a chunk never
    /// exceeds 4 B events), halving the table's footprint.
    entries: Vec<Vec<u32>>,
    /// Index of the first event covered (0 for whole-stream tables).
    base: EventId,
    /// One past the last event covered.
    end: EventId,
}

impl DependencyTable {
    /// Builds the table over all `events` (event `i` has id `i`).
    ///
    /// Equivalent to [`DependencyTable::build_range`] over the full range.
    pub fn build(events: &[Event], num_nodes: usize) -> Self {
        Self::build_range(events, num_nodes, 0)
    }

    /// Ablation builder: records only each node's *incident* events,
    /// dropping Algorithm 2's step 2 (neighbor future events). Batches
    /// grow larger under this table because fewer events constrain each
    /// node — at the cost of ignoring the neighbor-propagated staleness
    /// the paper's design protects against (`repro ablation` quantifies
    /// the trade-off).
    pub fn build_incident_only(events: &[Event], num_nodes: usize) -> Self {
        assert!(
            events.len() <= u32::MAX as usize,
            "chunk exceeds u32 event ids"
        );
        let mut entries: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for (i, e) in events.iter().enumerate() {
            entries[e.src.index()].push(i as u32);
            if e.dst != e.src {
                entries[e.dst.index()].push(i as u32);
            }
        }
        DependencyTable {
            entries,
            base: 0,
            end: events.len(),
        }
    }

    /// Builds the table for a chunk of events whose first event has global
    /// id `base`. Only within-chunk dependencies are recorded — the
    /// chunk's final event bounds all dependencies, exactly the
    /// divide-and-conquer of the paper's chunk-based optimization (§4.2).
    pub fn build_range(events: &[Event], num_nodes: usize, base: EventId) -> Self {
        // Incidence lists: node -> ascending event ids (local to chunk).
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for (i, e) in events.iter().enumerate() {
            incident[e.src.index()].push(i as u32);
            if e.dst != e.src {
                incident[e.dst.index()].push(i as u32);
            }
        }

        assert!(
            events.len() <= u32::MAX as usize,
            "chunk exceeds u32 event ids"
        );
        let mut entries: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for (n, entry) in entries.iter_mut().enumerate() {
            if incident[n].is_empty() {
                continue;
            }
            // Step 1: the node's own events.
            let mut merged: Vec<u32> = incident[n].clone();
            // Step 2: each neighbor's future events (after connection).
            for &i in &incident[n] {
                let e = &events[i as usize];
                let q = if e.src.index() == n { e.dst } else { e.src };
                if q.index() == n {
                    continue;
                }
                let q_events = &incident[q.index()];
                let from = q_events.partition_point(|&x| x <= i);
                merged.extend_from_slice(&q_events[from..]);
            }
            merged.sort_unstable();
            merged.dedup();
            *entry = merged;
        }

        DependencyTable {
            entries,
            base,
            end: base + events.len(),
        }
    }

    /// The sorted (global) event ids relevant to `node`.
    pub fn entry(&self, node: cascade_tgraph::NodeId) -> Vec<EventId> {
        self.entries[node.index()]
            .iter()
            .map(|&i| i as usize + self.base)
            .collect()
    }

    /// Number of entries of a node.
    pub fn entry_len(&self, node: usize) -> usize {
        self.entries[node].len()
    }

    /// The global event id at `pos` within node `node`'s entry, if any.
    pub fn entry_at(&self, node: usize, pos: usize) -> Option<EventId> {
        self.entries[node].get(pos).map(|&i| i as usize + self.base)
    }

    /// Position of the first entry of `node` with global id >= `event`.
    pub fn entry_lower_bound(&self, node: usize, event: EventId) -> usize {
        let local = event.saturating_sub(self.base).min(u32::MAX as usize) as u32;
        self.entries[node].partition_point(|&x| x < local)
    }

    /// Number of node entries.
    pub fn num_nodes(&self) -> usize {
        self.entries.len()
    }

    /// First covered (global) event id.
    pub fn base(&self) -> EventId {
        self.base
    }

    /// One past the last covered (global) event id.
    pub fn end(&self) -> EventId {
        self.end
    }

    /// Bytes held by the table (the "DT" bar of Figure 13(c)).
    pub fn size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.len() * std::mem::size_of::<u32>() + std::mem::size_of::<Vec<u32>>())
            .sum()
    }

    /// Total number of (node, event) dependency pairs.
    pub fn total_entries(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_tgraph::NodeId;

    /// The 12-event example of Figure 7(a)/(b).
    pub(crate) fn figure7_events() -> Vec<Event> {
        let pairs = [
            (1, 2),
            (1, 7),
            (1, 8),
            (1, 9),
            (10, 11),
            (10, 12),
            (10, 13),
            (10, 4),
            (1, 3),
            (1, 5),
            (1, 6),
            (3, 4),
        ];
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| Event::new(s as u32, d as u32, i as f64))
            .collect()
    }

    #[test]
    fn figure7_table_matches_paper() {
        let events = figure7_events();
        let t = DependencyTable::build(&events, 14);
        assert_eq!(t.entry(NodeId(1)), &[0, 1, 2, 3, 8, 9, 10, 11]);
        assert_eq!(t.entry(NodeId(2)), &[0, 1, 2, 3, 8, 9, 10]);
        assert_eq!(t.entry(NodeId(3)), &[8, 9, 10, 11]);
        assert_eq!(t.entry(NodeId(4)), &[7, 11]);
        assert_eq!(t.entry(NodeId(5)), &[9, 10]);
        assert_eq!(t.entry(NodeId(7)), &[1, 2, 3, 8, 9, 10]);
        assert_eq!(t.entry(NodeId(8)), &[2, 3, 8, 9, 10]);
        assert_eq!(t.entry(NodeId(9)), &[3, 8, 9, 10]);
        assert_eq!(t.entry(NodeId(10)), &[4, 5, 6, 7, 11]);
        assert_eq!(t.entry(NodeId(11)), &[4, 5, 6, 7]);
        assert_eq!(t.entry(NodeId(12)), &[5, 6, 7]);
        assert_eq!(t.entry(NodeId(13)), &[6, 7]);
    }

    #[test]
    fn own_events_always_present() {
        let events = figure7_events();
        let t = DependencyTable::build(&events, 14);
        for (i, e) in events.iter().enumerate() {
            assert!(
                t.entry(e.src).contains(&i),
                "event {} missing from src entry",
                i
            );
            assert!(
                t.entry(e.dst).contains(&i),
                "event {} missing from dst entry",
                i
            );
        }
    }

    #[test]
    fn neighbor_past_events_excluded() {
        // Node 3 connects to node 1 at event 8; node 1's earlier events
        // (0..=3) must not appear in node 3's entry.
        let events = figure7_events();
        let t = DependencyTable::build(&events, 14);
        for past in 0..8 {
            assert!(!t.entry(NodeId(3)).contains(&past));
        }
    }

    #[test]
    fn entries_sorted_unique() {
        let events = figure7_events();
        let t = DependencyTable::build(&events, 14);
        for n in 0..t.num_nodes() {
            let e = t.entry(NodeId(n as u32));
            assert!(
                e.windows(2).all(|w| w[0] < w[1]),
                "entry {} not strictly sorted",
                n
            );
        }
    }

    #[test]
    fn isolated_nodes_have_empty_entries() {
        let events = figure7_events();
        let t = DependencyTable::build(&events, 14);
        assert!(t.entry(NodeId(0)).is_empty());
        assert!(t.entry(NodeId(6)).contains(&10)); // node 6 touched by e(10)
    }

    #[test]
    fn self_loops_counted_once() {
        let events = vec![Event::new(0u32, 0u32, 0.0), Event::new(0u32, 1u32, 1.0)];
        let t = DependencyTable::build(&events, 2);
        assert_eq!(t.entry(NodeId(0)), &[0, 1]);
        assert_eq!(t.entry(NodeId(1)), &[1]);
    }

    #[test]
    fn chunked_table_offsets_ids() {
        let events = figure7_events();
        let t = DependencyTable::build_range(&events[6..], 14, 6);
        // Node 10's chunk events are 6 and 7; node 4 (connected at 7)
        // has the future event 11.
        assert_eq!(t.entry(NodeId(10)), &[6, 7, 11]);
        assert_eq!(t.base(), 6);
        assert_eq!(t.end(), 12);
    }

    #[test]
    fn chunked_equals_dense_restricted() {
        // Within a chunk, the chunked table equals the dense table built
        // over just that chunk's events.
        let events = figure7_events();
        let chunk = &events[4..10];
        let chunked = DependencyTable::build_range(chunk, 14, 4);
        let dense_local = DependencyTable::build(chunk, 14);
        for n in 0..14u32 {
            let shifted: Vec<EventId> = dense_local
                .entry(NodeId(n))
                .iter()
                .map(|&i| i + 4)
                .collect();
            assert_eq!(chunked.entry(NodeId(n)), shifted, "node {}", n);
        }
    }

    #[test]
    fn size_accounting_positive() {
        let events = figure7_events();
        let t = DependencyTable::build(&events, 14);
        assert!(t.size_bytes() > 0);
        assert!(t.total_entries() >= events.len() * 2);
    }

    #[test]
    fn empty_stream_builds_empty_table() {
        let t = DependencyTable::build(&[], 5);
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.total_entries(), 0);
    }
}
