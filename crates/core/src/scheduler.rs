//! The Cascade scheduler: TG-Diffuser + SG-Filter + ABS composed into a
//! [`BatchingStrategy`], with optional chunk-based pipelined preprocessing
//! (Cascade_EX, §4.2 / §5.5).

// cascade-lint: allow-file(det-wallclock): timings feed StrategyTimers telemetry only; chunk boundaries and batch contents are derived purely from event data.
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cascade_models::MemoryDelta;
use cascade_tgraph::{Event, EventId};

use crate::abs::{Abs, EnduranceStats};
use crate::batching::{BatchingStrategy, PrebuiltTable, StrategySpace, StrategyTimers, TableSpec};
use crate::dependency::DependencyTable;
use crate::diffuser::TgDiffuser;
use crate::sgfilter::SgFilter;

/// Configuration of the [`CascadeScheduler`].
#[derive(Clone, Debug)]
pub struct CascadeConfig {
    /// The preset small batch size used for endurance profiling and as the
    /// quality reference (the paper uses 900).
    pub preset_batch_size: usize,
    /// SG-Filter similarity threshold θ_sim (paper default 0.9).
    pub theta: f32,
    /// Whether the SG-Filter runs; disabling it yields the paper's
    /// Cascade-TB ablation (§5.3).
    pub sg_filter: bool,
    /// Chunk size for divide-and-conquer preprocessing; `None` builds one
    /// table for the whole stream, `Some(c)` enables Cascade_EX with
    /// pipelined per-chunk building (the paper uses one million events).
    pub chunk_size: Option<usize>,
    /// Ablation: drop Algorithm 2's neighbor-future step, keeping only
    /// incident events in the dependency table.
    pub incident_only_table: bool,
    /// Ablation: freeze `Max_r` at its initial value (no Equation 5
    /// decay).
    pub freeze_max_r: bool,
    /// Worker threads for the loop-parallel diffuser scans (the paper
    /// uses 32 CPU threads for TG-Diffuser and ABS).
    pub lookup_threads: usize,
    /// Profiling seed.
    pub seed: u64,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            preset_batch_size: 900,
            theta: 0.9,
            sg_filter: true,
            chunk_size: None,
            incident_only_table: false,
            freeze_max_r: false,
            lookup_threads: 1,
            seed: 0,
        }
    }
}

impl CascadeConfig {
    /// The Cascade-TB ablation: TG-Diffuser + ABS only (§5.3).
    pub fn without_sg_filter(mut self) -> Self {
        self.sg_filter = false;
        self
    }

    /// Enables chunk-based preprocessing (Cascade_EX).
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        self.chunk_size = Some(chunk);
        self
    }

    /// Overrides θ_sim.
    pub fn with_theta(mut self, theta: f32) -> Self {
        self.theta = theta;
        self
    }

    /// Overrides the preset (profiling) batch size.
    pub fn with_preset_batch_size(mut self, bs: usize) -> Self {
        assert!(bs > 0, "preset batch size must be positive");
        self.preset_batch_size = bs;
        self
    }

    /// Ablation: incident-only dependency tables (no neighbor-future
    /// events).
    pub fn with_incident_only_table(mut self) -> Self {
        self.incident_only_table = true;
        self
    }

    /// Ablation: freeze `Max_r` at its initial value.
    pub fn with_frozen_max_r(mut self) -> Self {
        self.freeze_max_r = true;
        self
    }

    /// Sets the diffuser's worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_lookup_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.lookup_threads = threads;
        self
    }
}

/// The full Cascade batching scheduler (§4.1, Algorithm 1).
///
/// # Examples
///
/// ```
/// use cascade_core::{BatchingStrategy, CascadeConfig, CascadeScheduler};
/// use cascade_tgraph::SynthConfig;
///
/// let data = SynthConfig::wiki().with_scale(0.01).generate(3);
/// let mut s = CascadeScheduler::new(CascadeConfig {
///     preset_batch_size: 64,
///     ..CascadeConfig::default()
/// });
/// s.prepare(data.stream().events(), data.num_nodes());
/// let end = s.next_batch_end(0, data.num_events());
/// assert!(end > 0);
/// ```
pub struct CascadeScheduler {
    cfg: CascadeConfig,
    diffuser: Option<TgDiffuser>,
    sg: Option<SgFilter>,
    abs: Option<Abs>,
    no_stable: Vec<bool>,
    num_nodes: usize,
    chunk_bounds: Vec<(EventId, EventId)>,
    current_chunk: usize,
    tables: Vec<Option<Arc<DependencyTable>>>,
    pending: Option<Receiver<(usize, DependencyTable, Duration)>>,
    timers: StrategyTimers,
    global_batch_idx: usize,
    /// Streaming (out-of-core) mode: chunks are announced one at a time
    /// via `enter_chunk` and only the current chunk's table stays
    /// resident.
    streaming: bool,
    /// Training-slice length announced by `prepare_streaming` (drives
    /// the ABS batch count, Equation 6).
    total_train: usize,
    /// `Max_r` restored from a checkpoint, consumed when the first
    /// post-resume chunk creates the diffuser.
    restored_max_r: Option<usize>,
}

impl CascadeScheduler {
    /// Creates an unprepared scheduler; call
    /// [`prepare`](BatchingStrategy::prepare) before batching.
    pub fn new(cfg: CascadeConfig) -> Self {
        CascadeScheduler {
            cfg,
            diffuser: None,
            sg: None,
            abs: None,
            no_stable: Vec::new(),
            num_nodes: 0,
            chunk_bounds: Vec::new(),
            current_chunk: 0,
            tables: Vec::new(),
            pending: None,
            timers: StrategyTimers::default(),
            global_batch_idx: 0,
            streaming: false,
            total_train: 0,
            restored_max_r: None,
        }
    }

    /// The current `Max_r`, if prepared.
    pub fn max_r(&self) -> Option<usize> {
        self.diffuser.as_ref().map(TgDiffuser::max_r)
    }

    /// The SG-Filter (present unless disabled).
    pub fn sg_filter(&self) -> Option<&SgFilter> {
        self.sg.as_ref()
    }

    /// The profiled endurance statistics, if prepared.
    pub fn endurance_stats(&self) -> Option<crate::abs::EnduranceStats> {
        self.abs.as_ref().map(Abs::stats)
    }

    /// Fetches (or waits for) the table of `chunk`, caching it.
    fn table_for_chunk(&mut self, chunk: usize) -> Arc<DependencyTable> {
        if let Some(Some(t)) = self.tables.get(chunk) {
            return Arc::clone(t);
        }
        let rx = self
            .pending
            .as_ref()
            .expect("chunk table requested before prepare");
        let start = Instant::now();
        loop {
            let (idx, table, work) = rx
                .recv()
                .expect("dependency-table builder thread terminated early");
            self.tables[idx] = Some(Arc::new(table));
            self.timers.background_build += work;
            if idx == chunk {
                break;
            }
        }
        // Pipeline stall counts as table-building latency.
        self.timers.build_table += start.elapsed();
        Arc::clone(
            self.tables[chunk]
                .as_ref()
                .expect("receive loop above inserted this chunk's table before breaking"),
        )
    }
}

impl BatchingStrategy for CascadeScheduler {
    fn name(&self) -> String {
        let mut n = if self.cfg.sg_filter {
            "Cascade".to_string()
        } else {
            "Cascade-TB".to_string()
        };
        if self.cfg.chunk_size.is_some() {
            n.push_str("_EX");
        }
        n
    }

    fn prepare(&mut self, events: &[Event], num_nodes: usize) {
        assert!(!events.is_empty(), "cannot prepare on an empty stream");
        self.num_nodes = num_nodes;
        self.no_stable = vec![false; num_nodes];
        self.sg = if self.cfg.sg_filter {
            Some(SgFilter::new(num_nodes, self.cfg.theta))
        } else {
            None
        };

        let chunk = self.cfg.chunk_size.unwrap_or(events.len()).max(1);
        self.chunk_bounds = (0..events.len())
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(events.len())))
            .collect();
        self.tables = vec![None; self.chunk_bounds.len()];
        self.current_chunk = 0;

        let first_table = if self.chunk_bounds.len() == 1 {
            // Single table over the whole stream, built synchronously.
            let t0 = Instant::now();
            let table = Arc::new(if self.cfg.incident_only_table {
                DependencyTable::build_incident_only(events, num_nodes)
            } else {
                DependencyTable::build(events, num_nodes)
            });
            self.timers.build_table += t0.elapsed();
            self.tables[0] = Some(Arc::clone(&table));
            table
        } else {
            // Chunked mode: a builder thread streams tables through a
            // bounded (rendezvous + 2 slots) channel, overlapping
            // construction with training.
            let bounds = self.chunk_bounds.clone();
            let events: Arc<[Event]> = events.into();
            let (tx, rx) = sync_channel(2);
            std::thread::spawn(move || {
                for (idx, &(s, e)) in bounds.iter().enumerate() {
                    let t0 = Instant::now();
                    let table = DependencyTable::build_range(&events[s..e], num_nodes, s);
                    if tx.send((idx, table, t0.elapsed())).is_err() {
                        return; // receiver dropped: training finished early
                    }
                }
            });
            self.pending = Some(rx);
            self.table_for_chunk(0)
        };

        // Maximum Endurance Profiling (over the first chunk's coverage —
        // the whole stream when unchunked). The batch count `B` entering
        // the decay schedule (Equation 6) always reflects the full
        // training stream, not just the profiled chunk.
        let covered = first_table.end() - first_table.base();
        let abs = Abs::profile(
            &first_table,
            covered,
            self.cfg.preset_batch_size,
            self.cfg.seed,
        );
        let mut stats = abs.stats();
        stats.batch_count = events.len().div_ceil(self.cfg.preset_batch_size);
        let abs = Abs::from_stats(stats);
        let max_r = abs.initial_max_r();
        self.diffuser =
            Some(TgDiffuser::new(first_table, max_r).with_threads(self.cfg.lookup_threads));
        self.abs = Some(abs);
    }

    fn reset_epoch(&mut self) {
        if self.streaming {
            // The trainer announces chunk 0 again via `enter_chunk`,
            // which swaps its table in and resets the diffuser's
            // pointers; nothing to fetch here.
            self.current_chunk = 0;
            if let Some(sg) = self.sg.as_mut() {
                sg.reset();
            }
            if let Some(abs) = self.abs.as_mut() {
                abs.reset_epoch();
            }
            return;
        }
        if self.current_chunk != 0 {
            let t = self.table_for_chunk(0);
            self.diffuser
                .as_mut()
                .expect("reset_epoch before prepare")
                .swap_table(t);
            self.current_chunk = 0;
        } else if let Some(d) = self.diffuser.as_mut() {
            d.reset();
        }
        if let Some(sg) = self.sg.as_mut() {
            sg.reset();
        }
        if let Some(abs) = self.abs.as_mut() {
            abs.reset_epoch();
        }
    }

    fn next_batch_end(&mut self, start: EventId, limit: EventId) -> EventId {
        assert!(start < limit, "next_batch_end on empty range");
        // Advance to the chunk containing `start`.
        while start >= self.chunk_bounds[self.current_chunk].1 {
            self.current_chunk += 1;
            let t = self.table_for_chunk(self.current_chunk);
            self.diffuser
                .as_mut()
                .expect("scheduler not prepared")
                .swap_table(t);
        }
        let chunk_end = self.chunk_bounds[self.current_chunk].1;
        let bound = limit.min(chunk_end);

        let t0 = Instant::now();
        let stable: &[bool] = match &self.sg {
            Some(sg) => sg.flags(),
            None => &self.no_stable,
        };
        let end = self
            .diffuser
            .as_mut()
            .expect("scheduler not prepared")
            .next_boundary(start, bound, stable);
        self.timers.lookup += t0.elapsed();
        end
    }

    fn after_batch(&mut self, _batch_idx: usize, train_loss: f32) {
        self.global_batch_idx += 1;
        if self.cfg.freeze_max_r {
            return;
        }
        let (Some(abs), Some(diffuser)) = (self.abs.as_mut(), self.diffuser.as_mut()) else {
            return;
        };
        if let Some(new_r) = abs.on_batch(self.global_batch_idx, train_loss) {
            diffuser.set_max_r(new_r);
        }
    }

    fn observe_updates(&mut self, deltas: &[MemoryDelta]) {
        if let Some(sg) = self.sg.as_mut() {
            sg.observe(deltas);
        }
    }

    fn prepare_streaming(
        &mut self,
        total_train: usize,
        num_nodes: usize,
        chunk_size: usize,
    ) -> bool {
        assert!(total_train > 0, "cannot stream an empty training slice");
        assert!(chunk_size > 0, "chunk size must be positive");
        // Idempotent: pipelined executors call this once to learn the
        // table spec, and the shared driver calls it again.
        if self.streaming
            && self.total_train == total_train
            && self.num_nodes == num_nodes
            && self
                .chunk_bounds
                .first()
                .is_some_and(|&(_, e)| e == chunk_size.min(total_train))
        {
            return true;
        }
        // Streaming adopts the source's chunk size: the chunk is the
        // unit of I/O, so `cfg.chunk_size` (the in-memory Cascade_EX
        // knob) is superseded by what the store file was written with.
        self.streaming = true;
        self.total_train = total_train;
        self.num_nodes = num_nodes;
        self.no_stable = vec![false; num_nodes];
        self.sg = if self.cfg.sg_filter {
            Some(SgFilter::new(num_nodes, self.cfg.theta))
        } else {
            None
        };
        self.chunk_bounds = (0..total_train)
            .step_by(chunk_size)
            .map(|s| (s, (s + chunk_size).min(total_train)))
            .collect();
        self.tables = vec![None; self.chunk_bounds.len()];
        self.current_chunk = 0;
        self.abs = None;
        self.diffuser = None;
        self.pending = None;
        true
    }

    fn table_spec(&self) -> Option<TableSpec> {
        if !self.streaming {
            return None;
        }
        Some(TableSpec {
            num_nodes: self.num_nodes,
            incident_only: self.cfg.incident_only_table,
        })
    }

    fn enter_chunk(
        &mut self,
        idx: usize,
        base: EventId,
        events: &[Event],
        prebuilt: Option<PrebuiltTable>,
    ) {
        assert!(self.streaming, "enter_chunk outside streaming mode");
        let spec = TableSpec {
            num_nodes: self.num_nodes,
            incident_only: self.cfg.incident_only_table,
        };
        let table = match prebuilt {
            Some(p) => {
                self.timers.background_build += p.work;
                Arc::new(p.table)
            }
            None => {
                let t0 = Instant::now();
                let t = Arc::new(spec.build(base, events));
                self.timers.build_table += t0.elapsed();
                t
            }
        };
        // Out-of-core: only the current chunk's table stays resident, so
        // `space()` reports the true streaming footprint.
        for slot in &mut self.tables {
            *slot = None;
        }
        self.tables[idx] = Some(Arc::clone(&table));
        self.current_chunk = idx;
        match self.diffuser.as_mut() {
            Some(d) => d.swap_table(table),
            None => {
                if self.abs.is_none() {
                    // First chunk seen: profile it exactly as the
                    // in-memory `prepare` profiles its first chunk.
                    let covered = table.end() - table.base();
                    let abs =
                        Abs::profile(&table, covered, self.cfg.preset_batch_size, self.cfg.seed);
                    let mut stats = abs.stats();
                    stats.batch_count = self.total_train.div_ceil(self.cfg.preset_batch_size);
                    self.abs = Some(Abs::from_stats(stats));
                }
                let max_r = self.restored_max_r.take().unwrap_or_else(|| {
                    self.abs
                        .as_ref()
                        .expect("abs was just installed above")
                        .initial_max_r()
                });
                self.diffuser =
                    Some(TgDiffuser::new(table, max_r).with_threads(self.cfg.lookup_threads));
            }
        }
    }

    fn export_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.push(1u8); // blob version
        push_u64(&mut buf, self.global_batch_idx as u64);
        match self.diffuser.as_ref() {
            Some(d) => {
                buf.push(1);
                push_u64(&mut buf, d.max_r() as u64);
            }
            None => buf.push(0),
        }
        match self.abs.as_ref() {
            Some(abs) => {
                buf.push(1);
                let s = abs.stats();
                push_u64(&mut buf, s.max as u64);
                buf.extend_from_slice(&s.mean.to_le_bytes());
                push_u64(&mut buf, s.min as u64);
                push_u64(&mut buf, s.batch_count as u64);
                let (best, stalled) = abs.convergence_state();
                buf.extend_from_slice(&best.to_le_bytes());
                push_u64(&mut buf, stalled as u64);
            }
            None => buf.push(0),
        }
        match self.sg.as_ref() {
            Some(sg) => {
                buf.push(1);
                push_u64(&mut buf, sg.flags().len() as u64);
                buf.extend(sg.flags().iter().map(|&f| f as u8));
                let (updates, stable) = sg.epoch_counters();
                push_u64(&mut buf, updates as u64);
                push_u64(&mut buf, stable as u64);
            }
            None => buf.push(0),
        }
        buf
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut off = 0usize;
        if read_u8(bytes, &mut off)? != 1 {
            return Err("unsupported scheduler state version".to_string());
        }
        self.global_batch_idx = read_u64(bytes, &mut off)? as usize;
        if read_u8(bytes, &mut off)? == 1 {
            self.restored_max_r = Some(read_u64(bytes, &mut off)? as usize);
        }
        if read_u8(bytes, &mut off)? == 1 {
            let max = read_u64(bytes, &mut off)? as usize;
            let mean = f64::from_le_bytes(read_array::<8>(bytes, &mut off)?);
            let min = read_u64(bytes, &mut off)? as usize;
            let batch_count = read_u64(bytes, &mut off)? as usize;
            let best = f32::from_le_bytes(read_array::<4>(bytes, &mut off)?);
            let stalled = read_u64(bytes, &mut off)? as usize;
            let mut abs = Abs::from_stats(EnduranceStats {
                max,
                mean,
                min,
                batch_count,
            });
            abs.restore_convergence_state(best, stalled);
            self.abs = Some(abs);
        }
        if read_u8(bytes, &mut off)? == 1 {
            let n = read_u64(bytes, &mut off)? as usize;
            if off + n > bytes.len() {
                return Err("scheduler state truncated in stable flags".to_string());
            }
            let flags: Vec<bool> = bytes[off..off + n].iter().map(|&b| b != 0).collect();
            off += n;
            let updates = read_u64(bytes, &mut off)? as usize;
            let stable = read_u64(bytes, &mut off)? as usize;
            let sg = self
                .sg
                .as_mut()
                .ok_or("checkpoint has SG-Filter state but filter is disabled")?;
            sg.restore(&flags, updates, stable)?;
        }
        Ok(())
    }

    fn timers(&self) -> StrategyTimers {
        self.timers
    }

    fn space(&self) -> StrategySpace {
        StrategySpace {
            dependency_bytes: self.tables.iter().flatten().map(|t| t.size_bytes()).sum(),
            flag_bytes: self.sg.as_ref().map_or(0, SgFilter::size_bytes),
        }
    }
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u8(bytes: &[u8], off: &mut usize) -> Result<u8, String> {
    let b = *bytes
        .get(*off)
        .ok_or("scheduler state truncated".to_string())?;
    *off += 1;
    Ok(b)
}

fn read_u64(bytes: &[u8], off: &mut usize) -> Result<u64, String> {
    Ok(u64::from_le_bytes(read_array::<8>(bytes, off)?))
}

fn read_array<const N: usize>(bytes: &[u8], off: &mut usize) -> Result<[u8; N], String> {
    let slice = bytes
        .get(*off..*off + N)
        .ok_or("scheduler state truncated".to_string())?;
    *off += N;
    Ok(slice.try_into().expect("slice length checked above"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_tgraph::SynthConfig;

    fn small_data() -> cascade_tgraph::Dataset {
        SynthConfig::wiki().with_scale(0.01).generate(5)
    }

    fn prepared(cfg: CascadeConfig) -> (CascadeScheduler, usize) {
        let data = small_data();
        let mut s = CascadeScheduler::new(cfg);
        s.prepare(data.stream().events(), data.num_nodes());
        (s, data.num_events())
    }

    fn base_cfg() -> CascadeConfig {
        CascadeConfig {
            preset_batch_size: 50,
            ..CascadeConfig::default()
        }
    }

    #[test]
    fn batches_partition_the_stream() {
        let (mut s, n) = prepared(base_cfg());
        let mut start = 0;
        while start < n {
            let end = s.next_batch_end(start, n);
            assert!(end > start && end <= n);
            start = end;
        }
        assert_eq!(start, n);
    }

    #[test]
    fn cascade_batches_exceed_preset_on_average() {
        let (mut s, n) = prepared(base_cfg());
        let mut start = 0;
        let mut batches = 0usize;
        while start < n {
            start = s.next_batch_end(start, n);
            batches += 1;
        }
        let avg = n as f64 / batches as f64;
        assert!(
            avg > 50.0,
            "average cascade batch {} not larger than preset 50",
            avg
        );
    }

    #[test]
    fn chunked_equals_unchunked_partition_when_chunks_align() {
        // With chunking, boundaries additionally snap to chunk ends, but
        // the stream is still fully partitioned.
        let (mut s, n) = prepared(base_cfg().with_chunk_size(97));
        let mut start = 0;
        while start < n {
            let end = s.next_batch_end(start, n);
            assert!(end > start && end <= n);
            start = end;
        }
        assert_eq!(s.name(), "Cascade_EX");
    }

    #[test]
    fn ablation_name_reflects_sg_filter() {
        assert_eq!(CascadeScheduler::new(base_cfg()).name(), "Cascade");
        assert_eq!(
            CascadeScheduler::new(base_cfg().without_sg_filter()).name(),
            "Cascade-TB"
        );
    }

    #[test]
    fn reset_epoch_reproduces_boundaries() {
        let (mut s, n) = prepared(base_cfg().without_sg_filter());
        let first = s.next_batch_end(0, n);
        s.reset_epoch();
        assert_eq!(s.next_batch_end(0, n), first);
    }

    #[test]
    fn space_accounts_tables_and_flags() {
        let (s, _) = prepared(base_cfg());
        let space = s.space();
        assert!(space.dependency_bytes > 0);
        assert!(space.flag_bytes > 0);

        let (s2, _) = prepared(base_cfg().without_sg_filter());
        assert_eq!(s2.space().flag_bytes, 0);
    }

    #[test]
    fn decay_reduces_max_r_under_stalled_loss() {
        let (mut s, _) = prepared(base_cfg());
        let initial = s.max_r().unwrap();
        for i in 0..200 {
            s.after_batch(i, 1.0); // never-improving loss
        }
        assert!(
            s.max_r().unwrap() <= initial,
            "Max_r grew under stalled loss"
        );
    }

    #[test]
    fn timers_accumulate() {
        let (mut s, n) = prepared(base_cfg());
        let _ = s.next_batch_end(0, n);
        let t = s.timers();
        assert!(t.build_table.as_nanos() > 0);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn prepare_rejects_empty() {
        let mut s = CascadeScheduler::new(base_cfg());
        s.prepare(&[], 0);
    }

    #[test]
    fn streaming_boundaries_match_in_memory_chunked() {
        let data = small_data();
        let n = data.num_events();
        let events = data.stream().events();
        let chunk = 97;

        let mut a = CascadeScheduler::new(base_cfg().with_chunk_size(chunk));
        a.prepare(events, data.num_nodes());
        let mut bounds_a = Vec::new();
        let mut start = 0;
        while start < n {
            let e = a.next_batch_end(start, n);
            bounds_a.push(e);
            start = e;
        }

        let mut b = CascadeScheduler::new(base_cfg());
        assert!(b.prepare_streaming(n, data.num_nodes(), chunk));
        let mut bounds_b = Vec::new();
        let mut start = 0;
        let mut next_enter = 0;
        while start < n {
            while next_enter * chunk <= start && next_enter * chunk < n {
                let cs = next_enter * chunk;
                let ce = (cs + chunk).min(n);
                b.enter_chunk(next_enter, cs, &events[cs..ce], None);
                next_enter += 1;
            }
            let e = b.next_batch_end(start, n);
            bounds_b.push(e);
            start = e;
        }
        assert_eq!(bounds_a, bounds_b);
        // Out-of-core mode keeps a single table resident.
        assert!(b.space().dependency_bytes < a.space().dependency_bytes);
    }

    #[test]
    fn streaming_prepare_is_idempotent() {
        let data = small_data();
        let mut s = CascadeScheduler::new(base_cfg());
        assert!(s.prepare_streaming(data.num_events(), data.num_nodes(), 128));
        let spec = s.table_spec().expect("streaming mode has a table spec");
        assert_eq!(spec.num_nodes, data.num_nodes());
        s.enter_chunk(0, 0, &data.stream().events()[..128], None);
        let max_r = s.max_r();
        // A second call with identical geometry must not reset state.
        assert!(s.prepare_streaming(data.num_events(), data.num_nodes(), 128));
        assert_eq!(s.max_r(), max_r);
    }

    #[test]
    fn state_roundtrip_restores_monitors() {
        let data = small_data();
        let events = data.stream().events();
        let mut s = CascadeScheduler::new(base_cfg());
        assert!(s.prepare_streaming(data.num_events(), data.num_nodes(), 200));
        s.enter_chunk(0, 0, &events[..200], None);
        for i in 1..=30 {
            let _ = s.next_batch_end(0, 50);
            s.after_batch(i, 1.0); // stalled loss exercises the monitor
        }
        let blob = s.export_state();

        let mut r = CascadeScheduler::new(base_cfg());
        assert!(r.prepare_streaming(data.num_events(), data.num_nodes(), 200));
        r.import_state(&blob).expect("state roundtrips");
        r.enter_chunk(0, 0, &events[..200], None);
        assert_eq!(r.max_r(), s.max_r());
        assert_eq!(r.export_state(), s.export_state());
    }

    #[test]
    fn import_rejects_garbage() {
        let data = small_data();
        let mut s = CascadeScheduler::new(base_cfg());
        assert!(s.prepare_streaming(data.num_events(), data.num_nodes(), 200));
        assert!(s.import_state(&[9, 9, 9]).is_err());
    }
}
