//! The Similarity-Aware Graph Filter (§4.3): marks nodes whose memories
//! have stabilized so the TG-Diffuser can ignore their temporal
//! dependencies.

use cascade_models::MemoryDelta;
use cascade_tensor::cosine_similarity;

/// Tracks per-node stable flags from memory-update similarities.
///
/// After each batch's memory updates, the filter compares every updated
/// node's memory before and after the update; cosine similarity at or
/// above `theta` marks the node stable, below clears the flag (Figure 8a).
/// Flags reset to all-false at every epoch start (§4.1).
///
/// # Examples
///
/// ```
/// use cascade_core::SgFilter;
/// use cascade_models::MemoryDelta;
/// use cascade_tgraph::NodeId;
///
/// let mut filter = SgFilter::new(4, 0.9);
/// filter.observe(&[MemoryDelta {
///     node: NodeId(2),
///     pre: vec![1.0, 0.0],
///     post: vec![1.0, 0.01],
/// }]);
/// assert!(filter.flags()[2]);
/// ```
#[derive(Clone, Debug)]
pub struct SgFilter {
    flags: Vec<bool>,
    theta: f32,
    epoch_updates: usize,
    epoch_stable: usize,
}

impl SgFilter {
    /// Creates a filter for `num_nodes` nodes with similarity threshold
    /// `theta` (the paper's default is 0.9).
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not in `[0, 1]`.
    pub fn new(num_nodes: usize, theta: f32) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
        SgFilter {
            flags: vec![false; num_nodes],
            theta,
            epoch_updates: 0,
            epoch_stable: 0,
        }
    }

    /// The similarity threshold θ_sim.
    pub fn theta(&self) -> f32 {
        self.theta
    }

    /// Current stable flags, one per node.
    pub fn flags(&self) -> &[bool] {
        &self.flags
    }

    /// Number of nodes currently flagged stable.
    pub fn stable_count(&self) -> usize {
        self.flags.iter().filter(|&&f| f).count()
    }

    /// Updates flags from a batch's memory transitions (Figure 8a):
    /// `sim(s⁻, s⁺) > θ` sets the flag, otherwise clears it.
    pub fn observe(&mut self, deltas: &[MemoryDelta]) {
        for d in deltas {
            let sim = cosine_similarity(&d.pre, &d.post);
            let stable = sim >= self.theta;
            self.flags[d.node.index()] = stable;
            self.epoch_updates += 1;
            if stable {
                self.epoch_stable += 1;
            }
        }
    }

    /// Fraction of this epoch's memory updates that were stable — the
    /// quantity Figure 5 plots per epoch.
    pub fn epoch_stable_ratio(&self) -> f64 {
        if self.epoch_updates == 0 {
            return 0.0;
        }
        self.epoch_stable as f64 / self.epoch_updates as f64
    }

    /// Resets flags and epoch counters (start of each epoch, §4.1).
    pub fn reset(&mut self) {
        self.flags.fill(false);
        self.epoch_updates = 0;
        self.epoch_stable = 0;
    }

    /// Bytes held by the stable flags (the "SF" bar of Figure 13(c)).
    pub fn size_bytes(&self) -> usize {
        self.flags.len()
    }

    /// Epoch counters behind
    /// [`epoch_stable_ratio`](SgFilter::epoch_stable_ratio):
    /// `(epoch_updates, epoch_stable)`.
    pub fn epoch_counters(&self) -> (usize, usize) {
        (self.epoch_updates, self.epoch_stable)
    }

    /// Restores flags and epoch counters from a mid-stream checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a description when `flags` has the wrong node count.
    pub fn restore(
        &mut self,
        flags: &[bool],
        epoch_updates: usize,
        epoch_stable: usize,
    ) -> Result<(), String> {
        if flags.len() != self.flags.len() {
            return Err(format!(
                "stable-flag count mismatch: checkpoint has {}, filter has {}",
                flags.len(),
                self.flags.len()
            ));
        }
        self.flags.copy_from_slice(flags);
        self.epoch_updates = epoch_updates;
        self.epoch_stable = epoch_stable;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_tgraph::NodeId;

    fn delta(node: u32, pre: Vec<f32>, post: Vec<f32>) -> MemoryDelta {
        MemoryDelta {
            node: NodeId(node),
            pre,
            post,
        }
    }

    #[test]
    fn similar_update_sets_flag() {
        let mut f = SgFilter::new(3, 0.9);
        f.observe(&[delta(1, vec![1.0, 0.0], vec![0.99, 0.05])]);
        assert!(f.flags()[1]);
        assert!(!f.flags()[0]);
    }

    #[test]
    fn dissimilar_update_clears_flag() {
        let mut f = SgFilter::new(2, 0.9);
        f.observe(&[delta(0, vec![1.0, 0.0], vec![1.0, 0.0])]);
        assert!(f.flags()[0]);
        f.observe(&[delta(0, vec![1.0, 0.0], vec![0.0, 1.0])]);
        assert!(!f.flags()[0], "orthogonal update must clear the flag");
    }

    #[test]
    fn threshold_zero_marks_everything() {
        let mut f = SgFilter::new(2, 0.0);
        f.observe(&[delta(0, vec![1.0, 0.0], vec![0.0, 1.0])]);
        assert!(f.flags()[0]);
    }

    #[test]
    fn threshold_one_requires_identical_direction() {
        let mut f = SgFilter::new(2, 1.0);
        f.observe(&[delta(0, vec![1.0, 0.0], vec![2.0, 0.0])]);
        assert!(f.flags()[0]); // same direction, sim = 1
        f.observe(&[delta(0, vec![1.0, 0.0], vec![1.0, 0.2])]);
        assert!(!f.flags()[0]);
    }

    #[test]
    fn epoch_ratio_counts_updates_not_nodes() {
        let mut f = SgFilter::new(3, 0.9);
        f.observe(&[
            delta(0, vec![1.0, 0.0], vec![1.0, 0.0]), // stable
            delta(0, vec![1.0, 0.0], vec![0.0, 1.0]), // unstable (same node)
            delta(1, vec![1.0, 0.0], vec![1.0, 0.0]), // stable
            delta(2, vec![0.0, 1.0], vec![1.0, 0.0]), // unstable
        ]);
        assert!((f.epoch_stable_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_flags_and_counters() {
        let mut f = SgFilter::new(2, 0.9);
        f.observe(&[delta(0, vec![1.0], vec![1.0])]);
        f.reset();
        assert_eq!(f.stable_count(), 0);
        assert_eq!(f.epoch_stable_ratio(), 0.0);
    }

    #[test]
    fn zero_memory_counts_stable() {
        // A node whose memory stayed at zero is by definition unchanged.
        let mut f = SgFilter::new(1, 0.9);
        f.observe(&[delta(0, vec![0.0, 0.0], vec![0.0, 0.0])]);
        assert!(f.flags()[0]);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn rejects_bad_theta() {
        let _ = SgFilter::new(1, 1.5);
    }
}
