//! The Adaptive Batch Sensor (§4.4): profiles Maximum Revisit Endurance
//! statistics at the preset small batch size and decays `Max_r`
//! logarithmically when training stops converging (Equations 5–7).

use cascade_tgraph::DetRng;

use crate::dependency::DependencyTable;

/// Endurance statistics gathered by Maximum Endurance Profiling
/// (Figure 9).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnduranceStats {
    /// Largest per-batch Max Endurance observed (`mr_max`).
    pub max: usize,
    /// Mean per-batch Max Endurance (`mr_mean`).
    pub mean: f64,
    /// Smallest per-batch Max Endurance (`mr_min`).
    pub min: usize,
    /// Number of batches under the preset batch size (`B`).
    pub batch_count: usize,
}

/// Profiles the input and adaptively tunes `Max_r` for the TG-Diffuser.
///
/// # Profiling
///
/// The stream is segmented at the preset small batch size; for a random
/// sample of batches, each node's *relevant-event count* (its
/// dependency-table entries falling inside the batch) is computed, and the
/// batch's Max Endurance is the largest such count. `mr_max`, `mr_mean`,
/// `mr_min` summarize the sample.
///
/// # Decay schedule
///
/// `Max_r` starts at `2·mr_mean` (clamped into `[mr_min, mr_max]` — the
/// paper's Equation 7 has min/max transposed; the evident intent is an
/// interval clamp). When the training loss has not improved for
/// `patience` batches, checked every `decay_period` batches, `Max_r`
/// decays following Equation 5:
///
/// ```text
/// Max_r(i) = 2·mr_mean − α·log(i/β + 1),   α = mr_min²/mr_max,  β = B/α
/// ```
#[derive(Clone, Debug)]
pub struct Abs {
    stats: EnduranceStats,
    patience: usize,
    decay_period: usize,
    best_loss: f32,
    batches_since_improvement: usize,
}

impl Abs {
    /// Number of batches sampled during profiling (the paper samples 50).
    pub const PROFILE_SAMPLES: usize = 50;

    /// Profiles `table` over `num_events` training events at the preset
    /// `batch_size` and constructs the sensor.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `num_events == 0`.
    pub fn profile(
        table: &DependencyTable,
        num_events: usize,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        let stats = max_endurance_profiling(table, num_events, batch_size, seed);
        Abs {
            stats,
            patience: 10,
            decay_period: 20,
            best_loss: f32::INFINITY,
            batches_since_improvement: 0,
        }
    }

    /// Builds a sensor from precomputed statistics (tests, ablations).
    pub fn from_stats(stats: EnduranceStats) -> Self {
        Abs {
            stats,
            patience: 10,
            decay_period: 20,
            best_loss: f32::INFINITY,
            batches_since_improvement: 0,
        }
    }

    /// The profiled endurance statistics.
    pub fn stats(&self) -> EnduranceStats {
        self.stats
    }

    /// The initial `Max_r`: `2·mr_mean`, clamped (Equation 5 at `i = 0`).
    pub fn initial_max_r(&self) -> usize {
        self.clamp(2.0 * self.stats.mean)
    }

    /// Observes a batch's training loss; returns a new `Max_r` when the
    /// logarithmic decay triggers (loss stalled for `patience` batches and
    /// `batch_idx` is a `decay_period` boundary), else `None`.
    pub fn on_batch(&mut self, batch_idx: usize, train_loss: f32) -> Option<usize> {
        if train_loss < self.best_loss - 1e-6 {
            self.best_loss = train_loss;
            self.batches_since_improvement = 0;
            return None;
        }
        self.batches_since_improvement += 1;
        let at_checkpoint = batch_idx > 0 && batch_idx.is_multiple_of(self.decay_period);
        if at_checkpoint && self.batches_since_improvement >= self.patience {
            self.batches_since_improvement = 0;
            Some(self.decayed_max_r(batch_idx))
        } else {
            None
        }
    }

    /// Equation 5 evaluated at batch `i`, clamped by Equation 7.
    pub fn decayed_max_r(&self, i: usize) -> usize {
        let alpha =
            (self.stats.min as f64 * self.stats.min as f64) / (self.stats.max as f64).max(1.0);
        let beta = self.stats.batch_count as f64 / alpha.max(1e-9);
        let raw = 2.0 * self.stats.mean - alpha * ((i as f64 / beta.max(1e-9)) + 1.0).ln();
        self.clamp(raw)
    }

    /// Resets the convergence monitor (epoch start).
    pub fn reset_epoch(&mut self) {
        self.best_loss = f32::INFINITY;
        self.batches_since_improvement = 0;
    }

    /// Snapshot of the convergence monitor, for mid-stream checkpoints:
    /// `(best_loss, batches_since_improvement)`.
    pub fn convergence_state(&self) -> (f32, usize) {
        (self.best_loss, self.batches_since_improvement)
    }

    /// Restores a snapshot captured by
    /// [`convergence_state`](Abs::convergence_state).
    pub fn restore_convergence_state(&mut self, best_loss: f32, batches_since_improvement: usize) {
        self.best_loss = best_loss;
        self.batches_since_improvement = batches_since_improvement;
    }

    fn clamp(&self, raw: f64) -> usize {
        let lo = self.stats.min.max(1);
        // Equation 7 as printed (`max(mr_max, min(mr_min, Max_r))`) is
        // self-contradictory: it would immediately discard the paper's own
        // initial value of 2·mr_mean whenever that exceeds mr_max. The
        // evident intent is that the initial value is always admissible
        // and the decay moves within [mr_min, max(mr_max, 2·mr_mean)].
        let hi = self
            .stats
            .max
            .max((2.0 * self.stats.mean).ceil() as usize)
            .max(lo);
        (raw.round() as i64).clamp(lo as i64, hi as i64) as usize
    }
}

/// Maximum Endurance Profiling (Figure 9): segments the stream into
/// `batch_size` windows, samples up to [`Abs::PROFILE_SAMPLES`] of them,
/// and summarizes the per-batch maxima of per-node relevant-event counts.
///
/// # Panics
///
/// Panics if `batch_size == 0` or `num_events == 0`.
pub fn max_endurance_profiling(
    table: &DependencyTable,
    num_events: usize,
    batch_size: usize,
    seed: u64,
) -> EnduranceStats {
    assert!(batch_size > 0, "batch_size must be positive");
    assert!(num_events > 0, "cannot profile an empty stream");
    let batch_count = num_events.div_ceil(batch_size);
    let mut rng = DetRng::new(seed);

    // Sample batch indices without replacement (or all, if few).
    let mut indices: Vec<usize> = (0..batch_count).collect();
    if batch_count > Abs::PROFILE_SAMPLES {
        // Partial Fisher–Yates.
        for i in 0..Abs::PROFILE_SAMPLES {
            let j = i + rng.index(batch_count - i);
            indices.swap(i, j);
        }
        indices.truncate(Abs::PROFILE_SAMPLES);
    }

    let mut maxima = Vec::with_capacity(indices.len());
    for &b in &indices {
        let lo = table.base() + b * batch_size;
        let hi = (lo + batch_size).min(table.base() + num_events);
        let mut batch_max = 0usize;
        for n in 0..table.num_nodes() {
            let from = table.entry_lower_bound(n, lo);
            let to = table.entry_lower_bound(n, hi);
            batch_max = batch_max.max(to - from);
        }
        maxima.push(batch_max.max(1));
    }

    let max = maxima.iter().copied().max().unwrap_or(1);
    let min = maxima.iter().copied().min().unwrap_or(1);
    let mean = maxima.iter().sum::<usize>() as f64 / maxima.len() as f64;
    EnduranceStats {
        max,
        mean,
        min,
        batch_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_tgraph::Event;

    fn figure9_table() -> DependencyTable {
        // Figure 9 reuses the Figure 7 event list.
        let pairs = [
            (1, 2),
            (1, 7),
            (1, 8),
            (1, 9),
            (10, 11),
            (10, 12),
            (10, 13),
            (10, 4),
            (1, 3),
            (1, 5),
            (1, 6),
            (3, 4),
        ];
        let events: Vec<Event> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| Event::new(s as u32, d as u32, i as f64))
            .collect();
        DependencyTable::build(&events, 14)
    }

    #[test]
    fn figure9_profile_matches_paper() {
        // With batch size 4 over 12 events, every batch has Max
        // Endurance 4, so mean = 4 and batch count = 3.
        let stats = max_endurance_profiling(&figure9_table(), 12, 4, 0);
        assert_eq!(stats.batch_count, 3);
        assert_eq!(stats.max, 4);
        assert_eq!(stats.min, 4);
        assert!((stats.mean - 4.0).abs() < 1e-9);
    }

    #[test]
    fn initial_max_r_is_twice_mean_clamped() {
        let abs = Abs::from_stats(EnduranceStats {
            max: 20,
            mean: 6.0,
            min: 2,
            batch_count: 100,
        });
        assert_eq!(abs.initial_max_r(), 12);

        // The initial value 2·mean is admissible even above mr_max (the
        // paper's Equation 7 as printed would contradict its own initial
        // value; see the clamp's comment).
        let abs = Abs::from_stats(EnduranceStats {
            max: 10,
            mean: 8.0,
            min: 2,
            batch_count: 100,
        });
        assert_eq!(abs.initial_max_r(), 16);
    }

    #[test]
    fn decay_is_monotone_and_bounded() {
        let abs = Abs::from_stats(EnduranceStats {
            max: 30,
            mean: 10.0,
            min: 3,
            batch_count: 50,
        });
        let mut last = usize::MAX;
        for i in [0, 10, 100, 1000, 100000] {
            let r = abs.decayed_max_r(i);
            assert!(r <= last, "decay increased at {}", i);
            assert!((3..=30).contains(&r), "out of clamp range: {}", r);
            last = r;
        }
    }

    #[test]
    fn improving_loss_never_triggers_decay() {
        let mut abs = Abs::from_stats(EnduranceStats {
            max: 30,
            mean: 10.0,
            min: 3,
            batch_count: 50,
        });
        let mut loss = 10.0;
        for i in 1..200 {
            loss *= 0.99;
            assert_eq!(abs.on_batch(i, loss), None);
        }
    }

    #[test]
    fn stalled_loss_triggers_decay_at_period() {
        let mut abs = Abs::from_stats(EnduranceStats {
            max: 30,
            mean: 10.0,
            min: 3,
            batch_count: 50,
        });
        abs.on_batch(0, 1.0); // establish best loss
        let mut triggered_at = None;
        for i in 1..100 {
            if abs.on_batch(i, 1.0).is_some() {
                triggered_at = Some(i);
                break;
            }
        }
        // Stall begins at batch 1; patience 10 is exceeded by batch 11,
        // and the next decay-period boundary is batch 20.
        assert_eq!(triggered_at, Some(20));
    }

    #[test]
    fn decayed_value_applied_is_less_than_initial() {
        // α = mr_min²/mr_max is large when min approaches max, making the
        // decay visible within a few thousand batches.
        let abs = Abs::from_stats(EnduranceStats {
            max: 10,
            mean: 5.0,
            min: 6,
            batch_count: 30,
        });
        assert!(abs.decayed_max_r(10_000) < abs.initial_max_r());
    }

    #[test]
    fn profiling_deterministic() {
        let t = figure9_table();
        let a = max_endurance_profiling(&t, 12, 3, 7);
        let b = max_endurance_profiling(&t, 12, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn rejects_empty_profile() {
        let t = DependencyTable::build(&[], 2);
        let _ = max_endurance_profiling(&t, 0, 4, 0);
    }
}
