//! Node memory and message mailboxes.
//!
//! Every memory-based TGNN keeps a state vector per node ("node memory",
//! §2.2) plus the raw messages pending aggregation (Equation 2/3). Both
//! stores live outside the autograd graph: batches read rows into leaf
//! tensors and write detached results back — the stop-gradient-at-batch-
//! boundary semantics of TGN/TGL training.

use cascade_tensor::Tensor;
use cascade_tgraph::NodeId;

/// Dense per-node state vectors with last-update timestamps.
///
/// # Examples
///
/// ```
/// use cascade_models::NodeMemory;
/// use cascade_tgraph::NodeId;
///
/// let mut mem = NodeMemory::new(10, 4);
/// mem.write(NodeId(3), &[1.0, 2.0, 3.0, 4.0], 0.5);
/// assert_eq!(mem.read(NodeId(3)), &[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(mem.last_update(NodeId(3)), 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct NodeMemory {
    data: Vec<f32>,
    last_update: Vec<f64>,
    dim: usize,
}

impl NodeMemory {
    /// Creates zeroed memory for `num_nodes` nodes of width `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(num_nodes: usize, dim: usize) -> Self {
        assert!(dim > 0, "memory dim must be positive");
        NodeMemory {
            data: vec![0.0; num_nodes * dim],
            last_update: vec![0.0; num_nodes],
            dim,
        }
    }

    /// Memory width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.last_update.len()
    }

    /// Borrow of one node's memory.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn read(&self, node: NodeId) -> &[f32] {
        let i = node.index();
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Copies one node's memory out.
    pub fn snapshot(&self, node: NodeId) -> Vec<f32> {
        self.read(node).to_vec()
    }

    /// Overwrites one node's memory and records the update time.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != dim` or the node is out of range.
    pub fn write(&mut self, node: NodeId, values: &[f32], time: f64) {
        assert_eq!(values.len(), self.dim, "memory write width mismatch");
        let i = node.index();
        self.data[i * self.dim..(i + 1) * self.dim].copy_from_slice(values);
        self.last_update[i] = time;
    }

    /// The node's last memory-update timestamp (0 before any update).
    pub fn last_update(&self, node: NodeId) -> f64 {
        self.last_update[node.index()]
    }

    /// Gathers rows for `nodes` into a detached `[len, dim]` leaf tensor.
    pub fn gather(&self, nodes: &[NodeId]) -> Tensor {
        let mut out = Vec::with_capacity(nodes.len() * self.dim);
        for &n in nodes {
            out.extend_from_slice(self.read(n));
        }
        Tensor::from_vec(out, [nodes.len(), self.dim])
    }

    /// Zeroes all memories and timestamps (epoch start).
    pub fn reset(&mut self) {
        self.data.fill(0.0);
        self.last_update.fill(0.0);
    }

    /// Bytes held by the memory matrix.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
            + self.last_update.len() * std::mem::size_of::<f64>()
    }
}

/// A bounded per-node queue of raw messages awaiting aggregation.
///
/// Capacity 1 realizes the `most_recent(num = 1)` aggregation of JODIE and
/// TGN; capacity 10 realizes APAN's asynchronous mailbox (Table 1).
#[derive(Clone, Debug)]
pub struct Mailbox {
    slots: Vec<Vec<Vec<f32>>>,
    capacity: usize,
    msg_dim: usize,
}

impl Mailbox {
    /// Creates an empty mailbox.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `msg_dim == 0`.
    pub fn new(num_nodes: usize, capacity: usize, msg_dim: usize) -> Self {
        assert!(capacity > 0, "mailbox capacity must be positive");
        assert!(msg_dim > 0, "mailbox message dim must be positive");
        Mailbox {
            slots: vec![Vec::new(); num_nodes],
            capacity,
            msg_dim,
        }
    }

    /// Message width.
    pub fn msg_dim(&self) -> usize {
        self.msg_dim
    }

    /// Per-node capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a message, evicting the oldest beyond capacity.
    ///
    /// # Panics
    ///
    /// Panics if `msg.len() != msg_dim`.
    pub fn push(&mut self, node: NodeId, msg: Vec<f32>) {
        assert_eq!(msg.len(), self.msg_dim, "mailbox message width mismatch");
        let q = &mut self.slots[node.index()];
        if q.len() >= self.capacity {
            q.remove(0);
        }
        q.push(msg);
    }

    /// The pending messages of a node, oldest first.
    pub fn messages(&self, node: NodeId) -> &[Vec<f32>] {
        &self.slots[node.index()]
    }

    /// `true` if the node has at least one pending message.
    pub fn has_messages(&self, node: NodeId) -> bool {
        !self.slots[node.index()].is_empty()
    }

    /// Drops the pending messages of one node (after consumption).
    pub fn clear_node(&mut self, node: NodeId) {
        self.slots[node.index()].clear();
    }

    /// Drops all messages (epoch start).
    pub fn reset(&mut self) {
        for q in &mut self.slots {
            q.clear();
        }
    }

    /// Approximate bytes held by pending messages.
    pub fn size_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|q| q.iter().map(|m| m.len() * 4).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_starts_zeroed() {
        let m = NodeMemory::new(3, 2);
        assert_eq!(m.read(NodeId(1)), &[0.0, 0.0]);
        assert_eq!(m.last_update(NodeId(1)), 0.0);
    }

    #[test]
    fn write_then_read() {
        let mut m = NodeMemory::new(3, 2);
        m.write(NodeId(2), &[5.0, 6.0], 9.0);
        assert_eq!(m.read(NodeId(2)), &[5.0, 6.0]);
        assert_eq!(m.last_update(NodeId(2)), 9.0);
        // Neighbors untouched.
        assert_eq!(m.read(NodeId(1)), &[0.0, 0.0]);
    }

    #[test]
    fn gather_is_leaf() {
        let mut m = NodeMemory::new(3, 2);
        m.write(NodeId(0), &[1.0, 2.0], 1.0);
        let t = m.gather(&[NodeId(0), NodeId(0), NodeId(1)]);
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.to_vec(), vec![1.0, 2.0, 1.0, 2.0, 0.0, 0.0]);
        assert!(!t.is_requires_grad());
    }

    #[test]
    fn reset_clears() {
        let mut m = NodeMemory::new(2, 2);
        m.write(NodeId(0), &[1.0, 1.0], 5.0);
        m.reset();
        assert_eq!(m.read(NodeId(0)), &[0.0, 0.0]);
        assert_eq!(m.last_update(NodeId(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn write_rejects_bad_width() {
        NodeMemory::new(2, 3).write(NodeId(0), &[1.0], 0.0);
    }

    #[test]
    fn mailbox_evicts_oldest() {
        let mut mb = Mailbox::new(2, 2, 1);
        mb.push(NodeId(0), vec![1.0]);
        mb.push(NodeId(0), vec![2.0]);
        mb.push(NodeId(0), vec![3.0]);
        assert_eq!(mb.messages(NodeId(0)), &[vec![2.0], vec![3.0]]);
    }

    #[test]
    fn mailbox_capacity_one_keeps_latest() {
        let mut mb = Mailbox::new(1, 1, 2);
        mb.push(NodeId(0), vec![1.0, 1.0]);
        mb.push(NodeId(0), vec![2.0, 2.0]);
        assert_eq!(mb.messages(NodeId(0)), &[vec![2.0, 2.0]]);
    }

    #[test]
    fn mailbox_reset() {
        let mut mb = Mailbox::new(1, 4, 1);
        mb.push(NodeId(0), vec![1.0]);
        mb.reset();
        assert!(!mb.has_messages(NodeId(0)));
        assert_eq!(mb.size_bytes(), 0);
    }

    #[test]
    fn size_accounting() {
        let m = NodeMemory::new(10, 4);
        assert_eq!(m.size_bytes(), 10 * 4 * 4 + 10 * 8);
    }
}
