//! The memory plane: the mutable-state spine of a memory-based TGNN.
//!
//! Node memory, mailboxes, and the temporal adjacency store are the
//! three per-node state structures every batch reads and writes
//! (DESIGN.md §12). [`MemoryPlane`] abstracts *where* that state lives
//! so the same [`MemoryTgnn`](crate::MemoryTgnn) compute code drives:
//!
//! * [`LocalPlane`] — the monolithic stores, global-id indexed; the
//!   serial default with zero behavioral delta.
//! * [`ShardedPlane`] — node-id-hash partitioned stores ([`ShardMap`])
//!   with dense per-shard slot tables. Every sampling hash stays keyed
//!   by **global** node id, so reads, writes, and neighbor draws are
//!   bit-identical to the monolith at any shard count.
//! * `cascade-dist`'s `SharedPlane` — [`PlaneShard`]s behind per-shard
//!   `RwLock`s, shared by N worker threads.
//!
//! All mutation goes through `&mut self` trait methods, which keeps the
//! det-taint sink analysis (`memory_write`, `mailbox_push`, receiver
//! `plane`) attached to every state write regardless of backing.

use cascade_tensor::Tensor;
use cascade_tgraph::{AdjacencyStore, Event, EventId, NeighborRef, NodeId, ShardMap};

use crate::config::{ModelConfig, UpdaterKind};
use crate::memory::{Mailbox, NodeMemory};

/// The structural dimensions a plane is built from. Derived once from
/// the model configuration so every plane implementation — local,
/// sharded, shared, or a TCP peer's replica — agrees on widths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlaneGeometry {
    /// Nodes covered.
    pub num_nodes: usize,
    /// Node-memory width.
    pub memory_dim: usize,
    /// Per-node mailbox capacity (10 for APAN's mailbox attention,
    /// 1 otherwise — Table 1).
    pub mailbox_capacity: usize,
    /// Raw mailbox message width `[s_src ‖ s_partner ‖ feat ‖ t]`.
    pub raw_msg_dim: usize,
    /// Uniform-sampling seed of the adjacency store.
    pub adj_seed: u64,
}

impl PlaneGeometry {
    /// The geometry a [`MemoryTgnn`](crate::MemoryTgnn) with this
    /// configuration requires.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    pub fn for_config(
        config: &ModelConfig,
        num_nodes: usize,
        edge_feat_dim: usize,
        seed: u64,
    ) -> Self {
        assert!(num_nodes > 0, "a memory plane needs at least one node");
        let d = config.memory_dim;
        PlaneGeometry {
            num_nodes,
            memory_dim: d,
            mailbox_capacity: match config.updater {
                UpdaterKind::MailboxAttention => 10,
                _ => 1,
            },
            raw_msg_dim: 2 * d + edge_feat_dim + 1,
            adj_seed: seed ^ 0x0b,
        }
    }
}

/// Storage backend for a model's per-node state. See the module docs
/// for the implementations.
///
/// Reads are global — any node can be read from any shard's owner or
/// peer (message generation needs both endpoints' memories). Writes are
/// what shard ownership partitions; the dist runtime filters write
/// application by `shard_of` before calling the mutating methods.
pub trait MemoryPlane: Send + Sync {
    /// Nodes covered.
    fn num_nodes(&self) -> usize;
    /// Node-memory width.
    fn memory_dim(&self) -> usize;
    /// Number of shards state is partitioned into (1 for local planes).
    fn num_shards(&self) -> usize;
    /// The shard owning `node` (always 0 for local planes).
    fn shard_of(&self, node: NodeId) -> usize;

    /// Copies one node's memory row out.
    fn memory_read(&self, node: NodeId) -> Vec<f32>;
    /// The node's last memory-update timestamp (0 before any update).
    fn memory_last_update(&self, node: NodeId) -> f64;
    /// Gathers rows for `nodes` into a detached `[len, dim]` leaf
    /// tensor, in `nodes` order.
    fn memory_gather(&self, nodes: &[NodeId]) -> Tensor;
    /// Overwrites one node's memory and records the update time.
    fn memory_write(&mut self, node: NodeId, values: &[f32], time: f64);

    /// Per-node mailbox capacity.
    fn mailbox_capacity(&self) -> usize;
    /// Raw mailbox message width.
    fn mailbox_msg_dim(&self) -> usize;
    /// The pending messages of a node, oldest first (owned: a plane may
    /// hold its slots behind locks, so borrows cannot escape).
    fn mailbox_messages(&self, node: NodeId) -> Vec<Vec<f32>>;
    /// `true` if the node has at least one pending message.
    fn mailbox_has_messages(&self, node: NodeId) -> bool;
    /// Appends a message, evicting the oldest beyond capacity.
    fn mailbox_push(&mut self, node: NodeId, msg: Vec<f32>);
    /// Drops the pending messages of one node (after consumption).
    fn mailbox_clear(&mut self, node: NodeId);

    /// Registers one endpoint's half of an event: `neighbor` joins
    /// `owner`'s history. Two half-inserts make up
    /// [`adj_insert`](Self::adj_insert); the halves are separate because
    /// the endpoints may live in different shards.
    fn adj_insert_half(&mut self, owner: NodeId, neighbor: NeighborRef);
    /// Number of recorded adjacencies of `node`.
    fn adj_degree(&self, node: NodeId) -> usize;
    /// The `k` most recent neighbors of `node` (most recent first).
    fn adj_most_recent(&self, node: NodeId, k: usize) -> Vec<NeighborRef>;
    /// `k` uniform samples from the node's history, hashed by global id.
    fn adj_uniform(&self, node: NodeId, k: usize) -> Vec<NeighborRef>;

    /// Zeroes memories, drops messages, clears adjacency (epoch start).
    fn reset(&mut self);
    /// Bytes held by the node-memory matrix.
    fn memory_size_bytes(&self) -> usize;
    /// Approximate bytes held by pending mailbox messages.
    fn mailbox_size_bytes(&self) -> usize;
    /// An independent deep copy of the plane's state.
    fn clone_plane(&self) -> Box<dyn MemoryPlane>;

    /// Registers an event in both endpoints' histories.
    fn adj_insert(&mut self, event: &Event, id: EventId) {
        self.adj_insert_half(
            event.src,
            NeighborRef {
                node: event.dst,
                event: id,
                time: event.time,
            },
        );
        self.adj_insert_half(
            event.dst,
            NeighborRef {
                node: event.src,
                event: id,
                time: event.time,
            },
        );
    }
}

/// A borrowed read view of a plane's node memory, mirroring the old
/// `&NodeMemory` accessor surface with owned return values.
pub struct MemoryView<'a> {
    pub(crate) plane: &'a dyn MemoryPlane,
}

impl MemoryView<'_> {
    /// Copies one node's memory out.
    pub fn read(&self, node: NodeId) -> Vec<f32> {
        self.plane.memory_read(node)
    }

    /// Copies one node's memory out (alias of [`read`](Self::read)).
    pub fn snapshot(&self, node: NodeId) -> Vec<f32> {
        self.plane.memory_read(node)
    }

    /// The node's last memory-update timestamp.
    pub fn last_update(&self, node: NodeId) -> f64 {
        self.plane.memory_last_update(node)
    }

    /// Memory width.
    pub fn dim(&self) -> usize {
        self.plane.memory_dim()
    }

    /// Nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.plane.num_nodes()
    }
}

/// The monolithic single-owner plane: global-id-indexed stores, exactly
/// the layout the serial trainer has always used.
#[derive(Clone)]
pub struct LocalPlane {
    memory: NodeMemory,
    mailbox: Mailbox,
    adjacency: AdjacencyStore,
}

impl LocalPlane {
    /// Builds zeroed state for `geom`.
    pub fn new(geom: &PlaneGeometry) -> Self {
        LocalPlane {
            memory: NodeMemory::new(geom.num_nodes, geom.memory_dim),
            mailbox: Mailbox::new(geom.num_nodes, geom.mailbox_capacity, geom.raw_msg_dim),
            adjacency: AdjacencyStore::new(geom.num_nodes).with_seed(geom.adj_seed),
        }
    }
}

impl MemoryPlane for LocalPlane {
    fn num_nodes(&self) -> usize {
        self.memory.num_nodes()
    }

    fn memory_dim(&self) -> usize {
        self.memory.dim()
    }

    fn num_shards(&self) -> usize {
        1
    }

    fn shard_of(&self, _node: NodeId) -> usize {
        0
    }

    fn memory_read(&self, node: NodeId) -> Vec<f32> {
        self.memory.snapshot(node)
    }

    fn memory_last_update(&self, node: NodeId) -> f64 {
        self.memory.last_update(node)
    }

    fn memory_gather(&self, nodes: &[NodeId]) -> Tensor {
        self.memory.gather(nodes)
    }

    fn memory_write(&mut self, node: NodeId, values: &[f32], time: f64) {
        self.memory.write(node, values, time);
    }

    fn mailbox_capacity(&self) -> usize {
        self.mailbox.capacity()
    }

    fn mailbox_msg_dim(&self) -> usize {
        self.mailbox.msg_dim()
    }

    fn mailbox_messages(&self, node: NodeId) -> Vec<Vec<f32>> {
        self.mailbox.messages(node).to_vec()
    }

    fn mailbox_has_messages(&self, node: NodeId) -> bool {
        self.mailbox.has_messages(node)
    }

    fn mailbox_push(&mut self, node: NodeId, msg: Vec<f32>) {
        self.mailbox.push(node, msg);
    }

    fn mailbox_clear(&mut self, node: NodeId) {
        self.mailbox.clear_node(node);
    }

    fn adj_insert_half(&mut self, owner: NodeId, neighbor: NeighborRef) {
        self.adjacency.insert_ref(owner, neighbor);
    }

    fn adj_degree(&self, node: NodeId) -> usize {
        self.adjacency.degree(node)
    }

    fn adj_most_recent(&self, node: NodeId, k: usize) -> Vec<NeighborRef> {
        self.adjacency.most_recent(node, k)
    }

    fn adj_uniform(&self, node: NodeId, k: usize) -> Vec<NeighborRef> {
        self.adjacency.uniform(node, k)
    }

    fn reset(&mut self) {
        self.memory.reset();
        self.mailbox.reset();
        self.adjacency.clear();
    }

    fn memory_size_bytes(&self) -> usize {
        self.memory.size_bytes()
    }

    fn mailbox_size_bytes(&self) -> usize {
        self.mailbox.size_bytes()
    }

    fn clone_plane(&self) -> Box<dyn MemoryPlane> {
        Box::new(self.clone())
    }
}

/// One shard's slice of the plane: dense slot-indexed stores for the
/// nodes a [`ShardMap`] assigns to it. The building block both
/// [`ShardedPlane`] (single-owner) and `cascade-dist`'s `SharedPlane`
/// (per-shard `RwLock`s) compose.
///
/// Fields are public because the dist crate addresses shards directly
/// under its own locking; all slot bookkeeping lives in the owning
/// plane's [`ShardMap`].
#[derive(Clone)]
pub struct PlaneShard {
    /// Slot-indexed node memory.
    pub memory: NodeMemory,
    /// Slot-indexed mailboxes.
    pub mailbox: Mailbox,
    /// Slot-indexed adjacency lists; entries name **global** partner
    /// ids and draws hash by global id (`uniform_keyed`).
    pub adjacency: AdjacencyStore,
}

impl PlaneShard {
    /// Zeroed state for a shard of `num_slots` nodes.
    pub fn new(geom: &PlaneGeometry, num_slots: usize) -> Self {
        PlaneShard {
            memory: NodeMemory::new(num_slots, geom.memory_dim),
            mailbox: Mailbox::new(num_slots, geom.mailbox_capacity, geom.raw_msg_dim),
            adjacency: AdjacencyStore::new(num_slots).with_seed(geom.adj_seed),
        }
    }

    /// Zeroes this shard's state.
    pub fn reset(&mut self) {
        self.memory.reset();
        self.mailbox.reset();
        self.adjacency.clear();
    }
}

/// A node-id-hash sharded plane with a single owner: the state is
/// partitioned like the dist runtime partitions it, but without locks —
/// used to prove partitioned storage is bit-identical to the monolith,
/// and as the local replica each TCP dist process trains against.
pub struct ShardedPlane {
    geom: PlaneGeometry,
    map: ShardMap,
    shards: Vec<PlaneShard>,
}

impl ShardedPlane {
    /// Partitions `geom.num_nodes` nodes over `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0`.
    pub fn new(geom: &PlaneGeometry, num_shards: usize) -> Self {
        let map = ShardMap::new(geom.num_nodes, num_shards);
        let shards = (0..num_shards)
            .map(|s| PlaneShard::new(geom, map.shard_size(s)))
            .collect();
        ShardedPlane {
            geom: *geom,
            map,
            shards,
        }
    }

    /// The node → (shard, slot) assignment.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The plane's geometry.
    pub fn geometry(&self) -> &PlaneGeometry {
        &self.geom
    }

    /// Direct access to one shard's stores (checkpoint assembly).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &PlaneShard {
        &self.shards[shard]
    }

    fn slot(&self, node: NodeId) -> (usize, NodeId) {
        let (shard, slot) = self.map.assignment(node);
        (shard, NodeId(slot as u32))
    }
}

impl Clone for ShardedPlane {
    fn clone(&self) -> Self {
        ShardedPlane {
            geom: self.geom,
            map: self.map.clone(),
            shards: self.shards.clone(),
        }
    }
}

impl MemoryPlane for ShardedPlane {
    fn num_nodes(&self) -> usize {
        self.geom.num_nodes
    }

    fn memory_dim(&self) -> usize {
        self.geom.memory_dim
    }

    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, node: NodeId) -> usize {
        self.map.shard_of(node)
    }

    fn memory_read(&self, node: NodeId) -> Vec<f32> {
        let (s, slot) = self.slot(node);
        self.shards[s].memory.snapshot(slot)
    }

    fn memory_last_update(&self, node: NodeId) -> f64 {
        let (s, slot) = self.slot(node);
        self.shards[s].memory.last_update(slot)
    }

    fn memory_gather(&self, nodes: &[NodeId]) -> Tensor {
        let d = self.geom.memory_dim;
        let mut out = Vec::with_capacity(nodes.len() * d);
        for &n in nodes {
            let (s, slot) = self.slot(n);
            out.extend_from_slice(self.shards[s].memory.read(slot));
        }
        Tensor::from_vec(out, [nodes.len(), d])
    }

    fn memory_write(&mut self, node: NodeId, values: &[f32], time: f64) {
        let (s, slot) = self.slot(node);
        self.shards[s].memory.write(slot, values, time);
    }

    fn mailbox_capacity(&self) -> usize {
        self.geom.mailbox_capacity
    }

    fn mailbox_msg_dim(&self) -> usize {
        self.geom.raw_msg_dim
    }

    fn mailbox_messages(&self, node: NodeId) -> Vec<Vec<f32>> {
        let (s, slot) = self.slot(node);
        self.shards[s].mailbox.messages(slot).to_vec()
    }

    fn mailbox_has_messages(&self, node: NodeId) -> bool {
        let (s, slot) = self.slot(node);
        self.shards[s].mailbox.has_messages(slot)
    }

    fn mailbox_push(&mut self, node: NodeId, msg: Vec<f32>) {
        let (s, slot) = self.slot(node);
        self.shards[s].mailbox.push(slot, msg);
    }

    fn mailbox_clear(&mut self, node: NodeId) {
        let (s, slot) = self.slot(node);
        self.shards[s].mailbox.clear_node(slot);
    }

    fn adj_insert_half(&mut self, owner: NodeId, neighbor: NeighborRef) {
        let (s, slot) = self.slot(owner);
        self.shards[s].adjacency.insert_ref(slot, neighbor);
    }

    fn adj_degree(&self, node: NodeId) -> usize {
        let (s, slot) = self.slot(node);
        self.shards[s].adjacency.degree(slot)
    }

    fn adj_most_recent(&self, node: NodeId, k: usize) -> Vec<NeighborRef> {
        let (s, slot) = self.slot(node);
        self.shards[s].adjacency.most_recent(slot, k)
    }

    fn adj_uniform(&self, node: NodeId, k: usize) -> Vec<NeighborRef> {
        let (s, slot) = self.slot(node);
        self.shards[s].adjacency.uniform_keyed(slot, node, k)
    }

    fn reset(&mut self) {
        for s in &mut self.shards {
            s.reset();
        }
    }

    fn memory_size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory.size_bytes()).sum()
    }

    fn mailbox_size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.mailbox.size_bytes()).sum()
    }

    fn clone_plane(&self) -> Box<dyn MemoryPlane> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    fn geom() -> PlaneGeometry {
        PlaneGeometry::for_config(&ModelConfig::tgn().with_dims(4, 2), 12, 3, 42)
    }

    fn seeded_planes() -> (LocalPlane, ShardedPlane) {
        let g = geom();
        let mut local = LocalPlane::new(&g);
        let mut sharded = ShardedPlane::new(&g, 3);
        let events = [
            Event::new(0u32, 1u32, 1.0),
            Event::new(2u32, 5u32, 2.0),
            Event::new(0u32, 7u32, 3.0),
            Event::new(11u32, 1u32, 4.0),
        ];
        for (i, e) in events.iter().enumerate() {
            for plane in [&mut local as &mut dyn MemoryPlane, &mut sharded] {
                plane.adj_insert(e, i);
                plane.memory_write(e.src, &[i as f32, 1.0, 2.0, 3.0], e.time);
                plane.mailbox_push(e.src, vec![0.5; 12]);
            }
        }
        (local, sharded)
    }

    #[test]
    fn sharded_reads_match_local() {
        let (local, sharded) = seeded_planes();
        for n in 0..12u32 {
            let n = NodeId(n);
            assert_eq!(local.memory_read(n), sharded.memory_read(n));
            assert_eq!(
                local.memory_last_update(n).to_bits(),
                sharded.memory_last_update(n).to_bits()
            );
            assert_eq!(local.mailbox_messages(n), sharded.mailbox_messages(n));
            assert_eq!(local.adj_degree(n), sharded.adj_degree(n));
            assert_eq!(local.adj_most_recent(n, 4), sharded.adj_most_recent(n, 4));
            // The partition-critical property: uniform draws hash by
            // global id, so shard placement is invisible to sampling.
            assert_eq!(local.adj_uniform(n, 8), sharded.adj_uniform(n, 8));
        }
        assert_eq!(
            local
                .memory_gather(&[NodeId(0), NodeId(7), NodeId(11)])
                .to_vec(),
            sharded
                .memory_gather(&[NodeId(0), NodeId(7), NodeId(11)])
                .to_vec()
        );
        assert_eq!(local.mailbox_size_bytes(), sharded.mailbox_size_bytes());
        assert_eq!(local.memory_size_bytes(), sharded.memory_size_bytes());
    }

    #[test]
    fn sharded_reset_matches_local() {
        let (mut local, mut sharded) = seeded_planes();
        local.reset();
        sharded.reset();
        for n in 0..12u32 {
            let n = NodeId(n);
            assert_eq!(local.memory_read(n), sharded.memory_read(n));
            assert_eq!(local.adj_degree(n), 0);
            assert_eq!(sharded.adj_degree(n), 0);
            assert!(!sharded.mailbox_has_messages(n));
        }
    }

    #[test]
    fn clone_plane_detaches_state() {
        let (_, sharded) = seeded_planes();
        let mut copy = sharded.clone_plane();
        copy.memory_write(NodeId(3), &[9.0; 4], 9.0);
        assert_ne!(sharded.memory_read(NodeId(3)), copy.memory_read(NodeId(3)));
    }

    #[test]
    fn geometry_follows_updater_kind() {
        let apan = PlaneGeometry::for_config(&ModelConfig::apan().with_dims(4, 2), 5, 3, 1);
        assert_eq!(apan.mailbox_capacity, 10);
        let g = geom();
        assert_eq!(g.mailbox_capacity, 1);
        assert_eq!(g.raw_msg_dim, 2 * 4 + 3 + 1);
        assert_eq!(g.adj_seed, 42 ^ 0x0b);
    }
}
