//! Model configurations — the Table 1 inventory.

use std::fmt;

/// Temporal neighbor sampling discipline (Table 1 "Sample" column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sampling {
    /// The `n` most recent neighbors.
    MostRecent(usize),
    /// `n` uniform samples from the full history.
    Uniform(usize),
}

impl Sampling {
    /// Number of neighbor slots sampled.
    pub fn count(self) -> usize {
        match self {
            Sampling::MostRecent(n) | Sampling::Uniform(n) => n,
        }
    }
}

/// Memory-update module (Table 1 "Memory Update" column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdaterKind {
    /// Vanilla RNN cell (JODIE, DySAT).
    Rnn,
    /// GRU cell (TGN).
    Gru,
    /// Single-head attention over the node's mailbox, Transformer-style
    /// (APAN).
    MailboxAttention,
    /// Projection of the aggregated message, no recurrence (TGAT — which
    /// keeps no true recurrent memory).
    Identity,
}

/// Node-embedding module (Table 1 "Node Embedding" column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmbedderKind {
    /// JODIE's time-decay projection: `h = s ⊙ (1 + w·Δt)`.
    JodieDecay,
    /// Raw memory as embedding (APAN "directly uses memories").
    Identity,
    /// Single graph-attention layer over sampled neighbors (TGN, DySAT).
    Gat1,
    /// Two stacked attention layers over the 2-hop neighborhood (TGAT).
    Gat2,
}

/// Full configuration of a memory-based TGNN.
///
/// The five presets reproduce Table 1 of the paper; dimensions default to
/// the paper's `out size = 100` but are adjustable so scaled experiments
/// stay tractable on one CPU core.
///
/// # Examples
///
/// ```
/// use cascade_models::ModelConfig;
///
/// let cfg = ModelConfig::tgn().with_dims(32, 8);
/// assert_eq!(cfg.name, "TGN");
/// assert_eq!(cfg.memory_dim, 32);
/// ```
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Model name.
    pub name: &'static str,
    /// Node-memory width (also the embedding width).
    pub memory_dim: usize,
    /// Width of the sinusoidal time encoding.
    pub time_dim: usize,
    /// Neighbor sampling discipline.
    pub sampling: Sampling,
    /// Memory updater.
    pub updater: UpdaterKind,
    /// Node embedder.
    pub embedder: EmbedderKind,
    /// TGLite-style redundancy-eliminating execution: each distinct node
    /// in a batch is embedded once (at the batch-end timestamp) instead of
    /// once per event slot.
    pub lite: bool,
}

impl ModelConfig {
    /// JODIE: most-recent(1) sampling, RNN updater, time-decay embedding.
    pub fn jodie() -> Self {
        ModelConfig {
            name: "JODIE",
            memory_dim: 100,
            time_dim: 16,
            sampling: Sampling::MostRecent(1),
            updater: UpdaterKind::Rnn,
            embedder: EmbedderKind::JodieDecay,
            lite: false,
        }
    }

    /// TGN: most-recent(1) sampling, GRU updater, GAT embedding.
    pub fn tgn() -> Self {
        ModelConfig {
            name: "TGN",
            memory_dim: 100,
            time_dim: 16,
            sampling: Sampling::MostRecent(1),
            updater: UpdaterKind::Gru,
            embedder: EmbedderKind::Gat1,
            lite: false,
        }
    }

    /// APAN: most-recent(10) mailbox, attention updater, identity
    /// embedding.
    pub fn apan() -> Self {
        ModelConfig {
            name: "APAN",
            memory_dim: 100,
            time_dim: 16,
            sampling: Sampling::MostRecent(10),
            updater: UpdaterKind::MailboxAttention,
            embedder: EmbedderKind::Identity,
            lite: false,
        }
    }

    /// DySAT: uniform(10) sampling, GAT embedding, RNN memory.
    pub fn dysat() -> Self {
        ModelConfig {
            name: "DySAT",
            memory_dim: 100,
            time_dim: 16,
            sampling: Sampling::Uniform(10),
            updater: UpdaterKind::Rnn,
            embedder: EmbedderKind::Gat1,
            lite: false,
        }
    }

    /// TGAT: uniform(10) sampling, identity memory, 2-layer GAT embedding.
    pub fn tgat() -> Self {
        ModelConfig {
            name: "TGAT",
            memory_dim: 100,
            time_dim: 16,
            sampling: Sampling::Uniform(10),
            updater: UpdaterKind::Identity,
            embedder: EmbedderKind::Gat2,
            lite: false,
        }
    }

    /// All five models in the paper's ordering (APAN, JODIE, TGN, DySAT,
    /// TGAT as plotted in Figures 10–16).
    pub fn all() -> Vec<ModelConfig> {
        vec![
            ModelConfig::apan(),
            ModelConfig::jodie(),
            ModelConfig::tgn(),
            ModelConfig::dysat(),
            ModelConfig::tgat(),
        ]
    }

    /// Overrides the memory and time-encoding widths.
    ///
    /// # Panics
    ///
    /// Panics if either width is zero.
    pub fn with_dims(mut self, memory_dim: usize, time_dim: usize) -> Self {
        assert!(memory_dim > 0 && time_dim > 0, "dims must be positive");
        self.memory_dim = memory_dim;
        self.time_dim = time_dim;
        self
    }

    /// Enables TGLite-style redundancy-eliminating execution.
    pub fn with_lite(mut self) -> Self {
        self.lite = true;
        self
    }

    /// Overrides the number of sampled neighbors, keeping the discipline.
    pub fn with_neighbors(mut self, n: usize) -> Self {
        self.sampling = match self.sampling {
            Sampling::MostRecent(_) => Sampling::MostRecent(n),
            Sampling::Uniform(_) => Sampling::Uniform(n),
        };
        self
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (sample {:?}, update {:?}, embed {:?}, d={})",
            self.name, self.sampling, self.updater, self.embedder, self.memory_dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let j = ModelConfig::jodie();
        assert_eq!(j.sampling, Sampling::MostRecent(1));
        assert_eq!(j.updater, UpdaterKind::Rnn);
        assert_eq!(j.embedder, EmbedderKind::JodieDecay);

        let t = ModelConfig::tgn();
        assert_eq!(t.updater, UpdaterKind::Gru);
        assert_eq!(t.embedder, EmbedderKind::Gat1);

        let a = ModelConfig::apan();
        assert_eq!(a.sampling, Sampling::MostRecent(10));
        assert_eq!(a.updater, UpdaterKind::MailboxAttention);

        let d = ModelConfig::dysat();
        assert_eq!(d.sampling, Sampling::Uniform(10));

        let g = ModelConfig::tgat();
        assert_eq!(g.embedder, EmbedderKind::Gat2);
        assert_eq!(g.updater, UpdaterKind::Identity);
    }

    #[test]
    fn default_dims_are_paper_dims() {
        assert_eq!(ModelConfig::tgn().memory_dim, 100);
    }

    #[test]
    fn with_dims_overrides() {
        let c = ModelConfig::tgn().with_dims(16, 4);
        assert_eq!((c.memory_dim, c.time_dim), (16, 4));
    }

    #[test]
    fn with_neighbors_keeps_discipline() {
        assert_eq!(
            ModelConfig::tgat().with_neighbors(3).sampling,
            Sampling::Uniform(3)
        );
        assert_eq!(
            ModelConfig::tgn().with_neighbors(3).sampling,
            Sampling::MostRecent(3)
        );
    }

    #[test]
    fn all_lists_five() {
        assert_eq!(ModelConfig::all().len(), 5);
    }
}
