#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # cascade-models
//!
//! Memory-based temporal graph neural networks — the five models the
//! Cascade paper evaluates (Table 1): JODIE, TGN, APAN, DySAT, and TGAT,
//! realized as configurations of one unified [`MemoryTgnn`].
//!
//! Each model keeps a per-node *memory* vector updated from event-derived
//! *messages* (Equations 2–3) and embeds nodes for link prediction
//! (Equation 4). Batches follow the three-step pipeline of Figure 1.
//!
//! # Examples
//!
//! Train TGN for a few batches on a synthetic graph:
//!
//! ```
//! use cascade_models::{MemoryTgnn, ModelConfig};
//! use cascade_nn::{Adam, Module};
//! use cascade_tgraph::SynthConfig;
//!
//! let data = SynthConfig::wiki().with_scale(0.002).generate(1);
//! let cfg = ModelConfig::tgn().with_dims(16, 8);
//! let mut model = MemoryTgnn::new(cfg, data.num_nodes(), data.features().dim(), 7);
//! let mut opt = Adam::new(model.parameters(), 1e-3);
//!
//! for chunk in data.stream().events().chunks(64).take(3) {
//!     let first_id = 0; // illustrative; real loops track stream offsets
//!     let out = model.process_batch(chunk, first_id, data.features());
//!     out.loss.backward();
//!     opt.step();
//! }
//! ```

mod checkpoint;
mod classifier;
mod config;
mod memory;
mod model;
mod plane;

pub use checkpoint::{
    load_checkpoint, load_parameters, load_sharded_state, load_state, save_parameters,
    save_sharded_state, save_state, CheckpointError,
};
pub use classifier::NodeClassifier;
pub use config::{EmbedderKind, ModelConfig, Sampling, UpdaterKind};
pub use memory::{Mailbox, NodeMemory};
pub use model::{BatchForward, BatchOutput, BatchPending, MemoryDelta, MemoryTgnn};
pub use plane::{LocalPlane, MemoryPlane, MemoryView, PlaneGeometry, PlaneShard, ShardedPlane};
