//! Parameter checkpointing.
//!
//! Persists every parameter of a [`Module`](cascade_nn::Module) in a
//! small self-describing binary format so trained TGNNs can be saved and
//! served later. Parameter order is the module's `parameters()` order,
//! which is stable for every model in this workspace.
//!
//! Format: magic `CSC1`, `u32` parameter count, then per parameter a
//! `u32` element count followed by little-endian `f32` data.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use cascade_nn::Module;

const MAGIC: &[u8; 4] = b"CSC1";

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a checkpoint file (bad magic).
    BadMagic,
    /// Parameter count or shape disagrees with the receiving module.
    ShapeMismatch {
        /// Parameter index at which the mismatch occurred.
        index: usize,
        /// Elements expected by the module.
        expected: usize,
        /// Elements found in the file.
        found: usize,
    },
    /// The file declares a different number of parameters.
    CountMismatch {
        /// Parameters expected by the module.
        expected: usize,
        /// Parameters found in the file.
        found: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {}", e),
            CheckpointError::BadMagic => write!(f, "not a cascade checkpoint file"),
            CheckpointError::ShapeMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "parameter {} has {} elements in file, module expects {}",
                index, found, expected
            ),
            CheckpointError::CountMismatch { expected, found } => write!(
                f,
                "file holds {} parameters, module expects {}",
                found, expected
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes every parameter of `module` to `path`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
///
/// # Examples
///
/// ```
/// use cascade_models::{load_parameters, save_parameters, MemoryTgnn, ModelConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join("cascade_ckpt_doc");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("tgn.ckpt");
///
/// let model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 10, 4, 1);
/// save_parameters(&model, &path)?;
///
/// let mut fresh = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 10, 4, 2);
/// load_parameters(&mut fresh, &path)?;
/// # Ok(())
/// # }
/// ```
pub fn save_parameters<M: Module>(module: &M, path: &Path) -> Result<(), CheckpointError> {
    let params = module.parameters();
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(MAGIC)?;
    f.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in &params {
        let data = p.to_vec();
        f.write_all(&(data.len() as u32).to_le_bytes())?;
        for v in data {
            f.write_all(&v.to_le_bytes())?;
        }
    }
    f.flush()?;
    Ok(())
}

/// Loads parameters saved by [`save_parameters`] into `module`,
/// overwriting its current values.
///
/// # Errors
///
/// Fails on I/O errors, wrong magic, or any parameter-count/shape
/// disagreement; the module is left partially updated only on shape
/// errors discovered mid-file (validate with matching architectures).
pub fn load_parameters<M: Module>(module: &mut M, path: &Path) -> Result<(), CheckpointError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut u32buf = [0u8; 4];
    f.read_exact(&mut u32buf)?;
    let count = u32::from_le_bytes(u32buf) as usize;

    let params = module.parameters();
    if count != params.len() {
        return Err(CheckpointError::CountMismatch {
            expected: params.len(),
            found: count,
        });
    }
    for (i, p) in params.iter().enumerate() {
        f.read_exact(&mut u32buf)?;
        let len = u32::from_le_bytes(u32buf) as usize;
        if len != p.len() {
            return Err(CheckpointError::ShapeMismatch {
                index: i,
                expected: p.len(),
                found: len,
            });
        }
        let mut data = vec![0.0f32; len];
        for v in &mut data {
            f.read_exact(&mut u32buf)?;
            *v = f32::from_le_bytes(u32buf);
        }
        p.set_data(&data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryTgnn, ModelConfig};
    use cascade_tgraph::{synth_features, Event};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cascade_ckpt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let path = tmp("roundtrip.ckpt");
        let a = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        save_parameters(&a, &path).unwrap();

        let mut b = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 99);
        load_parameters(&mut b, &path).unwrap();

        for (pa, pb) in a.parameters().iter().zip(b.parameters().iter()) {
            assert_eq!(pa.to_vec(), pb.to_vec());
        }
    }

    #[test]
    fn loaded_model_behaves_identically() {
        let path = tmp("behave.ckpt");
        let events = vec![Event::new(0u32, 1u32, 1.0), Event::new(2u32, 3u32, 2.0)];
        let feats = synth_features(2, 4, 7);

        let mut a = MemoryTgnn::new(ModelConfig::jodie().with_dims(8, 4), 6, 4, 1);
        save_parameters(&a, &path).unwrap();
        let mut b = MemoryTgnn::new(ModelConfig::jodie().with_dims(8, 4), 6, 4, 2);
        load_parameters(&mut b, &path).unwrap();

        let la = a.process_batch(&events, 0, &feats).loss.item();
        let lb = b.process_batch(&events, 0, &feats).loss.item();
        assert_eq!(la, lb);
    }

    #[test]
    fn architecture_mismatch_is_rejected() {
        let path = tmp("mismatch.ckpt");
        let a = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        save_parameters(&a, &path).unwrap();

        let mut wrong_width = MemoryTgnn::new(ModelConfig::tgn().with_dims(16, 4), 6, 4, 1);
        assert!(matches!(
            load_parameters(&mut wrong_width, &path),
            Err(CheckpointError::ShapeMismatch { .. })
        ));

        let mut wrong_arch = MemoryTgnn::new(ModelConfig::jodie().with_dims(8, 4), 6, 4, 1);
        assert!(matches!(
            load_parameters(&mut wrong_arch, &path),
            Err(CheckpointError::CountMismatch { .. }) | Err(CheckpointError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp("garbage.ckpt");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let mut m = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        assert!(matches!(
            load_parameters(&mut m, &path),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut m = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        assert!(matches!(
            load_parameters(&mut m, Path::new("/nonexistent/nope.ckpt")),
            Err(CheckpointError::Io(_))
        ));
    }
}
