//! Parameter checkpointing.
//!
//! Persists every parameter of a [`Module`](cascade_nn::Module) in a
//! small self-describing binary format so trained TGNNs can be saved and
//! served later. Parameter order is the module's `parameters()` order,
//! which is stable for every model in this workspace.
//!
//! Three formats share the `.ckpt` extension and are distinguished by
//! magic:
//!
//! * `CSC1` — parameters only: `u32` parameter count, then per
//!   parameter a `u32` element count followed by little-endian `f32`
//!   data ([`save_parameters`]/[`load_parameters`]).
//! * `CSC2` — full mutable state: `u64` events-applied watermark, `u64`
//!   blob length, then the [`export_state`](MemoryTgnn::export_state)
//!   blob (parameters, node memories, last-update times, mailboxes) —
//!   one call round-trips everything a serving process needs
//!   ([`save_state`]/[`load_state`]).
//! * `CSC3` — sharded state: the same information as `CSC2`, but node
//!   state is grouped into the node-id-hash shard sections of a
//!   [`ShardMap`](cascade_tgraph::ShardMap), with the shard count in the
//!   header — the layout a dist run partitions state into, written so a
//!   serving process can assemble a full snapshot from the shards
//!   ([`save_sharded_state`]/[`load_sharded_state`]). Parameters appear
//!   once (data-parallel replicas hold identical weights).
//!
//! [`load_checkpoint`] sniffs the magic and accepts any of them.
//!
//! State snapshots are written to a sibling temp file and renamed into
//! place, so a crash mid-write leaves the previous snapshot intact and
//! a reader never observes a half-written file. A truncated `CSC2` file
//! (e.g. from a copy that died) is still *detected* — the declared blob
//! length is checked against what the file holds and reported as the
//! typed [`CheckpointError::PartialSnapshot`].

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use cascade_nn::Module;
use cascade_tgraph::{NodeId, ShardMap};

use crate::MemoryTgnn;

const MAGIC: &[u8; 4] = b"CSC1";
const STATE_MAGIC: &[u8; 4] = b"CSC2";
const SHARDED_MAGIC: &[u8; 4] = b"CSC3";

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a checkpoint file (bad magic).
    BadMagic,
    /// Parameter count or shape disagrees with the receiving module.
    ShapeMismatch {
        /// Parameter index at which the mismatch occurred.
        index: usize,
        /// Elements expected by the module.
        expected: usize,
        /// Elements found in the file.
        found: usize,
    },
    /// The file declares a different number of parameters.
    CountMismatch {
        /// Parameters expected by the module.
        expected: usize,
        /// Parameters found in the file.
        found: usize,
    },
    /// A state snapshot is shorter than its header declares — the write
    /// (or a later copy) was cut off before completing.
    PartialSnapshot {
        /// Bytes the snapshot header declares.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The state blob decoded but does not fit the receiving model
    /// (wrong architecture, node count, or dimensions).
    StateMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {}", e),
            CheckpointError::BadMagic => write!(f, "not a cascade checkpoint file"),
            CheckpointError::ShapeMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "parameter {} has {} elements in file, module expects {}",
                index, found, expected
            ),
            CheckpointError::CountMismatch { expected, found } => write!(
                f,
                "file holds {} parameters, module expects {}",
                found, expected
            ),
            CheckpointError::PartialSnapshot { expected, found } => write!(
                f,
                "partial state snapshot: header declares {} bytes, file holds {}",
                expected, found
            ),
            CheckpointError::StateMismatch(msg) => {
                write!(f, "state blob does not fit this model: {}", msg)
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes every parameter of `module` to `path`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
///
/// # Examples
///
/// ```
/// use cascade_models::{load_parameters, save_parameters, MemoryTgnn, ModelConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join("cascade_ckpt_doc");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("tgn.ckpt");
///
/// let model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 10, 4, 1);
/// save_parameters(&model, &path)?;
///
/// let mut fresh = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 10, 4, 2);
/// load_parameters(&mut fresh, &path)?;
/// # Ok(())
/// # }
/// ```
pub fn save_parameters<M: Module>(module: &M, path: &Path) -> Result<(), CheckpointError> {
    let params = module.parameters();
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(MAGIC)?;
    f.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in &params {
        let data = p.to_vec();
        f.write_all(&(data.len() as u32).to_le_bytes())?;
        for v in data {
            f.write_all(&v.to_le_bytes())?;
        }
    }
    f.flush()?;
    Ok(())
}

/// Loads parameters saved by [`save_parameters`] into `module`,
/// overwriting its current values.
///
/// # Errors
///
/// Fails on I/O errors, wrong magic, or any parameter-count/shape
/// disagreement; the module is left partially updated only on shape
/// errors discovered mid-file (validate with matching architectures).
pub fn load_parameters<M: Module>(module: &mut M, path: &Path) -> Result<(), CheckpointError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut u32buf = [0u8; 4];
    f.read_exact(&mut u32buf)?;
    let count = u32::from_le_bytes(u32buf) as usize;

    let params = module.parameters();
    if count != params.len() {
        return Err(CheckpointError::CountMismatch {
            expected: params.len(),
            found: count,
        });
    }
    for (i, p) in params.iter().enumerate() {
        f.read_exact(&mut u32buf)?;
        let len = u32::from_le_bytes(u32buf) as usize;
        if len != p.len() {
            return Err(CheckpointError::ShapeMismatch {
                index: i,
                expected: p.len(),
                found: len,
            });
        }
        let mut data = vec![0.0f32; len];
        for v in &mut data {
            f.read_exact(&mut u32buf)?;
            *v = f32::from_le_bytes(u32buf);
        }
        p.set_data(&data);
    }
    Ok(())
}

/// Atomically snapshots the model's full mutable state — parameters,
/// node memories, last-update times, and pending mailbox messages — to
/// `path`, tagged with `events_applied`, the number of stream events the
/// state reflects.
///
/// The snapshot is written to a sibling `<name>.tmp` file and renamed
/// into place, so a crash mid-write never clobbers an existing good
/// snapshot and concurrent readers never see a partial file.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
pub fn save_state(
    model: &MemoryTgnn,
    path: &Path,
    events_applied: u64,
) -> Result<(), CheckpointError> {
    let blob = model.export_state();
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        f.write_all(STATE_MAGIC)?;
        f.write_all(&events_applied.to_le_bytes())?;
        f.write_all(&(blob.len() as u64).to_le_bytes())?;
        f.write_all(&blob)?;
        f.flush()?;
        f.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Restores a state snapshot written by [`save_state`] into `model`,
/// returning the events-applied watermark it was tagged with.
///
/// # Errors
///
/// I/O failures, wrong magic, [`CheckpointError::PartialSnapshot`] when
/// the file is shorter than its header declares, and
/// [`CheckpointError::StateMismatch`] when the blob does not fit the
/// receiving model. The model is modified only after the blob has been
/// fully read and size-checked.
pub fn load_state(model: &mut MemoryTgnn, path: &Path) -> Result<u64, CheckpointError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic)?;
    if &magic != STATE_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut u64buf = [0u8; 8];
    f.read_exact(&mut u64buf)?;
    let events_applied = u64::from_le_bytes(u64buf);
    f.read_exact(&mut u64buf)?;
    let declared = u64::from_le_bytes(u64buf) as usize;
    let mut blob = Vec::with_capacity(declared.min(1 << 30));
    f.read_to_end(&mut blob)?;
    if blob.len() != declared {
        return Err(CheckpointError::PartialSnapshot {
            expected: declared,
            found: blob.len(),
        });
    }
    model
        .import_state(&blob)
        .map_err(CheckpointError::StateMismatch)?;
    Ok(events_applied)
}

/// Atomically snapshots the model's full mutable state to `path` in the
/// shard-partitioned `CSC3` layout: node memories, last-update times,
/// and mailboxes are grouped into `num_shards` node-id-hash shard
/// sections (slot order, ascending global ids within a shard), exactly
/// the partition a `num_shards`-worker dist run owns. Parameters are
/// written once.
///
/// Works for any model — sharding here is a property of the *file*, not
/// of the model's plane — but a dist run writing with its own worker
/// count produces sections that correspond one-to-one to worker-owned
/// state.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
///
/// # Panics
///
/// Panics if `num_shards == 0`.
pub fn save_sharded_state(
    model: &MemoryTgnn,
    path: &Path,
    events_applied: u64,
    num_shards: usize,
) -> Result<(), CheckpointError> {
    let plane = model.plane();
    let nodes = plane.num_nodes();
    let dim = plane.memory_dim();
    let msg_dim = plane.mailbox_msg_dim();
    let map = ShardMap::new(nodes, num_shards);

    let tmp = path.with_extension("tmp");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        f.write_all(SHARDED_MAGIC)?;
        f.write_all(&events_applied.to_le_bytes())?;
        f.write_all(&(num_shards as u32).to_le_bytes())?;
        f.write_all(&(nodes as u64).to_le_bytes())?;
        f.write_all(&(dim as u32).to_le_bytes())?;
        f.write_all(&(msg_dim as u32).to_le_bytes())?;
        f.write_all(&(plane.mailbox_capacity() as u32).to_le_bytes())?;
        let params = model.parameters();
        f.write_all(&(params.len() as u32).to_le_bytes())?;
        for p in &params {
            let data = p.to_vec();
            f.write_all(&(data.len() as u32).to_le_bytes())?;
            for v in data {
                f.write_all(&v.to_le_bytes())?;
            }
        }
        for shard in 0..num_shards {
            let owned = map.owned_nodes(shard);
            f.write_all(&(owned.len() as u64).to_le_bytes())?;
            for &n in owned {
                for v in plane.memory_read(n) {
                    f.write_all(&v.to_le_bytes())?;
                }
                f.write_all(&plane.memory_last_update(n).to_le_bytes())?;
                let msgs = plane.mailbox_messages(n);
                f.write_all(&(msgs.len() as u32).to_le_bytes())?;
                for msg in &msgs {
                    for v in msg {
                        f.write_all(&v.to_le_bytes())?;
                    }
                }
            }
        }
        f.flush()?;
        f.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Assembles a full model state from the shard sections of a `CSC3`
/// snapshot written by [`save_sharded_state`], returning the
/// events-applied watermark. The receiving model may use any plane and
/// any shard count — the file's [`ShardMap`](cascade_tgraph::ShardMap)
/// is rebuilt from its header to scatter each section's rows back to
/// global node ids.
///
/// # Errors
///
/// I/O failures, wrong magic, and [`CheckpointError::StateMismatch`]
/// when the declared shapes do not fit the receiving model or a shard
/// section disagrees with the rebuilt shard map. The model is modified
/// only after the whole file has been read and validated.
pub fn load_sharded_state(model: &mut MemoryTgnn, path: &Path) -> Result<u64, CheckpointError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic)?;
    if &magic != SHARDED_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut u32buf = [0u8; 4];
    let mut u64buf = [0u8; 8];
    let mut read_u32 =
        |f: &mut std::io::BufReader<std::fs::File>| -> Result<usize, CheckpointError> {
            f.read_exact(&mut u32buf)?;
            Ok(u32::from_le_bytes(u32buf) as usize)
        };
    f.read_exact(&mut u64buf)?;
    let events_applied = u64::from_le_bytes(u64buf);
    let num_shards = read_u32(&mut f)?;
    f.read_exact(&mut u64buf)?;
    let nodes = u64::from_le_bytes(u64buf) as usize;
    let dim = read_u32(&mut f)?;
    let msg_dim = read_u32(&mut f)?;
    let capacity = read_u32(&mut f)?;

    let plane = model.plane();
    if num_shards == 0 {
        return Err(CheckpointError::StateMismatch(
            "sharded snapshot declares zero shards".to_string(),
        ));
    }
    if nodes != plane.num_nodes() || dim != plane.memory_dim() {
        return Err(CheckpointError::StateMismatch(format!(
            "snapshot memory is {}x{}, model expects {}x{}",
            nodes,
            dim,
            plane.num_nodes(),
            plane.memory_dim()
        )));
    }
    if msg_dim != plane.mailbox_msg_dim() || capacity != plane.mailbox_capacity() {
        return Err(CheckpointError::StateMismatch(
            "snapshot mailbox shape mismatch".to_string(),
        ));
    }

    let params = model.parameters();
    let count = read_u32(&mut f)?;
    if count != params.len() {
        return Err(CheckpointError::CountMismatch {
            expected: params.len(),
            found: count,
        });
    }
    let read_f32s = |f: &mut std::io::BufReader<std::fs::File>,
                     n: usize|
     -> Result<Vec<f32>, CheckpointError> {
        let mut buf = vec![0u8; n * 4];
        f.read_exact(&mut buf)?;
        Ok(buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
            .collect())
    };
    let mut restored_params = Vec::with_capacity(count);
    for (i, p) in params.iter().enumerate() {
        let len = read_u32(&mut f)?;
        if len != p.len() {
            return Err(CheckpointError::ShapeMismatch {
                index: i,
                expected: p.len(),
                found: len,
            });
        }
        restored_params.push(read_f32s(&mut f, len)?);
    }

    // Scatter shard sections back to global ids via the rebuilt map.
    let map = ShardMap::new(nodes, num_shards);
    let mut memory: Vec<(NodeId, Vec<f32>, f64)> = Vec::with_capacity(nodes);
    let mut mailboxes: Vec<(NodeId, Vec<Vec<f32>>)> = Vec::with_capacity(nodes);
    for shard in 0..num_shards {
        let owned = map.owned_nodes(shard);
        f.read_exact(&mut u64buf)?;
        let declared = u64::from_le_bytes(u64buf) as usize;
        if declared != owned.len() {
            return Err(CheckpointError::StateMismatch(format!(
                "shard {} section holds {} nodes, shard map assigns {}",
                shard,
                declared,
                owned.len()
            )));
        }
        for &n in owned {
            let row = read_f32s(&mut f, dim)?;
            f.read_exact(&mut u64buf)?;
            let last_update = f64::from_le_bytes(u64buf);
            let msg_count = read_u32(&mut f)?;
            if msg_count > capacity {
                return Err(CheckpointError::StateMismatch(format!(
                    "node {} declares {} messages (capacity {})",
                    n.0, msg_count, capacity
                )));
            }
            let mut msgs = Vec::with_capacity(msg_count);
            for _ in 0..msg_count {
                msgs.push(read_f32s(&mut f, msg_dim)?);
            }
            memory.push((n, row, last_update));
            mailboxes.push((n, msgs));
        }
    }

    // Everything validated: mutate only now.
    for (p, data) in params.iter().zip(&restored_params) {
        p.set_data(data);
    }
    for (n, row, t) in &memory {
        model.write_memory(*n, row, *t);
    }
    for n in 0..nodes {
        model.clear_node_mailbox(NodeId(n as u32));
    }
    for (n, msgs) in mailboxes {
        for msg in msgs {
            model.push_mailbox(n, msg);
        }
    }
    Ok(events_applied)
}

/// Loads any checkpoint flavor into `model` by sniffing the magic: a
/// `CSC2` state snapshot or a `CSC3` sharded snapshot restores
/// parameters *and* mutable state and returns `Some(events_applied)`; a
/// `CSC1` parameter file restores weights only and returns `None`
/// (memories stay as built — a fresh model starts cold).
///
/// # Errors
///
/// The union of [`load_parameters`], [`load_state`], and
/// [`load_sharded_state`] errors, plus [`CheckpointError::BadMagic`]
/// when the file is none of the formats.
pub fn load_checkpoint(
    model: &mut MemoryTgnn,
    path: &Path,
) -> Result<Option<u64>, CheckpointError> {
    let mut magic = [0u8; 4];
    {
        let mut f = std::fs::File::open(path)?;
        f.read_exact(&mut magic)?;
    }
    if &magic == STATE_MAGIC {
        load_state(model, path).map(Some)
    } else if &magic == SHARDED_MAGIC {
        load_sharded_state(model, path).map(Some)
    } else if &magic == MAGIC {
        load_parameters(model, path).map(|()| None)
    } else {
        Err(CheckpointError::BadMagic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryTgnn, ModelConfig};
    use cascade_tgraph::{synth_features, Event};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cascade_ckpt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let path = tmp("roundtrip.ckpt");
        let a = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        save_parameters(&a, &path).unwrap();

        let mut b = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 99);
        load_parameters(&mut b, &path).unwrap();

        for (pa, pb) in a.parameters().iter().zip(b.parameters().iter()) {
            assert_eq!(pa.to_vec(), pb.to_vec());
        }
    }

    #[test]
    fn loaded_model_behaves_identically() {
        let path = tmp("behave.ckpt");
        let events = vec![Event::new(0u32, 1u32, 1.0), Event::new(2u32, 3u32, 2.0)];
        let feats = synth_features(2, 4, 7);

        let mut a = MemoryTgnn::new(ModelConfig::jodie().with_dims(8, 4), 6, 4, 1);
        save_parameters(&a, &path).unwrap();
        let mut b = MemoryTgnn::new(ModelConfig::jodie().with_dims(8, 4), 6, 4, 2);
        load_parameters(&mut b, &path).unwrap();

        let la = a.process_batch(&events, 0, &feats).loss.item();
        let lb = b.process_batch(&events, 0, &feats).loss.item();
        assert_eq!(la, lb);
    }

    #[test]
    fn architecture_mismatch_is_rejected() {
        let path = tmp("mismatch.ckpt");
        let a = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        save_parameters(&a, &path).unwrap();

        let mut wrong_width = MemoryTgnn::new(ModelConfig::tgn().with_dims(16, 4), 6, 4, 1);
        assert!(matches!(
            load_parameters(&mut wrong_width, &path),
            Err(CheckpointError::ShapeMismatch { .. })
        ));

        let mut wrong_arch = MemoryTgnn::new(ModelConfig::jodie().with_dims(8, 4), 6, 4, 1);
        assert!(matches!(
            load_parameters(&mut wrong_arch, &path),
            Err(CheckpointError::CountMismatch { .. }) | Err(CheckpointError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp("garbage.ckpt");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let mut m = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        assert!(matches!(
            load_parameters(&mut m, &path),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut m = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        assert!(matches!(
            load_parameters(&mut m, Path::new("/nonexistent/nope.ckpt")),
            Err(CheckpointError::Io(_))
        ));
    }

    /// A model with evolved memories, restored from a state snapshot.
    fn evolved() -> (MemoryTgnn, Vec<Event>, cascade_tgraph::EdgeFeatures) {
        let events = vec![
            Event::new(0u32, 1u32, 1.0),
            Event::new(2u32, 3u32, 2.0),
            Event::new(1u32, 4u32, 3.0),
            Event::new(0u32, 2u32, 4.0),
        ];
        let feats = synth_features(8, 4, 11);
        let mut m = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 3);
        m.process_batch(&events[..2], 0, &feats);
        m.process_batch(&events[2..], 2, &feats);
        (m, events, feats)
    }

    #[test]
    fn state_roundtrip_restores_memories_and_watermark() {
        let path = tmp("state_roundtrip.ckpt");
        let (a, _, _) = evolved();
        save_state(&a, &path, 4).unwrap();

        let mut b = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 77);
        let applied = load_state(&mut b, &path).unwrap();
        assert_eq!(applied, 4);
        assert_eq!(a.export_state(), b.export_state(), "bit-identical state");
    }

    #[test]
    fn sniffer_dispatches_both_formats() {
        let (a, _, _) = evolved();
        let p1 = tmp("sniff_params.ckpt");
        let p2 = tmp("sniff_state.ckpt");
        save_parameters(&a, &p1).unwrap();
        save_state(&a, &p2, 9).unwrap();

        let mut m = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        assert_eq!(load_checkpoint(&mut m, &p1).unwrap(), None);
        assert_eq!(load_checkpoint(&mut m, &p2).unwrap(), Some(9));
        assert_eq!(a.export_state(), m.export_state());
        let garbage = tmp("sniff_garbage.ckpt");
        std::fs::write(&garbage, b"XXXXtrailing").unwrap();
        assert!(matches!(
            load_checkpoint(&mut m, &garbage),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn truncated_snapshot_is_partial_and_leaves_model_untouched() {
        let path = tmp("state_truncated.ckpt");
        let (a, _, _) = evolved();
        save_state(&a, &path, 4).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 32]).unwrap();

        let mut b = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 77);
        let before = b.export_state();
        assert!(matches!(
            load_state(&mut b, &path),
            Err(CheckpointError::PartialSnapshot { .. })
        ));
        assert_eq!(b.export_state(), before, "failed load mutates nothing");
    }

    #[test]
    fn state_into_wrong_architecture_is_mismatch() {
        let path = tmp("state_wrong_arch.ckpt");
        let (a, _, _) = evolved();
        save_state(&a, &path, 4).unwrap();
        let mut wrong = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 9, 4, 1);
        assert!(matches!(
            load_state(&mut wrong, &path),
            Err(CheckpointError::StateMismatch(_))
        ));
    }

    #[test]
    fn sharded_snapshot_roundtrips_through_any_plane() {
        let path = tmp("sharded_roundtrip.ckpt");
        let (a, _, _) = evolved();
        save_sharded_state(&a, &path, 4, 3).unwrap();

        // Assemble into a monolithic-plane model…
        let mut mono = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 77);
        assert_eq!(load_sharded_state(&mut mono, &path).unwrap(), 4);
        assert_eq!(a.export_state(), mono.export_state());

        // …and into a sharded-plane model with a different shard count.
        let mut sharded = MemoryTgnn::new_sharded(ModelConfig::tgn().with_dims(8, 4), 6, 4, 77, 2);
        assert_eq!(load_sharded_state(&mut sharded, &path).unwrap(), 4);
        assert_eq!(a.export_state(), sharded.export_state());
    }

    #[test]
    fn sniffer_dispatches_sharded_snapshots() {
        let path = tmp("sniff_sharded.ckpt");
        let (a, _, _) = evolved();
        save_sharded_state(&a, &path, 11, 2).unwrap();
        let mut m = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        assert_eq!(load_checkpoint(&mut m, &path).unwrap(), Some(11));
        assert_eq!(a.export_state(), m.export_state());
    }

    #[test]
    fn sharded_snapshot_rejects_wrong_model() {
        let path = tmp("sharded_wrong.ckpt");
        let (a, _, _) = evolved();
        save_sharded_state(&a, &path, 2, 2).unwrap();
        let mut wrong = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 9, 4, 1);
        assert!(matches!(
            load_sharded_state(&mut wrong, &path),
            Err(CheckpointError::StateMismatch(_))
        ));
    }

    #[test]
    fn clone_shares_parameters_but_not_state() {
        let (mut a, events, feats) = evolved();
        let frozen = a.clone();
        let frozen_mem = frozen.export_state();

        // Evolve the original further: the clone's memories must not move.
        a.process_batch(&events, 4, &feats);
        assert_eq!(frozen.export_state(), frozen_mem, "clone state is frozen");
        assert_ne!(a.export_state(), frozen_mem, "original kept evolving");

        // But parameters are shared handles: poke one through the
        // original and observe it through the clone.
        let pa = a.parameters();
        let v0 = pa[0].to_vec();
        let mut bumped = v0.clone();
        bumped[0] += 1.0;
        pa[0].set_data(&bumped);
        assert_eq!(frozen.parameters()[0].to_vec(), bumped);
    }
}
