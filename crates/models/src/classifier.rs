//! Node classification on top of TGNN embeddings.
//!
//! Equation 1 of the paper covers both edge prediction and node-class
//! prediction; the MOOC dataset is a student drop-out *classification*
//! task. [`NodeClassifier`] is the standard head: a small MLP over the
//! node embedding, trained with BCE for binary labels.

use cascade_nn::{bce_with_logits, Mlp, Module};
use cascade_tensor::Tensor;

/// A binary node classifier over `embed_dim`-wide node embeddings.
///
/// # Examples
///
/// ```
/// use cascade_models::NodeClassifier;
/// use cascade_tensor::Tensor;
///
/// let head = NodeClassifier::new(16, 1);
/// let embeddings = Tensor::randn([4, 16], 2);
/// let logits = head.forward(&embeddings);
/// assert_eq!(logits.dims(), &[4, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct NodeClassifier {
    mlp: Mlp,
    embed_dim: usize,
}

impl NodeClassifier {
    /// Creates a two-layer classification head.
    pub fn new(embed_dim: usize, seed: u64) -> Self {
        NodeClassifier {
            mlp: Mlp::new(&[embed_dim, embed_dim, 1], seed),
            embed_dim,
        }
    }

    /// Class logits for a `[B, embed_dim]` batch of embeddings.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn forward(&self, embeddings: &Tensor) -> Tensor {
        assert_eq!(
            embeddings.dims()[1],
            self.embed_dim,
            "NodeClassifier width mismatch"
        );
        self.mlp.forward(embeddings)
    }

    /// BCE loss of the head on a labeled batch (labels in `{0, 1}`).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the batch size.
    pub fn loss(&self, embeddings: &Tensor, labels: &[f32]) -> Tensor {
        let logits = self.forward(embeddings);
        assert_eq!(labels.len(), logits.dims()[0], "label count mismatch");
        let t = Tensor::from_vec(labels.to_vec(), [labels.len(), 1]);
        bce_with_logits(&logits, &t)
    }
}

impl Module for NodeClassifier {
    fn parameters(&self) -> Vec<Tensor> {
        self.mlp.parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_nn::Adam;

    #[test]
    fn shapes() {
        let head = NodeClassifier::new(8, 0);
        let x = Tensor::ones([3, 8]);
        assert_eq!(head.forward(&x).dims(), &[3, 1]);
    }

    #[test]
    fn learns_a_linear_separation() {
        // Embeddings whose first component determines the label.
        let head = NodeClassifier::new(4, 3);
        let mut opt = Adam::new(head.parameters(), 1e-2);
        let x = Tensor::from_vec(
            vec![
                2.0, 0.1, -0.3, 0.4, //
                1.5, -0.2, 0.2, 0.1, //
                -2.0, 0.3, 0.1, -0.1, //
                -1.7, -0.1, -0.4, 0.2,
            ],
            [4, 4],
        );
        let labels = [1.0, 1.0, 0.0, 0.0];
        let first = head.loss(&x, &labels).item();
        for _ in 0..100 {
            let loss = head.loss(&x, &labels);
            loss.backward();
            opt.step();
        }
        let last = head.loss(&x, &labels).item();
        assert!(last < first * 0.5, "loss {} -> {}", first, last);
        let logits = head.forward(&x).to_vec();
        assert!(logits[0] > 0.0 && logits[1] > 0.0);
        assert!(logits[2] < 0.0 && logits[3] < 0.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let head = NodeClassifier::new(8, 0);
        let _ = head.forward(&Tensor::ones([2, 4]));
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn rejects_wrong_label_count() {
        let head = NodeClassifier::new(4, 0);
        let _ = head.loss(&Tensor::ones([2, 4]), &[1.0]);
    }
}
