//! The unified memory-based TGNN.
//!
//! [`MemoryTgnn`] implements the three training steps of Figure 1 for all
//! five Table 1 configurations:
//!
//! 1. **Node embedding & prediction** — pending mailbox messages are
//!    consumed through the memory updater (keeping it on the loss path,
//!    as in TGL/TGN), the embedder produces node representations, and the
//!    link predictor scores the batch's positive and negative edges.
//! 2. **Message generating** — each event emits raw messages
//!    `[s_src ‖ s_dst ‖ e_feat ‖ t]` into both endpoints' mailboxes.
//! 3. **Memory updating** — updated center memories are written back
//!    detached (stop-gradient at batch boundaries), yielding the
//!    pre/post pairs the SG-Filter inspects.

// cascade-lint: allow(det-hash-iter): imported only for the insert/lookup index maps below, which are never iterated.
use std::collections::HashMap;
use std::time::Duration;

use cascade_nn::{
    bce_with_logits, bce_with_logits_sum, EdgePredictor, GatLayer, GruCell, Linear, Module,
    RnnCell, TimeEncode,
};
use cascade_tensor::Tensor;
use cascade_tgraph::{EdgeFeatures, Event, EventId, NegativeSampler, NeighborRef, NodeId};

use crate::config::{EmbedderKind, ModelConfig, Sampling, UpdaterKind};
use crate::plane::{LocalPlane, MemoryPlane, MemoryView, PlaneGeometry, ShardedPlane};

/// One node-memory transition produced by a batch (consumed by the
/// SG-Filter to decide stability).
#[derive(Clone, Debug)]
pub struct MemoryDelta {
    /// The updated node.
    pub node: NodeId,
    /// Memory before the update.
    pub pre: Vec<f32>,
    /// Memory after the update.
    pub post: Vec<f32>,
}

/// The result of processing one batch.
#[derive(Debug)]
pub struct BatchOutput {
    /// Scalar BCE loss over the batch's positive and negative edges.
    /// Call `backward()` and step the optimizer to train.
    pub loss: Tensor,
    /// Memory transitions applied by this batch.
    pub deltas: Vec<MemoryDelta>,
    /// Logits of the batch's true edges (one per event).
    pub pos_logits: Vec<f32>,
    /// Logits of the negative-sampled wrong edges (one per event).
    pub neg_logits: Vec<f32>,
}

/// The forward half of a batch (Figure 1 step 1): loss and logits, plus
/// the deferred state mutations [`MemoryTgnn::apply_batch`] completes.
///
/// Produced by [`MemoryTgnn::forward_batch`]; the embedded
/// [`BatchPending`] must be handed to `apply_batch` with the same events
/// before the next batch's forward pass, or memories and mailboxes fall
/// out of sync with the stream.
#[derive(Debug)]
pub struct BatchForward {
    /// Scalar BCE loss over the batch's positive and negative edges.
    pub loss: Tensor,
    /// Logits of the batch's true edges (one per event).
    pub pos_logits: Vec<f32>,
    /// Logits of the negative-sampled wrong edges (one per event).
    pub neg_logits: Vec<f32>,
    /// Wall-clock busy time of each compute shard's forward pass, in
    /// shard-index order (empty when the batch ran unsharded, e.g. in
    /// lite mode). Telemetry only — never fed back into computation.
    pub shard_busy: Vec<Duration>,
    /// The write-back ticket for [`MemoryTgnn::apply_batch`].
    pub pending: BatchPending,
}

/// Deferred memory write-backs computed by [`MemoryTgnn::forward_batch`]
/// (Figure 1 steps 2–3), detached from the autograd graph so it can cross
/// pipeline-stage boundaries.
#[derive(Clone, Debug)]
pub struct BatchPending {
    /// Distinct batch endpoints, in first-appearance order.
    centers: Vec<NodeId>,
    /// Per-center: had pending mailbox messages (i.e. memory moved).
    has_msg: Vec<bool>,
    /// Row-major `[centers.len(), memory_dim]` updated memories.
    post: Vec<f32>,
}

impl BatchPending {
    /// Reassembles a ticket from its parts (the dist wire codec decodes
    /// tickets received from peer workers).
    ///
    /// # Panics
    ///
    /// Panics if `centers` and `has_msg` disagree in length or `post` is
    /// not a whole number of `centers.len()` rows.
    pub fn from_parts(centers: Vec<NodeId>, has_msg: Vec<bool>, post: Vec<f32>) -> Self {
        assert_eq!(centers.len(), has_msg.len(), "pending shape mismatch");
        assert!(
            centers.is_empty() || post.len().is_multiple_of(centers.len()),
            "pending width mismatch"
        );
        BatchPending {
            centers,
            has_msg,
            post,
        }
    }

    /// Distinct batch endpoints, in first-appearance order.
    pub fn centers(&self) -> &[NodeId] {
        &self.centers
    }

    /// Per-center had-pending-messages flags.
    pub fn has_msg(&self) -> &[bool] {
        &self.has_msg
    }

    /// Row-major `[centers.len(), memory_dim]` updated memories.
    pub fn post(&self) -> &[f32] {
        &self.post
    }
}

/// Fixed shard count for parallel batch compute: a batch is always split
/// into `min(MAX_SHARDS, batch_len)` contiguous event ranges regardless
/// of how many worker threads evaluate them, so the loss graph — and
/// therefore every gradient bit — is identical at any thread count.
const MAX_SHARDS: usize = 8;

/// One shard's forward result, reduced on the driver in shard-index
/// order.
struct ShardForward {
    loss_sum: Tensor,
    pos: Vec<f32>,
    neg: Vec<f32>,
    busy: Duration,
}

#[derive(Clone)]
enum Updater {
    Rnn(RnnCell),
    Gru(GruCell),
    Attention {
        query: Linear,
        key: Linear,
        value: Linear,
        out: Linear,
    },
    Identity(Linear),
}

#[derive(Clone)]
enum Embedder {
    Jodie { decay: Tensor },
    Identity,
    Gat1(GatLayer),
    Gat2(GatLayer, GatLayer),
}

/// A memory-based temporal graph neural network (JODIE / TGN / APAN /
/// DySAT / TGAT depending on [`ModelConfig`]).
///
/// # Examples
///
/// ```
/// use cascade_models::{MemoryTgnn, ModelConfig};
/// use cascade_nn::Module;
/// use cascade_tgraph::{Event, EventStream, synth_features};
///
/// let cfg = ModelConfig::tgn().with_dims(8, 4);
/// let mut model = MemoryTgnn::new(cfg, 10, 4, 42);
/// let events = vec![Event::new(0u32, 1u32, 1.0), Event::new(2u32, 3u32, 2.0)];
/// let feats = synth_features(2, 4, 7);
/// let out = model.process_batch(&events, 0, &feats);
/// assert!(out.loss.item().is_finite());
/// ```
pub struct MemoryTgnn {
    config: ModelConfig,
    edge_feat_dim: usize,
    plane: Box<dyn MemoryPlane>,
    time_enc: TimeEncode,
    updater: Updater,
    embedder: Embedder,
    predictor: EdgePredictor,
    neg_sampler: NegativeSampler,
    compute_threads: usize,
}

/// Cloning shares the *parameter* tensors (a [`Tensor`] clone is a
/// shallow handle onto the same storage, so both clones see the same
/// trained weights) while copying the memory plane via
/// [`MemoryPlane::clone_plane`] — a deep copy for the local and sharded
/// planes ([`LocalPlane`], [`ShardedPlane`]).
///
/// That split is exactly what online serving needs — a frozen,
/// internally consistent read snapshot of the evolving state, scored
/// with the live weights. It also means a clone is **not** an
/// independent trainable model: stepping an optimizer on either clone
/// moves the weights of both. Use
/// [`export_state`](MemoryTgnn::export_state) /
/// [`import_state`](MemoryTgnn::import_state) into a freshly built model
/// for a fully detached copy.
impl Clone for MemoryTgnn {
    fn clone(&self) -> Self {
        MemoryTgnn {
            config: self.config.clone(),
            edge_feat_dim: self.edge_feat_dim,
            plane: self.plane.clone_plane(),
            time_enc: self.time_enc.clone(),
            updater: self.updater.clone(),
            embedder: self.embedder.clone(),
            predictor: self.predictor.clone(),
            neg_sampler: self.neg_sampler.clone(),
            compute_threads: self.compute_threads,
        }
    }
}

impl MemoryTgnn {
    /// Builds a model for a graph of `num_nodes` nodes with
    /// `edge_feat_dim`-wide edge features.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    pub fn new(config: ModelConfig, num_nodes: usize, edge_feat_dim: usize, seed: u64) -> Self {
        let geom = PlaneGeometry::for_config(&config, num_nodes, edge_feat_dim, seed);
        Self::with_plane(
            config,
            edge_feat_dim,
            seed,
            Box::new(LocalPlane::new(&geom)),
        )
    }

    /// Builds a model over a node-id-hash [`ShardedPlane`] of
    /// `num_shards` shards. Bit-identical to [`new`](Self::new) — shard
    /// placement is invisible to every read, write, and neighbor draw —
    /// but state is stored exactly the way dist workers partition it.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0` or `num_shards == 0`.
    pub fn new_sharded(
        config: ModelConfig,
        num_nodes: usize,
        edge_feat_dim: usize,
        seed: u64,
        num_shards: usize,
    ) -> Self {
        let geom = PlaneGeometry::for_config(&config, num_nodes, edge_feat_dim, seed);
        Self::with_plane(
            config,
            edge_feat_dim,
            seed,
            Box::new(ShardedPlane::new(&geom, num_shards)),
        )
    }

    /// Builds a model over an externally constructed memory plane (the
    /// dist runtime hands every worker a handle onto one shared sharded
    /// plane). The plane must match
    /// [`PlaneGeometry::for_config`]`(&config, …, edge_feat_dim, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the plane's dimensions disagree with the configuration.
    pub fn with_plane(
        config: ModelConfig,
        edge_feat_dim: usize,
        seed: u64,
        plane: Box<dyn MemoryPlane>,
    ) -> Self {
        assert!(plane.num_nodes() > 0, "model needs at least one node");
        let d = config.memory_dim;
        let td = config.time_dim;
        let f = edge_feat_dim;
        // Raw mailbox message: [s_src ‖ s_partner ‖ feat ‖ abs_time].
        let raw_msg_dim = 2 * d + f + 1;
        // Message after time encoding at consumption.
        let msg_in_dim = 2 * d + f + td;
        assert_eq!(plane.memory_dim(), d, "plane memory width mismatch");
        assert_eq!(
            plane.mailbox_msg_dim(),
            raw_msg_dim,
            "plane mailbox width mismatch"
        );

        let updater = match config.updater {
            UpdaterKind::Rnn => Updater::Rnn(RnnCell::new(msg_in_dim, d, seed ^ 0x01)),
            UpdaterKind::Gru => Updater::Gru(GruCell::new(msg_in_dim, d, seed ^ 0x02)),
            UpdaterKind::MailboxAttention => Updater::Attention {
                query: Linear::new(d, d, seed ^ 0x03),
                key: Linear::new(msg_in_dim, d, seed ^ 0x04),
                value: Linear::new(msg_in_dim, d, seed ^ 0x05),
                out: Linear::new(2 * d, d, seed ^ 0x06),
            },
            UpdaterKind::Identity => Updater::Identity(Linear::new(msg_in_dim, d, seed ^ 0x07)),
        };

        let gat_in = d + f + td;
        let embedder = match config.embedder {
            EmbedderKind::JodieDecay => Embedder::Jodie {
                decay: Tensor::zeros([1, d]).requires_grad(),
            },
            EmbedderKind::Identity => Embedder::Identity,
            EmbedderKind::Gat1 => Embedder::Gat1(GatLayer::new(gat_in, d, seed ^ 0x08)),
            EmbedderKind::Gat2 => Embedder::Gat2(
                GatLayer::new(gat_in, d, seed ^ 0x09),
                GatLayer::new(gat_in, d, seed ^ 0x0a),
            ),
        };

        let num_nodes = plane.num_nodes();
        MemoryTgnn {
            edge_feat_dim,
            plane,
            time_enc: TimeEncode::new(td),
            updater,
            embedder,
            predictor: EdgePredictor::new(d, seed ^ 0x0c),
            neg_sampler: NegativeSampler::new(num_nodes, seed ^ 0x0d),
            compute_threads: 1,
            config,
        }
    }

    /// Sets how many worker threads evaluate a batch's compute shards
    /// (clamped to at least 1). The shard *count* is fixed by batch size,
    /// so results are bit-identical at any thread setting — this only
    /// trades wall-clock time.
    pub fn set_compute_threads(&mut self, threads: usize) {
        self.compute_threads = threads.max(1);
    }

    /// Worker threads used for shard-parallel batch compute.
    pub fn compute_threads(&self) -> usize {
        self.compute_threads
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Model name (JODIE, TGN, …).
    pub fn name(&self) -> &'static str {
        self.config.name
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.plane.num_nodes()
    }

    /// Edge-feature width this model was built for.
    pub fn edge_feat_dim(&self) -> usize {
        self.edge_feat_dim
    }

    /// Read access to the node-memory rows of the plane.
    pub fn memory(&self) -> MemoryView<'_> {
        MemoryView {
            plane: self.plane.as_ref(),
        }
    }

    /// The memory plane backing this model (shard layout queries).
    pub fn plane(&self) -> &dyn MemoryPlane {
        self.plane.as_ref()
    }

    /// Direct memory write for checkpoint restoration.
    pub(crate) fn write_memory(&mut self, node: NodeId, values: &[f32], time: f64) {
        self.plane.memory_write(node, values, time);
    }

    /// Direct mailbox clear for checkpoint restoration.
    pub(crate) fn clear_node_mailbox(&mut self, node: NodeId) {
        self.plane.mailbox_clear(node);
    }

    /// Direct mailbox push for checkpoint restoration.
    pub(crate) fn push_mailbox(&mut self, node: NodeId, msg: Vec<f32>) {
        self.plane.mailbox_push(node, msg);
    }

    /// Bytes held by the node-memory matrix.
    pub fn memory_size_bytes(&self) -> usize {
        self.plane.memory_size_bytes()
    }

    /// Bytes held by pending mailbox messages.
    pub fn mailbox_size_bytes(&self) -> usize {
        self.plane.mailbox_size_bytes()
    }

    /// Number of past events registered for `node` in the temporal
    /// adjacency store — the sampler's visible history. Events of a batch
    /// are registered only *after* the batch is processed, so embeddings
    /// can never see the future (asserted by the temporal-leakage tests).
    pub fn history_degree(&self, node: NodeId) -> usize {
        self.plane.adj_degree(node)
    }

    /// Clears memory, mailboxes, and the temporal adjacency store
    /// (called at the start of every epoch).
    pub fn reset_state(&mut self) {
        self.plane.reset();
    }

    /// Serializes everything learned or accumulated so far — parameters,
    /// node memories with their last-update times, and pending mailbox
    /// messages — for a mid-training checkpoint. The temporal adjacency
    /// store is excluded: it is a pure function of the already-processed
    /// event prefix and is rebuilt via
    /// [`replay_adjacency`](Self::replay_adjacency).
    pub fn export_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.push(1u8); // blob version
        let params = self.parameters();
        buf.extend_from_slice(&(params.len() as u32).to_le_bytes());
        for p in &params {
            let data = p.to_vec();
            buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
            for x in &data {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        let nodes = self.plane.num_nodes();
        let dim = self.plane.memory_dim();
        buf.extend_from_slice(&(nodes as u64).to_le_bytes());
        buf.extend_from_slice(&(dim as u32).to_le_bytes());
        for n in 0..nodes {
            for x in self.plane.memory_read(NodeId(n as u32)) {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        for n in 0..nodes {
            buf.extend_from_slice(
                &self
                    .plane
                    .memory_last_update(NodeId(n as u32))
                    .to_le_bytes(),
            );
        }
        buf.extend_from_slice(&(self.plane.mailbox_msg_dim() as u32).to_le_bytes());
        buf.extend_from_slice(&(self.plane.mailbox_capacity() as u32).to_le_bytes());
        for n in 0..nodes {
            let msgs = self.plane.mailbox_messages(NodeId(n as u32));
            buf.extend_from_slice(&(msgs.len() as u32).to_le_bytes());
            for msg in &msgs {
                for x in msg {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        buf
    }

    /// Restores state captured by [`export_state`](Self::export_state).
    /// The adjacency store is *not* restored — call
    /// [`replay_adjacency`](Self::replay_adjacency) with the processed
    /// event prefix afterwards.
    ///
    /// # Errors
    ///
    /// Returns a description when the blob is truncated or its shapes do
    /// not match this model.
    pub fn import_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = bytes
                .get(*off..*off + n)
                .ok_or("model state truncated".to_string())?;
            *off += n;
            Ok(s)
        };
        let read_u32 = |off: &mut usize| -> Result<usize, String> {
            Ok(u32::from_le_bytes(take(off, 4)?.try_into().expect("slice is 4 bytes")) as usize)
        };
        let read_f32s = |off: &mut usize, n: usize| -> Result<Vec<f32>, String> {
            Ok(take(off, n * 4)?
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("slice is 4 bytes")))
                .collect())
        };
        if *take(&mut off, 1)?.first().expect("slice is 1 byte") != 1 {
            return Err("unsupported model state version".to_string());
        }
        let params = self.parameters();
        if read_u32(&mut off)? != params.len() {
            return Err("model state parameter count mismatch".to_string());
        }
        let mut restored = Vec::with_capacity(params.len());
        for (i, p) in params.iter().enumerate() {
            let len = read_u32(&mut off)?;
            if len != p.len() {
                return Err(format!(
                    "model state parameter {} has {} values, expected {}",
                    i,
                    len,
                    p.len()
                ));
            }
            restored.push(read_f32s(&mut off, len)?);
        }
        let nodes =
            u64::from_le_bytes(take(&mut off, 8)?.try_into().expect("slice is 8 bytes")) as usize;
        let dim = read_u32(&mut off)?;
        if nodes != self.plane.num_nodes() || dim != self.plane.memory_dim() {
            return Err(format!(
                "model state memory is {}x{}, expected {}x{}",
                nodes,
                dim,
                self.plane.num_nodes(),
                self.plane.memory_dim()
            ));
        }
        let memory_data = read_f32s(&mut off, nodes * dim)?;
        let mut last_updates = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            last_updates.push(f64::from_le_bytes(
                take(&mut off, 8)?.try_into().expect("slice is 8 bytes"),
            ));
        }
        if read_u32(&mut off)? != self.plane.mailbox_msg_dim() {
            return Err("model state mailbox message width mismatch".to_string());
        }
        if read_u32(&mut off)? != self.plane.mailbox_capacity() {
            return Err("model state mailbox capacity mismatch".to_string());
        }
        let mut mailbox_msgs: Vec<Vec<Vec<f32>>> = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let count = read_u32(&mut off)?;
            let mut msgs = Vec::with_capacity(count);
            for _ in 0..count {
                msgs.push(read_f32s(&mut off, self.plane.mailbox_msg_dim())?);
            }
            mailbox_msgs.push(msgs);
        }
        // Everything validated: mutate only now, so a bad blob leaves
        // the model untouched.
        for (p, data) in params.iter().zip(&restored) {
            p.set_data(data);
        }
        for n in 0..nodes {
            let row = &memory_data[n * dim..(n + 1) * dim];
            self.plane
                .memory_write(NodeId(n as u32), row, last_updates[n]);
        }
        for n in 0..nodes {
            self.plane.mailbox_clear(NodeId(n as u32));
        }
        for (n, msgs) in mailbox_msgs.into_iter().enumerate() {
            for msg in msgs {
                self.plane.mailbox_push(NodeId(n as u32), msg);
            }
        }
        Ok(())
    }

    /// Re-registers an already-processed event prefix in the temporal
    /// adjacency store after [`import_state`](Self::import_state).
    /// `first_id` is the stream id of `events[0]`; insertion is a pure
    /// function of `(event, id)`, so replaying reproduces the store
    /// exactly.
    pub fn replay_adjacency(&mut self, events: &[Event], first_id: EventId) {
        for (i, e) in events.iter().enumerate() {
            self.plane.adj_insert(e, first_id + i);
        }
    }

    /// Runs the full batch pipeline (predict → message → update) and
    /// returns the loss tensor plus the applied memory transitions.
    ///
    /// `first_id` is the stream index of `events[0]`, used to look up edge
    /// features and to register adjacency.
    ///
    /// Thin wrapper over [`forward_batch`](Self::forward_batch) followed
    /// by [`apply_batch`](Self::apply_batch) — callers that pipeline the
    /// two steps (the `cascade-exec` executor) invoke the halves
    /// directly.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty or any endpoint is out of range.
    pub fn process_batch(
        &mut self,
        events: &[Event],
        first_id: EventId,
        feats: &EdgeFeatures,
    ) -> BatchOutput {
        let fwd = self.forward_batch(events, first_id, feats);
        let deltas = self.apply_batch(events, first_id, feats, fwd.pending);
        BatchOutput {
            loss: fwd.loss,
            deltas,
            pos_logits: fwd.pos_logits,
            neg_logits: fwd.neg_logits,
        }
    }

    /// The forward half of [`process_batch`](Self::process_batch): message
    /// consumption, embedding, link prediction, and the loss (Figure 1
    /// step 1). Mutates nothing — samplers are stateless and memories,
    /// mailboxes, and adjacency are untouched until the returned ticket
    /// goes through [`apply_batch`](Self::apply_batch).
    ///
    /// Outside lite mode the batch's events are split into
    /// `min(8, batch_len)` contiguous shards whose embedding, prediction,
    /// and partial loss are evaluated on up to
    /// [`compute_threads`](Self::compute_threads) scoped worker threads;
    /// the partial losses are reduced in fixed shard-index order, so the
    /// result is bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty or any endpoint is out of range.
    pub fn forward_batch(
        &self,
        events: &[Event],
        first_id: EventId,
        feats: &EdgeFeatures,
    ) -> BatchForward {
        assert!(!events.is_empty(), "process_batch on empty batch");
        let d = self.config.memory_dim;

        // ---- Step 1a: consume pending messages through the updater. ----
        let mut centers: Vec<NodeId> = Vec::new();
        // cascade-lint: allow(det-hash-iter): insert/lookup only, never iterated — ordered traversal runs over `centers`, which records insertion order.
        let mut center_idx: HashMap<NodeId, usize> = HashMap::new();
        for e in events {
            for n in [e.src, e.dst] {
                center_idx.entry(n).or_insert_with(|| {
                    centers.push(n);
                    centers.len() - 1
                });
            }
        }
        let stored = self.plane.memory_gather(&centers); // [C, d] leaf
        let (updated, has_msg) = self.consume_mailboxes(&centers, &stored);

        // ---- Step 1b: embed src/dst/neg and compute the loss. ----
        // Negative draws are keyed by global event id, so a shard's draws
        // depend only on which events it holds, never on evaluation order.
        let negs: Vec<NodeId> = events
            .iter()
            .enumerate()
            .map(|(i, e)| self.neg_sampler.sample(e.dst, (first_id + i) as u64))
            .collect();

        let (loss, pos_vec, neg_vec, shard_busy) = if self.config.lite {
            // Lite mode deduplicates embeddings across the whole batch, so
            // its events are not independent; it stays on the serial path.
            let (loss, p, n) = self.lite_forward(events, &updated, &center_idx, &negs, feats);
            (loss, p, n, Vec::new())
        } else {
            self.sharded_forward(events, &updated, &center_idx, &negs, feats)
        };

        // Updated memories leave the autograd graph here: `post` holds the
        // detached rows apply_batch writes back (Figure 1 step 3).
        let post = updated.data()[..centers.len() * d].to_vec();

        BatchForward {
            loss,
            pos_logits: pos_vec,
            neg_logits: neg_vec,
            shard_busy,
            pending: BatchPending {
                centers,
                has_msg,
                post,
            },
        }
    }

    /// TGLite-style redundancy elimination: embed each distinct node once
    /// at the batch-end timestamp, then scatter back to the per-event
    /// slots. Batch-global by construction, hence unsharded.
    fn lite_forward(
        &self,
        events: &[Event],
        updated: &Tensor,
        // cascade-lint: allow(det-hash-iter): lookup-only index map; every traversal runs over slices in event order.
        center_idx: &HashMap<NodeId, usize>,
        negs: &[NodeId],
        feats: &EdgeFeatures,
    ) -> (Tensor, Vec<f32>, Vec<f32>) {
        let b = events.len();
        let d = self.config.memory_dim;
        let (all_nodes, _times) = Self::event_columns(events, negs);

        let t_end = events.last().expect("non-empty batch").time;
        let mut uniq: Vec<NodeId> = Vec::new();
        // cascade-lint: allow(det-hash-iter): insert/lookup only, never iterated — ordered traversal runs over `uniq`, which records insertion order.
        let mut uniq_idx: HashMap<NodeId, usize> = HashMap::new();
        for &n in &all_nodes {
            uniq_idx.entry(n).or_insert_with(|| {
                uniq.push(n);
                uniq.len() - 1
            });
        }
        // Base rows: updated memories for batch centers, stored memories
        // for everything else, in `uniq` order.
        let rows: Vec<Tensor> = uniq
            .iter()
            .map(|n| match center_idx.get(n) {
                Some(&c) => updated.index_select(&[c]),
                None => self.plane.memory_gather(std::slice::from_ref(n)),
            })
            .collect();
        let row_refs: Vec<&Tensor> = rows.iter().collect();
        let base_u = Tensor::concat_rows(&row_refs);
        let times_u = vec![t_end; uniq.len()];
        let h_u = self.embed(&uniq, &times_u, &base_u, feats);
        let scatter: Vec<usize> = all_nodes.iter().map(|n| uniq_idx[n]).collect();
        let h = h_u.index_select(&scatter);
        debug_assert_eq!(h.dims(), &[3 * b, d]);

        let h_src = h.slice_rows(0, b);
        let h_dst = h.slice_rows(b, 2 * b);
        let h_neg = h.slice_rows(2 * b, 3 * b);

        let pos_logits = self.predictor.forward(&h_src, &h_dst);
        let neg_logits = self.predictor.forward(&h_src, &h_neg);
        let pos_vec = pos_logits.to_vec();
        let neg_vec = neg_logits.to_vec();
        let logits = Tensor::concat_rows(&[&pos_logits, &neg_logits]);
        let mut labels = vec![1.0; b];
        labels.extend(vec![0.0; b]);
        let labels = Tensor::from_vec(labels, [2 * b, 1]);
        (bce_with_logits(&logits, &labels), pos_vec, neg_vec)
    }

    /// Splits the batch into `min(MAX_SHARDS, b)` contiguous shards,
    /// evaluates each shard's forward pass (on scoped worker threads when
    /// `compute_threads > 1`), and reduces the per-shard loss sums in
    /// shard-index order via [`Tensor::sharded_sum_scaled`].
    fn sharded_forward(
        &self,
        events: &[Event],
        updated: &Tensor,
        // cascade-lint: allow(det-hash-iter): lookup-only index map; every traversal runs over slices in event order.
        center_idx: &HashMap<NodeId, usize>,
        negs: &[NodeId],
        feats: &EdgeFeatures,
    ) -> (Tensor, Vec<f32>, Vec<f32>, Vec<Duration>) {
        let b = events.len();
        let shards = b.min(MAX_SHARDS);
        // Balanced contiguous partition: shard s covers [bounds[s], bounds[s+1]).
        let bounds: Vec<usize> = (0..=shards).map(|s| s * b / shards).collect();
        let workers = self.compute_threads.max(1).min(shards);

        let mut results: Vec<Option<ShardForward>> = (0..shards).map(|_| None).collect();
        if workers <= 1 {
            for (s, slot) in results.iter_mut().enumerate() {
                *slot = Some(self.shard_forward(
                    &events[bounds[s]..bounds[s + 1]],
                    &negs[bounds[s]..bounds[s + 1]],
                    updated,
                    center_idx,
                    feats,
                ));
            }
        } else {
            let chunk = shards.div_ceil(workers);
            let bounds = &bounds;
            std::thread::scope(|scope| {
                for (c, slot_chunk) in results.chunks_mut(chunk).enumerate() {
                    scope.spawn(move || {
                        for (off, slot) in slot_chunk.iter_mut().enumerate() {
                            let s = c * chunk + off;
                            *slot = Some(self.shard_forward(
                                &events[bounds[s]..bounds[s + 1]],
                                &negs[bounds[s]..bounds[s + 1]],
                                updated,
                                center_idx,
                                feats,
                            ));
                        }
                    });
                }
            });
        }

        // Reduce in fixed shard-index order regardless of which worker
        // finished first — this is what makes thread count invisible.
        let mut pos_vec = Vec::with_capacity(b);
        let mut neg_vec = Vec::with_capacity(b);
        let mut busy = Vec::with_capacity(shards);
        let mut losses = Vec::with_capacity(shards);
        for r in results {
            let r = r.expect("every shard slot is filled exactly once");
            pos_vec.extend(r.pos);
            neg_vec.extend(r.neg);
            busy.push(r.busy);
            losses.push(r.loss_sum);
        }
        // The batch mean: per-shard sums scaled by 1/(2B). `updated` is
        // shared by every shard, so it rides along as a reduction barrier
        // and its subgraph is walked serially after the sink merge.
        let loss = Tensor::sharded_sum_scaled(
            &losses,
            1.0 / (2 * b) as f32,
            std::slice::from_ref(updated),
            self.compute_threads,
        );
        (loss, pos_vec, neg_vec, busy)
    }

    /// One shard's forward pass: embed the shard's src/dst/neg nodes,
    /// score its edges, and sum (not average) its BCE terms. A pure
    /// function of the shard's events — safe to run on any worker thread.
    fn shard_forward(
        &self,
        events: &[Event],
        negs: &[NodeId],
        updated: &Tensor,
        // cascade-lint: allow(det-hash-iter): lookup-only index map; every traversal runs over slices in event order.
        center_idx: &HashMap<NodeId, usize>,
        feats: &EdgeFeatures,
    ) -> ShardForward {
        // cascade-lint: allow(det-wallclock): telemetry only — per-shard busy time fills instrument reports and never feeds computation.
        let start = std::time::Instant::now();
        let sb = events.len();
        let (all_nodes, times) = Self::event_columns(events, negs);

        // Base representations: src/dst rows come from the updated tensor
        // (gradients flow into the updater), negatives from stored memory.
        let sd_indices: Vec<usize> = all_nodes[..2 * sb].iter().map(|n| center_idx[n]).collect();
        let sd_base = updated.index_select(&sd_indices); // [2S, d]
        let neg_base = self.plane.memory_gather(&all_nodes[2 * sb..]); // [S, d] leaf
        let base = Tensor::concat_rows(&[&sd_base, &neg_base]); // [3S, d]
        let h = self.embed(&all_nodes, &times, &base, feats);
        debug_assert_eq!(h.dims(), &[3 * sb, self.config.memory_dim]);

        let h_src = h.slice_rows(0, sb);
        let h_dst = h.slice_rows(sb, 2 * sb);
        let h_neg = h.slice_rows(2 * sb, 3 * sb);

        let pos_logits = self.predictor.forward(&h_src, &h_dst);
        let neg_logits = self.predictor.forward(&h_src, &h_neg);
        let pos = pos_logits.to_vec();
        let neg = neg_logits.to_vec();
        let logits = Tensor::concat_rows(&[&pos_logits, &neg_logits]);
        let mut labels = vec![1.0; sb];
        labels.extend(vec![0.0; sb]);
        let labels = Tensor::from_vec(labels, [2 * sb, 1]);
        let loss_sum = bce_with_logits_sum(&logits, &labels);

        ShardForward {
            loss_sum,
            pos,
            neg,
            busy: start.elapsed(),
        }
    }

    /// The `[src… ‖ dst… ‖ neg…]` node and timestamp columns of a batch
    /// (or shard) — the layout every embedding pass consumes.
    fn event_columns(events: &[Event], negs: &[NodeId]) -> (Vec<NodeId>, Vec<f64>) {
        let b = events.len();
        let mut all_nodes: Vec<NodeId> = Vec::with_capacity(3 * b);
        let mut times: Vec<f64> = Vec::with_capacity(3 * b);
        for e in events {
            all_nodes.push(e.src);
            times.push(e.time);
        }
        for e in events {
            all_nodes.push(e.dst);
            times.push(e.time);
        }
        for (e, &n) in events.iter().zip(negs) {
            all_nodes.push(n);
            times.push(e.time);
        }
        (all_nodes, times)
    }

    /// The state half of [`process_batch`](Self::process_batch): writes
    /// back updated memories (Figure 1 step 3), drops consumed mailbox
    /// messages, generates this batch's messages (step 2), and registers
    /// the events in the temporal adjacency store.
    ///
    /// `events`, `first_id`, and `feats` must be exactly the arguments of
    /// the [`forward_batch`](Self::forward_batch) call that produced
    /// `pending`, and no other forward pass may run in between.
    ///
    /// # Panics
    ///
    /// Panics if `pending`'s shape does not match this model's memory
    /// width or any endpoint is out of range.
    pub fn apply_batch(
        &mut self,
        events: &[Event],
        first_id: EventId,
        feats: &EdgeFeatures,
        pending: BatchPending,
    ) -> Vec<MemoryDelta> {
        let deltas = self.apply_writeback(&pending, None);
        self.apply_messages(events, first_id, feats, None);
        deltas
    }

    /// `true` when a write targeting `node` should be applied under
    /// `shard`: always for `None` (serial path), only for owned nodes
    /// under `Some(s)` (one dist worker's slice of the apply).
    fn owns(&self, node: NodeId, shard: Option<usize>) -> bool {
        match shard {
            None => true,
            Some(s) => self.plane.shard_of(node) == s,
        }
    }

    /// The write-back half of [`apply_batch`](Self::apply_batch) (Figure 1
    /// step 3): writes updated center memories into the plane, drops
    /// their consumed mailbox messages, and returns one [`MemoryDelta`]
    /// per applied write.
    ///
    /// `shard` filters which **writes** are applied: `None` applies all of
    /// them (the serial path), `Some(s)` applies only those targeting
    /// nodes owned by shard `s`. Reads are unrestricted either way. The
    /// dist runtime calls this once per peer payload with each worker's
    /// own shard, so every write is applied by exactly one worker, in the
    /// same payload order on every worker.
    pub fn apply_writeback(
        &mut self,
        pending: &BatchPending,
        shard: Option<usize>,
    ) -> Vec<MemoryDelta> {
        let d = self.config.memory_dim;
        let centers = &pending.centers;
        let has_msg = &pending.has_msg;
        let post = &pending.post;
        assert_eq!(centers.len(), has_msg.len(), "pending shape mismatch");
        assert_eq!(post.len(), centers.len() * d, "pending width mismatch");

        // ---- Step 3: write back updated memories (detached). ----
        let mut deltas = Vec::new();
        for (c, &node) in centers.iter().enumerate() {
            if !has_msg[c] || !self.owns(node, shard) {
                continue;
            }
            let pre = self.plane.memory_read(node);
            let row = post[c * d..(c + 1) * d].to_vec();
            // The node is now fresh as of its newest consumed message.
            let t = self.newest_message_time(node);
            self.plane.memory_write(node, &row, t);
            deltas.push(MemoryDelta {
                node,
                pre,
                post: row,
            });
        }
        // Consumed messages are dropped.
        for (c, &node) in centers.iter().enumerate() {
            if has_msg[c] && self.owns(node, shard) {
                self.clear_mailbox(node);
            }
        }
        deltas
    }

    /// The message-generation half of [`apply_batch`](Self::apply_batch)
    /// (Figure 1 step 2 plus adjacency registration): every event reads
    /// both endpoints' *current* memories, pushes the raw messages, and
    /// registers the event in the temporal adjacency store.
    ///
    /// `shard` filters **writes** exactly as in
    /// [`apply_writeback`](Self::apply_writeback): a mailbox push or
    /// adjacency half-insert lands only if its target node is owned.
    /// Memory *reads* for message content are global, which is why the
    /// dist runtime runs all write-backs (phase A) to completion across
    /// workers before any message generation (phase B) starts.
    pub fn apply_messages(
        &mut self,
        events: &[Event],
        first_id: EventId,
        feats: &EdgeFeatures,
        shard: Option<usize>,
    ) {
        let d = self.config.memory_dim;
        // ---- Step 2: generate messages from this batch's events. ----
        for (i, e) in events.iter().enumerate() {
            let own_src = self.owns(e.src, shard);
            let own_dst = self.owns(e.dst, shard);
            if !own_src && !own_dst {
                continue;
            }
            let feat = feats.row(first_id + i);
            let s_src = self.plane.memory_read(e.src);
            let s_dst = self.plane.memory_read(e.dst);
            if own_src {
                let mut msg_src = Vec::with_capacity(2 * d + feat.len() + 1);
                msg_src.extend_from_slice(&s_src);
                msg_src.extend_from_slice(&s_dst);
                msg_src.extend_from_slice(feat);
                msg_src.push(e.time as f32);
                self.plane.mailbox_push(e.src, msg_src);
            }
            if own_dst {
                let mut msg_dst = Vec::with_capacity(2 * d + feat.len() + 1);
                msg_dst.extend_from_slice(&s_dst);
                msg_dst.extend_from_slice(&s_src);
                msg_dst.extend_from_slice(feat);
                msg_dst.push(e.time as f32);
                self.plane.mailbox_push(e.dst, msg_dst);
            }
        }

        // Register the batch in the temporal adjacency store so later
        // batches can sample these events as neighbors. Each endpoint's
        // half lands in that endpoint's shard.
        for (i, e) in events.iter().enumerate() {
            if self.owns(e.src, shard) {
                self.plane.adj_insert_half(
                    e.src,
                    NeighborRef {
                        node: e.dst,
                        event: first_id + i,
                        time: e.time,
                    },
                );
            }
            if self.owns(e.dst, shard) {
                self.plane.adj_insert_half(
                    e.dst,
                    NeighborRef {
                        node: e.src,
                        event: first_id + i,
                        time: e.time,
                    },
                );
            }
        }
    }

    /// Scores candidate edges `(src, dst)` for each `dst` in `dsts` at
    /// `time`, using the current memories and temporal neighborhoods —
    /// the inference entry point for recommendation and link-prediction
    /// serving.
    ///
    /// Returns one logit per candidate (higher = more likely edge).
    ///
    /// # Panics
    ///
    /// Panics if `dsts` is empty or any node is out of range.
    pub fn score_links(
        &self,
        src: NodeId,
        dsts: &[NodeId],
        time: f64,
        feats: &EdgeFeatures,
    ) -> Vec<f32> {
        assert!(!dsts.is_empty(), "score_links needs at least one candidate");
        let mut nodes = Vec::with_capacity(dsts.len() + 1);
        nodes.push(src);
        nodes.extend_from_slice(dsts);
        let times = vec![time; nodes.len()];
        let base = self.plane.memory_gather(&nodes);
        let h = self.embed(&nodes, &times, &base, feats);
        let h_src = h.slice_rows(0, 1);
        let h_dst = h.slice_rows(1, nodes.len());
        let src_rep = h_src.index_select(&vec![0; dsts.len()]);
        self.predictor.forward(&src_rep, &h_dst).to_vec()
    }

    /// Embeds `nodes` at `time` from their current memories and temporal
    /// neighborhoods, returning a `[len, memory_dim]` tensor on the
    /// autograd graph — the representation downstream heads (node
    /// classifiers, recommenders) consume.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or any node is out of range.
    pub fn embed_nodes(&self, nodes: &[NodeId], time: f64, feats: &EdgeFeatures) -> Tensor {
        assert!(!nodes.is_empty(), "embed_nodes on empty node list");
        let times = vec![time; nodes.len()];
        let base = self.plane.memory_gather(nodes);
        self.embed(nodes, &times, &base, feats)
    }

    /// Absolute time of the newest pending message of `node` (its update
    /// freshness after consumption).
    fn newest_message_time(&self, node: NodeId) -> f64 {
        self.plane
            .mailbox_messages(node)
            .iter()
            .map(|m| *m.last().expect("message has time column") as f64)
            .fold(self.plane.memory_last_update(node), f64::max)
    }

    fn clear_mailbox(&mut self, node: NodeId) {
        self.plane.mailbox_clear(node);
    }

    /// Aggregates each center's mailbox and applies the memory updater.
    /// Returns the `[C, d]` updated-memory tensor and a per-center
    /// had-pending-messages flag; centers without messages keep their
    /// stored memory.
    fn consume_mailboxes(&self, centers: &[NodeId], stored: &Tensor) -> (Tensor, Vec<bool>) {
        let c = centers.len();
        let d = self.config.memory_dim;
        let f = self.edge_feat_dim;
        let has_msg: Vec<bool> = centers
            .iter()
            .map(|&n| self.plane.mailbox_has_messages(n))
            .collect();
        if !has_msg.iter().any(|&m| m) {
            return (stored.clone(), has_msg);
        }

        let upd = match &self.updater {
            Updater::Attention {
                query,
                key,
                value,
                out,
            } => self.attention_update(centers, stored, query, key, value, out),
            _ => {
                // Mean-aggregate raw messages, then encode time.
                let mut agg = vec![0.0f32; c * (2 * d + f)];
                let mut dts = vec![0.0f32; c];
                for (i, &n) in centers.iter().enumerate() {
                    let msgs = self.plane.mailbox_messages(n);
                    if msgs.is_empty() {
                        continue;
                    }
                    for m in &msgs {
                        for (j, &v) in m[..2 * d + f].iter().enumerate() {
                            agg[i * (2 * d + f) + j] += v / msgs.len() as f32;
                        }
                        let t_msg = *m
                            .last()
                            .expect("mailbox rows end with the event time column")
                            as f64;
                        dts[i] += ((t_msg - self.plane.memory_last_update(n)).max(0.0)
                            / msgs.len() as f64) as f32;
                    }
                }
                let agg = Tensor::from_vec(agg, [c, 2 * d + f]);
                let dts = Tensor::from_vec(dts, [c, 1]);
                let phi = self.time_enc.forward(&dts);
                let input = Tensor::concat_cols(&[&agg, &phi]);
                match &self.updater {
                    Updater::Rnn(cell) => cell.forward(&input, stored),
                    Updater::Gru(cell) => cell.forward(&input, stored),
                    Updater::Identity(proj) => proj.forward(&input).tanh(),
                    // cascade-lint: allow(panic-macro): the enclosing match routed Attention to attention_update above; this arm cannot be reached from the `_` branch.
                    Updater::Attention { .. } => unreachable!(),
                }
            }
        };

        // Mix: updated where messages exist, stored elsewhere.
        let mask: Vec<f32> = has_msg.iter().map(|&m| if m { 1.0 } else { 0.0 }).collect();
        let mask = Tensor::from_vec(mask, [c, 1]);
        let inv = mask.neg().add_scalar(1.0);
        let mixed = upd.mul(&mask).add(&stored.mul(&inv));
        (mixed, has_msg)
    }

    /// APAN-style single-head attention over the mailbox: the stored
    /// memory queries its pending messages.
    fn attention_update(
        &self,
        centers: &[NodeId],
        stored: &Tensor,
        query: &Linear,
        key: &Linear,
        value: &Linear,
        out: &Linear,
    ) -> Tensor {
        let c = centers.len();
        let d = self.config.memory_dim;
        let f = self.edge_feat_dim;
        let cap = self.plane.mailbox_capacity();
        let raw_w = 2 * d + f;

        let mut raw = vec![0.0f32; c * cap * raw_w];
        let mut dts = vec![0.0f32; c * cap];
        let mut mask = vec![0.0f32; c * cap];
        for (i, &n) in centers.iter().enumerate() {
            for (j, m) in self.plane.mailbox_messages(n).iter().enumerate().take(cap) {
                let row = i * cap + j;
                raw[row * raw_w..(row + 1) * raw_w].copy_from_slice(&m[..raw_w]);
                let t_msg = *m
                    .last()
                    .expect("mailbox rows end with the event time column")
                    as f64;
                dts[row] = (t_msg - self.plane.memory_last_update(n)).max(0.0) as f32;
                mask[row] = 1.0;
            }
        }
        let raw = Tensor::from_vec(raw, [c * cap, raw_w]);
        let phi = self.time_enc.forward(&Tensor::from_vec(dts, [c * cap, 1]));
        let msgs = Tensor::concat_cols(&[&raw, &phi]); // [C*cap, msg_in]

        let q = query.forward(stored); // [C, d]
        let k = key.forward(&msgs); // [C*cap, d]
        let v = value.forward(&msgs); // [C*cap, d]

        // Row-wise grouped dot product q_i · k_{i,j}.
        let rep: Vec<usize> = (0..c).flat_map(|i| std::iter::repeat_n(i, cap)).collect();
        let q_exp = q.index_select(&rep); // [C*cap, d]
        let scores = q_exp
            .mul(&k)
            .sum_axis(1)
            .mul_scalar(1.0 / (d as f32).sqrt())
            .reshape([c, cap]);
        let mask_t = Tensor::from_vec(mask, [c, cap]);
        let neg_inf = mask_t.sub_scalar(1.0).mul_scalar(1e9);
        let alpha = scores.mul(&mask_t).add(&neg_inf).softmax(); // [C, cap]

        let attended = v
            .mul(&alpha.reshape([c * cap, 1]))
            .reshape([c, cap, d])
            .sum_axis(1); // [C, d]
        out.forward(&Tensor::concat_cols(&[stored, &attended]))
            .tanh()
    }

    /// Applies the configured embedder to `base` representations of
    /// `nodes` evaluated at `times`.
    fn embed(
        &self,
        nodes: &[NodeId],
        times: &[f64],
        base: &Tensor,
        feats: &EdgeFeatures,
    ) -> Tensor {
        match &self.embedder {
            Embedder::Identity => base.clone(),
            Embedder::Jodie { decay } => {
                let dts: Vec<f32> = nodes
                    .iter()
                    .zip(times)
                    .map(|(&n, &t)| {
                        ((t - self.plane.memory_last_update(n)).max(0.0) as f32).ln_1p()
                    })
                    .collect();
                let dts = Tensor::from_vec(dts, [nodes.len(), 1]);
                // h = s ⊙ (1 + w · log(1 + Δt))
                let scale = dts.matmul(decay).add_scalar(1.0);
                base.mul(&scale)
            }
            Embedder::Gat1(gat) => {
                let k = self.config.sampling.count();
                let (n_in, mask) = self.neighbor_inputs(nodes, times, k, feats);
                let c_in = self.center_inputs(base);
                gat.forward(&c_in, &n_in, &mask, k)
            }
            Embedder::Gat2(l1, l2) => {
                let k = self.config.sampling.count();
                // Hop 1: sample neighbors of the centers.
                let (hop1_nodes, hop1_times, hop1_events, mask1) = self.sample_hop(nodes, k);
                // Hop 2: neighbors of the hop-1 nodes.
                let (n2_in, mask2) = self.neighbor_inputs(&hop1_nodes, &hop1_times, k, feats);
                // Layer 1 on hop-1 nodes (their own memories as base).
                let hop1_base = self.plane.memory_gather(&hop1_nodes);
                let hop1_center_in = self.center_inputs(&hop1_base);
                let emb1 = l1.forward(&hop1_center_in, &n2_in, &mask2, k);
                // Layer 1 on the centers themselves.
                let n1_in =
                    self.assemble_rows(&hop1_base, &hop1_times, &hop1_events, times, k, feats);
                let c_in = self.center_inputs(base);
                let emb0 = l1.forward(&c_in, &n1_in, &mask1, k);
                // Layer 2: centers = emb0, neighbors = emb1 with hop-1
                // edge features and time deltas.
                let n1_emb_in =
                    self.assemble_rows(&emb1, &hop1_times, &hop1_events, times, k, feats);
                let c2_in = self.center_inputs(&emb0);
                l2.forward(&c2_in, &n1_emb_in, &mask1, k)
            }
        }
    }

    /// Samples `k` neighbor slots per node; returns nodes, their event
    /// times, their connecting-event ids, and the validity mask.
    fn sample_hop(
        &self,
        nodes: &[NodeId],
        k: usize,
    ) -> (Vec<NodeId>, Vec<f64>, Vec<Option<EventId>>, Vec<f32>) {
        let mut out_nodes = Vec::with_capacity(nodes.len() * k);
        let mut out_times = Vec::with_capacity(nodes.len() * k);
        let mut out_events = Vec::with_capacity(nodes.len() * k);
        let mut mask = Vec::with_capacity(nodes.len() * k);
        for &n in nodes {
            let nbrs = match self.config.sampling {
                Sampling::MostRecent(_) => self.plane.adj_most_recent(n, k),
                Sampling::Uniform(_) => self.plane.adj_uniform(n, k),
            };
            for j in 0..k {
                if let Some(nb) = nbrs.get(j) {
                    out_nodes.push(nb.node);
                    out_times.push(nb.time);
                    out_events.push(Some(nb.event));
                    mask.push(1.0);
                } else {
                    out_nodes.push(NodeId(0));
                    out_times.push(0.0);
                    out_events.push(None);
                    mask.push(0.0);
                }
            }
        }
        (out_nodes, out_times, out_events, mask)
    }

    /// Builds `[n·k, d + f + time]` neighbor input rows by sampling.
    fn neighbor_inputs(
        &self,
        nodes: &[NodeId],
        times: &[f64],
        k: usize,
        feats: &EdgeFeatures,
    ) -> (Tensor, Vec<f32>) {
        let (nb_nodes, nb_times, nb_events, mask) = self.sample_hop(nodes, k);
        let mem = self.plane.memory_gather(&nb_nodes);
        let t = self.assemble_rows(&mem, &nb_times, &nb_events, times, k, feats);
        (t, mask)
    }

    /// Assembles neighbor rows `[base ‖ e_feat ‖ φ(Δt)]` for sampled
    /// neighbors; `base` is either raw memories (layer 1) or lower-layer
    /// embeddings (layer 2 of TGAT).
    fn assemble_rows(
        &self,
        base: &Tensor,
        nb_times: &[f64],
        nb_events: &[Option<EventId>],
        center_times: &[f64],
        k: usize,
        feats: &EdgeFeatures,
    ) -> Tensor {
        let rows = nb_times.len();
        let f = self.edge_feat_dim;
        debug_assert_eq!(rows, center_times.len() * k);

        let mut dts = Vec::with_capacity(rows);
        for (i, &t_nb) in nb_times.iter().enumerate() {
            let center_t = center_times[i / k];
            dts.push((center_t - t_nb).max(0.0) as f32);
        }
        let phi = self.time_enc.forward(&Tensor::from_vec(dts, [rows, 1]));

        if f > 0 {
            let mut feat = vec![0.0f32; rows * f];
            for (i, ev) in nb_events.iter().enumerate() {
                if let Some(id) = ev {
                    let row = feats.row(*id);
                    feat[i * f..(i + 1) * f].copy_from_slice(row);
                }
            }
            let feat = Tensor::from_vec(feat, [rows, f]);
            Tensor::concat_cols(&[base, &feat, &phi])
        } else {
            Tensor::concat_cols(&[base, &phi])
        }
    }

    /// Builds `[n, d + f + time]` center rows: base plus zero features and
    /// a zero time delta.
    fn center_inputs(&self, base: &Tensor) -> Tensor {
        let n = base.dims()[0];
        let f = self.edge_feat_dim;
        let phi = self.time_enc.forward(&Tensor::zeros([n, 1]));
        if f > 0 {
            Tensor::concat_cols(&[base, &Tensor::zeros([n, f]), &phi])
        } else {
            Tensor::concat_cols(&[base, &phi])
        }
    }
}

impl Module for MemoryTgnn {
    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.time_enc.parameters();
        match &self.updater {
            Updater::Rnn(c) => ps.extend(c.parameters()),
            Updater::Gru(c) => ps.extend(c.parameters()),
            Updater::Attention {
                query,
                key,
                value,
                out,
            } => {
                ps.extend(query.parameters());
                ps.extend(key.parameters());
                ps.extend(value.parameters());
                ps.extend(out.parameters());
            }
            Updater::Identity(l) => ps.extend(l.parameters()),
        }
        match &self.embedder {
            Embedder::Jodie { decay } => ps.push(decay.clone()),
            Embedder::Identity => {}
            Embedder::Gat1(g) => ps.extend(g.parameters()),
            Embedder::Gat2(a, b) => {
                ps.extend(a.parameters());
                ps.extend(b.parameters());
            }
        }
        ps.extend(self.predictor.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_tgraph::synth_features;

    fn toy_events() -> Vec<Event> {
        vec![
            Event::new(0u32, 1u32, 1.0),
            Event::new(2u32, 3u32, 2.0),
            Event::new(0u32, 2u32, 3.0),
        ]
    }

    fn run_one(cfg: ModelConfig) -> BatchOutput {
        let mut model = MemoryTgnn::new(cfg.with_dims(8, 4), 6, 4, 1);
        let feats = synth_features(3, 4, 2);
        model.process_batch(&toy_events(), 0, &feats)
    }

    #[test]
    fn all_models_produce_finite_loss() {
        for cfg in ModelConfig::all() {
            let out = run_one(cfg.clone());
            assert!(out.loss.item().is_finite(), "{} loss not finite", cfg.name);
        }
    }

    #[test]
    fn first_batch_has_no_deltas() {
        // No pending messages before the first batch, so no memory updates.
        let out = run_one(ModelConfig::tgn());
        assert!(out.deltas.is_empty());
    }

    #[test]
    fn second_batch_updates_memories() {
        let mut model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        let feats = synth_features(6, 4, 2);
        model.process_batch(&toy_events(), 0, &feats);
        let out = model.process_batch(&toy_events(), 3, &feats);
        assert!(!out.deltas.is_empty());
        for dta in &out.deltas {
            assert_ne!(dta.pre, dta.post, "memory must move on update");
            assert_eq!(model.memory().read(dta.node), &dta.post[..]);
        }
    }

    #[test]
    fn state_roundtrip_is_bit_exact() {
        let mut model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        let feats = synth_features(9, 4, 2);
        model.process_batch(&toy_events(), 0, &feats);
        model.process_batch(&toy_events(), 3, &feats);
        let blob = model.export_state();

        // Same constructor seed: the negative sampler's key is
        // configuration, not serialized state.
        let mut restored = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        restored.import_state(&blob).expect("state roundtrips");
        restored.replay_adjacency(&toy_events(), 0);
        restored.replay_adjacency(&toy_events(), 3);
        assert_eq!(restored.export_state(), blob);
        for n in 0..6u32 {
            assert_eq!(
                restored.memory().read(NodeId(n)),
                model.memory().read(NodeId(n))
            );
            assert_eq!(
                restored.history_degree(NodeId(n)),
                model.history_degree(NodeId(n))
            );
        }
        // Both models continue identically from the restored state.
        let a = model.process_batch(&toy_events(), 6, &feats);
        let b = restored.process_batch(&toy_events(), 6, &feats);
        assert_eq!(a.loss.item().to_bits(), b.loss.item().to_bits());
    }

    #[test]
    fn import_rejects_mismatched_shapes() {
        let model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        let mut other = MemoryTgnn::new(ModelConfig::tgn().with_dims(16, 4), 6, 4, 1);
        assert!(other.import_state(&model.export_state()).is_err());
        assert!(other.import_state(&[1, 0, 0]).is_err());
    }

    #[test]
    fn gradients_reach_parameters_after_updates() {
        let mut model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        let feats = synth_features(6, 4, 2);
        model.process_batch(&toy_events(), 0, &feats);
        let out = model.process_batch(&toy_events(), 3, &feats);
        out.loss.backward();
        let with_grad = model
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        assert!(with_grad > 0, "no parameter received a gradient");
    }

    #[test]
    fn reset_state_clears_everything() {
        let mut model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        let feats = synth_features(3, 4, 2);
        model.process_batch(&toy_events(), 0, &feats);
        model.reset_state();
        assert_eq!(model.memory().read(NodeId(0)), &[0.0; 8]);
        assert_eq!(model.mailbox_size_bytes(), 0);
    }

    #[test]
    fn training_reduces_loss() {
        use cascade_nn::Adam;
        let mut model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        let mut opt = Adam::new(model.parameters(), 1e-2);
        let feats = synth_features(30, 4, 2);
        let events = toy_events();
        let mut first = None;
        let mut last = 0.0;
        for epoch in 0..20 {
            model.reset_state();
            let out = model.process_batch(&events, 0, &feats);
            out.loss.backward();
            opt.step();
            let l = out.loss.item();
            if epoch == 0 {
                first = Some(l);
            }
            last = l;
        }
        assert!(
            last < first.unwrap(),
            "loss did not decrease: {} -> {}",
            first.unwrap(),
            last
        );
    }

    #[test]
    fn lite_mode_trains_like_full_mode() {
        for base_cfg in [
            ModelConfig::tgn(),
            ModelConfig::jodie(),
            ModelConfig::apan(),
        ] {
            let cfg = base_cfg.with_dims(8, 4).with_lite();
            let mut model = MemoryTgnn::new(cfg, 6, 4, 1);
            let feats = synth_features(6, 4, 2);
            let out = model.process_batch(&toy_events(), 0, &feats);
            assert!(out.loss.item().is_finite());
            out.loss.backward();
            let second = model.process_batch(&toy_events(), 3, &feats);
            assert!(!second.deltas.is_empty());
        }
    }

    #[test]
    fn split_halves_equal_combined_step() {
        // forward_batch + apply_batch must be bit-identical to
        // process_batch: same losses, same deltas, same memory state.
        let feats = synth_features(6, 4, 2);
        let mut combined = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        let mut split = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        for first_id in [0usize, 3] {
            let events = toy_events();
            let out = combined.process_batch(&events, first_id, &feats);
            let fwd = split.forward_batch(&events, first_id, &feats);
            let deltas = split.apply_batch(&events, first_id, &feats, fwd.pending);
            assert_eq!(out.loss.item(), fwd.loss.item());
            assert_eq!(out.pos_logits, fwd.pos_logits);
            assert_eq!(out.neg_logits, fwd.neg_logits);
            assert_eq!(out.deltas.len(), deltas.len());
            for (a, b) in out.deltas.iter().zip(&deltas) {
                assert_eq!(a.node, b.node);
                assert_eq!(a.pre, b.pre);
                assert_eq!(a.post, b.post);
            }
        }
        for n in 0..6u32 {
            assert_eq!(
                combined.memory().read(NodeId(n)),
                split.memory().read(NodeId(n))
            );
        }
    }

    #[test]
    fn sharded_plane_training_is_bit_identical() {
        // The tentpole property: a node-id-hash sharded plane is
        // invisible to training — losses, logits, deltas, and the full
        // exported state match the monolithic plane bit for bit.
        for cfg in ModelConfig::all() {
            let cfg = cfg.with_dims(8, 4);
            let mut mono = MemoryTgnn::new(cfg.clone(), 6, 4, 1);
            let mut shard = MemoryTgnn::new_sharded(cfg.clone(), 6, 4, 1, 3);
            let feats = synth_features(9, 4, 2);
            for first_id in [0usize, 3, 6] {
                let a = mono.process_batch(&toy_events(), first_id, &feats);
                let b = shard.process_batch(&toy_events(), first_id, &feats);
                assert_eq!(
                    a.loss.item().to_bits(),
                    b.loss.item().to_bits(),
                    "{} loss diverged",
                    cfg.name
                );
                assert_eq!(a.pos_logits, b.pos_logits);
                assert_eq!(a.neg_logits, b.neg_logits);
            }
            assert_eq!(mono.export_state(), shard.export_state(), "{}", cfg.name);
        }
    }

    #[test]
    fn per_shard_filtered_apply_equals_unfiltered() {
        // Applying a ticket shard-by-shard (write-backs for every shard,
        // then messages for every shard) reproduces the monolithic apply:
        // this is the dist runtime's two-phase protocol in miniature.
        let shards = 3;
        let feats = synth_features(9, 4, 2);
        let mut whole =
            MemoryTgnn::new_sharded(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1, shards);
        let mut split =
            MemoryTgnn::new_sharded(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1, shards);
        for first_id in [0usize, 3, 6] {
            let events = toy_events();
            let a = whole.forward_batch(&events, first_id, &feats);
            let b = split.forward_batch(&events, first_id, &feats);
            let mut whole_deltas = whole.apply_batch(&events, first_id, &feats, a.pending);
            let mut split_deltas = Vec::new();
            for s in 0..shards {
                split_deltas.extend(split.apply_writeback(&b.pending, Some(s)));
            }
            for s in 0..shards {
                split.apply_messages(&events, first_id, &feats, Some(s));
            }
            // Per-shard application reorders deltas across shards; the
            // set of transitions must still be identical.
            let key = |d: &MemoryDelta| d.node.0;
            whole_deltas.sort_by_key(key);
            split_deltas.sort_by_key(key);
            assert_eq!(whole_deltas.len(), split_deltas.len());
            for (x, y) in whole_deltas.iter().zip(&split_deltas) {
                assert_eq!(x.node, y.node);
                assert_eq!(x.pre, y.pre);
                assert_eq!(x.post, y.post);
            }
        }
        assert_eq!(whole.export_state(), split.export_state());
        for n in 0..6u32 {
            assert_eq!(
                whole.history_degree(NodeId(n)),
                split.history_degree(NodeId(n))
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn rejects_empty_batch() {
        let mut model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 4, 1);
        let feats = synth_features(0, 4, 2);
        let _ = model.process_batch(&[], 0, &feats);
    }
}

#[cfg(test)]
mod temporal_leakage_tests {
    use super::*;
    use cascade_tgraph::synth_features;

    /// The sampler must never expose an event to the batch that contains
    /// it (or to any earlier batch): adjacency grows only after
    /// processing.
    #[test]
    fn adjacency_history_lags_processing() {
        let mut model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 8, 4, 1);
        let feats = synth_features(6, 4, 2);
        let batch1 = vec![Event::new(0u32, 1u32, 1.0), Event::new(2u32, 3u32, 2.0)];
        let batch2 = vec![Event::new(0u32, 4u32, 3.0), Event::new(5u32, 1u32, 4.0)];

        assert_eq!(model.history_degree(NodeId(0)), 0);
        model.process_batch(&batch1, 0, &feats);
        // Only batch-1 events visible now.
        assert_eq!(model.history_degree(NodeId(0)), 1);
        assert_eq!(model.history_degree(NodeId(4)), 0);
        model.process_batch(&batch2, 2, &feats);
        assert_eq!(model.history_degree(NodeId(0)), 2);
        assert_eq!(model.history_degree(NodeId(4)), 1);
    }

    /// First-batch embeddings cannot depend on first-batch edges: two
    /// streams differing only in their first batch's connectivity must
    /// produce identical first-batch base representations for a
    /// memory-identical node set (no future leakage through sampling).
    #[test]
    fn first_batch_sampling_sees_empty_history() {
        let feats = synth_features(4, 4, 2);
        let mk = || MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 8, 4, 1);

        // Different destination wirings within the first batch.
        let a = vec![Event::new(0u32, 1u32, 1.0), Event::new(2u32, 3u32, 2.0)];
        let b = vec![Event::new(0u32, 3u32, 1.0), Event::new(2u32, 1u32, 2.0)];

        let mut ma = mk();
        let mut mb = mk();
        let la = ma.process_batch(&a, 0, &feats).loss.item();
        let lb = mb.process_batch(&b, 0, &feats).loss.item();
        // All memories are zero and no history exists, so both batches
        // score structurally identical inputs: identical losses.
        assert_eq!(la, lb);
    }

    #[test]
    fn reset_clears_history() {
        let mut model = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 8, 4, 1);
        let feats = synth_features(2, 4, 2);
        model.process_batch(&[Event::new(0u32, 1u32, 1.0)], 0, &feats);
        assert_eq!(model.history_degree(NodeId(0)), 1);
        model.reset_state();
        assert_eq!(model.history_degree(NodeId(0)), 0);
    }
}
