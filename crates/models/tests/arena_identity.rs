//! Seeded property test: the buffer arena is numerically invisible.
//!
//! Every buffer the arena hands out is fully overwritten before use, so
//! recycling must never change a single bit of any computation. This
//! property drives the same seeded TGN batches through a full training
//! step — forward, backward, gradient clip, Adam — once with the arena
//! enabled (buffers recycled batch-to-batch, `reset()` at the boundary)
//! and once with it disabled (every allocation fresh), and asserts
//! bit-identical losses, logits, gradients, post-step parameters, and
//! node memories.

use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_nn::{clip_grad_norm, Adam, Module};
use cascade_tensor::arena;
use cascade_tgraph::{synth_features, Event, NodeId};
use cascade_util::{check, prop_assert, prop_assert_eq, Gen};

/// A random, time-ordered synthetic event stream over `num_nodes` nodes.
fn random_events(g: &mut Gen, num_nodes: usize, len: usize) -> Vec<Event> {
    let mut t = 0.0f64;
    (0..len)
        .map(|_| {
            t += g.f64_in(0.01..1.0);
            let src = g.usize_in(0..num_nodes) as u32;
            let dst = g.usize_in(0..num_nodes) as u32;
            Event::new(src, dst, t)
        })
        .collect()
}

/// One two-batch training step; returns (loss, pos logits, neg logits,
/// gradient bits, post-step parameters, node memories).
#[allow(clippy::type_complexity)]
fn run(
    arena_on: bool,
    cfg: &ModelConfig,
    events: &[Event],
    num_nodes: usize,
) -> (
    f32,
    Vec<f32>,
    Vec<f32>,
    Vec<Vec<f32>>,
    Vec<Vec<f32>>,
    Vec<Vec<f32>>,
) {
    let was = arena::set_enabled(arena_on);
    let feats = synth_features(events.len(), 4, 9);
    let mut model = MemoryTgnn::new(cfg.clone(), num_nodes, 4, 3);
    let mut opt = Adam::new(model.parameters(), 1e-2);
    let mid = events.len() / 2;

    model.process_batch(&events[..mid], 0, &feats);
    if arena_on {
        arena::reset(); // the batch-boundary trim must also be invisible
    }
    let out = model.process_batch(&events[mid..], mid, &feats);
    out.loss.backward();
    clip_grad_norm(&model.parameters(), 1.0);
    let grads: Vec<Vec<f32>> = model
        .parameters()
        .iter()
        .map(|p| p.grad().unwrap_or_default())
        .collect();
    opt.step();

    let params: Vec<Vec<f32>> = model.parameters().iter().map(|p| p.to_vec()).collect();
    let memories: Vec<Vec<f32>> = (0..num_nodes)
        .map(|n| model.memory().read(NodeId(n as u32)).to_vec())
        .collect();
    arena::set_enabled(was);
    (
        out.loss.item(),
        out.pos_logits,
        out.neg_logits,
        grads,
        params,
        memories,
    )
}

#[test]
fn training_step_is_bit_identical_with_and_without_arena() {
    // Warm the pool so the arena arm actually recycles buffers from a
    // previous (differently-shaped) computation rather than starting cold.
    {
        let _ = arena::set_enabled(true);
        let warm = cascade_tensor::Tensor::ones([17, 13]).requires_grad();
        warm.matmul(&cascade_tensor::Tensor::ones([13, 11]))
            .sum()
            .backward();
    }

    check("arena_identity", |g| {
        let num_nodes = g.usize_in(4..16);
        let len = g.usize_in(6..40);
        let events = random_events(g, num_nodes, len);
        let cfg = match g.usize_in(0..3) {
            0 => ModelConfig::tgn(),
            1 => ModelConfig::jodie(),
            _ => ModelConfig::tgat(),
        }
        .with_dims(8, 4)
        .with_neighbors(3);

        let pooled = run(true, &cfg, &events, num_nodes);
        let fresh = run(false, &cfg, &events, num_nodes);

        prop_assert!(
            pooled.0.to_bits() == fresh.0.to_bits(),
            "loss differs: {} (arena) vs {} (fresh)",
            pooled.0,
            fresh.0
        );
        prop_assert_eq!(&pooled.1, &fresh.1, "pos logits differ");
        prop_assert_eq!(&pooled.2, &fresh.2, "neg logits differ");
        for (i, (a, b)) in pooled.3.iter().zip(fresh.3.iter()).enumerate() {
            prop_assert!(
                a.iter()
                    .map(|x| x.to_bits())
                    .eq(b.iter().map(|x| x.to_bits())),
                "gradient of parameter {} differs",
                i
            );
        }
        for (i, (a, b)) in pooled.4.iter().zip(fresh.4.iter()).enumerate() {
            prop_assert!(
                a.iter()
                    .map(|x| x.to_bits())
                    .eq(b.iter().map(|x| x.to_bits())),
                "post-step parameter {} differs",
                i
            );
        }
        prop_assert_eq!(&pooled.5, &fresh.5, "node memories differ");

        // Leave the pool enabled for whichever test runs next on this
        // thread (the default state).
        let _ = arena::set_enabled(true);
        Ok(())
    });
}

/// The arena must actually be doing something in the pooled arm — a pool
/// that never hits would make the identity test vacuous.
#[test]
fn arena_recycles_buffers_during_training() {
    let _ = arena::set_enabled(true);
    let events: Vec<Event> = (0..24)
        .map(|i| Event::new((i % 5) as u32, ((i + 2) % 5) as u32, i as f64 * 0.5))
        .collect();
    let feats = synth_features(events.len(), 4, 9);
    let cfg = ModelConfig::tgn().with_dims(8, 4).with_neighbors(3);
    let mut model = MemoryTgnn::new(cfg, 5, 4, 3);
    let before = arena::stats();
    for (i, chunk) in events.chunks(8).enumerate() {
        let out = model.process_batch(chunk, i * 8, &feats);
        out.loss.backward();
        model.parameters().iter().for_each(|p| p.zero_grad());
        arena::reset();
    }
    let after = arena::stats();
    assert!(
        after.hits > before.hits,
        "training batches must reuse pooled buffers (hits {} -> {})",
        before.hits,
        after.hits
    );
    assert!(
        after.recycled > before.recycled,
        "dying graphs must return buffers to the pool"
    );
}
