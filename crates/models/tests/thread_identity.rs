//! Seeded property test: shard-parallel batch compute is invisible.
//!
//! `MemoryTgnn::forward_batch` always splits a batch into the same fixed
//! shard layout; `compute_threads` only chooses how many workers evaluate
//! the shards. This property drives random synthetic event streams
//! through the model at 1, 2, and 4 threads and asserts that losses,
//! logits, parameter gradients, and post-batch node memories are
//! **bit-identical** to the serial run — exact `f32` bit equality, not
//! approximate closeness.

use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_nn::Module;
use cascade_tgraph::{synth_features, Event, NodeId};
use cascade_util::{check, prop_assert, prop_assert_eq, Gen};

/// A random, time-ordered synthetic event stream over `num_nodes` nodes.
fn random_events(g: &mut Gen, num_nodes: usize, len: usize) -> Vec<Event> {
    let mut t = 0.0f64;
    (0..len)
        .map(|_| {
            t += g.f64_in(0.01..1.0);
            let src = g.usize_in(0..num_nodes) as u32;
            let dst = g.usize_in(0..num_nodes) as u32;
            Event::new(src, dst, t)
        })
        .collect()
}

/// Runs two batches (the second one exercises mailbox consumption, so the
/// shared `updated` barrier carries real gradients) and returns the final
/// loss, logits, per-parameter gradient bits, and all node memories.
#[allow(clippy::type_complexity)]
fn run(
    cfg: &ModelConfig,
    events: &[Event],
    num_nodes: usize,
    threads: usize,
) -> (f32, Vec<f32>, Vec<f32>, Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let feats = synth_features(events.len(), 4, 9);
    let mut model = MemoryTgnn::new(cfg.clone(), num_nodes, 4, 3);
    model.set_compute_threads(threads);
    let mid = events.len() / 2;
    model.process_batch(&events[..mid], 0, &feats);
    let out = model.process_batch(&events[mid..], mid, &feats);
    out.loss.backward();
    let grads: Vec<Vec<f32>> = model
        .parameters()
        .iter()
        .map(|p| p.grad().unwrap_or_default())
        .collect();
    let memories: Vec<Vec<f32>> = (0..num_nodes)
        .map(|n| model.memory().read(NodeId(n as u32)).to_vec())
        .collect();
    (
        out.loss.item(),
        out.pos_logits,
        out.neg_logits,
        grads,
        memories,
    )
}

#[test]
fn forward_batch_is_bit_identical_across_thread_counts() {
    check("forward_batch_thread_identity", |g| {
        let num_nodes = g.usize_in(4..16);
        let len = g.usize_in(6..40);
        let events = random_events(g, num_nodes, len);
        let cfg = match g.usize_in(0..3) {
            0 => ModelConfig::tgn(),
            1 => ModelConfig::jodie(),
            _ => ModelConfig::tgat(),
        }
        .with_dims(8, 4)
        .with_neighbors(3);

        let serial = run(&cfg, &events, num_nodes, 1);
        for threads in [2usize, 4] {
            let par = run(&cfg, &events, num_nodes, threads);
            prop_assert!(
                serial.0.to_bits() == par.0.to_bits(),
                "loss differs at {} threads: {} vs {}",
                threads,
                serial.0,
                par.0
            );
            prop_assert_eq!(
                &serial.1,
                &par.1,
                "pos logits differ at {} threads",
                threads
            );
            prop_assert_eq!(
                &serial.2,
                &par.2,
                "neg logits differ at {} threads",
                threads
            );
            prop_assert_eq!(
                serial.3.len(),
                par.3.len(),
                "parameter count differs at {} threads",
                threads
            );
            for (i, (a, b)) in serial.3.iter().zip(par.3.iter()).enumerate() {
                prop_assert!(
                    a.iter()
                        .map(|x| x.to_bits())
                        .eq(b.iter().map(|x| x.to_bits())),
                    "gradient of parameter {} differs at {} threads",
                    i,
                    threads
                );
            }
            prop_assert_eq!(
                &serial.4,
                &par.4,
                "node memories differ at {} threads",
                threads
            );
        }
        Ok(())
    });
}

/// The thread setting must also be invisible to a *training* step: after
/// backward + SGD-style manual update, parameters land on identical bits.
#[test]
fn parameter_updates_are_bit_identical_across_thread_counts() {
    check("parameter_update_thread_identity", |g| {
        let num_nodes = g.usize_in(4..12);
        let events = random_events(g, num_nodes, 16);
        let cfg = ModelConfig::tgn().with_dims(8, 4).with_neighbors(3);
        let feats = synth_features(events.len(), 4, 9);

        let mut stepped: Vec<Vec<Vec<f32>>> = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut model = MemoryTgnn::new(cfg.clone(), num_nodes, 4, 3);
            model.set_compute_threads(threads);
            model.process_batch(&events[..8], 0, &feats);
            let out = model.process_batch(&events[8..], 8, &feats);
            out.loss.backward();
            for p in model.parameters() {
                if let Some(gr) = p.grad() {
                    let stepped_data: Vec<f32> = p
                        .data()
                        .iter()
                        .zip(gr.iter())
                        .map(|(&w, &dw)| w - 0.1 * dw)
                        .collect();
                    p.set_data(&stepped_data);
                }
            }
            stepped.push(model.parameters().iter().map(|p| p.to_vec()).collect());
        }
        prop_assert_eq!(
            &stepped[0],
            &stepped[1],
            "2-thread step diverged from serial"
        );
        prop_assert_eq!(
            &stepped[0],
            &stepped[2],
            "4-thread step diverged from serial"
        );
        Ok(())
    });
}
