//! Out-of-core pipelined training: a loader thread prefetches chunks
//! from an [`EventSource`] and builds the next chunk's dependency table
//! while the driver trains on the current one, so chunk `k + 1`'s I/O
//! and table construction overlap chunk `k`'s model compute.
//!
//! ```text
//!            chunks + prebuilt tables (sync_channel, capacity = depth)
//!   ┌────────────┐ ─────────────────────────────────► ┌──────────────┐
//!   │ loader     │                                    │    driver    │
//!   │ stage L:   │                                    │ scan/compute │
//!   │ read chunk │                                    │ /update per  │
//!   │ + build    │                                    │ batch (the   │
//!   │ dep. table │                                    │ core driver) │
//!   └────────────┘                                    └──────────────┘
//! ```
//!
//! The driver is [`cascade_core::train_streaming_with_provider`] — the
//! exact code path serial streaming uses — fed through a channel-backed
//! [`ChunkProvider`]. Prefetching therefore changes wall-clock only:
//! results are bit-identical to serial streaming (and, transitively, to
//! in-memory training) by construction. Table-build time moves from the
//! strategy's critical-path `build_table` timer to its
//! `background_build` timer, which the modeled-latency credit in the
//! report already understands.

// cascade-lint: allow-file(det-wallclock): Instant readings time background table builds for telemetry; chunk order and batch boundaries derive purely from event data.
use std::sync::mpsc::sync_channel;
use std::time::Instant;

use cascade_core::{
    train_streaming_with_provider, BatchingStrategy, ChunkProvider, PrebuiltTable, ProvidedChunk,
    StreamMeta, StreamOptions, StreamOutcome, TableSpec, TrainConfig, TrainReport,
};
use cascade_models::MemoryTgnn;
use cascade_tgraph::{EventSource, SourceError};

use crate::pipeline::{PipelineConfig, PipelineError, PipelineStage};

/// What the loader thread sends the driver.
enum LoaderMsg {
    /// The next chunk of the current pass.
    Chunk(ProvidedChunk),
    /// The current pass is exhausted; the next message starts the next.
    EndOfPass,
    /// The source failed; the loader has exited.
    Failed(SourceError),
}

/// Channel-backed provider the core streaming driver pulls from.
struct LoaderProvider {
    rx: std::sync::mpsc::Receiver<LoaderMsg>,
}

impl ChunkProvider for LoaderProvider {
    fn next(&mut self) -> Result<Option<ProvidedChunk>, SourceError> {
        match self.rx.recv() {
            Ok(LoaderMsg::Chunk(c)) => Ok(Some(c)),
            Ok(LoaderMsg::EndOfPass) | Err(_) => Ok(None),
            Ok(LoaderMsg::Failed(e)) => Err(e),
        }
    }

    fn reset(&mut self) -> Result<(), SourceError> {
        // The driver may leave a pass early; skip to the next pass mark.
        loop {
            match self.rx.recv() {
                Ok(LoaderMsg::Chunk(_)) => continue,
                Ok(LoaderMsg::EndOfPass) => return Ok(()),
                Ok(LoaderMsg::Failed(e)) => return Err(e),
                Err(_) => {
                    return Err(SourceError::new(
                        "chunk loader exited before the pass ended",
                    ))
                }
            }
        }
    }
}

/// The loader side: reads chunks pass by pass, building each training
/// chunk's dependency table (truncated at the training split, exactly as
/// the driver would) off the critical path. The final pass continues
/// through the validation range so the driver's evaluation can stream.
fn run_loader(
    source: &mut dyn EventSource,
    tx: &std::sync::mpsc::SyncSender<LoaderMsg>,
    spec: Option<TableSpec>,
    epochs: usize,
    n_train: usize,
    val_end: usize,
) {
    for pass in 0..epochs {
        if pass > 0 {
            if let Err(e) = source.reset() {
                let _ = tx.send(LoaderMsg::Failed(e));
                return;
            }
        }
        let pass_end = if pass + 1 == epochs { val_end } else { n_train };
        loop {
            match source.next_chunk() {
                Ok(Some(chunk)) => {
                    if chunk.base >= pass_end {
                        break;
                    }
                    let prebuilt = spec.filter(|_| chunk.base < n_train).map(|spec| {
                        let train_events =
                            &chunk.events[..chunk.events.len().min(n_train - chunk.base)];
                        let t0 = Instant::now();
                        let table = spec.build(chunk.base, train_events);
                        PrebuiltTable {
                            table,
                            work: t0.elapsed(),
                        }
                    });
                    let msg = LoaderMsg::Chunk(ProvidedChunk {
                        index: chunk.index,
                        base: chunk.base,
                        events: chunk.events,
                        features: chunk.features,
                        prebuilt,
                    });
                    if tx.send(msg).is_err() {
                        return; // driver gone (done or failed): stop quietly
                    }
                }
                Ok(None) => break, // short stream: driver reports the shortfall
                Err(e) => {
                    let _ = tx.send(LoaderMsg::Failed(e));
                    return;
                }
            }
        }
        if tx.send(LoaderMsg::EndOfPass).is_err() {
            return;
        }
    }
}

/// Trains `model` out-of-core from `source` with chunk prefetch and
/// background dependency-table construction ([`PipelineConfig::depth`]
/// chunks of read-ahead). Bit-identical to
/// [`cascade_core::train_streaming`] — and to in-memory training with
/// the same chunk geometry — because the same driver consumes the
/// chunks; only the overlap differs.
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the load stage when the source
/// fails (I/O, corruption, early end) or the strategy cannot stream.
pub fn train_streamed<S: EventSource + Send>(
    model: &mut MemoryTgnn,
    source: &mut S,
    strategy: &mut dyn BatchingStrategy,
    cfg: &TrainConfig,
    pipe: &PipelineConfig,
) -> Result<TrainReport, PipelineError> {
    let meta = StreamMeta::of(source);
    let n = meta.num_events;
    let n_train = n * 70 / 100;
    let val_end = n * 85 / 100;
    let chunk_size = meta.chunk_size.max(1);

    // Learn the strategy's table recipe up front (idempotent: the core
    // driver repeats this call and keeps the state we set up here).
    if !strategy.prepare_streaming(n_train.max(1), meta.num_nodes, chunk_size) {
        return Err(PipelineError {
            stage: PipelineStage::Load,
            message: format!("strategy {} does not support streaming", strategy.name()),
        });
    }
    let spec = strategy.table_spec();
    let epochs = cfg.epochs;

    let (tx, rx) = sync_channel::<LoaderMsg>(pipe.depth.max(1));
    let outcome = std::thread::scope(|s| {
        let loader = s.spawn(move || {
            run_loader(source, &tx, spec, epochs, n_train, val_end);
        });
        let mut provider = LoaderProvider { rx };
        let result = train_streaming_with_provider(
            model,
            &meta,
            &mut provider,
            strategy,
            cfg,
            StreamOptions::default(),
        );
        // Dropping the provider disconnects the channel, so a loader
        // still producing (driver failed early) exits on its next send.
        drop(provider);
        let _ = loader.join();
        result
    });
    match outcome {
        Ok(StreamOutcome::Completed(report)) => Ok(*report),
        // cascade-lint: allow(panic-macro): default StreamOptions carry no suspension point, so the driver can only complete
        Ok(StreamOutcome::Suspended(_)) => unreachable!("no suspension point was requested"),
        Err(e) => Err(PipelineError {
            stage: PipelineStage::Load,
            message: e.to_string(),
        }),
    }
}
