#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # cascade-exec
//!
//! A staleness-aware pipelined training executor for the Cascade TGNN
//! framework, in the spirit of MSPipe's bounded-staleness pipeline and
//! DistTGL's prefetch/worker split.
//!
//! Cascade decomposes every batch into three steps (§2.2, Figure 3):
//!
//! * **Stage A — scan**: the batching strategy decides where the batch
//!   ends (TG-Diffuser boundary lookup over the dependency table) and
//!   ingests feedback (losses for ABS, memory deltas for the SG-Filter).
//! * **Stage B — compute**: message consumption, embedding, link
//!   prediction, loss, backward, optimizer step.
//! * **Stage C — update**: detached memory write-back, message
//!   generation, temporal-adjacency registration.
//!
//! The serial [`train`](cascade_core::train) loop runs A→B→C on one
//! thread, batch after batch, so the boundary scan and every SG-Filter
//! refresh sit on the critical path. [`train_pipelined`] moves Stage A
//! onto a *scout* thread connected to the driver by two bounded
//! [`std::sync::mpsc::sync_channel`] queues: the scout prefetches up to
//! [`PipelineConfig::depth`] batch boundaries ahead while the driver runs
//! Stages B and C, and batch feedback flows back to the scout, which
//! also absorbs the SG-Filter's cosine-similarity refresh off the
//! critical path.
//!
//! Overlap is governed by a **staleness bound**: the scout never scans a
//! boundary whose scheduler state (stable flags, `Max_r`) is more than
//! [`PipelineConfig::staleness_bound`] batches behind the training
//! frontier. Feedback is consumed on a fixed schedule (batch *j*'s
//! feedback right before scanning batch *j + bound + 1*), so for every
//! bound the produced batch partition is a deterministic function of the
//! configuration — and `staleness_bound = 0` (or
//! [`PipelineConfig::deterministic`]) reproduces the serial trainer
//! bit for bit.
//!
//! ```
//! use cascade_core::{train, CascadeConfig, CascadeScheduler, TrainConfig};
//! use cascade_exec::{train_pipelined, PipelineConfig};
//! use cascade_models::{MemoryTgnn, ModelConfig};
//! use cascade_tgraph::SynthConfig;
//!
//! let data = SynthConfig::wiki().with_scale(0.004).generate(1);
//! let mk_model = || MemoryTgnn::new(
//!     ModelConfig::tgn().with_dims(8, 4).with_neighbors(3),
//!     data.num_nodes(),
//!     data.features().dim(),
//!     7,
//! );
//! let cfg = TrainConfig { epochs: 1, eval_batch_size: 64, ..TrainConfig::default() };
//!
//! // Deterministic mode: bit-identical to the serial trainer.
//! let mut serial_model = mk_model();
//! let mut s1 = CascadeScheduler::new(CascadeConfig {
//!     preset_batch_size: 64, ..CascadeConfig::default()
//! });
//! let serial = train(&mut serial_model, &data, &mut s1, &cfg);
//!
//! let mut pipe_model = mk_model();
//! let mut s2 = CascadeScheduler::new(CascadeConfig {
//!     preset_batch_size: 64, ..CascadeConfig::default()
//! });
//! let piped = train_pipelined(
//!     &mut pipe_model,
//!     &data,
//!     &mut s2,
//!     &cfg,
//!     &PipelineConfig::default().deterministic(),
//! ).unwrap();
//! assert_eq!(serial.epoch_losses, piped.epoch_losses);
//! ```

mod pipeline;
mod stream;

pub use pipeline::{train_pipelined, PipelineConfig, PipelineError, PipelineStage};
pub use stream::train_streamed;
