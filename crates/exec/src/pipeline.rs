//! The three-stage pipelined training loop: a scout thread runs the
//! batch-boundary scan (Stage A) ahead of the driver thread's model
//! compute (Stage B) and memory update (Stage C), connected by bounded
//! queues and throttled by a staleness bound.
//!
//! ```text
//!            plans (sync_channel, capacity = depth)
//!   ┌───────┐ ────────────────────────────────────► ┌──────────────┐
//!   │ scout │                                       │    driver    │
//!   │ stage │                                       │ stage B: fwd │
//!   │ A:    │                                       │  loss, bwd,  │
//!   │ scan  │                                       │  optimizer   │
//!   │ + SG/ │                                       │ stage C: mem │
//!   │ ABS   │ ◄──────────────────────────────────── │  write, msgs │
//!   └───────┘   feedback (loss + memory deltas)     └──────────────┘
//! ```
//!
//! The scout consumes batch *j*'s feedback immediately before scanning
//! batch *j + staleness_bound + 1*, so the scheduler state a boundary is
//! computed from is never more than `staleness_bound` batches behind the
//! training frontier, and the batch partition is a deterministic function
//! of the configuration (no dependence on thread timing). At
//! `staleness_bound = 0` the schedule degenerates to the serial trainer's
//! scan → compute → update → feedback order and the run is bit-identical
//! to [`cascade_core::train`].
//!
//! Shutdown is panic-safe by construction: each side only ever blocks on
//! a channel whose other end is owned by the peer, so when either side
//! dies (panic or early error) the channel disconnects, the survivor
//! drains and exits, and [`train_pipelined`] reports a [`PipelineError`]
//! naming the failed stage instead of deadlocking.

// cascade-lint: allow-file(det-wallclock): per-stage Instant readings fill PipelineReport timing telemetry only; batch plans and staleness throttling depend solely on queue occupancy and event data.
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::sync_channel;
use std::time::{Duration, Instant};

use cascade_core::{
    evaluate, BatchingStrategy, SpaceBreakdown, StageTiming, StageTimings, StrategySpace,
    StrategyTimers, TrainConfig, TrainReport,
};
use cascade_models::{MemoryDelta, MemoryTgnn};
use cascade_nn::{clip_grad_norm, Adam, Module};
use cascade_tgraph::Dataset;

/// Overlap policy of the pipelined executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Prefetch depth: how many scanned-but-unprocessed batch plans the
    /// scout may queue ahead of the driver (the plan channel's capacity).
    /// Clamped to at least 1.
    pub depth: usize,
    /// Maximum scheduler staleness, in batches: the boundary of batch
    /// `i` is computed from scheduler state (SG-Filter flags, ABS
    /// `Max_r`) that has absorbed feedback from at least batch
    /// `i - staleness_bound - 1`. `0` reproduces serial training
    /// bit for bit; higher bounds buy more overlap at the price of
    /// slightly stale boundary decisions (never stale *memories* — the
    /// driver applies every update before the next forward pass).
    pub staleness_bound: usize,
    /// Force `staleness_bound = 0` regardless of its setting, pinning the
    /// run to the serial trainer's exact schedule.
    pub deterministic: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            depth: 2,
            staleness_bound: 1,
            deterministic: false,
        }
    }
}

impl PipelineConfig {
    /// Sets the prefetch depth.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// Sets the staleness bound.
    pub fn with_staleness(mut self, bound: usize) -> Self {
        self.staleness_bound = bound;
        self
    }

    /// Pins the pipeline to the serial schedule (bit-identical results).
    pub fn deterministic(mut self) -> Self {
        self.deterministic = true;
        self
    }

    /// The staleness bound actually enforced.
    pub fn effective_staleness(&self) -> usize {
        if self.deterministic {
            0
        } else {
            self.staleness_bound
        }
    }
}

/// The pipeline stage a failure originated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineStage {
    /// Stage A: boundary scan / scheduler feedback (scout thread).
    Scan,
    /// Stage B: forward, loss, backward, optimizer.
    Compute,
    /// Stage C: memory write-back, message generation.
    Update,
    /// Stage L: chunk prefetch / background table build (out-of-core
    /// streaming's loader thread, see [`crate::train_streamed`]).
    Load,
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PipelineStage::Scan => "scan",
            PipelineStage::Compute => "compute",
            PipelineStage::Update => "update",
            PipelineStage::Load => "load",
        })
    }
}

/// A stage failure, reported instead of a deadlock or an abort: the
/// surviving stages drained their queues and shut down cleanly.
#[derive(Clone, Debug)]
pub struct PipelineError {
    /// The stage that failed.
    pub stage: PipelineStage,
    /// The failure's panic payload or diagnostic message.
    pub message: String,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline stage '{}' failed: {}",
            self.stage, self.message
        )
    }
}

impl std::error::Error for PipelineError {}

/// One scanned batch, flowing scout → driver.
struct BatchPlan {
    epoch: usize,
    batch_idx: usize,
    start: usize,
    end: usize,
}

/// One processed batch's feedback, flowing driver → scout.
struct Feedback {
    batch_idx: usize,
    loss: f32,
    deltas: Vec<MemoryDelta>,
}

/// What the scout hands back when it retires (it owns the strategy for
/// the whole run, so strategy-derived accounting must travel with it).
struct ScoutReport {
    scan: StageTiming,
    prepare: Duration,
    timers: StrategyTimers,
    space: StrategySpace,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "stage panicked".to_string()
    }
}

/// Trains `model` on `data`'s training range with the three-stage
/// pipeline, then evaluates on the validation range — the pipelined
/// counterpart of [`cascade_core::train`].
///
/// With [`PipelineConfig::deterministic`] (or `staleness_bound = 0`) the
/// result is bit-identical to the serial trainer: same batch partition,
/// same losses, same final memory and parameter state. With a positive
/// staleness bound the scout overlaps boundary scans and SG-Filter/ABS
/// refreshes with model compute; the partition may then differ from the
/// serial one, but it is still deterministic for a given configuration,
/// and node memories are never read stale.
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the failed stage if the strategy
/// or a model stage panics, or if the strategy produces an invalid
/// boundary. Queues are drained and the scout thread joined before
/// returning — the call never deadlocks and never leaks the thread.
///
/// # Panics
///
/// Panics if the dataset's training range is empty or `cfg.epochs == 0`
/// (the same contract as the serial trainer).
pub fn train_pipelined(
    model: &mut MemoryTgnn,
    data: &Dataset,
    strategy: &mut (dyn BatchingStrategy + Send),
    cfg: &TrainConfig,
    pcfg: &PipelineConfig,
) -> Result<TrainReport, PipelineError> {
    assert!(cfg.epochs > 0, "need at least one epoch");
    model.set_compute_threads(cfg.compute_threads.max(1));
    let train_range = data.train_range();
    assert!(!train_range.is_empty(), "empty training range");
    let events = data.stream().events();
    let n_train = train_range.end;
    let num_nodes = data.num_nodes();
    let epochs = cfg.epochs;
    let staleness = pcfg.effective_staleness();
    let depth = pcfg.depth.max(1);
    let strategy_name = strategy.name();

    let t_total = Instant::now();

    let params = model.parameters();
    let mut opt = Adam::new(params.clone(), cfg.lr);

    // Driver-side bookkeeping (mirrors the serial trainer).
    let mut stage_b = StageTiming::default();
    let mut stage_c = StageTiming::default();
    // Per-shard sub-division of stage B (collects via record_shards; its
    // shard_compute vector lands in the final report's StageTimings).
    let mut shard_t = StageTimings::default();
    let mut num_batches = 0usize;
    let mut max_batch = 0usize;
    let mut epoch_losses: Vec<f32> = Vec::with_capacity(epochs);
    let mut batch_sizes: Vec<u32> = Vec::new();
    let mut batch_losses: Vec<f32> = Vec::new();

    let scout_outcome = std::thread::scope(|s| {
        // Plans prefetch up to `depth` ahead; the feedback queue is sized
        // so the driver's send can never block (at most
        // `depth + staleness + 1` batches are ever in flight), which
        // breaks the only possible send/send deadlock cycle.
        let (plan_tx, plan_rx) = sync_channel::<BatchPlan>(depth);
        let (fb_tx, fb_rx) = sync_channel::<Feedback>(depth + staleness + 2);

        let strategy = &mut *strategy;
        let scout = s.spawn(move || -> Result<ScoutReport, ()> {
            let mut scan = StageTiming::default();
            let t_prep = Instant::now();
            strategy.prepare(&events[..n_train], num_nodes);
            let prepare = t_prep.elapsed();

            // Scanned-but-not-fed-back batches. The gate below keeps it
            // within `staleness` before every scan, which fixes the
            // feedback-consumption schedule independently of timing.
            let mut in_flight = 0usize;
            for _epoch in 0..epochs {
                // The scout drains the feedback queue at every epoch end,
                // so by this point the whole previous epoch is absorbed.
                strategy.reset_epoch();
                let mut start = 0usize;
                let mut batch_idx = 0usize;
                while start < n_train {
                    while in_flight > staleness {
                        let t0 = Instant::now();
                        let fb = fb_rx.recv().map_err(drop)?;
                        scan.stall += t0.elapsed();
                        let t1 = Instant::now();
                        strategy.after_batch(fb.batch_idx, fb.loss);
                        strategy.observe_updates(&fb.deltas);
                        scan.busy += t1.elapsed();
                        in_flight -= 1;
                    }
                    let t0 = Instant::now();
                    let end = strategy.next_batch_end(start, n_train);
                    scan.record(t0.elapsed());
                    let t1 = Instant::now();
                    plan_tx
                        .send(BatchPlan {
                            epoch: _epoch,
                            batch_idx,
                            start,
                            end,
                        })
                        .map_err(drop)?;
                    scan.stall += t1.elapsed();
                    in_flight += 1;
                    batch_idx += 1;
                    // A bogus boundary is reported by the driver; stop
                    // scanning rather than loop forever on `end <= start`.
                    if end <= start || end > n_train {
                        return Err(());
                    }
                    start = end;
                }
                // Epoch barrier: absorb the rest of the epoch's feedback
                // so SG-Filter/ABS resets see a fully observed epoch (and
                // cross-epoch state matches the serial trainer's).
                while in_flight > 0 {
                    let t0 = Instant::now();
                    let fb = fb_rx.recv().map_err(drop)?;
                    scan.stall += t0.elapsed();
                    let t1 = Instant::now();
                    strategy.after_batch(fb.batch_idx, fb.loss);
                    strategy.observe_updates(&fb.deltas);
                    scan.busy += t1.elapsed();
                    in_flight -= 1;
                }
            }
            Ok(ScoutReport {
                scan,
                prepare,
                timers: strategy.timers(),
                space: strategy.space(),
            })
        });

        // ---- Driver: stages B and C over incoming plans. ----
        let mut error: Option<PipelineError> = None;
        let mut cur_epoch = usize::MAX;
        let mut loss_sum = 0.0f64;
        let mut event_sum = 0usize;
        loop {
            let t0 = Instant::now();
            let plan = match plan_rx.recv() {
                Ok(p) => p,
                Err(_) => break, // scout retired (or died; join tells)
            };
            stage_b.stall += t0.elapsed();
            if plan.start >= plan.end || plan.end > n_train {
                error = Some(PipelineError {
                    stage: PipelineStage::Scan,
                    message: format!(
                        "invalid batch boundary {}..{} (stream length {})",
                        plan.start, plan.end, n_train
                    ),
                });
                break;
            }
            if plan.epoch != cur_epoch {
                if cur_epoch != usize::MAX {
                    epoch_losses.push((loss_sum / event_sum.max(1) as f64) as f32);
                    loss_sum = 0.0;
                    event_sum = 0;
                }
                model.reset_state();
                cur_epoch = plan.epoch;
            }

            // Stage B: forward, loss, backward, optimizer step. Autograd
            // failures take the *typed* path: `try_backward` surfaces a
            // structural problem (non-scalar loss, upstream length
            // mismatch) as an `AutogradError` without unwinding, and it is
            // mapped straight to a Compute-stage PipelineError here. The
            // surrounding catch_unwind remains as the backstop for
            // genuine panics elsewhere in the stage (shape asserts,
            // index bounds), so the scout is always joined either way.
            let t1 = Instant::now();
            let step = catch_unwind(AssertUnwindSafe(|| {
                if cfg.scale_lr_with_batch {
                    let scale =
                        ((plan.end - plan.start) as f32 / cfg.eval_batch_size as f32).sqrt();
                    opt.set_lr(cfg.lr * scale);
                }
                let fwd =
                    model.forward_batch(&events[plan.start..plan.end], plan.start, data.features());
                let loss = fwd.loss.item();
                if let Err(e) = fwd.loss.try_backward() {
                    return Err(format!("autograd failed: {e}"));
                }
                if let Some(c) = cfg.clip_norm {
                    clip_grad_norm(&params, c);
                }
                opt.step();
                Ok((fwd.pending, fwd.shard_busy, loss))
            }));
            let (pending, shard_busy, loss) = match step {
                Ok(Ok(x)) => x,
                Ok(Err(message)) => {
                    error = Some(PipelineError {
                        stage: PipelineStage::Compute,
                        message,
                    });
                    break;
                }
                Err(payload) => {
                    error = Some(PipelineError {
                        stage: PipelineStage::Compute,
                        message: panic_message(payload),
                    });
                    break;
                }
            };
            stage_b.record(t1.elapsed());
            shard_t.record_shards(&shard_busy, cfg.compute_threads.max(1));

            // Stage C: memory write-back, messages, adjacency.
            let t2 = Instant::now();
            let applied = catch_unwind(AssertUnwindSafe(|| {
                model.apply_batch(
                    &events[plan.start..plan.end],
                    plan.start,
                    data.features(),
                    pending,
                )
            }));
            let deltas = match applied {
                Ok(d) => d,
                Err(payload) => {
                    error = Some(PipelineError {
                        stage: PipelineStage::Update,
                        message: panic_message(payload),
                    });
                    break;
                }
            };
            stage_c.record(t2.elapsed());

            // Batch boundary: the batch's graph is gone; trim the arena
            // back to its steady-state working set.
            cascade_tensor::arena::reset();

            let size = plan.end - plan.start;
            batch_sizes.push(size as u32);
            batch_losses.push(loss);
            loss_sum += loss as f64 * size as f64;
            event_sum += size;
            max_batch = max_batch.max(size);
            num_batches += 1;

            let t3 = Instant::now();
            if fb_tx
                .send(Feedback {
                    batch_idx: plan.batch_idx,
                    loss,
                    deltas,
                })
                .is_err()
            {
                break; // scout died; join reports the real failure
            }
            stage_c.stall += t3.elapsed();
        }
        if error.is_none() && cur_epoch != usize::MAX {
            epoch_losses.push((loss_sum / event_sum.max(1) as f64) as f32);
        }

        // Unblock and retire the scout: closing our channel ends makes
        // every scout-side send/recv fail fast, so join cannot hang.
        drop(plan_rx);
        drop(fb_tx);
        let joined = scout.join();
        if let Some(e) = error {
            return Err(e);
        }
        match joined {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(())) => Err(PipelineError {
                stage: PipelineStage::Scan,
                message: "scan stage exited before the stream was fully scheduled".to_string(),
            }),
            Err(payload) => Err(PipelineError {
                stage: PipelineStage::Scan,
                message: panic_message(payload),
            }),
        }
    });
    let scout_report = scout_outcome?;

    let total_time = t_total.elapsed();
    let model_time = stage_b.busy + stage_c.busy;

    // Simulated accelerator and pipelined-preprocessing credit: identical
    // formulas to the serial trainer so modeled latencies stay comparable.
    let events_processed = (n_train * epochs) as f64;
    let per_event = model_time.as_secs_f64() / events_processed.max(1.0);
    let overhead =
        Duration::from_secs_f64(per_event * cfg.sim_batch_overhead_events * num_batches as f64);
    let background = scout_report.timers.background_build;
    let stall = scout_report.timers.build_table;
    let overlap_credit = background.saturating_sub(stall).min(total_time / 2);
    let modeled_time = (total_time + overhead).saturating_sub(overlap_credit);

    let val = evaluate(model, data, cfg.eval_batch_size);

    let build_time = if scout_report.timers.build_table > Duration::ZERO {
        scout_report.timers.build_table
    } else {
        scout_report.prepare
    };
    let lookup_time = if scout_report.timers.lookup > Duration::ZERO {
        scout_report.timers.lookup
    } else {
        scout_report.scan.busy
    };

    let space = SpaceBreakdown {
        dependency_table: scout_report.space.dependency_bytes,
        stable_flags: scout_report.space.flag_bytes,
        graph: std::mem::size_of_val(events),
        edge_features: data.features().size_bytes(),
        model: model.parameter_count() * std::mem::size_of::<f32>(),
        mailbox: model.mailbox_size_bytes(),
        memory: model.memory_size_bytes(),
        plane_shards: model.plane().num_shards(),
    };

    Ok(TrainReport {
        strategy: strategy_name,
        model: model.name().to_string(),
        dataset: data.name().to_string(),
        epochs,
        total_time,
        modeled_time,
        build_time,
        lookup_time,
        model_time,
        num_batches,
        avg_batch_size: (n_train * epochs) as f64 / num_batches.max(1) as f64,
        max_batch_size: max_batch,
        final_train_loss: *epoch_losses.last().unwrap_or(&f32::NAN),
        val_loss: val.loss,
        val_ap: val.average_precision,
        val_accuracy: val.accuracy,
        epoch_losses,
        batch_sizes,
        batch_losses,
        space,
        stages: StageTimings {
            scan: scout_report.scan,
            compute: stage_b,
            update: stage_c,
            shard_compute: shard_t.shard_compute,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_core::{train, FixedBatching};
    use cascade_models::ModelConfig;
    use cascade_tgraph::SynthConfig;

    fn tiny_dataset() -> Dataset {
        SynthConfig::wiki().with_scale(0.005).generate(9)
    }

    fn tiny_model(data: &Dataset) -> MemoryTgnn {
        MemoryTgnn::new(
            ModelConfig::tgn().with_dims(8, 4).with_neighbors(3),
            data.num_nodes(),
            data.features().dim(),
            3,
        )
    }

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            lr: 1e-3,
            eval_batch_size: 64,
            clip_norm: Some(5.0),
            ..TrainConfig::default()
        }
    }

    #[test]
    fn pipelined_fixed_batching_matches_serial() {
        let data = tiny_dataset();
        let mut m1 = tiny_model(&data);
        let mut s1 = FixedBatching::new(64);
        let serial = train(&mut m1, &data, &mut s1, &tiny_cfg());

        let mut m2 = tiny_model(&data);
        let mut s2 = FixedBatching::new(64);
        let piped = train_pipelined(
            &mut m2,
            &data,
            &mut s2,
            &tiny_cfg(),
            &PipelineConfig::default().deterministic(),
        )
        .expect("pipeline failed");

        assert_eq!(serial.epoch_losses, piped.epoch_losses);
        assert_eq!(serial.batch_sizes, piped.batch_sizes);
        assert_eq!(serial.val_loss, piped.val_loss);
    }

    #[test]
    fn stage_items_are_consistent() {
        let data = tiny_dataset();
        let mut model = tiny_model(&data);
        let mut strat = FixedBatching::new(64);
        let r = train_pipelined(
            &mut model,
            &data,
            &mut strat,
            &tiny_cfg(),
            &PipelineConfig::default().with_depth(3).with_staleness(2),
        )
        .expect("pipeline failed");
        assert_eq!(r.stages.scan.items, r.num_batches);
        assert_eq!(r.stages.compute.items, r.num_batches);
        assert_eq!(r.stages.update.items, r.num_batches);
        assert_eq!(
            r.batch_sizes.iter().map(|&b| b as usize).sum::<usize>(),
            data.train_range().end * r.epochs
        );
    }

    #[test]
    fn effective_staleness_honors_deterministic() {
        let p = PipelineConfig::default().with_staleness(7);
        assert_eq!(p.effective_staleness(), 7);
        assert_eq!(p.deterministic().effective_staleness(), 0);
    }

    #[test]
    fn error_display_names_stage() {
        let e = PipelineError {
            stage: PipelineStage::Update,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "pipeline stage 'update' failed: boom");
    }
}
