//! Integration tests for the pipelined executor: bit-identity with the
//! serial trainer in deterministic mode, liveness/coverage under random
//! pipeline shapes, and panic-safe shutdown.

use cascade_core::{
    train, BatchingStrategy, CascadeConfig, CascadeScheduler, FixedBatching, TrainConfig,
};
use cascade_exec::{train_pipelined, PipelineConfig, PipelineStage};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_nn::Module;
use cascade_tgraph::{Dataset, EventId, NodeId, SynthConfig};
use cascade_util::{check, prop_assert};

fn dataset() -> Dataset {
    SynthConfig::wiki().with_scale(0.006).generate(23)
}

fn model_for(data: &Dataset) -> MemoryTgnn {
    MemoryTgnn::new(
        ModelConfig::tgn().with_dims(8, 4).with_neighbors(3),
        data.num_nodes(),
        data.features().dim(),
        11,
    )
}

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        lr: 1e-3,
        eval_batch_size: 64,
        clip_norm: Some(5.0),
        ..TrainConfig::default()
    }
}

fn scheduler() -> CascadeScheduler {
    CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 64,
        ..CascadeConfig::default()
    })
}

/// Deterministic mode must reproduce the serial trainer bit for bit:
/// same partition, same losses, same final node memories, same final
/// parameters.
#[test]
fn deterministic_pipeline_is_bit_identical_to_serial() {
    let data = dataset();

    let mut serial_model = model_for(&data);
    let mut serial_strategy = scheduler();
    let serial = train(
        &mut serial_model,
        &data,
        &mut serial_strategy,
        &train_cfg(2),
    );

    let mut piped_model = model_for(&data);
    let mut piped_strategy = scheduler();
    let piped = train_pipelined(
        &mut piped_model,
        &data,
        &mut piped_strategy,
        &train_cfg(2),
        &PipelineConfig::default().with_depth(4).deterministic(),
    )
    .expect("deterministic pipeline must not fail");

    assert_eq!(serial.epoch_losses, piped.epoch_losses);
    assert_eq!(serial.batch_sizes, piped.batch_sizes);
    assert_eq!(serial.batch_losses, piped.batch_losses);
    assert_eq!(serial.num_batches, piped.num_batches);
    assert_eq!(serial.val_loss, piped.val_loss);
    assert_eq!(serial.val_ap, piped.val_ap);

    for node in 0..data.num_nodes() as u32 {
        assert_eq!(
            serial_model.memory().read(NodeId(node)),
            piped_model.memory().read(NodeId(node)),
            "memory row {node} diverged"
        );
    }
    for (i, (a, b)) in serial_model
        .parameters()
        .iter()
        .zip(piped_model.parameters().iter())
        .enumerate()
    {
        assert_eq!(
            a.data().to_vec(),
            b.data().to_vec(),
            "parameter {i} diverged"
        );
    }
}

/// `staleness_bound = 0` alone (without the `deterministic` flag) also
/// pins the serial schedule.
#[test]
fn zero_staleness_matches_serial_losses() {
    let data = dataset();

    let mut m1 = model_for(&data);
    let mut s1 = FixedBatching::new(48);
    let serial = train(&mut m1, &data, &mut s1, &train_cfg(1));

    let mut m2 = model_for(&data);
    let mut s2 = FixedBatching::new(48);
    let piped = train_pipelined(
        &mut m2,
        &data,
        &mut s2,
        &train_cfg(1),
        &PipelineConfig::default().with_depth(2).with_staleness(0),
    )
    .expect("pipeline failed");

    assert_eq!(serial.epoch_losses, piped.epoch_losses);
    assert_eq!(serial.batch_losses, piped.batch_losses);
}

/// Random pipeline shapes: whatever the depth and staleness bound, the
/// pipeline must terminate (no deadlock), process every event exactly
/// once per epoch, and produce finite losses. Runs under the seeded
/// deterministic property harness.
#[test]
fn random_shapes_terminate_and_cover_the_stream() {
    let data = SynthConfig::wiki().with_scale(0.003).generate(5);
    let n_train = data.train_range().end;
    check("pipeline_shape_liveness", |g| {
        let depth = g.usize_in(1..5);
        let staleness = g.usize_in(0..4);
        let batch = g.usize_in(16..97);
        let mut model = MemoryTgnn::new(
            ModelConfig::tgn().with_dims(4, 2).with_neighbors(2),
            data.num_nodes(),
            data.features().dim(),
            g.usize_in(0..1000) as u64,
        );
        let mut strategy = FixedBatching::new(batch);
        let report = train_pipelined(
            &mut model,
            &data,
            &mut strategy,
            &train_cfg(1),
            &PipelineConfig::default()
                .with_depth(depth)
                .with_staleness(staleness),
        )
        .map_err(|e| e.to_string())?;
        let covered: usize = report.batch_sizes.iter().map(|&b| b as usize).sum();
        prop_assert!(
            covered == n_train,
            "covered {covered} of {n_train} events (depth={depth} staleness={staleness} batch={batch})"
        );
        prop_assert!(report.stages.scan.items == report.num_batches);
        prop_assert!(report.stages.compute.items == report.num_batches);
        prop_assert!(report.stages.update.items == report.num_batches);
        for (i, loss) in report.epoch_losses.iter().enumerate() {
            prop_assert!(loss.is_finite(), "epoch {i} loss not finite");
        }
        Ok(())
    });
}

/// The pipeline partition is a deterministic function of its
/// configuration even for positive staleness bounds: two runs with the
/// same shape produce the same batches and losses.
#[test]
fn positive_staleness_is_reproducible() {
    let data = SynthConfig::wiki().with_scale(0.004).generate(7);
    let run = || {
        let mut model = model_for(&data);
        let mut strategy = scheduler();
        train_pipelined(
            &mut model,
            &data,
            &mut strategy,
            &train_cfg(1),
            &PipelineConfig::default().with_depth(3).with_staleness(2),
        )
        .expect("pipeline failed")
    };
    let a = run();
    let b = run();
    assert_eq!(a.batch_sizes, b.batch_sizes);
    assert_eq!(a.batch_losses, b.batch_losses);
    assert_eq!(a.epoch_losses, b.epoch_losses);
}

/// A strategy that panics mid-scan after a few good batches.
struct PanickingStrategy {
    calls: usize,
}

impl BatchingStrategy for PanickingStrategy {
    fn name(&self) -> String {
        "panicking".to_string()
    }

    fn next_batch_end(&mut self, start: EventId, limit: EventId) -> EventId {
        self.calls += 1;
        if self.calls > 3 {
            panic!("synthetic scan failure");
        }
        (start + 32).min(limit)
    }
}

/// A strategy that emits an out-of-range boundary.
struct BogusBoundary;

impl BatchingStrategy for BogusBoundary {
    fn name(&self) -> String {
        "bogus".to_string()
    }

    fn next_batch_end(&mut self, _start: EventId, limit: EventId) -> EventId {
        limit + 17
    }
}

/// A scout-side panic must surface as a Scan-stage error, with queues
/// drained and the thread joined — not a deadlock or an abort.
#[test]
fn scan_panic_is_reported_not_deadlocked() {
    let data = SynthConfig::wiki().with_scale(0.003).generate(3);
    let mut model = model_for(&data);
    let mut strategy = PanickingStrategy { calls: 0 };
    let err = train_pipelined(
        &mut model,
        &data,
        &mut strategy,
        &train_cfg(1),
        &PipelineConfig::default().with_depth(2).with_staleness(1),
    )
    .expect_err("panicking strategy must produce an error");
    assert_eq!(err.stage, PipelineStage::Scan);
    assert!(
        err.message.contains("synthetic scan failure"),
        "unexpected message: {}",
        err.message
    );
}

/// An invalid boundary is rejected by the driver and attributed to the
/// scan stage.
#[test]
fn invalid_boundary_is_reported() {
    let data = SynthConfig::wiki().with_scale(0.003).generate(3);
    let mut model = model_for(&data);
    let mut strategy = BogusBoundary;
    let err = train_pipelined(
        &mut model,
        &data,
        &mut strategy,
        &train_cfg(1),
        &PipelineConfig::default(),
    )
    .expect_err("bogus boundary must produce an error");
    assert_eq!(err.stage, PipelineStage::Scan);
    assert!(
        err.message.contains("invalid batch boundary"),
        "unexpected message: {}",
        err.message
    );
}

/// A model-side panic (here: a model sized for the wrong graph) surfaces
/// as a Compute-stage error and still shuts the scout down cleanly.
#[test]
fn compute_panic_is_reported_not_deadlocked() {
    let data = SynthConfig::wiki().with_scale(0.003).generate(3);
    // One memory row: the first event touching node >= 1 blows up in the
    // forward pass.
    let mut model = MemoryTgnn::new(
        ModelConfig::tgn().with_dims(4, 2).with_neighbors(2),
        1,
        data.features().dim(),
        3,
    );
    let mut strategy = FixedBatching::new(32);
    let err = train_pipelined(
        &mut model,
        &data,
        &mut strategy,
        &train_cfg(1),
        &PipelineConfig::default().with_depth(2).with_staleness(1),
    )
    .expect_err("undersized model must produce an error");
    assert_eq!(err.stage, PipelineStage::Compute);
}
