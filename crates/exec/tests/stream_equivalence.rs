//! The pipelined out-of-core path must be bit-identical to serial
//! streaming and to in-memory training: prefetch and background table
//! builds change wall-clock, never results.

use cascade_core::{
    train, train_streaming, BatchingStrategy, CascadeConfig, CascadeScheduler, FixedBatching,
    TrainConfig, TrainReport,
};
use cascade_exec::{train_streamed, PipelineConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_store::{export_dataset, StreamingEventSource};
use cascade_tgraph::{Dataset, SynthConfig};

const CHUNK: usize = 128;

fn dataset() -> Dataset {
    SynthConfig::wiki().with_scale(0.004).generate(29)
}

fn model(data: &Dataset) -> MemoryTgnn {
    MemoryTgnn::new(
        ModelConfig::tgn().with_dims(8, 4).with_neighbors(3),
        data.num_nodes(),
        data.features().dim(),
        11,
    )
}

fn cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        eval_batch_size: 64,
        ..TrainConfig::default()
    }
}

fn assert_same_results(a: &TrainReport, b: &TrainReport, what: &str) {
    assert_eq!(a.batch_sizes, b.batch_sizes, "{what}: batch boundaries");
    let a_bits: Vec<u32> = a.batch_losses.iter().map(|x| x.to_bits()).collect();
    let b_bits: Vec<u32> = b.batch_losses.iter().map(|x| x.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "{what}: batch losses");
    assert_eq!(
        a.val_loss.to_bits(),
        b.val_loss.to_bits(),
        "{what}: val loss"
    );
}

fn streamed_run(
    data: &Dataset,
    path: &std::path::Path,
    strategy: &mut dyn BatchingStrategy,
    pipe: &PipelineConfig,
) -> (TrainReport, Vec<u8>) {
    let mut m = model(data);
    let mut src = StreamingEventSource::open(path, 2).expect("store opens");
    let r = train_streamed(&mut m, &mut src, strategy, &cfg(), pipe).expect("pipelined stream");
    (r, m.export_state())
}

#[test]
fn pipelined_streaming_matches_serial_streaming_and_in_memory() {
    let data = dataset();
    let path = std::env::temp_dir().join(format!("cascade-exec-stream-{}.evt", std::process::id()));
    export_dataset(&data, &path, CHUNK).expect("export succeeds");
    let mk = || {
        CascadeScheduler::new(CascadeConfig {
            preset_batch_size: 64,
            chunk_size: Some(CHUNK),
            ..CascadeConfig::default()
        })
    };

    let mut m_mem = model(&data);
    let mut s_mem = mk();
    let mem = train(&mut m_mem, &data, &mut s_mem, &cfg());

    let mut m_ser = model(&data);
    let mut src = StreamingEventSource::open(&path, 2).expect("store opens");
    let mut s_ser = mk();
    let serial = train_streaming(&mut m_ser, &mut src, &mut s_ser, &cfg()).expect("serial stream");

    let mut s_pipe = mk();
    let (piped, piped_state) = streamed_run(&data, &path, &mut s_pipe, &PipelineConfig::default());
    std::fs::remove_file(&path).ok();

    assert_same_results(&mem, &serial, "serial streaming vs in-memory");
    assert_same_results(&serial, &piped, "pipelined vs serial streaming");
    assert_eq!(
        m_ser.export_state(),
        piped_state,
        "model state diverged between serial and pipelined streaming"
    );
    assert_eq!(
        m_mem.export_state(),
        piped_state,
        "pipelined vs in-memory state"
    );
    // The loader's table builds ran off the critical path.
    assert!(
        piped.stages.scan.busy >= std::time::Duration::ZERO,
        "stage telemetry present"
    );
}

#[test]
fn pipelined_streaming_depth_does_not_change_results() {
    let data = dataset();
    let path = std::env::temp_dir().join(format!("cascade-exec-depth-{}.evt", std::process::id()));
    export_dataset(&data, &path, CHUNK).expect("export succeeds");

    let mut s1 = FixedBatching::new(48);
    let (d1, state1) = streamed_run(
        &data,
        &path,
        &mut s1,
        &PipelineConfig::default().with_depth(1),
    );
    let mut s4 = FixedBatching::new(48);
    let (d4, state4) = streamed_run(
        &data,
        &path,
        &mut s4,
        &PipelineConfig::default().with_depth(4),
    );
    std::fs::remove_file(&path).ok();

    assert_same_results(&d1, &d4, "depth 1 vs depth 4");
    assert_eq!(
        state1, state4,
        "model state diverged across read-ahead depths"
    );
}
