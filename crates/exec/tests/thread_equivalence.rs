//! Integration tests for shard-parallel batch compute: any
//! `compute_threads` value must be bit-identical to the single-threaded
//! run through both the serial trainer and the pipelined executor.

use cascade_core::{train, CascadeConfig, CascadeScheduler, TrainConfig, TrainReport};
use cascade_exec::{train_pipelined, PipelineConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_nn::Module;
use cascade_tgraph::{Dataset, NodeId, SynthConfig};

fn dataset() -> Dataset {
    SynthConfig::wiki().with_scale(0.006).generate(23)
}

fn model_for(data: &Dataset) -> MemoryTgnn {
    MemoryTgnn::new(
        ModelConfig::tgn().with_dims(8, 4).with_neighbors(3),
        data.num_nodes(),
        data.features().dim(),
        11,
    )
}

fn train_cfg(threads: usize) -> TrainConfig {
    TrainConfig {
        epochs: 2,
        lr: 1e-3,
        eval_batch_size: 64,
        clip_norm: Some(5.0),
        compute_threads: threads,
        ..TrainConfig::default()
    }
}

fn scheduler() -> CascadeScheduler {
    CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 64,
        ..CascadeConfig::default()
    })
}

fn assert_same_state(a: &MemoryTgnn, b: &MemoryTgnn, data: &Dataset, label: &str) {
    for node in 0..data.num_nodes() as u32 {
        assert_eq!(
            a.memory().read(NodeId(node)),
            b.memory().read(NodeId(node)),
            "{label}: memory row {node} diverged"
        );
    }
    for (i, (pa, pb)) in a.parameters().iter().zip(b.parameters().iter()).enumerate() {
        assert_eq!(
            pa.data().to_vec(),
            pb.data().to_vec(),
            "{label}: parameter {i} diverged"
        );
    }
}

fn assert_same_report(a: &TrainReport, b: &TrainReport, label: &str) {
    assert_eq!(a.epoch_losses, b.epoch_losses, "{label}: epoch losses");
    assert_eq!(a.batch_losses, b.batch_losses, "{label}: batch losses");
    assert_eq!(a.batch_sizes, b.batch_sizes, "{label}: batch partition");
    assert_eq!(a.val_loss, b.val_loss, "{label}: validation loss");
    assert_eq!(a.val_ap, b.val_ap, "{label}: validation AP");
}

/// The serial trainer with `compute_threads = N` must reproduce the
/// single-threaded run bit for bit: same losses, same partition, same
/// final parameters and node memories.
#[test]
fn serial_trainer_is_bit_identical_across_thread_counts() {
    let data = dataset();

    let mut base_model = model_for(&data);
    let mut base_strategy = scheduler();
    let base = train(&mut base_model, &data, &mut base_strategy, &train_cfg(1));

    for threads in [2usize, 4] {
        let mut model = model_for(&data);
        let mut strategy = scheduler();
        let report = train(&mut model, &data, &mut strategy, &train_cfg(threads));
        let label = format!("serial threads={threads}");
        assert_same_report(&base, &report, &label);
        assert_same_state(&base_model, &model, &data, &label);
    }
}

/// The deterministic pipelined executor composes with shard-parallel
/// compute: pipelined + `compute_threads = 4` still matches the serial
/// single-threaded trainer bit for bit.
#[test]
fn pipelined_parallel_compute_matches_serial_single_thread() {
    let data = dataset();

    let mut serial_model = model_for(&data);
    let mut serial_strategy = scheduler();
    let serial = train(
        &mut serial_model,
        &data,
        &mut serial_strategy,
        &train_cfg(1),
    );

    let mut piped_model = model_for(&data);
    let mut piped_strategy = scheduler();
    let piped = train_pipelined(
        &mut piped_model,
        &data,
        &mut piped_strategy,
        &train_cfg(4),
        &PipelineConfig::default().with_depth(4).deterministic(),
    )
    .expect("deterministic pipeline must not fail");

    assert_same_report(&serial, &piped, "pipelined threads=4");
    assert_same_state(&serial_model, &piped_model, &data, "pipelined threads=4");
}

/// Shard telemetry appears exactly when the batch compute is sharded:
/// multi-thread runs populate `shard_compute`, and the per-shard busy
/// split stays a sub-division of the compute stage (excluded from the
/// stage totals, so the serial invariants hold unchanged).
#[test]
fn shard_telemetry_is_populated_and_excluded_from_totals() {
    let data = dataset();
    let mut model = model_for(&data);
    let mut strategy = scheduler();
    let report = train(&mut model, &data, &mut strategy, &train_cfg(4));

    let stages = &report.stages;
    assert!(
        !stages.shard_compute.is_empty(),
        "multi-thread run must record per-shard telemetry"
    );
    assert!(stages.shard_busy_total() > std::time::Duration::ZERO);
    for (s, shard) in stages.shard_compute.iter().enumerate() {
        assert!(shard.items > 0, "shard {s} recorded no batches");
    }
    // Per-shard timings sub-divide compute.busy; they must not leak
    // into the cross-stage totals the serial invariants rely on.
    assert_eq!(
        stages.total_busy(),
        stages.scan.busy + stages.compute.busy + stages.update.busy
    );
    assert_eq!(stages.total_stall(), std::time::Duration::ZERO);
}
