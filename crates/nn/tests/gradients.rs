//! Finite-difference gradient verification for every layer: the analytic
//! parameter gradients must agree with numeric central differences of a
//! scalar loss.

use cascade_nn::{GatLayer, GruCell, LayerNorm, Linear, Module, RnnCell, TimeEncode};
use cascade_tensor::Tensor;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Checks d(loss)/d(param[j]) for a few entries of every parameter.
fn check_module_gradients<M: Module>(module: &M, loss_fn: impl Fn() -> Tensor, label: &str) {
    let loss = loss_fn();
    loss.backward();
    let params = module.parameters();
    let grads: Vec<Option<Vec<f32>>> = params.iter().map(|p| p.grad()).collect();
    module.zero_grad();

    for (pi, p) in params.iter().enumerate() {
        let grad = grads[pi]
            .as_ref()
            .unwrap_or_else(|| panic!("{}: parameter {} received no gradient", label, pi));
        // Probe a handful of coordinates.
        let len = p.len();
        let probes = [0, len / 2, len - 1];
        for &j in probes.iter() {
            let orig = p.to_vec();
            let mut plus = orig.clone();
            plus[j] += EPS;
            p.set_data(&plus);
            let fp = loss_fn().item();
            let mut minus = orig.clone();
            minus[j] -= EPS;
            p.set_data(&minus);
            let fm = loss_fn().item();
            p.set_data(&orig);

            let numeric = (fp - fm) / (2.0 * EPS);
            let analytic = grad[j];
            assert!(
                (numeric - analytic).abs() <= TOL * (1.0 + numeric.abs().max(analytic.abs())),
                "{}: param {} coord {}: analytic {} vs numeric {}",
                label,
                pi,
                j,
                analytic,
                numeric
            );
        }
    }
}

#[test]
fn linear_gradients_match_finite_differences() {
    let layer = Linear::new(3, 2, 7);
    let x = Tensor::randn([4, 3], 1);
    check_module_gradients(&layer, || layer.forward(&x).square().mean(), "Linear");
}

#[test]
fn gru_gradients_match_finite_differences() {
    let cell = GruCell::new(3, 4, 11);
    let x = Tensor::randn([2, 3], 2);
    let h = Tensor::randn([2, 4], 3);
    check_module_gradients(&cell, || cell.forward(&x, &h).square().mean(), "GruCell");
}

#[test]
fn rnn_gradients_match_finite_differences() {
    let cell = RnnCell::new(3, 4, 13);
    let x = Tensor::randn([2, 3], 4);
    let h = Tensor::randn([2, 4], 5);
    check_module_gradients(&cell, || cell.forward(&x, &h).square().mean(), "RnnCell");
}

#[test]
fn gat_gradients_match_finite_differences() {
    let gat = GatLayer::new(3, 4, 17);
    let center = Tensor::randn([2, 3], 6);
    let neighbors = Tensor::randn([4, 3], 7);
    let mask = [1.0, 1.0, 1.0, 0.0];
    check_module_gradients(
        &gat,
        || gat.forward(&center, &neighbors, &mask, 2).square().mean(),
        "GatLayer",
    );
}

#[test]
fn time_encode_gradients_match_finite_differences() {
    let enc = TimeEncode::new(6);
    let dts = Tensor::from_vec(vec![0.5, 2.0, 7.0], [3, 1]);
    check_module_gradients(&enc, || enc.forward(&dts).square().mean(), "TimeEncode");
}

#[test]
fn layernorm_gradients_match_finite_differences() {
    let ln = LayerNorm::new(5);
    let x = Tensor::randn([3, 5], 8);
    // Asymmetric loss so γ's gradient is informative.
    let w = Tensor::randn([3, 5], 9);
    check_module_gradients(&ln, || ln.forward(&x).mul(&w).square().mean(), "LayerNorm");
}

#[test]
fn input_gradients_flow_through_stacked_layers() {
    // A small end-to-end composite: LN(GRU(x, Linear(x))) — input grads
    // must agree with finite differences too.
    let lin = Linear::new(3, 4, 21);
    let gru = GruCell::new(3, 4, 22);
    let ln = LayerNorm::new(4);

    let x0 = vec![0.3f32, -0.8, 1.1, 0.5, 0.2, -0.4];
    let f = |v: &[f32]| {
        let x = Tensor::from_vec(v.to_vec(), [2, 3]);
        ln.forward(&gru.forward(&x, &lin.forward(&x)))
            .square()
            .mean()
    };

    let x = Tensor::from_vec(x0.clone(), [2, 3]).requires_grad();
    ln.forward(&gru.forward(&x, &lin.forward(&x)))
        .square()
        .mean()
        .backward();
    let g = x.grad().unwrap();

    for j in [0usize, 3, 5] {
        let mut p = x0.clone();
        p[j] += EPS;
        let mut m = x0.clone();
        m[j] -= EPS;
        let numeric = (f(&p).item() - f(&m).item()) / (2.0 * EPS);
        assert!(
            (numeric - g[j]).abs() <= TOL * (1.0 + numeric.abs()),
            "coord {}: analytic {} vs numeric {}",
            j,
            g[j],
            numeric
        );
    }
}
