//! Affine layers and multi-layer perceptrons.

use cascade_tensor::Tensor;

use crate::module::{xavier_uniform, zeros_bias, Module};

/// A fully-connected affine layer: `y = x·W + b`.
///
/// # Examples
///
/// ```
/// use cascade_nn::{Linear, Module};
/// use cascade_tensor::Tensor;
///
/// let layer = Linear::new(4, 2, 7);
/// let x = Tensor::ones([3, 4]);
/// assert_eq!(layer.forward(&x).dims(), &[3, 2]);
/// assert_eq!(layer.parameter_count(), 4 * 2 + 2);
/// ```
#[derive(Clone, Debug)]
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Linear {
            weight: xavier_uniform(in_dim, out_dim, seed),
            bias: zeros_bias(out_dim),
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to a `[batch, in_dim]` input.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-2 with `in_dim` columns.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.dims().last(),
            Some(&self.in_dim),
            "Linear({} -> {}) got input {}",
            self.in_dim,
            self.out_dim,
            x.shape()
        );
        x.matmul(&self.weight).add(&self.bias)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// A multi-layer perceptron with ReLU activations between layers.
///
/// The paper's TGNN models use MLPs as message functions and link
/// predictors (§2.2).
///
/// # Examples
///
/// ```
/// use cascade_nn::{Mlp, Module};
/// use cascade_tensor::Tensor;
///
/// let mlp = Mlp::new(&[8, 16, 1], 3);
/// let x = Tensor::ones([5, 8]);
/// assert_eq!(mlp.forward(&x).dims(), &[5, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates an MLP with the given layer widths (`dims.len() - 1` layers).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "Mlp needs at least input and output widths"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], seed.wrapping_add(i as u64 * 7919)))
            .collect();
        Mlp { layers }
    }

    /// Applies the network; ReLU between layers, no activation on the last.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                h = h.relu();
            }
        }
        h
    }

    /// Number of affine layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl Module for Mlp {
    fn parameters(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(Linear::parameters).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes() {
        let l = Linear::new(3, 5, 0);
        let x = Tensor::ones([2, 3]);
        assert_eq!(l.forward(&x).dims(), &[2, 5]);
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 5);
    }

    #[test]
    #[should_panic(expected = "got input")]
    fn linear_rejects_wrong_width() {
        let l = Linear::new(3, 5, 0);
        let _ = l.forward(&Tensor::ones([2, 4]));
    }

    #[test]
    fn linear_bias_applied() {
        let l = Linear::new(2, 2, 0);
        // zero input -> output equals bias (zeros)
        let y = l.forward(&Tensor::zeros([1, 2]));
        assert_eq!(y.to_vec(), vec![0.0, 0.0]);
    }

    #[test]
    fn linear_gradients_flow() {
        let l = Linear::new(2, 1, 1);
        let x = Tensor::ones([4, 2]);
        l.forward(&x).sum().backward();
        for p in l.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn mlp_depth_and_params() {
        let m = Mlp::new(&[4, 8, 2], 0);
        assert_eq!(m.depth(), 2);
        assert_eq!(m.parameter_count(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn mlp_trains_xor_direction() {
        // One gradient step reduces the loss on a fixed batch.
        let m = Mlp::new(&[2, 8, 1], 5);
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], [4, 2]);
        let t = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], [4, 1]);
        let loss0 = m.forward(&x).sub(&t).square().mean();
        loss0.backward();
        for p in m.parameters() {
            let g = p.grad().unwrap();
            p.update_data(|d| {
                for (d, g) in d.iter_mut().zip(g.iter()) {
                    *d -= 0.1 * g;
                }
            });
            p.zero_grad();
        }
        let loss1 = m.forward(&x).sub(&t).square().mean();
        assert!(loss1.item() < loss0.item());
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_rejects_single_width() {
        let _ = Mlp::new(&[4], 0);
    }
}
