#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # cascade-nn
//!
//! Neural-network building blocks for the Cascade TGNN training framework:
//! the layers Table 1 of the paper configures its five models from
//! (MLP message functions, GRU/RNN memory updaters, GAT embedders,
//! sinusoidal time encoders), plus the Adam optimizer and BCE loss the
//! training loop uses.
//!
//! # Examples
//!
//! A single supervised step over a toy batch:
//!
//! ```
//! use cascade_nn::{bce_with_logits, Adam, EdgePredictor, Module};
//! use cascade_tensor::Tensor;
//!
//! let head = EdgePredictor::new(8, 42);
//! let mut opt = Adam::new(head.parameters(), 1e-3);
//!
//! let src = Tensor::randn([16, 8], 1);
//! let dst = Tensor::randn([16, 8], 2);
//! let labels = Tensor::ones([16, 1]);
//!
//! let logits = head.forward(&src, &dst);
//! let loss = bce_with_logits(&logits, &labels);
//! loss.backward();
//! opt.step();
//! ```

mod attention;
mod linear;
mod loss;
mod module;
mod norm;
mod optim;
mod predictor;
mod recurrent;
mod time_encode;

pub use attention::GatLayer;
pub use linear::{Linear, Mlp};
pub use loss::{average_precision, bce_with_logits, bce_with_logits_sum, binary_accuracy};
pub use module::{xavier_uniform, zeros_bias, Module};
pub use norm::{Dropout, LayerNorm};
pub use optim::{clip_grad_norm, Adam, Sgd};
pub use predictor::EdgePredictor;
pub use recurrent::{GruCell, RnnCell};
pub use time_encode::TimeEncode;
