//! Optimizers: [`Adam`] (the paper's choice, §2.3) and [`Sgd`].

use cascade_tensor::Tensor;

/// The Adam optimizer (Kingma & Ba, 2014).
///
/// # Examples
///
/// ```
/// use cascade_nn::{Adam, Linear, Module};
/// use cascade_tensor::Tensor;
///
/// let layer = Linear::new(2, 1, 0);
/// let mut opt = Adam::new(layer.parameters(), 1e-2);
/// let x = Tensor::ones([4, 2]);
/// let loss = layer.forward(&x).square().mean();
/// loss.backward();
/// opt.step();
/// ```
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    /// Creates an optimizer over `params` with the given learning rate and
    /// default moments `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        let m = params.iter().map(|p| vec![0.0; p.len()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        Adam {
            params,
            m,
            v,
            t: 0,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Overrides the moment coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Applies one update using the accumulated gradients, then clears
    /// them. Parameters with no gradient are skipped.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let (b1, b2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
            // Borrow the gradient in place rather than copying it out; the
            // data write happens under the (separate) storage lock.
            let stepped = p
                .with_grad(|grad| {
                    p.update_data(|data| {
                        for j in 0..data.len() {
                            let g = grad[j];
                            m[j] = b1 * m[j] + (1.0 - b1) * g;
                            v[j] = b2 * v[j] + (1.0 - b2) * g * g;
                            let m_hat = m[j] / bc1;
                            let v_hat = v[j] / bc2;
                            data[j] -= lr * m_hat / (v_hat.sqrt() + eps);
                        }
                    });
                })
                .is_some();
            if stepped {
                p.zero_grad();
            }
        }
    }

    /// Clears all parameter gradients without stepping.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (batch-size scaling, schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Serializes the optimizer's moment estimates and step counter for
    /// a mid-training checkpoint. The learning rate and betas are
    /// configuration, not state, and are excluded.
    pub fn export_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.t.to_le_bytes());
        buf.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        for (m, v) in self.m.iter().zip(&self.v) {
            buf.extend_from_slice(&(m.len() as u32).to_le_bytes());
            for x in m {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        buf
    }

    /// Restores state captured by [`export_state`](Adam::export_state).
    ///
    /// # Errors
    ///
    /// Returns a description when the blob is truncated or its parameter
    /// shapes do not match this optimizer.
    pub fn import_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = bytes
                .get(*off..*off + n)
                .ok_or("optimizer state truncated".to_string())?;
            *off += n;
            Ok(s)
        };
        let t = u64::from_le_bytes(take(&mut off, 8)?.try_into().expect("slice is 8 bytes"));
        let count =
            u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("slice is 4 bytes")) as usize;
        if count != self.params.len() {
            return Err(format!(
                "optimizer state has {} parameters, expected {}",
                count,
                self.params.len()
            ));
        }
        let mut m = Vec::with_capacity(count);
        let mut v = Vec::with_capacity(count);
        for (i, p) in self.params.iter().enumerate() {
            let len = u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("slice is 4 bytes"))
                as usize;
            if len != p.len() {
                return Err(format!(
                    "optimizer state parameter {} has {} values, expected {}",
                    i,
                    len,
                    p.len()
                ));
            }
            let read_vec = |off: &mut usize| -> Result<Vec<f32>, String> {
                let raw = take(off, len * 4)?;
                Ok(raw
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("slice is 4 bytes")))
                    .collect())
            };
            m.push(read_vec(&mut off)?);
            v.push(read_vec(&mut off)?);
        }
        self.t = t;
        self.m = m;
        self.v = v;
        Ok(())
    }
}

/// Plain stochastic gradient descent, `p ← p − lr·g`.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Sgd { params, lr }
    }

    /// Applies one descent step and clears gradients.
    pub fn step(&mut self) {
        for p in &self.params {
            let lr = self.lr;
            let stepped = p
                .with_grad(|grad| {
                    p.update_data(|data| {
                        for (d, g) in data.iter_mut().zip(grad.iter()) {
                            *d -= lr * g;
                        }
                    });
                })
                .is_some();
            if stepped {
                p.zero_grad();
            }
        }
    }
}

/// Rescales gradients in place so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let mut total = 0.0f64;
    for p in params {
        total += p
            .with_grad(|g| g.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>())
            .unwrap_or(0.0);
    }
    let norm = total.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            p.scale_grad(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(start: f32) -> Tensor {
        Tensor::from_vec(vec![start], [1]).requires_grad()
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let p = quadratic_param(5.0);
        let mut opt = Adam::new(vec![p.clone()], 0.5);
        for _ in 0..200 {
            let loss = p.square().sum();
            loss.backward();
            opt.step();
        }
        assert!(p.at(0).abs() < 0.1, "param stuck at {}", p.at(0));
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let p = quadratic_param(4.0);
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        for _ in 0..100 {
            p.square().sum().backward();
            opt.step();
        }
        assert!(p.at(0).abs() < 0.01);
    }

    #[test]
    fn step_clears_gradients() {
        let p = quadratic_param(1.0);
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        p.square().sum().backward();
        opt.step();
        assert!(p.grad().is_none());
    }

    #[test]
    fn step_skips_gradientless_params() {
        let p = quadratic_param(2.0);
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        opt.step(); // must not panic or move the parameter
        assert_eq!(p.at(0), 2.0);
    }

    #[test]
    fn clip_caps_norm() {
        let p = Tensor::from_vec(vec![3.0, 4.0], [2]).requires_grad();
        p.square().sum().backward(); // grad = [6, 8], norm 10
        let pre = clip_grad_norm(std::slice::from_ref(&p), 5.0);
        assert!((pre - 10.0).abs() < 1e-4);
        let g = p.grad().unwrap();
        let norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((norm - 5.0).abs() < 1e-3);
    }

    #[test]
    fn adam_state_roundtrip_resumes_identically() {
        let p = quadratic_param(5.0);
        let mut opt = Adam::new(vec![p.clone()], 0.2);
        let mut state = Vec::new();
        let mut mid = 0.0;
        for i in 0..20 {
            if i == 10 {
                state = opt.export_state();
                mid = p.at(0);
            }
            p.square().sum().backward();
            opt.step();
        }
        let uninterrupted = p.at(0);

        let p2 = quadratic_param(mid);
        let mut o2 = Adam::new(vec![p2.clone()], 0.2);
        o2.import_state(&state).expect("state roundtrips");
        for _ in 10..20 {
            p2.square().sum().backward();
            o2.step();
        }
        assert_eq!(uninterrupted.to_bits(), p2.at(0).to_bits());
    }

    #[test]
    fn adam_import_rejects_shape_mismatch() {
        let p = quadratic_param(1.0);
        let mut a = Adam::new(vec![p.clone()], 0.1);
        let b = Adam::new(
            vec![Tensor::from_vec(vec![0.0, 1.0], [2]).requires_grad()],
            0.1,
        );
        assert!(a.import_state(&b.export_state()).is_err());
        assert!(a.import_state(&[1, 2, 3]).is_err());
    }

    #[test]
    fn clip_leaves_small_grads() {
        let p = Tensor::from_vec(vec![0.3], [1]).requires_grad();
        p.square().sum().backward(); // grad 0.6
        clip_grad_norm(std::slice::from_ref(&p), 5.0);
        assert!((p.grad().unwrap()[0] - 0.6).abs() < 1e-5);
    }
}
