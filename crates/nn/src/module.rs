//! The [`Module`] trait and parameter initialization.

use cascade_tensor::Tensor;

/// A trainable component exposing its parameters.
///
/// Modules are plain structs holding parameter tensors (created with
/// [`Tensor::requires_grad`]); [`Module::parameters`] lets optimizers and
/// serializers walk them.
pub trait Module {
    /// All trainable parameter tensors of this module, in a stable order.
    fn parameters(&self) -> Vec<Tensor>;

    /// Total number of scalar parameters.
    fn parameter_count(&self) -> usize {
        self.parameters().iter().map(Tensor::len).sum()
    }

    /// Clears the gradients of every parameter.
    fn zero_grad(&self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
///
/// Samples from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`,
/// deterministically seeded.
///
/// # Examples
///
/// ```
/// use cascade_nn::xavier_uniform;
///
/// let w = xavier_uniform(4, 8, 1);
/// assert_eq!(w.dims(), &[4, 8]);
/// ```
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::uniform([fan_in, fan_out], -a, a, seed).requires_grad()
}

/// Zero-initialized bias of length `n`.
pub fn zeros_bias(n: usize) -> Tensor {
    Tensor::zeros([n]).requires_grad()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        w: Tensor,
        b: Tensor,
    }

    impl Module for Toy {
        fn parameters(&self) -> Vec<Tensor> {
            vec![self.w.clone(), self.b.clone()]
        }
    }

    #[test]
    fn parameter_count_sums_elements() {
        let t = Toy {
            w: xavier_uniform(3, 4, 0),
            b: zeros_bias(4),
        };
        assert_eq!(t.parameter_count(), 16);
    }

    #[test]
    fn xavier_bounds() {
        let w = xavier_uniform(10, 10, 3);
        let a = (6.0f32 / 20.0).sqrt();
        assert!(w.to_vec().iter().all(|&x| x.abs() <= a));
        assert!(w.is_requires_grad());
    }

    #[test]
    fn zero_grad_clears() {
        let t = Toy {
            w: xavier_uniform(2, 2, 0),
            b: zeros_bias(2),
        };
        let out = t.w.sum();
        out.backward();
        assert!(t.w.grad().is_some());
        t.zero_grad();
        assert!(t.w.grad().is_none());
    }
}
