//! Link prediction heads.

use cascade_tensor::Tensor;

use crate::linear::Mlp;
use crate::module::Module;

/// Predicts edge-presence logits from a pair of node embeddings via a
/// two-layer MLP on their concatenation — the final "MLP module" of
/// Equation 4's pipeline.
///
/// # Examples
///
/// ```
/// use cascade_nn::EdgePredictor;
/// use cascade_tensor::Tensor;
///
/// let head = EdgePredictor::new(8, 9);
/// let src = Tensor::ones([4, 8]);
/// let dst = Tensor::ones([4, 8]);
/// assert_eq!(head.forward(&src, &dst).dims(), &[4, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct EdgePredictor {
    mlp: Mlp,
    embed_dim: usize,
}

impl EdgePredictor {
    /// Creates a predictor over `embed_dim`-wide node embeddings.
    pub fn new(embed_dim: usize, seed: u64) -> Self {
        EdgePredictor {
            mlp: Mlp::new(&[2 * embed_dim, embed_dim, 1], seed),
            embed_dim,
        }
    }

    /// Scores each row pair, returning `[B, 1]` logits.
    ///
    /// # Panics
    ///
    /// Panics if the inputs disagree in shape or width.
    pub fn forward(&self, src: &Tensor, dst: &Tensor) -> Tensor {
        assert_eq!(
            src.shape(),
            dst.shape(),
            "EdgePredictor input shapes differ"
        );
        assert_eq!(
            src.dims()[1],
            self.embed_dim,
            "EdgePredictor width mismatch"
        );
        self.mlp.forward(&Tensor::concat_cols(&[src, dst]))
    }
}

impl Module for EdgePredictor {
    fn parameters(&self) -> Vec<Tensor> {
        self.mlp.parameters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logit_shape() {
        let p = EdgePredictor::new(4, 0);
        let out = p.forward(&Tensor::ones([3, 4]), &Tensor::zeros([3, 4]));
        assert_eq!(out.dims(), &[3, 1]);
    }

    #[test]
    fn order_sensitive() {
        let p = EdgePredictor::new(4, 1);
        let a = Tensor::randn([2, 4], 1);
        let b = Tensor::randn([2, 4], 2);
        let ab = p.forward(&a, &b).to_vec();
        let ba = p.forward(&b, &a).to_vec();
        assert_ne!(ab, ba);
    }

    #[test]
    fn gradients_flow() {
        let p = EdgePredictor::new(4, 2);
        p.forward(&Tensor::ones([2, 4]), &Tensor::ones([2, 4]))
            .sum()
            .backward();
        for param in p.parameters() {
            assert!(param.grad().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn rejects_shape_mismatch() {
        let p = EdgePredictor::new(4, 0);
        let _ = p.forward(&Tensor::ones([2, 4]), &Tensor::ones([3, 4]));
    }
}
