//! Graph attention over sampled temporal neighborhoods.
//!
//! TGN, DySAT, and TGAT embed node memories with attention modules
//! (Table 1 of the paper). [`GatLayer`] implements single-head GATv1-style
//! attention over a fixed-width sampled neighborhood with a validity mask,
//! always including the center node as an attention target (self-loop).

use cascade_tensor::Tensor;

use crate::module::{xavier_uniform, Module};

/// A single-head graph attention layer.
///
/// For a batch of `B` center nodes, each with `K` sampled neighbor slots
/// (invalid slots masked out), computes
///
/// ```text
/// e_j   = LeakyReLU(a_srcᵀ·W h_center + a_dstᵀ·W h_j)
/// α     = softmax over {self} ∪ neighbors
/// out   = ReLU(α_self · W h_center + Σ_j α_j · W h_j)
/// ```
///
/// # Examples
///
/// ```
/// use cascade_nn::GatLayer;
/// use cascade_tensor::Tensor;
///
/// let gat = GatLayer::new(8, 16, 4);
/// let center = Tensor::ones([2, 8]);
/// let neighbors = Tensor::ones([2 * 3, 8]);
/// let mask = vec![1.0; 6];
/// let out = gat.forward(&center, &neighbors, &mask, 3);
/// assert_eq!(out.dims(), &[2, 16]);
/// ```
#[derive(Clone, Debug)]
pub struct GatLayer {
    weight: Tensor,
    attn_src: Tensor,
    attn_dst: Tensor,
    in_dim: usize,
    out_dim: usize,
}

impl GatLayer {
    /// Creates a layer with Xavier-initialized projection and attention
    /// vectors.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        GatLayer {
            weight: xavier_uniform(in_dim, out_dim, seed.wrapping_add(1)),
            attn_src: xavier_uniform(out_dim, 1, seed.wrapping_add(2)),
            attn_dst: xavier_uniform(out_dim, 1, seed.wrapping_add(3)),
            in_dim,
            out_dim,
        }
    }

    /// Attends each of the `B` center rows over its `K` neighbor slots.
    ///
    /// * `center`: `[B, in_dim]`
    /// * `neighbors`: `[B·K, in_dim]`, row `i·K + j` is neighbor `j` of
    ///   center `i`
    /// * `mask`: length `B·K`; `1.0` for valid slots, `0.0` for padding
    /// * `k`: neighbor slots per center
    ///
    /// Returns `[B, out_dim]`.
    ///
    /// # Panics
    ///
    /// Panics on any dimension inconsistency.
    pub fn forward(&self, center: &Tensor, neighbors: &Tensor, mask: &[f32], k: usize) -> Tensor {
        let b = center.dims()[0];
        assert_eq!(
            center.dims()[1],
            self.in_dim,
            "GatLayer center width mismatch"
        );
        assert_eq!(
            neighbors.dims(),
            &[b * k, self.in_dim],
            "GatLayer neighbors must be [B*K, in]"
        );
        assert_eq!(mask.len(), b * k, "GatLayer mask length mismatch");

        let wh_c = center.matmul(&self.weight); // [B, out]
        let e0 = wh_c.matmul(&self.attn_src); // [B, 1], shared by e_self and e_src
        let e_self = e0.mul_scalar(2.0).leaky_relu(0.2); // [B, 1]

        if k == 0 {
            // No neighborhood: attention collapses onto the self-loop.
            return wh_c.relu();
        }

        let wh_n = neighbors.matmul(&self.weight); // [B*K, out]
        let e_dst = wh_n.matmul(&self.attn_dst); // [B*K, 1]

        // Score assembly (leaky-ReLU, mask to -1e9, self-loop in column 0)
        // and the attention-weighted combine run as fused kernels.
        let e_all = Tensor::attn_scores_fused(&e_self, &e0, &e_dst, mask, k); // [B, K+1]
        let alpha = e_all.softmax(); // [B, K+1]
        Tensor::attn_combine_fused(&wh_c, &wh_n, &alpha, k)
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }
}

impl Module for GatLayer {
    fn parameters(&self) -> Vec<Tensor> {
        vec![
            self.weight.clone(),
            self.attn_src.clone(),
            self.attn_dst.clone(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape() {
        let g = GatLayer::new(4, 6, 0);
        let c = Tensor::ones([3, 4]);
        let n = Tensor::ones([6, 4]);
        assert_eq!(g.forward(&c, &n, &[1.0; 6], 2).dims(), &[3, 6]);
    }

    #[test]
    fn zero_neighbors_uses_self_only() {
        let g = GatLayer::new(4, 6, 1);
        let c = Tensor::ones([2, 4]);
        let n = Tensor::zeros([0, 4]);
        let out = g.forward(&c, &n, &[], 0);
        assert_eq!(out.dims(), &[2, 6]);
    }

    #[test]
    fn fully_masked_neighbors_match_self_only() {
        // All-invalid mask should attend (almost) only to the self-loop.
        let g = GatLayer::new(3, 5, 2);
        let c = Tensor::from_vec(vec![0.5, -0.2, 0.9, 0.1, 0.4, -0.6], [2, 3]);
        let noise = Tensor::randn([4, 3], 9);
        let masked = g.forward(&c, &noise, &[0.0; 4], 2);
        let selfonly = g.forward(&c, &Tensor::zeros([0, 3]), &[], 0);
        for (a, b) in masked.to_vec().iter().zip(selfonly.to_vec().iter()) {
            assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    #[test]
    fn masked_slot_has_no_influence() {
        let g = GatLayer::new(3, 4, 3);
        let c = Tensor::ones([1, 3]);
        let n1 = Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0], [2, 3]);
        let n2 = Tensor::from_vec(vec![1.0, 2.0, 3.0, 9.0, -9.0, 9.0], [2, 3]);
        let mask = [1.0, 0.0];
        let o1 = g.forward(&c, &n1, &mask, 2);
        let o2 = g.forward(&c, &n2, &mask, 2);
        for (a, b) in o1.to_vec().iter().zip(o2.to_vec().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_reach_parameters() {
        let g = GatLayer::new(3, 4, 4);
        let c = Tensor::ones([2, 3]);
        let n = Tensor::ones([4, 3]);
        g.forward(&c, &n, &[1.0; 4], 2).sum().backward();
        for p in g.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn rejects_bad_mask() {
        let g = GatLayer::new(3, 4, 0);
        let _ = g.forward(&Tensor::ones([2, 3]), &Tensor::ones([4, 3]), &[1.0; 3], 2);
    }
}
