//! Loss functions and classification metrics.

use cascade_tensor::Tensor;

/// Numerically stable binary cross-entropy on logits, averaged over the
/// batch:
///
/// ```text
/// ℓ(x, z) = max(x, 0) − x·z + log(1 + e^{−|x|})
/// ```
///
/// The paper trains link prediction with BCE between a real edge and a
/// negative-sampled wrong edge (§2.3).
///
/// # Panics
///
/// Panics if shapes differ or the batch is empty.
///
/// # Examples
///
/// ```
/// use cascade_nn::bce_with_logits;
/// use cascade_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![10.0, -10.0], [2, 1]);
/// let targets = Tensor::from_vec(vec![1.0, 0.0], [2, 1]);
/// assert!(bce_with_logits(&logits, &targets).item() < 1e-3);
/// ```
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> Tensor {
    bce_with_logits_sum(logits, targets).mul_scalar(1.0 / logits.len() as f32)
}

/// [`bce_with_logits`] without the batch average: the per-element losses
/// are summed, not meaned.
///
/// Shard-parallel batch compute splits a batch into per-shard partial
/// losses and applies the `1/n` normalization once in the deterministic
/// cross-shard reduction; summing here keeps each shard's contribution a
/// pure function of its own events.
///
/// # Panics
///
/// Panics if shapes differ or the batch is empty.
pub fn bce_with_logits_sum(logits: &Tensor, targets: &Tensor) -> Tensor {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    assert!(!logits.is_empty(), "bce on empty batch");
    let pos = logits.relu();
    let xz = logits.mul(targets);
    let softplus = logits.abs().neg().exp().add_scalar(1.0).log();
    pos.sub(&xz).add(&softplus).sum()
}

/// Fraction of logits on the correct side of zero (no autograd).
///
/// # Panics
///
/// Panics if lengths differ or the batch is empty.
pub fn binary_accuracy(logits: &[f32], targets: &[f32]) -> f32 {
    assert_eq!(logits.len(), targets.len(), "accuracy length mismatch");
    assert!(!logits.is_empty(), "accuracy on empty batch");
    let correct = logits
        .iter()
        .zip(targets.iter())
        .filter(|(&x, &z)| (x > 0.0) == (z > 0.5))
        .count();
    correct as f32 / logits.len() as f32
}

/// Average precision (area under the precision-recall curve) for logits
/// with binary targets — the link-prediction metric used by the TGNN
/// literature (no autograd).
///
/// # Panics
///
/// Panics if lengths differ or the batch is empty.
pub fn average_precision(logits: &[f32], targets: &[f32]) -> f32 {
    assert_eq!(logits.len(), targets.len(), "ap length mismatch");
    assert!(!logits.is_empty(), "ap on empty batch");
    let mut order: Vec<usize> = (0..logits.len()).collect();
    order.sort_by(|&a, &b| {
        logits[b]
            .partial_cmp(&logits[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let total_pos = targets.iter().filter(|&&t| t > 0.5).count();
    if total_pos == 0 {
        return 0.0;
    }
    let mut tp = 0usize;
    let mut ap = 0.0f64;
    for (rank, &i) in order.iter().enumerate() {
        if targets[i] > 0.5 {
            tp += 1;
            ap += tp as f64 / (rank + 1) as f64;
        }
    }
    (ap / total_pos as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn bce_matches_reference() {
        // BCE(x=0, z=1) = ln 2
        let l = Tensor::from_vec(vec![0.0], [1]);
        let t = Tensor::from_vec(vec![1.0], [1]);
        assert!(close(
            bce_with_logits(&l, &t).item(),
            std::f32::consts::LN_2
        ));
    }

    #[test]
    fn bce_penalizes_wrong_side() {
        let t = Tensor::from_vec(vec![1.0], [1]);
        let good = bce_with_logits(&Tensor::from_vec(vec![3.0], [1]), &t).item();
        let bad = bce_with_logits(&Tensor::from_vec(vec![-3.0], [1]), &t).item();
        assert!(bad > good);
    }

    #[test]
    fn bce_stable_for_large_logits() {
        let l = Tensor::from_vec(vec![1000.0, -1000.0], [2]);
        let t = Tensor::from_vec(vec![1.0, 0.0], [2]);
        let v = bce_with_logits(&l, &t).item();
        assert!(v.is_finite());
        assert!(v < 1e-3);
    }

    #[test]
    fn bce_gradient_direction() {
        // d/dx BCE(x, z=1) = sigmoid(x) - 1 < 0: increasing logit reduces
        // loss. Evaluated away from the x = 0 subgradient kink.
        let l = Tensor::from_vec(vec![1.0], [1]).requires_grad();
        let t = Tensor::from_vec(vec![1.0], [1]);
        bce_with_logits(&l, &t).backward();
        let sigmoid1 = 1.0 / (1.0 + (-1.0f32).exp());
        assert!(close(l.grad().unwrap()[0], sigmoid1 - 1.0));
    }

    #[test]
    fn accuracy_counts() {
        assert_eq!(
            binary_accuracy(&[1.0, -1.0, 1.0], &[1.0, 0.0, 0.0]),
            2.0 / 3.0
        );
    }

    #[test]
    fn ap_perfect_ranking_is_one() {
        assert!(close(
            average_precision(&[3.0, 2.0, -1.0, -2.0], &[1.0, 1.0, 0.0, 0.0]),
            1.0
        ));
    }

    #[test]
    fn ap_worst_ranking_below_one() {
        let ap = average_precision(&[-2.0, -1.0, 1.0, 2.0], &[1.0, 1.0, 0.0, 0.0]);
        assert!(ap < 0.6);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn bce_rejects_empty() {
        let l = Tensor::zeros([0]);
        let _ = bce_with_logits(&l, &Tensor::zeros([0]));
    }
}
