//! Sinusoidal time encoding (TGAT-style Bochner features).
//!
//! The paper's TGAT "adopts positional encoding to abstract edge temporal
//! information" (§5.1); TGN's message function consumes `ΔT` through the
//! same kind of encoder.

use cascade_tensor::Tensor;

use crate::module::Module;

/// Learnable sinusoidal encoder mapping a time delta to a `dim`-vector:
/// `φ(Δt) = cos(Δt · ω + b)` with log-spaced initial frequencies.
///
/// # Examples
///
/// ```
/// use cascade_nn::TimeEncode;
/// use cascade_tensor::Tensor;
///
/// let enc = TimeEncode::new(8);
/// let dts = Tensor::from_vec(vec![0.0, 1.5, 100.0], [3, 1]);
/// assert_eq!(enc.forward(&dts).dims(), &[3, 8]);
/// ```
#[derive(Clone, Debug)]
pub struct TimeEncode {
    omega: Tensor,
    phase: Tensor,
    dim: usize,
}

impl TimeEncode {
    /// Creates an encoder with frequencies `ω_i = 1 / 10^(4i/dim)`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "TimeEncode dim must be positive");
        let omega: Vec<f32> = (0..dim)
            .map(|i| 1.0 / 10f32.powf(4.0 * i as f32 / dim as f32))
            .collect();
        TimeEncode {
            omega: Tensor::from_vec(omega, [1, dim]).requires_grad(),
            phase: Tensor::zeros([dim]).requires_grad(),
            dim,
        }
    }

    /// Encodes a column of time deltas `[B, 1]` into `[B, dim]`.
    ///
    /// # Panics
    ///
    /// Panics if `dts` is not a `[B, 1]` tensor.
    pub fn forward(&self, dts: &Tensor) -> Tensor {
        assert_eq!(dts.dims().len(), 2, "TimeEncode input must be [B, 1]");
        assert_eq!(dts.dims()[1], 1, "TimeEncode input must be [B, 1]");
        Tensor::time_encode_fused(dts, &self.omega, &self.phase)
    }

    /// Encoding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Module for TimeEncode {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.omega.clone(), self.phase.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delta_encodes_to_ones() {
        // cos(0 + 0) = 1 for every component.
        let e = TimeEncode::new(4);
        let out = e.forward(&Tensor::zeros([2, 1]));
        for v in out.to_vec() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn output_bounded() {
        let e = TimeEncode::new(8);
        let out = e.forward(&Tensor::from_vec(vec![1e6, -3.0, 42.0], [3, 1]));
        assert!(out.to_vec().iter().all(|&x| x.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn distinct_deltas_distinct_codes() {
        let e = TimeEncode::new(16);
        let out = e.forward(&Tensor::from_vec(vec![1.0, 2.0], [2, 1]));
        assert_ne!(out.row(0), out.row(1));
    }

    #[test]
    fn gradients_flow() {
        let e = TimeEncode::new(4);
        e.forward(&Tensor::ones([2, 1])).sum().backward();
        for p in e.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_dim() {
        let _ = TimeEncode::new(0);
    }
}
