//! Recurrent memory updaters: [`GruCell`] (TGN) and [`RnnCell`] (JODIE,
//! DySAT).
//!
//! The paper's `UPDT(·)` of Equation 3 is "usually implemented by a
//! recurrent neural network such as a Gated-Recurrent-Unit" (§2.2).

use cascade_tensor::Tensor;

use crate::module::{xavier_uniform, zeros_bias, Module};

/// A Gated Recurrent Unit cell.
///
/// Given input `x ∈ [B, in]` and hidden state `h ∈ [B, hidden]`:
///
/// ```text
/// r  = σ(x·W_xr + h·W_hr + b_r)
/// z  = σ(x·W_xz + h·W_hz + b_z)
/// n  = tanh(x·W_xn + r ⊙ (h·W_hn) + b_n)
/// h' = (1 − z) ⊙ n + z ⊙ h
/// ```
///
/// # Examples
///
/// ```
/// use cascade_nn::GruCell;
/// use cascade_tensor::Tensor;
///
/// let cell = GruCell::new(4, 8, 2);
/// let x = Tensor::ones([3, 4]);
/// let h = Tensor::zeros([3, 8]);
/// assert_eq!(cell.forward(&x, &h).dims(), &[3, 8]);
/// ```
#[derive(Clone, Debug)]
pub struct GruCell {
    w_xr: Tensor,
    w_hr: Tensor,
    b_r: Tensor,
    w_xz: Tensor,
    w_hz: Tensor,
    b_z: Tensor,
    w_xn: Tensor,
    w_hn: Tensor,
    b_n: Tensor,
    in_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Creates a GRU cell with Xavier-initialized weights.
    pub fn new(in_dim: usize, hidden_dim: usize, seed: u64) -> Self {
        let s = |i: u64| seed.wrapping_mul(31).wrapping_add(i);
        GruCell {
            w_xr: xavier_uniform(in_dim, hidden_dim, s(1)),
            w_hr: xavier_uniform(hidden_dim, hidden_dim, s(2)),
            b_r: zeros_bias(hidden_dim),
            w_xz: xavier_uniform(in_dim, hidden_dim, s(3)),
            w_hz: xavier_uniform(hidden_dim, hidden_dim, s(4)),
            b_z: zeros_bias(hidden_dim),
            w_xn: xavier_uniform(in_dim, hidden_dim, s(5)),
            w_hn: xavier_uniform(hidden_dim, hidden_dim, s(6)),
            b_n: zeros_bias(hidden_dim),
            in_dim,
            hidden_dim,
        }
    }

    /// One recurrence step.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `h` widths disagree with the cell configuration or
    /// their batch sizes differ.
    pub fn forward(&self, x: &Tensor, h: &Tensor) -> Tensor {
        assert_eq!(x.dims()[1], self.in_dim, "GruCell input width mismatch");
        assert_eq!(
            h.dims()[1],
            self.hidden_dim,
            "GruCell hidden width mismatch"
        );
        assert_eq!(x.dims()[0], h.dims()[0], "GruCell batch mismatch");
        Tensor::gru_cell_fused(
            x,
            h,
            &[
                &self.w_xr, &self.w_hr, &self.b_r, &self.w_xz, &self.w_hz, &self.b_z, &self.w_xn,
                &self.w_hn, &self.b_n,
            ],
        )
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }
}

impl Module for GruCell {
    fn parameters(&self) -> Vec<Tensor> {
        vec![
            self.w_xr.clone(),
            self.w_hr.clone(),
            self.b_r.clone(),
            self.w_xz.clone(),
            self.w_hz.clone(),
            self.b_z.clone(),
            self.w_xn.clone(),
            self.w_hn.clone(),
            self.b_n.clone(),
        ]
    }
}

/// A vanilla (Elman) RNN cell: `h' = tanh(x·W_x + h·W_h + b)`.
///
/// JODIE uses plain RNN updaters for its node memories (§5.1, Table 1).
#[derive(Clone, Debug)]
pub struct RnnCell {
    w_x: Tensor,
    w_h: Tensor,
    b: Tensor,
    in_dim: usize,
    hidden_dim: usize,
}

impl RnnCell {
    /// Creates an RNN cell with Xavier-initialized weights.
    pub fn new(in_dim: usize, hidden_dim: usize, seed: u64) -> Self {
        RnnCell {
            w_x: xavier_uniform(in_dim, hidden_dim, seed.wrapping_add(11)),
            w_h: xavier_uniform(hidden_dim, hidden_dim, seed.wrapping_add(13)),
            b: zeros_bias(hidden_dim),
            in_dim,
            hidden_dim,
        }
    }

    /// One recurrence step.
    ///
    /// # Panics
    ///
    /// Panics on width or batch mismatches.
    pub fn forward(&self, x: &Tensor, h: &Tensor) -> Tensor {
        assert_eq!(x.dims()[1], self.in_dim, "RnnCell input width mismatch");
        assert_eq!(
            h.dims()[1],
            self.hidden_dim,
            "RnnCell hidden width mismatch"
        );
        assert_eq!(x.dims()[0], h.dims()[0], "RnnCell batch mismatch");
        x.matmul(&self.w_x)
            .add(&h.matmul(&self.w_h))
            .add(&self.b)
            .tanh()
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }
}

impl Module for RnnCell {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.w_x.clone(), self.w_h.clone(), self.b.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gru_shapes_and_params() {
        let g = GruCell::new(3, 5, 0);
        let h = g.forward(&Tensor::ones([2, 3]), &Tensor::zeros([2, 5]));
        assert_eq!(h.dims(), &[2, 5]);
        assert_eq!(g.parameters().len(), 9);
        assert_eq!(g.parameter_count(), 3 * (3 * 5 + 5 * 5 + 5));
    }

    #[test]
    fn gru_outputs_bounded() {
        // h' is a convex combination of tanh(n) and h=0, so |h'| <= 1.
        let g = GruCell::new(4, 4, 1);
        let h = g.forward(&Tensor::full([2, 4], 100.0), &Tensor::zeros([2, 4]));
        assert!(h.to_vec().iter().all(|&x| x.abs() <= 1.0));
    }

    #[test]
    fn gru_identity_when_update_gate_saturated() {
        // With large positive z-bias, h' ≈ h.
        let g = GruCell::new(2, 2, 2);
        g.parameters()[5].set_data(&[50.0, 50.0]); // b_z
        let h0 = Tensor::from_vec(vec![0.3, -0.7, 0.9, 0.1], [2, 2]);
        let h1 = g.forward(&Tensor::ones([2, 2]), &h0);
        for (a, b) in h1.to_vec().iter().zip(h0.to_vec().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn gru_gradients_reach_all_parameters() {
        let g = GruCell::new(2, 3, 3);
        let h = g.forward(&Tensor::ones([2, 2]), &Tensor::ones([2, 3]));
        h.sum().backward();
        for p in g.parameters() {
            assert!(p.grad().is_some(), "missing grad");
        }
    }

    #[test]
    fn rnn_shapes_and_bounds() {
        let r = RnnCell::new(3, 4, 0);
        let h = r.forward(&Tensor::full([2, 3], 10.0), &Tensor::zeros([2, 4]));
        assert_eq!(h.dims(), &[2, 4]);
        assert!(h.to_vec().iter().all(|&x| x.abs() <= 1.0));
        assert_eq!(r.parameters().len(), 3);
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn gru_rejects_batch_mismatch() {
        let g = GruCell::new(2, 2, 0);
        let _ = g.forward(&Tensor::ones([2, 2]), &Tensor::ones([3, 2]));
    }
}
