//! Normalization and regularization layers: [`LayerNorm`] and
//! [`Dropout`].

use cascade_tensor::Tensor;
use cascade_tgraph::DetRng;

use crate::module::{zeros_bias, Module};

/// Layer normalization over the last axis of a `[B, D]` tensor, with
/// learnable gain and bias:
///
/// ```text
/// y = γ ⊙ (x − μ) / √(σ² + ε) + β
/// ```
///
/// # Examples
///
/// ```
/// use cascade_nn::LayerNorm;
/// use cascade_tensor::Tensor;
///
/// let ln = LayerNorm::new(4);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]);
/// let y = ln.forward(&x);
/// // Initially γ = 1, β = 0: output is standardized.
/// assert!(y.to_vec().iter().sum::<f32>().abs() < 1e-4);
/// ```
#[derive(Clone, Debug)]
pub struct LayerNorm {
    gain: Tensor,
    bias: Tensor,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer with γ = 1, β = 0, ε = 1e-5.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "LayerNorm dim must be positive");
        LayerNorm {
            gain: Tensor::ones([dim]).requires_grad(),
            bias: zeros_bias(dim),
            dim,
            eps: 1e-5,
        }
    }

    /// Normalizes each row of a `[B, dim]` tensor.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dims()[1], self.dim, "LayerNorm width mismatch");
        let b = x.dims()[0];
        let mean = x.mean_axis(1).reshape([b, 1]);
        let centered = x.sub(&mean);
        let var = centered.square().mean_axis(1).reshape([b, 1]);
        let normed = centered.div(&var.add_scalar(self.eps).sqrt());
        normed.mul(&self.gain).add(&self.bias)
    }
}

impl Module for LayerNorm {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.gain.clone(), self.bias.clone()]
    }
}

/// Inverted dropout: during training, zeroes each element with
/// probability `p` and scales survivors by `1/(1−p)`; the identity at
/// evaluation time.
///
/// The mask is drawn from an internal deterministic RNG so training runs
/// stay reproducible.
#[derive(Clone, Debug)]
pub struct Dropout {
    p: f32,
    rng: std::cell::RefCell<DetRng>,
    training: std::cell::Cell<bool>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            rng: std::cell::RefCell::new(DetRng::new(seed)),
            training: std::cell::Cell::new(true),
        }
    }

    /// Switches between training (masking) and evaluation (identity).
    pub fn set_training(&self, training: bool) {
        self.training.set(training);
    }

    /// Applies the layer.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        if !self.training.get() || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mut rng = self.rng.borrow_mut();
        let mask: Vec<f32> = (0..x.len())
            .map(|_| if rng.f32() < self.p { 0.0 } else { 1.0 / keep })
            .collect();
        let mask = Tensor::from_vec(mask, x.dims());
        x.mul(&mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_standardizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0, -1.0, 0.0, 1.0, 2.0], [2, 4]);
        let y = ln.forward(&x).to_vec();
        for r in 0..2 {
            let row = &y[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4, "row {} mean {}", r, mean);
            assert!((var - 1.0).abs() < 1e-2, "row {} var {}", r, var);
        }
    }

    #[test]
    fn layernorm_gradients_flow() {
        let ln = LayerNorm::new(3);
        let x = Tensor::from_vec(vec![1.0, 2.0, 4.0], [1, 3]).requires_grad();
        ln.forward(&x).square().sum().backward();
        assert!(x.grad().is_some());
        for p in ln.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn layernorm_scale_invariance() {
        // Standardization makes the output invariant to input scaling.
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 5.0], [1, 4]);
        let x10 = x.mul_scalar(10.0);
        let a = ln.forward(&x).to_vec();
        let b = ln.forward(&x10).to_vec();
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-3);
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let d = Dropout::new(0.5, 1);
        d.set_training(false);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        assert_eq!(d.forward(&x).to_vec(), x.to_vec());
    }

    #[test]
    fn dropout_preserves_expectation() {
        let d = Dropout::new(0.3, 2);
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x).to_vec();
        let mean: f32 = y.iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {}", mean);
        // Survivors are scaled by 1/keep.
        assert!(y.iter().all(|&v| v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-5));
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let d = Dropout::new(0.0, 3);
        let x = Tensor::from_vec(vec![1.0, -2.0], [2]);
        assert_eq!(d.forward(&x).to_vec(), x.to_vec());
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn dropout_rejects_p_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
