//! Round-trip tests for the std-only JSON (de)serialization of
//! [`Event`] and [`EventStream`] that replaced the serde derives.

use cascade_tgraph::{DetRng, Event, EventStream, SynthConfig};
use cascade_util::{check, prop_assert_eq};

#[test]
fn event_round_trips_through_json_value() {
    let e = Event::new(3u32, 7u32, 1.25);
    let v = e.to_json_value();
    assert_eq!(Event::from_json_value(&v), Ok(e));
}

#[test]
fn empty_stream_round_trips() {
    let s = EventStream::new(vec![]).unwrap();
    let restored = EventStream::from_json(&s.to_json()).unwrap();
    assert!(restored.is_empty());
    assert_eq!(restored.num_nodes(), 0);
}

#[test]
fn restricted_stream_keeps_parent_node_count_through_json() {
    let s = EventStream::new(vec![
        Event::new(0u32, 9u32, 0.0),
        Event::new(1u32, 2u32, 1.0),
    ])
    .unwrap();
    let r = s.restricted(1..2);
    let restored = EventStream::from_json(&r.to_json()).unwrap();
    assert_eq!(restored.events(), r.events());
    assert_eq!(restored.num_nodes(), 10);
}

#[test]
fn synthetic_stream_round_trips_exactly() {
    let data = SynthConfig::wiki().with_scale(0.003).generate(11);
    let stream = data.stream();
    let restored = EventStream::from_json(&stream.to_json()).unwrap();
    assert_eq!(restored.events(), stream.events());
    assert_eq!(restored.num_nodes(), stream.num_nodes());
}

#[test]
fn random_streams_round_trip() {
    check("random_streams_round_trip", |g| {
        let nodes = g.usize_in(1..50);
        let n_events = g.usize_in(0..200);
        let mut rng = DetRng::new(g.u64());
        let mut time = 0.0f64;
        let events: Vec<Event> = (0..n_events)
            .map(|_| {
                time += rng.f64() * 3.0;
                Event::new(rng.index(nodes) as u32, rng.index(nodes) as u32, time)
            })
            .collect();
        let stream = EventStream::new(events).expect("monotone times");
        let restored = EventStream::from_json(&stream.to_json())
            .map_err(|e| format!("decode failed: {}", e))?;
        prop_assert_eq!(restored.events(), stream.events());
        prop_assert_eq!(restored.num_nodes(), stream.num_nodes());
        Ok(())
    });
}

#[test]
fn from_json_rejects_malformed_input() {
    assert!(EventStream::from_json("not json").is_err());
    assert!(EventStream::from_json("{}").is_err());
    assert!(EventStream::from_json("{\"num_nodes\": 2}").is_err());
    // Wrong triple arity.
    assert!(EventStream::from_json("{\"num_nodes\": 2, \"events\": [[0, 1]]}").is_err());
    // Non-finite / non-numeric time.
    assert!(EventStream::from_json("{\"num_nodes\": 2, \"events\": [[0, 1, \"x\"]]}").is_err());
    // Out-of-order events must be rejected, as EventStream::new would.
    let err = EventStream::from_json("{\"num_nodes\": 2, \"events\": [[0, 1, 5.0], [1, 0, 1.0]]}")
        .unwrap_err();
    assert!(err.to_string().contains("earlier"), "{}", err);
    // num_nodes smaller than the events imply.
    assert!(EventStream::from_json("{\"num_nodes\": 1, \"events\": [[0, 7, 0.0]]}").is_err());
}
