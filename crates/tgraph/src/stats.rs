//! Dataset statistics: Table 2 rows and the Figure 3 intra-batch degree
//! distribution.

use std::fmt;

use crate::dataset::Dataset;
use crate::event::EventStream;

/// Summary statistics of a dataset (one row of Table 2).
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Node count.
    pub nodes: usize,
    /// Event (edge) count.
    pub events: usize,
    /// Edge-feature width.
    pub feature_dim: usize,
    /// Events per node.
    pub avg_degree: f64,
}

impl DatasetStats {
    /// Computes statistics for a dataset.
    pub fn of(dataset: &Dataset) -> Self {
        DatasetStats {
            name: dataset.name().to_string(),
            nodes: dataset.num_nodes(),
            events: dataset.num_events(),
            feature_dim: dataset.features().dim(),
            avg_degree: if dataset.num_nodes() == 0 {
                0.0
            } else {
                dataset.num_events() as f64 / dataset.num_nodes() as f64
            },
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>10} {:>12} {:>8} {:>8.1}",
            self.name, self.nodes, self.events, self.feature_dim, self.avg_degree
        )
    }
}

/// Histogram of per-node event counts inside fixed-size batches
/// (Figure 3).
///
/// Splits the stream into consecutive `batch_size` windows; within each
/// window counts how many events touch each involved node, then buckets
/// those counts by `bucket_edges` (right-open; a final unbounded bucket is
/// appended). Returns the fraction of (node, batch) observations per
/// bucket.
///
/// # Panics
///
/// Panics if `batch_size == 0` or `bucket_edges` is not strictly
/// increasing.
pub fn batch_degree_histogram(
    stream: &EventStream,
    batch_size: usize,
    bucket_edges: &[usize],
) -> Vec<f64> {
    assert!(batch_size > 0, "batch_size must be positive");
    assert!(
        bucket_edges.windows(2).all(|w| w[0] < w[1]),
        "bucket_edges must be strictly increasing"
    );
    let mut counts = vec![0usize; bucket_edges.len() + 1];
    let mut total = 0usize;
    let mut degree = vec![0u32; stream.num_nodes()];
    let mut touched: Vec<usize> = Vec::new();

    for chunk in stream.events().chunks(batch_size) {
        for e in chunk {
            for node in [e.src.index(), e.dst.index()] {
                if degree[node] == 0 {
                    touched.push(node);
                }
                degree[node] += 1;
            }
        }
        for &node in &touched {
            let d = degree[node] as usize;
            let bucket = bucket_edges
                .iter()
                .position(|&edge| d < edge)
                .unwrap_or(bucket_edges.len());
            counts[bucket] += 1;
            total += 1;
            degree[node] = 0;
        }
        touched.clear();
    }

    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// The maximum per-node event count observed in any `batch_size` window —
/// the quantity Figure 3 reports as "even the most connected nodes have
/// only 140–175 events".
pub fn max_batch_degree(stream: &EventStream, batch_size: usize) -> usize {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut max = 0usize;
    let mut degree = vec![0u32; stream.num_nodes()];
    let mut touched: Vec<usize> = Vec::new();
    for chunk in stream.events().chunks(batch_size) {
        for e in chunk {
            for node in [e.src.index(), e.dst.index()] {
                if degree[node] == 0 {
                    touched.push(node);
                }
                degree[node] += 1;
                max = max.max(degree[node] as usize);
            }
        }
        for &node in &touched {
            degree[node] = 0;
        }
        touched.clear();
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EdgeFeatures;
    use crate::event::Event;

    fn stream(pairs: &[(u32, u32)]) -> EventStream {
        EventStream::new(
            pairs
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| Event::new(s, d, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn stats_row() {
        let d = Dataset::new("T", stream(&[(0, 1), (1, 2)]), EdgeFeatures::none());
        let s = DatasetStats::of(&d);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.events, 2);
        assert!((s.avg_degree - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let s = stream(&[(0, 1), (0, 2), (0, 3), (1, 2), (4, 5), (4, 5)]);
        let h = batch_degree_histogram(&s, 3, &[2, 4]);
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_correctly() {
        // One batch of 3 events: degrees — n0: 3, n1: 2, n2: 2, n3: 1.
        let s = stream(&[(0, 1), (0, 2), (0, 3)]);
        let h = batch_degree_histogram(&s, 3, &[2, 3]);
        // n3 (1) < 2 -> bucket 0; n1, n2 (1 each? no: n1:1, n2:1, n3:1)
        // degrees: n0 appears 3×, n1 1×, n2 1×, n3 1×.
        // bucket <2: n1, n2, n3 (3 obs); bucket <3: none; last: n0.
        assert!((h[0] - 0.75).abs() < 1e-9);
        assert!((h[1] - 0.0).abs() < 1e-9);
        assert!((h[2] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn degree_resets_between_batches() {
        // Same hot node in two batches: per-batch max stays 2, not 4.
        let s = stream(&[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(max_batch_degree(&s, 2), 2);
        assert_eq!(max_batch_degree(&s, 4), 4);
    }

    #[test]
    fn empty_stream_histogram() {
        let s = EventStream::new(vec![]).unwrap();
        let h = batch_degree_histogram(&s, 10, &[5]);
        assert_eq!(h, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_bad_buckets() {
        let s = stream(&[(0, 1)]);
        let _ = batch_degree_histogram(&s, 2, &[5, 5]);
    }
}

/// Temporal-structure statistics of an event stream — the properties the
/// synthetic generators must reproduce for Cascade's mechanisms to behave
/// as on real data (DESIGN.md §2).
#[derive(Clone, Debug, PartialEq)]
pub struct TemporalStats {
    /// Fraction of events whose (src, dst) pair occurred before —
    /// temporal recurrence (users re-contacting partners).
    pub recurrence_ratio: f64,
    /// Coefficient of variation of inter-event times; > 1 indicates
    /// burstiness beyond a Poisson process.
    pub interarrival_cv: f64,
    /// Fraction of all endpoint slots occupied by the top 1% most active
    /// nodes — hub concentration.
    pub hub_share_top1pct: f64,
    /// Mean number of distinct partners per active node.
    pub mean_distinct_partners: f64,
}

impl TemporalStats {
    /// Computes the statistics for a stream.
    ///
    /// Returns zeros for streams with fewer than two events.
    pub fn of(stream: &EventStream) -> Self {
        if stream.len() < 2 {
            return TemporalStats {
                recurrence_ratio: 0.0,
                interarrival_cv: 0.0,
                hub_share_top1pct: 0.0,
                mean_distinct_partners: 0.0,
            };
        }

        // Recurrence: repeated (src, dst) pairs.
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0usize;
        for e in stream {
            if !seen.insert((e.src, e.dst)) {
                repeats += 1;
            }
        }
        let recurrence_ratio = repeats as f64 / stream.len() as f64;

        // Inter-arrival coefficient of variation.
        let times: Vec<f64> = stream.iter().map(|e| e.time).collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let interarrival_cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };

        // Hub share and distinct partners.
        let mut degree = vec![0usize; stream.num_nodes()];
        let mut partners: Vec<std::collections::HashSet<u32>> =
            vec![std::collections::HashSet::new(); stream.num_nodes()];
        for e in stream {
            degree[e.src.index()] += 1;
            degree[e.dst.index()] += 1;
            partners[e.src.index()].insert(e.dst.0);
            partners[e.dst.index()].insert(e.src.0);
        }
        let mut sorted = degree.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top = (stream.num_nodes() / 100).max(1);
        let hub_share_top1pct =
            sorted.iter().take(top).sum::<usize>() as f64 / (2 * stream.len()) as f64;

        let active = partners.iter().filter(|p| !p.is_empty()).count().max(1);
        let mean_distinct_partners =
            partners.iter().map(|p| p.len()).sum::<usize>() as f64 / active as f64;

        TemporalStats {
            recurrence_ratio,
            interarrival_cv,
            hub_share_top1pct,
            mean_distinct_partners,
        }
    }
}

#[cfg(test)]
mod temporal_tests {
    use super::*;
    use crate::event::Event;
    use crate::synth::SynthConfig;

    #[test]
    fn trivial_streams_are_zero() {
        let s = EventStream::new(vec![Event::new(0u32, 1u32, 0.0)]).unwrap();
        assert_eq!(TemporalStats::of(&s).recurrence_ratio, 0.0);
    }

    #[test]
    fn recurrence_counts_repeated_pairs() {
        let s = EventStream::new(vec![
            Event::new(0u32, 1u32, 0.0),
            Event::new(0u32, 1u32, 1.0),
            Event::new(1u32, 2u32, 2.0),
            Event::new(0u32, 1u32, 3.0),
        ])
        .unwrap();
        assert!((TemporalStats::of(&s).recurrence_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn generated_wiki_has_recurrence_and_burstiness() {
        let d = SynthConfig::wiki().with_scale(0.02).generate(4);
        let t = TemporalStats::of(d.stream());
        assert!(
            t.recurrence_ratio > 0.2,
            "recurrence too low: {}",
            t.recurrence_ratio
        );
        assert!(t.interarrival_cv > 1.0, "not bursty: {}", t.interarrival_cv);
        assert!(t.hub_share_top1pct > 0.01);
        assert!(t.mean_distinct_partners >= 1.0);
    }

    #[test]
    fn sparse_profile_has_low_hub_share() {
        let talk = SynthConfig::wiki_talk().with_scale(0.001).generate(4);
        let reddit = SynthConfig::reddit().with_scale(0.006).generate(4);
        let t_talk = TemporalStats::of(talk.stream());
        let t_reddit = TemporalStats::of(reddit.stream());
        assert!(
            t_talk.hub_share_top1pct < t_reddit.hub_share_top1pct,
            "talk {} vs reddit {}",
            t_talk.hub_share_top1pct,
            t_reddit.hub_share_top1pct
        );
    }
}
