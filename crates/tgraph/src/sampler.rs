//! Temporal neighborhood sampling.
//!
//! TGNN embedding (Equation 4) aggregates a node's *past* neighbors. The
//! [`AdjacencyStore`] grows as events are consumed during an epoch and
//! supports the two sampling disciplines of Table 1: `most_recent` (JODIE,
//! TGN, APAN) and `uniform` (DySAT, TGAT).
//!
//! Both random samplers are *stateless*: every draw is a pure hash of the
//! seed and the query (node, history length, slot / event key), not of a
//! mutable generator. This keeps draws reproducible when a batch's events
//! are sampled concurrently by shard workers — the result depends only on
//! what is asked, never on which thread asks first.

use crate::event::{Event, EventId, NodeId};
use cascade_util::DetRng;

/// A single stateless pseudo-random index in `[0, n)` keyed by
/// `(seed, a, b)`.
fn keyed_index(seed: u64, a: u64, b: u64, n: usize) -> usize {
    // Distinct odd multipliers keep (a, b) collisions from aliasing;
    // DetRng::new applies a splitmix64 avalanche on top.
    let key = seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    DetRng::new(key).index(n)
}

/// One sampled neighbor: the partner node, the event that connected it,
/// and the event timestamp.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NeighborRef {
    /// The partner node.
    pub node: NodeId,
    /// The event that created this adjacency entry.
    pub event: EventId,
    /// The event's timestamp.
    pub time: f64,
}

/// An incrementally grown temporal adjacency list.
///
/// # Examples
///
/// ```
/// use cascade_tgraph::{AdjacencyStore, Event, NodeId};
///
/// let mut adj = AdjacencyStore::new(3);
/// adj.insert_event(&Event::new(0u32, 1u32, 0.5), 0);
/// let recent = adj.most_recent(NodeId(0), 5);
/// assert_eq!(recent.len(), 1);
/// assert_eq!(recent[0].node, NodeId(1));
/// ```
#[derive(Clone, Debug)]
pub struct AdjacencyStore {
    lists: Vec<Vec<NeighborRef>>,
    seed: u64,
}

impl AdjacencyStore {
    /// Creates an empty store for `num_nodes` nodes (seeded sampling).
    pub fn new(num_nodes: usize) -> Self {
        AdjacencyStore {
            lists: vec![Vec::new(); num_nodes],
            seed: 0x5eed,
        }
    }

    /// Overrides the uniform-sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records an event in both endpoints' adjacency lists.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn insert_event(&mut self, event: &Event, id: EventId) {
        self.lists[event.src.index()].push(NeighborRef {
            node: event.dst,
            event: id,
            time: event.time,
        });
        self.lists[event.dst.index()].push(NeighborRef {
            node: event.src,
            event: id,
            time: event.time,
        });
    }

    /// Records a pre-built neighbor entry in `slot`'s list only.
    ///
    /// Sharded adjacency storage (DESIGN.md §12) keeps each shard's lists
    /// dense under **local slot** indices while the entries themselves
    /// still name **global** nodes; the two endpoint halves of one event
    /// may land in different shards, so they are inserted independently.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn insert_ref(&mut self, slot: NodeId, neighbor: NeighborRef) {
        self.lists[slot.index()].push(neighbor);
    }

    /// The `k` most recent neighbors of `node` (most recent first).
    pub fn most_recent(&self, node: NodeId, k: usize) -> Vec<NeighborRef> {
        let list = &self.lists[node.index()];
        list.iter().rev().take(k).copied().collect()
    }

    /// `k` uniform samples (with replacement) from the node's history;
    /// returns fewer than `k` only when the history is empty.
    ///
    /// Draws are a pure function of `(seed, node, history length, slot)`,
    /// so concurrent callers observe identical samples.
    pub fn uniform(&self, node: NodeId, k: usize) -> Vec<NeighborRef> {
        let list = &self.lists[node.index()];
        if list.is_empty() {
            return Vec::new();
        }
        (0..k)
            .map(|slot| {
                let b = ((list.len() as u64) << 32) | slot as u64;
                list[keyed_index(self.seed, node.0 as u64, b, list.len())]
            })
            .collect()
    }

    /// `k` uniform samples from `slot`'s history, hashed under the
    /// **global** node id `key` instead of the storage index.
    ///
    /// A sharded store holds node `key`'s history at a local slot, but
    /// the draw must be the exact hash the monolithic store would
    /// compute — `(seed, key, history length, slot#)` — so that sampling
    /// is bit-identical regardless of how storage is partitioned.
    pub fn uniform_keyed(&self, slot: NodeId, key: NodeId, k: usize) -> Vec<NeighborRef> {
        let list = &self.lists[slot.index()];
        if list.is_empty() {
            return Vec::new();
        }
        (0..k)
            .map(|draw| {
                let b = ((list.len() as u64) << 32) | draw as u64;
                list[keyed_index(self.seed, key.0 as u64, b, list.len())]
            })
            .collect()
    }

    /// Number of recorded adjacencies of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.lists[node.index()].len()
    }

    /// Clears all adjacency lists (start of a new epoch).
    pub fn clear(&mut self) {
        for l in &mut self.lists {
            l.clear();
        }
    }

    /// Number of nodes the store covers.
    pub fn num_nodes(&self) -> usize {
        self.lists.len()
    }
}

/// Seeded negative-edge sampler for link-prediction training: draws a
/// random destination node to form the "wrong edge" of the BCE loss
/// (§2.3).
#[derive(Clone, Debug)]
pub struct NegativeSampler {
    num_nodes: usize,
    seed: u64,
}

impl NegativeSampler {
    /// Creates a sampler over `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes == 0`.
    pub fn new(num_nodes: usize, seed: u64) -> Self {
        assert!(num_nodes > 0, "NegativeSampler needs at least one node");
        NegativeSampler { num_nodes, seed }
    }

    /// A random node, avoiding `exclude` when more than one node exists.
    ///
    /// `key` identifies the draw (callers use the global event id), so the
    /// sample is a pure function of `(seed, key, exclude)` and shard
    /// workers can draw negatives for disjoint event ranges in parallel.
    pub fn sample(&self, exclude: NodeId, key: u64) -> NodeId {
        if self.num_nodes == 1 {
            return NodeId(0);
        }
        // Rejection loop over per-attempt nonces; terminates after a
        // handful of attempts with overwhelming probability since only one
        // node is excluded.
        for attempt in 0u64.. {
            let n = NodeId(keyed_index(self.seed, key, attempt, self.num_nodes) as u32);
            if n != exclude {
                return n;
            }
        }
        unreachable!("rejection loop always terminates with num_nodes > 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_events() -> AdjacencyStore {
        let mut adj = AdjacencyStore::new(4);
        adj.insert_event(&Event::new(0u32, 1u32, 1.0), 0);
        adj.insert_event(&Event::new(0u32, 2u32, 2.0), 1);
        adj.insert_event(&Event::new(3u32, 0u32, 3.0), 2);
        adj
    }

    #[test]
    fn insert_is_bidirectional() {
        let adj = store_with_events();
        assert_eq!(adj.degree(NodeId(0)), 3);
        assert_eq!(adj.degree(NodeId(1)), 1);
        assert_eq!(adj.degree(NodeId(3)), 1);
    }

    #[test]
    fn most_recent_orders_newest_first() {
        let adj = store_with_events();
        let r = adj.most_recent(NodeId(0), 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].node, NodeId(3)); // t=3 event
        assert_eq!(r[1].node, NodeId(2)); // t=2 event
    }

    #[test]
    fn most_recent_truncates_to_history() {
        let adj = store_with_events();
        assert_eq!(adj.most_recent(NodeId(1), 10).len(), 1);
        assert!(adj.most_recent(NodeId(2), 0).is_empty());
    }

    #[test]
    fn uniform_draws_from_history() {
        let adj = store_with_events();
        let samples = adj.uniform(NodeId(0), 20);
        assert_eq!(samples.len(), 20);
        for s in samples {
            assert!([NodeId(1), NodeId(2), NodeId(3)].contains(&s.node));
        }
    }

    #[test]
    fn uniform_is_stateless() {
        let adj = store_with_events();
        // Repeated identical queries return identical draws — no hidden
        // generator state advances.
        assert_eq!(adj.uniform(NodeId(0), 5), adj.uniform(NodeId(0), 5));
        // Different slots within one query still vary.
        let many = adj.uniform(NodeId(0), 64);
        assert!(many.iter().any(|s| s.node != many[0].node));
    }

    #[test]
    fn uniform_keyed_matches_monolithic_draws() {
        // A sharded store holding node 0's history at local slot 1 must
        // reproduce the monolithic store's draws exactly when keyed by
        // the global id.
        let adj = store_with_events();
        let mut sharded = AdjacencyStore::new(2);
        for r in adj.most_recent(NodeId(0), usize::MAX).into_iter().rev() {
            sharded.insert_ref(NodeId(1), r);
        }
        assert_eq!(
            adj.uniform(NodeId(0), 16),
            sharded.uniform_keyed(NodeId(1), NodeId(0), 16)
        );
        // Keying by the slot instead would alias a different node's hash.
        assert_ne!(
            adj.uniform(NodeId(0), 16),
            sharded.uniform_keyed(NodeId(1), NodeId(1), 16)
        );
    }

    #[test]
    fn insert_ref_is_unidirectional() {
        let mut adj = AdjacencyStore::new(2);
        adj.insert_ref(
            NodeId(0),
            NeighborRef {
                node: NodeId(7),
                event: 3,
                time: 1.5,
            },
        );
        assert_eq!(adj.degree(NodeId(0)), 1);
        assert_eq!(adj.degree(NodeId(1)), 0);
        assert_eq!(adj.most_recent(NodeId(0), 1)[0].node, NodeId(7));
    }

    #[test]
    fn uniform_empty_history_is_empty() {
        let adj = AdjacencyStore::new(2);
        assert!(adj.uniform(NodeId(0), 5).is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut adj = store_with_events();
        adj.clear();
        assert_eq!(adj.degree(NodeId(0)), 0);
    }

    #[test]
    fn negative_sampler_avoids_excluded() {
        let ns = NegativeSampler::new(5, 1);
        for key in 0..100 {
            assert_ne!(ns.sample(NodeId(3), key), NodeId(3));
        }
    }

    #[test]
    fn negative_sampler_is_keyed_and_stateless() {
        let ns = NegativeSampler::new(50, 7);
        // Same key → same draw; across keys the draws vary.
        assert_eq!(ns.sample(NodeId(0), 5), ns.sample(NodeId(0), 5));
        let draws: Vec<NodeId> = (0..20).map(|k| ns.sample(NodeId(0), k)).collect();
        assert!(draws.iter().any(|&d| d != draws[0]));
    }

    #[test]
    fn negative_sampler_single_node() {
        let ns = NegativeSampler::new(1, 1);
        assert_eq!(ns.sample(NodeId(0), 0), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn negative_sampler_rejects_empty() {
        let _ = NegativeSampler::new(0, 1);
    }
}
