//! Datasets: an event stream plus edge features and chronological splits.

use std::fmt;
use std::ops::Range;
use std::path::Path;

use crate::event::{Event, EventStream};

/// Row-major `[num_events, dim]` edge-feature matrix.
#[derive(Clone, Debug, Default)]
pub struct EdgeFeatures {
    data: Vec<f32>,
    dim: usize,
}

impl EdgeFeatures {
    /// Creates a feature matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim` (for `dim > 0`).
    pub fn new(data: Vec<f32>, dim: usize) -> Self {
        if dim > 0 {
            assert_eq!(
                data.len() % dim,
                0,
                "edge feature buffer not a multiple of dim"
            );
        } else {
            assert!(data.is_empty(), "dim 0 features must be empty");
        }
        EdgeFeatures { data, dim }
    }

    /// An empty feature matrix (`dim = 0`), for datasets without features.
    pub fn none() -> Self {
        EdgeFeatures::default()
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of feature rows.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// `true` if no features are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The feature row for event `idx`; an empty slice when `dim = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `dim > 0` and `idx` is out of bounds.
    pub fn row(&self, idx: usize) -> &[f32] {
        if self.dim == 0 {
            &[]
        } else {
            &self.data[idx * self.dim..(idx + 1) * self.dim]
        }
    }

    /// Total bytes consumed by the feature buffer.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// A zero-filled matrix of `rows` rows (sparse fill via
    /// [`EdgeFeatures::set_row`]).
    ///
    /// Dist TCP peers receive only their partition's feature rows but
    /// index them by **global** event id; a zeroed full-size table
    /// filled row-by-row keeps `row(id)` addressing unchanged.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        EdgeFeatures {
            data: vec![0.0; rows * dim],
            dim,
        }
    }

    /// Overwrites the feature row for event `idx`. No-op for `dim = 0`
    /// matrices (which accept only empty rows).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim` (for `dim > 0`) or `idx` is out of
    /// range.
    pub fn set_row(&mut self, idx: usize, row: &[f32]) {
        if self.dim == 0 {
            assert!(row.is_empty(), "dim 0 features accept no rows");
            return;
        }
        assert_eq!(row.len(), self.dim, "row width must match dim");
        self.data[idx * self.dim..(idx + 1) * self.dim].copy_from_slice(row);
    }

    /// Appends whole feature rows (streaming ingest). For `dim = 0`
    /// matrices only an empty slice is accepted.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of `dim`.
    pub fn push_rows(&mut self, rows: &[f32]) {
        if self.dim == 0 {
            assert!(rows.is_empty(), "dim 0 features accept no rows");
            return;
        }
        assert_eq!(rows.len() % self.dim, 0, "row data not a multiple of dim");
        self.data.extend_from_slice(rows);
    }

    /// Drops all rows, keeping the width (start of a streaming epoch).
    pub fn clear_rows(&mut self) {
        self.data.clear();
    }
}

/// A named continuous-time dynamic graph dataset with chronological
/// train/validation/test splits (70/15/15, following the TGL setup).
#[derive(Clone, Debug)]
pub struct Dataset {
    name: String,
    stream: EventStream,
    features: EdgeFeatures,
    train_end: usize,
    val_end: usize,
}

impl Dataset {
    /// Assembles a dataset with the default 70/15/15 chronological split.
    ///
    /// # Panics
    ///
    /// Panics if features are present but their row count differs from the
    /// event count.
    pub fn new(name: impl Into<String>, stream: EventStream, features: EdgeFeatures) -> Self {
        if !features.is_empty() {
            assert_eq!(
                features.len(),
                stream.len(),
                "feature rows must match event count"
            );
        }
        let n = stream.len();
        let train_end = n * 70 / 100;
        let val_end = n * 85 / 100;
        Dataset {
            name: name.into(),
            stream,
            features,
            train_end,
            val_end,
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full event stream.
    pub fn stream(&self) -> &EventStream {
        &self.stream
    }

    /// Edge features (possibly empty).
    pub fn features(&self) -> &EdgeFeatures {
        &self.features
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.stream.num_nodes()
    }

    /// Number of events.
    pub fn num_events(&self) -> usize {
        self.stream.len()
    }

    /// Training event range.
    pub fn train_range(&self) -> Range<usize> {
        0..self.train_end
    }

    /// Validation event range.
    pub fn val_range(&self) -> Range<usize> {
        self.train_end..self.val_end
    }

    /// Test event range.
    pub fn test_range(&self) -> Range<usize> {
        self.val_end..self.stream.len()
    }

    /// Writes the event stream as a TGL-style CSV of `src,dst,time` rows
    /// (with header), the format [`Dataset::from_csv`] reads back.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn to_csv(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "src,dst,time")?;
        for e in self.stream.iter() {
            writeln!(f, "{},{},{}", e.src.0, e.dst.0, e.time)?;
        }
        f.flush()
    }

    /// Loads a dataset from a TGL-style CSV of `src,dst,time` rows
    /// (header optional). Features are generated absent from file data,
    /// matching the paper's treatment of feature-less datasets (Table 2).
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed rows.
    pub fn from_csv(
        name: &str,
        path: &Path,
        feature_dim: usize,
        seed: u64,
    ) -> Result<Self, CsvError> {
        let text = std::fs::read_to_string(path).map_err(CsvError::Io)?;
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let fields: Vec<&str> = parts.by_ref().take(3).map(str::trim).collect();
            if fields.len() < 3 {
                return Err(CsvError::Malformed { line: lineno });
            }
            // Skip a header row.
            if lineno == 0 && fields[0].parse::<u32>().is_err() {
                continue;
            }
            let src: u32 = fields[0]
                .parse()
                .map_err(|_| CsvError::Malformed { line: lineno })?;
            let dst: u32 = fields[1]
                .parse()
                .map_err(|_| CsvError::Malformed { line: lineno })?;
            let time: f64 = fields[2]
                .parse()
                .map_err(|_| CsvError::Malformed { line: lineno })?;
            events.push(Event::new(src, dst, time));
        }
        let stream = EventStream::from_unsorted(events);
        let features = synth_features(stream.len(), feature_dim, seed);
        Ok(Dataset::new(name, stream, features))
    }
}

/// Deterministically generates random edge features, as the paper does for
/// datasets that ship none ("we randomly generate edge features following
/// the setup in TGL", §5.1).
pub fn synth_features(num_events: usize, dim: usize, seed: u64) -> EdgeFeatures {
    if dim == 0 {
        return EdgeFeatures::none();
    }
    // xorshift-based generation: cheap, deterministic, no rand dependency
    // in the hot path.
    let mut state = seed | 1;
    let mut data = Vec::with_capacity(num_events * dim);
    for _ in 0..num_events * dim {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let v = (state >> 40) as f32 / (1u64 << 24) as f32; // [0, 1)
        data.push(v * 2.0 - 1.0);
    }
    EdgeFeatures::new(data, dim)
}

/// Error loading a CSV dataset.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A row could not be parsed.
    Malformed {
        /// Zero-based line number.
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error reading dataset: {}", e),
            CsvError::Malformed { line } => write!(f, "malformed csv row at line {}", line),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Malformed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_stream(n: usize) -> EventStream {
        EventStream::new(
            (0..n)
                .map(|i| Event::new((i % 5) as u32, ((i + 1) % 5) as u32, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn split_fractions() {
        let d = Dataset::new("toy", toy_stream(100), EdgeFeatures::none());
        assert_eq!(d.train_range(), 0..70);
        assert_eq!(d.val_range(), 70..85);
        assert_eq!(d.test_range(), 85..100);
    }

    #[test]
    fn splits_partition_stream() {
        let d = Dataset::new("toy", toy_stream(97), EdgeFeatures::none());
        assert_eq!(d.train_range().end, d.val_range().start);
        assert_eq!(d.val_range().end, d.test_range().start);
        assert_eq!(d.test_range().end, d.num_events());
    }

    #[test]
    fn features_roundtrip() {
        let f = EdgeFeatures::new(vec![1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(f.len(), 2);
        assert_eq!(f.row(1), &[3.0, 4.0]);
        assert_eq!(f.size_bytes(), 16);
    }

    #[test]
    fn empty_features() {
        let f = EdgeFeatures::none();
        assert_eq!(f.dim(), 0);
        assert_eq!(f.row(5), &[] as &[f32]);
    }

    #[test]
    #[should_panic(expected = "must match event count")]
    fn rejects_feature_mismatch() {
        let _ = Dataset::new("bad", toy_stream(3), EdgeFeatures::new(vec![0.0; 4], 2));
    }

    #[test]
    fn synth_features_deterministic_and_bounded() {
        let a = synth_features(10, 4, 7);
        let b = synth_features(10, 4, 7);
        assert_eq!(a.row(3), b.row(3));
        for i in 0..10 {
            assert!(a.row(i).iter().all(|&x| (-1.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("cascade_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("toy.csv");
        std::fs::write(&p, "src,dst,time\n0,1,0.5\n1,2,1.5\n2,0,2.0\n").unwrap();
        let d = Dataset::from_csv("toy", &p, 4, 1).unwrap();
        assert_eq!(d.num_events(), 3);
        assert_eq!(d.num_nodes(), 3);
        assert_eq!(d.features().dim(), 4);
        assert_eq!(d.stream().event(0).time, 0.5);
    }

    #[test]
    fn csv_write_read_roundtrip() {
        let dir = std::env::temp_dir().join("cascade_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("roundtrip.csv");
        let original = Dataset::new("orig", toy_stream(25), EdgeFeatures::none());
        original.to_csv(&p).unwrap();
        let loaded = Dataset::from_csv("copy", &p, 0, 1).unwrap();
        assert_eq!(loaded.num_events(), original.num_events());
        assert_eq!(loaded.stream().events(), original.stream().events());
    }

    #[test]
    fn csv_rejects_garbage() {
        let dir = std::env::temp_dir().join("cascade_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.csv");
        std::fs::write(&p, "0,1,0.5\nnot,a,row\n").unwrap();
        assert!(matches!(
            Dataset::from_csv("bad", &p, 0, 1),
            Err(CsvError::Malformed { line: 1 })
        ));
    }
}
