#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # cascade-tgraph
//!
//! The continuous-time dynamic graph (CTDG) substrate of the Cascade TGNN
//! training framework: event streams, datasets with chronological splits
//! and edge features, synthetic generators standing in for the paper's
//! seven datasets (Table 2), temporal neighbor sampling, and the dataset
//! statistics behind Figures 3 and the Table 2 reproduction.
//!
//! # Examples
//!
//! Generate a scaled-down Wikipedia-profile graph and inspect it:
//!
//! ```
//! use cascade_tgraph::{DatasetStats, SynthConfig};
//!
//! let data = SynthConfig::wiki().with_scale(0.02).generate(42);
//! let stats = DatasetStats::of(&data);
//! assert_eq!(stats.name, "WIKI");
//! assert!(stats.events > 1000);
//! ```

mod dataset;
mod event;
mod ingest;
mod sampler;
mod shard;
mod source;
mod stats;
mod synth;

pub use dataset::{synth_features, CsvError, Dataset, EdgeFeatures};
pub use event::{Event, EventId, EventStream, NodeId, OrderError, StreamDecodeError};
pub use ingest::{ReorderPolicy, ReorderingSource, DEDUP_HORIZON};
// `DetRng` lives in `cascade-util` (so `cascade-tensor` can seed without
// depending on this crate) and is re-exported here for its historical
// users.
pub use cascade_util::DetRng;
pub use sampler::{AdjacencyStore, NegativeSampler, NeighborRef};
pub use shard::{shard_of_node, ShardMap};
pub use source::{EventChunk, EventSource, InMemorySource, PartitionedSource, SourceError};
pub use stats::{batch_degree_histogram, max_batch_degree, DatasetStats, TemporalStats};
pub use synth::SynthConfig;
