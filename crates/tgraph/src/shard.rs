//! Node-id-hash shard partitioning for the sharded memory plane.
//!
//! Multi-worker data-parallel training (DESIGN.md §12) splits node state
//! — memory rows, mailboxes, adjacency lists — across N shards. The
//! assignment must be a **pure function** of the node id and the shard
//! count: every process, every run, and every thread computing
//! `shard_of(node)` must agree, because shard ownership decides which
//! worker applies a write-back and which TCP peer a row belongs to.
//! [`ShardMap`] precomputes the assignment plus a dense **local slot**
//! per node, so each shard can store its nodes in a compact contiguous
//! table while all sampling hashes keep using global ids (see
//! `AdjacencyStore::uniform_keyed`).

use crate::event::NodeId;
use cascade_util::DetRng;

/// The shard a node hashes to: a seedless splitmix64 avalanche of the
/// node id reduced mod `num_shards`.
///
/// Seedless on purpose — the shard layout is structural (like the CEVT
/// chunk size), not an experiment parameter, so checkpoints and TCP
/// peers never have to negotiate a shard seed.
///
/// # Panics
///
/// Panics if `num_shards == 0`.
pub fn shard_of_node(node: NodeId, num_shards: usize) -> usize {
    DetRng::new(node.0 as u64).index(num_shards)
}

/// A precomputed node → (shard, slot) assignment.
///
/// Slots number each shard's nodes densely in ascending global-id
/// order, so `owned_nodes(shard)[slot]` recovers the global id and the
/// shard's state tables can be plain `Vec`s indexed by slot.
///
/// # Examples
///
/// ```
/// use cascade_tgraph::{NodeId, ShardMap};
///
/// let map = ShardMap::new(100, 4);
/// let n = NodeId(42);
/// let (shard, slot) = map.assignment(n);
/// assert_eq!(map.owned_nodes(shard)[slot], n);
/// ```
#[derive(Clone, Debug)]
pub struct ShardMap {
    num_shards: usize,
    /// `(shard, slot)` per node, indexed by global id.
    assign: Vec<(u32, u32)>,
    /// Global ids per shard, ascending (slot order).
    owned: Vec<Vec<NodeId>>,
}

impl ShardMap {
    /// Builds the assignment for `num_nodes` nodes over `num_shards`
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0` or if `num_nodes` exceeds `u32` range.
    pub fn new(num_nodes: usize, num_shards: usize) -> Self {
        assert!(num_shards > 0, "ShardMap needs at least one shard");
        assert!(
            num_nodes <= u32::MAX as usize,
            "node ids are u32 throughout the stack"
        );
        let mut assign = Vec::with_capacity(num_nodes);
        let mut owned: Vec<Vec<NodeId>> = vec![Vec::new(); num_shards];
        for id in 0..num_nodes as u32 {
            let shard = shard_of_node(NodeId(id), num_shards);
            let slot = owned[shard].len() as u32;
            assign.push((shard as u32, slot));
            owned[shard].push(NodeId(id));
        }
        ShardMap {
            num_shards,
            assign,
            owned,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.assign.len()
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assign[node.index()].0 as usize
    }

    /// The `(shard, slot)` pair for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn assignment(&self, node: NodeId) -> (usize, usize) {
        let (shard, slot) = self.assign[node.index()];
        (shard as usize, slot as usize)
    }

    /// The dense slot of `node` inside its owning shard.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn slot_of(&self, node: NodeId) -> usize {
        self.assign[node.index()].1 as usize
    }

    /// Number of nodes assigned to `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_size(&self, shard: usize) -> usize {
        self.owned[shard].len()
    }

    /// The global ids owned by `shard`, in slot order (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn owned_nodes(&self, shard: usize) -> &[NodeId] {
        &self.owned[shard]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_node_exactly_once() {
        let map = ShardMap::new(257, 5);
        let mut seen = vec![0usize; 257];
        for shard in 0..5 {
            for &n in map.owned_nodes(shard) {
                seen[n.index()] += 1;
                assert_eq!(map.shard_of(n), shard);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        let total: usize = (0..5).map(|s| map.shard_size(s)).sum();
        assert_eq!(total, 257);
    }

    #[test]
    fn assignment_is_pure() {
        let a = ShardMap::new(100, 3);
        let b = ShardMap::new(100, 3);
        for id in 0..100u32 {
            assert_eq!(a.assignment(NodeId(id)), b.assignment(NodeId(id)));
            assert_eq!(a.shard_of(NodeId(id)), shard_of_node(NodeId(id), 3));
        }
    }

    #[test]
    fn single_shard_is_identity_layout() {
        let map = ShardMap::new(17, 1);
        for id in 0..17u32 {
            assert_eq!(map.assignment(NodeId(id)), (0, id as usize));
        }
        assert_eq!(map.owned_nodes(0).len(), 17);
    }

    #[test]
    fn slots_are_dense_and_ascending() {
        let map = ShardMap::new(64, 4);
        for shard in 0..4 {
            let owned = map.owned_nodes(shard);
            for (slot, &n) in owned.iter().enumerate() {
                assert_eq!(map.slot_of(n), slot);
                if slot > 0 {
                    assert!(owned[slot - 1].0 < n.0);
                }
            }
        }
    }

    #[test]
    fn spread_is_not_degenerate() {
        // The avalanche should touch every shard for a modest node count.
        let map = ShardMap::new(1000, 8);
        for shard in 0..8 {
            assert!(map.shard_size(shard) > 0, "shard {} is empty", shard);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardMap::new(4, 0);
    }
}
