//! Chunked event sources: the abstraction that lets training consume an
//! event stream without holding it in memory.
//!
//! A [`EventSource`] yields the stream as ordered [`EventChunk`]s — the
//! unit the chunk-based Cascade variant (§4.2) already schedules over.
//! [`InMemorySource`] adapts an in-RAM [`Dataset`]; the on-disk
//! `cascade-store` crate provides a streaming implementation backed by a
//! prefetch thread. Both must yield byte-identical chunks for the same
//! underlying events, which is what makes out-of-core training
//! bit-identical to in-memory training.

use std::fmt;

use crate::dataset::Dataset;

/// Round-robin chunk partition over any [`EventSource`]: worker `w` of
/// `n` sees exactly the chunks with `index % n == w`, in their original
/// order, and skips the rest.
///
/// The assignment is a pure function of the chunk index, so every
/// worker — thread or TCP peer — agrees on ownership without
/// coordination, and the union over workers streams every event exactly
/// once (asserted by `partition_props` tests in `cascade-dist`). With
/// `n == 1` the adapter is a transparent pass-through, which is what
/// keeps dist training at N=1 bit-identical to serial streaming.
pub struct PartitionedSource<S> {
    inner: S,
    worker: usize,
    workers: usize,
}

impl<S: EventSource> PartitionedSource<S> {
    /// Wraps `inner` as worker `worker` of `workers`.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `worker >= workers`.
    pub fn new(inner: S, worker: usize, workers: usize) -> Self {
        assert!(workers > 0, "PartitionedSource needs at least one worker");
        assert!(
            worker < workers,
            "worker index {} out of range for {} workers",
            worker,
            workers
        );
        PartitionedSource {
            inner,
            worker,
            workers,
        }
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EventSource> EventSource for PartitionedSource<S> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    /// Total events in the underlying stream (not this partition's
    /// share): partition sizes depend on chunk contents, and global
    /// quantities like feature-table sizing key off the full stream.
    fn num_events(&self) -> usize {
        self.inner.num_events()
    }

    fn feature_dim(&self) -> usize {
        self.inner.feature_dim()
    }

    fn chunk_size(&self) -> usize {
        self.inner.chunk_size()
    }

    fn next_chunk(&mut self) -> Result<Option<EventChunk>, SourceError> {
        loop {
            match self.inner.next_chunk()? {
                Some(chunk) => {
                    if chunk.index % self.workers == self.worker {
                        return Ok(Some(chunk));
                    }
                }
                None => return Ok(None),
            }
        }
    }

    fn reset(&mut self) -> Result<(), SourceError> {
        self.inner.reset()
    }

    fn name(&self) -> String {
        format!("{}#{}of{}", self.inner.name(), self.worker, self.workers)
    }
}
use crate::event::Event;

/// One contiguous slice of the event stream, with its edge-feature rows.
///
/// `events[i]` has global stream id `base + i`, and `features` holds
/// `events.len() * feature_dim` floats in the same order (empty when the
/// source carries no features).
#[derive(Clone, Debug, PartialEq)]
pub struct EventChunk {
    /// Chunk index in the stream (0-based).
    pub index: usize,
    /// Global id of `events[0]`.
    pub base: usize,
    /// The chunk's events, chronologically ordered.
    pub events: Vec<Event>,
    /// Row-major feature rows for `events`, `feature_dim` floats each.
    pub features: Vec<f32>,
}

/// Error raised by an event source (I/O failure, corruption, protocol
/// violation). Carries the chunk index when one is known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceError {
    /// Chunk at which the failure occurred, when attributable.
    pub chunk: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl SourceError {
    /// Creates an error not tied to a specific chunk.
    pub fn new(message: impl Into<String>) -> Self {
        SourceError {
            chunk: None,
            message: message.into(),
        }
    }

    /// Creates an error attributed to `chunk`.
    pub fn at_chunk(chunk: usize, message: impl Into<String>) -> Self {
        SourceError {
            chunk: Some(chunk),
            message: message.into(),
        }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.chunk {
            Some(c) => write!(f, "event source failed at chunk {}: {}", c, self.message),
            None => write!(f, "event source failed: {}", self.message),
        }
    }
}

impl std::error::Error for SourceError {}

/// A chunked, resettable reader over an ordered event stream.
///
/// Implementations yield chunks strictly in stream order; after
/// exhaustion, [`reset`](EventSource::reset) rewinds to chunk 0 so the
/// next epoch re-reads the same sequence.
pub trait EventSource {
    /// Number of nodes the stream covers.
    fn num_nodes(&self) -> usize;

    /// Total number of events in the stream.
    fn num_events(&self) -> usize;

    /// Edge-feature width (0 when the stream has no features).
    fn feature_dim(&self) -> usize;

    /// Nominal chunk size: every chunk except possibly the last holds
    /// exactly this many events.
    fn chunk_size(&self) -> usize;

    /// Yields the next chunk, `Ok(None)` once the stream is exhausted.
    ///
    /// # Errors
    ///
    /// Returns a [`SourceError`] on I/O failure or detected corruption;
    /// chunks before the failure point have already been yielded intact.
    fn next_chunk(&mut self) -> Result<Option<EventChunk>, SourceError>;

    /// Rewinds to chunk 0 (start of a new epoch).
    ///
    /// # Errors
    ///
    /// Returns a [`SourceError`] when the underlying stream cannot be
    /// reopened.
    fn reset(&mut self) -> Result<(), SourceError>;

    /// Human-readable source name (used in reports).
    fn name(&self) -> String {
        "source".to_string()
    }
}

/// An [`EventSource`] over an in-memory [`Dataset`]: the reference
/// implementation streaming code is validated against.
#[derive(Clone, Debug)]
pub struct InMemorySource {
    name: String,
    num_nodes: usize,
    chunk_size: usize,
    feature_dim: usize,
    events: Vec<Event>,
    features: Vec<f32>,
    cursor: usize,
}

impl InMemorySource {
    /// Wraps `data`, yielding chunks of `chunk_size` events.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn from_dataset(data: &Dataset, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let feature_dim = data.features().dim();
        let mut features = Vec::with_capacity(data.num_events() * feature_dim);
        for i in 0..data.num_events() {
            features.extend_from_slice(data.features().row(i));
        }
        InMemorySource {
            name: data.name().to_string(),
            num_nodes: data.num_nodes(),
            chunk_size,
            feature_dim,
            events: data.stream().events().to_vec(),
            features,
            cursor: 0,
        }
    }
}

impl EventSource for InMemorySource {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_events(&self) -> usize {
        self.events.len()
    }

    fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    fn next_chunk(&mut self) -> Result<Option<EventChunk>, SourceError> {
        if self.cursor >= self.events.len() {
            return Ok(None);
        }
        let base = self.cursor;
        let end = (base + self.chunk_size).min(self.events.len());
        let chunk = EventChunk {
            index: base / self.chunk_size,
            base,
            events: self.events[base..end].to_vec(),
            features: self.features[base * self.feature_dim..end * self.feature_dim].to_vec(),
        };
        self.cursor = end;
        Ok(Some(chunk))
    }

    fn reset(&mut self) -> Result<(), SourceError> {
        self.cursor = 0;
        Ok(())
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn data() -> Dataset {
        SynthConfig::wiki().with_scale(0.003).generate(11)
    }

    #[test]
    fn chunks_partition_the_stream() {
        let d = data();
        let mut src = InMemorySource::from_dataset(&d, 100);
        let mut seen = 0usize;
        let mut idx = 0usize;
        while let Some(chunk) = src.next_chunk().expect("in-memory source never fails") {
            assert_eq!(chunk.index, idx);
            assert_eq!(chunk.base, seen);
            assert_eq!(chunk.features.len(), chunk.events.len() * src.feature_dim());
            assert!(chunk.events.len() <= 100);
            seen += chunk.events.len();
            idx += 1;
        }
        assert_eq!(seen, d.num_events());
        assert_eq!(src.num_events(), d.num_events());
    }

    #[test]
    fn chunk_contents_match_dataset() {
        let d = data();
        let mut src = InMemorySource::from_dataset(&d, 64);
        let chunk = src
            .next_chunk()
            .expect("in-memory source never fails")
            .expect("dataset is non-empty");
        assert_eq!(
            &chunk.events[..],
            &d.stream().events()[..chunk.events.len()]
        );
        assert_eq!(&chunk.features[..d.features().dim()], d.features().row(0));
    }

    #[test]
    fn reset_rewinds() {
        let d = data();
        let mut src = InMemorySource::from_dataset(&d, 64);
        let first = src.next_chunk().expect("never fails");
        while src.next_chunk().expect("never fails").is_some() {}
        src.reset().expect("in-memory reset never fails");
        let again = src.next_chunk().expect("never fails");
        assert_eq!(first, again);
    }

    #[test]
    fn error_display_mentions_chunk() {
        let e = SourceError::at_chunk(3, "crc mismatch");
        assert!(e.to_string().contains("chunk 3"));
        let e = SourceError::new("cannot open");
        assert!(!e.to_string().contains("chunk"));
    }
}
