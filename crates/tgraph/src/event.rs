//! Events and event streams — the CTDG representation of §2.1.

use std::fmt;

use cascade_util::Json;

/// Identifies a node of the dynamic graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies an event by its position in the chronological stream.
pub type EventId = usize;

/// One graph change: an edge from `src` to `dst` occurring at `time`.
///
/// In the CTDG formulation `G = {e(t₁), e(t₂), …}` (Equation 1), each
/// event is "typically represented as an edge with a timestamp".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Occurrence timestamp (arbitrary monotone units).
    pub time: f64,
}

impl Event {
    /// Creates an event.
    pub fn new(src: impl Into<NodeId>, dst: impl Into<NodeId>, time: f64) -> Self {
        Event {
            src: src.into(),
            dst: dst.into(),
            time,
        }
    }

    /// `true` if the event touches `node` as source or destination.
    pub fn touches(&self, node: NodeId) -> bool {
        self.src == node || self.dst == node
    }

    /// This event as a compact JSON triple `[src, dst, time]`.
    pub fn to_json_value(&self) -> Json {
        Json::Arr(vec![
            Json::from(self.src.0),
            Json::from(self.dst.0),
            Json::from(self.time),
        ])
    }

    /// Parses an event from the `[src, dst, time]` triple form.
    ///
    /// # Errors
    ///
    /// Returns [`StreamDecodeError`] if the value is not a triple of two
    /// node ids and a finite timestamp.
    pub fn from_json_value(v: &Json) -> Result<Event, StreamDecodeError> {
        let arr = v
            .as_arr()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| StreamDecodeError::new("event must be a [src, dst, time] triple"))?;
        let node = |j: &Json, which: &str| -> Result<NodeId, StreamDecodeError> {
            j.as_usize()
                .filter(|&id| id <= u32::MAX as usize)
                .map(|id| NodeId(id as u32))
                .ok_or_else(|| StreamDecodeError::new(format!("{} is not a node id", which)))
        };
        let time = arr[2]
            .as_f64()
            .filter(|t| t.is_finite())
            .ok_or_else(|| StreamDecodeError::new("time is not a finite number"))?;
        Ok(Event {
            src: node(&arr[0], "src")?,
            dst: node(&arr[1], "dst")?,
            time,
        })
    }
}

/// Error decoding an [`EventStream`] (or [`Event`]) from JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamDecodeError {
    msg: String,
}

impl StreamDecodeError {
    fn new(msg: impl Into<String>) -> Self {
        StreamDecodeError { msg: msg.into() }
    }
}

impl fmt::Display for StreamDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid event-stream JSON: {}", self.msg)
    }
}

impl std::error::Error for StreamDecodeError {}

/// A chronologically ordered sequence of events.
///
/// # Examples
///
/// ```
/// use cascade_tgraph::{Event, EventStream};
///
/// let stream = EventStream::new(vec![
///     Event::new(0u32, 1u32, 0.0),
///     Event::new(1u32, 2u32, 1.0),
/// ]).unwrap();
/// assert_eq!(stream.len(), 2);
/// assert_eq!(stream.num_nodes(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EventStream {
    events: Vec<Event>,
    num_nodes: usize,
}

/// Error constructing an [`EventStream`] from out-of-order events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderError {
    /// Index of the first event whose timestamp precedes its predecessor's.
    pub at: usize,
}

impl fmt::Display for OrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event {} is earlier than its predecessor", self.at)
    }
}

impl std::error::Error for OrderError {}

impl EventStream {
    /// Creates a stream, validating chronological order.
    ///
    /// # Errors
    ///
    /// Returns [`OrderError`] if any timestamp decreases.
    pub fn new(events: Vec<Event>) -> Result<Self, OrderError> {
        for (i, w) in events.windows(2).enumerate() {
            if w[1].time < w[0].time {
                return Err(OrderError { at: i + 1 });
            }
        }
        let num_nodes = events
            .iter()
            .map(|e| e.src.0.max(e.dst.0) as usize + 1)
            .max()
            .unwrap_or(0);
        Ok(EventStream { events, num_nodes })
    }

    /// Creates a stream, sorting the events by timestamp first (stable).
    pub fn from_unsorted(mut events: Vec<Event>) -> Self {
        events.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        EventStream::new(events).expect("sorted events are ordered")
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of nodes (max node id + 1 across all events).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The events as a slice.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Event at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn event(&self, idx: EventId) -> &Event {
        &self.events[idx]
    }

    /// Iterates over the events in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// A sub-stream view over the index range.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> &[Event] {
        &self.events[range]
    }

    /// A new stream restricted to `range` (used for chronological splits).
    pub fn restricted(&self, range: std::ops::Range<usize>) -> EventStream {
        EventStream {
            events: self.events[range].to_vec(),
            num_nodes: self.num_nodes,
        }
    }

    /// Average degree: `2·|E| / |V|` (each event contributes to two
    /// endpoints). Returns 0 on empty graphs.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            return 0.0;
        }
        2.0 * self.events.len() as f64 / self.num_nodes as f64
    }

    /// Serializes the stream as compact JSON:
    /// `{"num_nodes": N, "events": [[src, dst, time], …]}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cascade_tgraph::{Event, EventStream};
    ///
    /// let stream = EventStream::new(vec![Event::new(0u32, 1u32, 0.5)]).unwrap();
    /// let restored = EventStream::from_json(&stream.to_json()).unwrap();
    /// assert_eq!(restored.events(), stream.events());
    /// assert_eq!(restored.num_nodes(), stream.num_nodes());
    /// ```
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("num_nodes".into(), Json::from(self.num_nodes)),
            (
                "events".into(),
                Json::Arr(self.events.iter().map(Event::to_json_value).collect()),
            ),
        ])
        .to_string()
    }

    /// Parses a stream written by [`EventStream::to_json`], revalidating
    /// chronological order.
    ///
    /// # Errors
    ///
    /// Returns [`StreamDecodeError`] on malformed JSON, out-of-order
    /// events, or a stored `num_nodes` smaller than the events imply
    /// (the stored value may be larger: restricted sub-streams keep the
    /// parent's node count).
    pub fn from_json(text: &str) -> Result<EventStream, StreamDecodeError> {
        let v = Json::parse(text).map_err(|e| StreamDecodeError::new(e.to_string()))?;
        let num_nodes = v
            .get("num_nodes")
            .and_then(Json::as_usize)
            .ok_or_else(|| StreamDecodeError::new("missing integer field 'num_nodes'"))?;
        let events = v
            .get("events")
            .and_then(Json::as_arr)
            .ok_or_else(|| StreamDecodeError::new("missing array field 'events'"))?
            .iter()
            .map(Event::from_json_value)
            .collect::<Result<Vec<Event>, StreamDecodeError>>()?;
        let stream = EventStream::new(events).map_err(|e| StreamDecodeError::new(e.to_string()))?;
        if num_nodes < stream.num_nodes {
            return Err(StreamDecodeError::new(format!(
                "num_nodes {} is smaller than the {} the events imply",
                num_nodes, stream.num_nodes
            )));
        }
        Ok(EventStream {
            events: stream.events,
            num_nodes,
        })
    }
}

impl<'a> IntoIterator for &'a EventStream {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_accepts_ordered() {
        let s = EventStream::new(vec![
            Event::new(0u32, 1u32, 0.0),
            Event::new(1u32, 0u32, 0.0),
            Event::new(2u32, 3u32, 5.0),
        ])
        .unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.num_nodes(), 4);
    }

    #[test]
    fn stream_rejects_disorder() {
        let err = EventStream::new(vec![
            Event::new(0u32, 1u32, 5.0),
            Event::new(1u32, 0u32, 1.0),
        ])
        .unwrap_err();
        assert_eq!(err.at, 1);
    }

    #[test]
    fn from_unsorted_sorts() {
        let s = EventStream::from_unsorted(vec![
            Event::new(0u32, 1u32, 5.0),
            Event::new(1u32, 2u32, 1.0),
        ]);
        assert_eq!(s.event(0).time, 1.0);
        assert_eq!(s.event(1).time, 5.0);
    }

    #[test]
    fn empty_stream() {
        let s = EventStream::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.num_nodes(), 0);
        assert_eq!(s.average_degree(), 0.0);
    }

    #[test]
    fn touches_both_endpoints() {
        let e = Event::new(3u32, 7u32, 1.0);
        assert!(e.touches(NodeId(3)));
        assert!(e.touches(NodeId(7)));
        assert!(!e.touches(NodeId(5)));
    }

    #[test]
    fn restricted_keeps_num_nodes() {
        let s = EventStream::new(vec![
            Event::new(0u32, 9u32, 0.0),
            Event::new(1u32, 2u32, 1.0),
        ])
        .unwrap();
        let r = s.restricted(1..2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.num_nodes(), 10);
    }

    #[test]
    fn average_degree_formula() {
        let s = EventStream::new(vec![Event::new(0u32, 1u32, 0.0); 10]).unwrap();
        assert_eq!(s.average_degree(), 10.0);
    }
}

impl EventStream {
    /// Splits the stream into DTDG snapshots of fixed time width —
    /// discrete-time dynamic graphs are "specific instances of CTDGs,
    /// distinguished by the segmentation of events into uniform time
    /// intervals" (paper §2.1). Each snapshot holds the events of one
    /// interval; empty intervals yield empty snapshots, and trailing
    /// events land in the final snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive and finite.
    pub fn snapshots(&self, interval: f64) -> Vec<EventStream> {
        assert!(
            interval.is_finite() && interval > 0.0,
            "snapshot interval must be positive"
        );
        if self.events.is_empty() {
            return Vec::new();
        }
        let t0 = self.events.first().expect("non-empty").time;
        let t1 = self.events.last().expect("non-empty").time;
        let n_snaps = (((t1 - t0) / interval).floor() as usize) + 1;
        let mut out: Vec<Vec<Event>> = vec![Vec::new(); n_snaps];
        for e in &self.events {
            let idx = (((e.time - t0) / interval).floor() as usize).min(n_snaps - 1);
            out[idx].push(*e);
        }
        out.into_iter()
            .map(|events| EventStream {
                events,
                num_nodes: self.num_nodes,
            })
            .collect()
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[test]
    fn snapshots_partition_events() {
        let s =
            EventStream::new((0..10).map(|i| Event::new(0u32, 1u32, i as f64)).collect()).unwrap();
        let snaps = s.snapshots(3.0);
        assert_eq!(snaps.len(), 4);
        let total: usize = snaps.iter().map(EventStream::len).sum();
        assert_eq!(total, 10);
        assert_eq!(snaps[0].len(), 3); // t = 0, 1, 2
        assert_eq!(snaps[3].len(), 1); // t = 9
    }

    #[test]
    fn snapshots_preserve_node_count() {
        let s = EventStream::new(vec![
            Event::new(0u32, 9u32, 0.0),
            Event::new(1u32, 2u32, 10.0),
        ])
        .unwrap();
        for snap in s.snapshots(4.0) {
            assert_eq!(snap.num_nodes(), 10);
        }
    }

    #[test]
    fn empty_stream_has_no_snapshots() {
        let s = EventStream::new(vec![]).unwrap();
        assert!(s.snapshots(1.0).is_empty());
    }

    #[test]
    fn single_interval_holds_everything() {
        let s = EventStream::new(vec![
            Event::new(0u32, 1u32, 0.0),
            Event::new(1u32, 0u32, 0.5),
        ])
        .unwrap();
        let snaps = s.snapshots(100.0);
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_bad_interval() {
        let s = EventStream::new(vec![Event::new(0u32, 1u32, 0.0)]).unwrap();
        let _ = s.snapshots(0.0);
    }
}
