//! Synthetic CTDG generators.
//!
//! The paper evaluates on seven real datasets (Table 2). Those corpora are
//! not redistributable here, so each is replaced by a seeded generator
//! matching the statistics Cascade's mechanisms depend on:
//!
//! * node/event counts and edge-feature width (Table 2),
//! * activity skew — a few hub nodes absorb most events while the majority
//!   see 0–25 events per 900-event batch (Figure 3),
//! * bipartite user–item structure for the interaction datasets,
//! * temporal recurrence (users re-contact recent partners) and bursty
//!   inter-arrival times.
//!
//! Generators accept a `scale` so the billion-event profiles (GDELT, MAG)
//! shrink to laptop size while preserving relative shape.

use crate::dataset::{synth_features, Dataset};
use crate::event::{Event, EventStream};
use cascade_util::DetRng;

/// Configuration of a synthetic dynamic-graph generator.
///
/// # Examples
///
/// ```
/// use cascade_tgraph::SynthConfig;
///
/// let data = SynthConfig::wiki().with_scale(0.05).generate(42);
/// assert!(data.num_events() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Dataset name (used in reports).
    pub name: String,
    /// Target node count at scale 1.0.
    pub num_nodes: usize,
    /// Target event count at scale 1.0.
    pub num_events: usize,
    /// Edge-feature width.
    pub feature_dim: usize,
    /// Activity skew `k ≥ 1`: node pick index `∝ u^k`; higher concentrates
    /// events onto fewer hub nodes.
    pub skew: f64,
    /// Fraction of nodes acting as "items" (destinations) in bipartite
    /// interaction graphs; `0` disables bipartite structure.
    pub item_fraction: f64,
    /// Probability that a source re-contacts one of its recent partners.
    pub repeat_prob: f64,
    /// Probability an inter-arrival gap is a small "burst" gap.
    pub burstiness: f64,
    /// Linear scale on node and event counts.
    pub scale: f64,
    /// Lower bound on the scaled node count (extremely dense profiles
    /// like GDELT would otherwise collapse to a handful of nodes).
    pub min_nodes: usize,
    /// Optional separate scale for the node count; defaults to `scale`.
    /// Scaled-down replicas keep dependency structure realistic by
    /// shrinking nodes more gently than events.
    pub node_scale: Option<f64>,
    /// Fraction of users concurrently "active" (sessions): real activity
    /// is bursty — a node is hot for a stretch, then quiet. Hot sets
    /// rotate every session, which bounds any node's relevant events per
    /// window, the property Cascade's endurance budgeting exploits.
    pub pool_fraction: f64,
    /// Fraction of the active pool replaced at each session boundary.
    pub rotation: f64,
    /// Maximum distinct recent partners a source keeps returning to; the
    /// bound on structural closure (real users interact with a handful of
    /// items/pages, not the whole catalog).
    pub partner_cap: usize,
}

impl SynthConfig {
    /// Profile of the Wikipedia edit-interaction graph
    /// (9,227 nodes / 157,474 events / 172 features; avg degree ≈ 17).
    pub fn wiki() -> Self {
        SynthConfig {
            name: "WIKI".into(),
            num_nodes: 9_227,
            num_events: 157_474,
            feature_dim: 172,
            skew: 2.2,
            item_fraction: 0.11,
            repeat_prob: 0.55,
            burstiness: 0.3,
            scale: 1.0,
            min_nodes: 4,
            node_scale: None,
            pool_fraction: 0.15,
            rotation: 0.35,
            partner_cap: 10,
        }
    }

    /// Profile of the Reddit post graph (11,000 / 672,447 / 172; avg
    /// degree ≈ 61 — the densest moderate dataset).
    pub fn reddit() -> Self {
        SynthConfig {
            name: "REDDIT".into(),
            num_nodes: 11_000,
            num_events: 672_447,
            feature_dim: 172,
            skew: 2.6,
            item_fraction: 0.09,
            repeat_prob: 0.65,
            burstiness: 0.35,
            scale: 1.0,
            min_nodes: 4,
            node_scale: None,
            pool_fraction: 0.15,
            rotation: 0.35,
            partner_cap: 10,
        }
    }

    /// Profile of the MOOC student drop-out graph (7,047 / 411,749 / 128).
    pub fn mooc() -> Self {
        SynthConfig {
            name: "MOOC".into(),
            num_nodes: 7_047,
            num_events: 411_749,
            feature_dim: 128,
            skew: 2.4,
            // The real MOOC graph has ~1.4% item (course) nodes; scaled
            // replicas keep a slightly larger catalog so the item side
            // does not collapse to a handful of nodes.
            item_fraction: 0.08,
            repeat_prob: 0.6,
            burstiness: 0.25,
            scale: 1.0,
            min_nodes: 4,
            node_scale: None,
            pool_fraction: 0.15,
            rotation: 0.35,
            partner_cap: 10,
        }
    }

    /// Profile of the Wikipedia Talk network (2.39 M / 5.02 M / 32; very
    /// sparse, avg degree ≈ 2.1).
    pub fn wiki_talk() -> Self {
        SynthConfig {
            name: "WIKI-TALK".into(),
            num_nodes: 2_394_385,
            num_events: 5_021_410,
            feature_dim: 32,
            skew: 2.8,
            item_fraction: 0.0,
            repeat_prob: 0.25,
            burstiness: 0.4,
            scale: 1.0,
            min_nodes: 4,
            node_scale: None,
            pool_fraction: 0.15,
            rotation: 0.35,
            partner_cap: 10,
        }
    }

    /// Profile of the Stack Overflow temporal network (2.6 M / 63.5 M / 32).
    pub fn sx_full() -> Self {
        SynthConfig {
            name: "SX-FULL".into(),
            num_nodes: 2_601_977,
            num_events: 63_497_050,
            feature_dim: 32,
            skew: 2.5,
            item_fraction: 0.0,
            repeat_prob: 0.35,
            burstiness: 0.45,
            scale: 1.0,
            min_nodes: 4,
            node_scale: None,
            pool_fraction: 0.15,
            rotation: 0.35,
            partner_cap: 10,
        }
    }

    /// Profile of the GDELT news-event graph (16,682 / 191 M / 186) —
    /// billion-scale event count on a small node set.
    pub fn gdelt() -> Self {
        SynthConfig {
            name: "GDELT".into(),
            num_nodes: 16_682,
            num_events: 191_290_882,
            feature_dim: 186,
            skew: 2.0,
            item_fraction: 0.0,
            repeat_prob: 0.5,
            burstiness: 0.5,
            scale: 1.0,
            min_nodes: 48,
            node_scale: None,
            pool_fraction: 0.30,
            rotation: 0.35,
            partner_cap: 10,
        }
    }

    /// Profile of the MAG paper-citation graph (121.8 M / 1.30 B / 32).
    pub fn mag() -> Self {
        SynthConfig {
            name: "MAG".into(),
            num_nodes: 121_751_665,
            num_events: 1_297_748_926,
            feature_dim: 32,
            skew: 2.3,
            item_fraction: 0.0,
            repeat_prob: 0.5,
            burstiness: 0.2,
            scale: 1.0,
            min_nodes: 48,
            node_scale: None,
            pool_fraction: 0.06,
            rotation: 0.35,
            partner_cap: 10,
        }
    }

    /// All five moderate-size profiles in the paper's ordering.
    pub fn moderate_profiles() -> Vec<SynthConfig> {
        vec![
            SynthConfig::wiki(),
            SynthConfig::reddit(),
            SynthConfig::mooc(),
            SynthConfig::wiki_talk(),
            SynthConfig::sx_full(),
        ]
    }

    /// Both billion-scale profiles.
    pub fn large_profiles() -> Vec<SynthConfig> {
        vec![SynthConfig::gdelt(), SynthConfig::mag()]
    }

    /// Returns the profile scaled by `scale` (node and event counts).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Scaled node count (at least `min_nodes`).
    pub fn scaled_nodes(&self) -> usize {
        let s = self.node_scale.unwrap_or(self.scale);
        ((self.num_nodes as f64 * s).round() as usize).max(self.min_nodes.max(4))
    }

    /// Overrides the node-count scale independently of the event scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_node_scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "node scale must be positive"
        );
        self.node_scale = Some(scale);
        self
    }

    /// Overrides the scaled-node lower bound.
    pub fn with_min_nodes(mut self, n: usize) -> Self {
        self.min_nodes = n;
        self
    }

    /// Overrides the edge-feature width (used by the scaled experiment
    /// harness to keep compute tractable).
    pub fn with_feature_dim(mut self, dim: usize) -> Self {
        self.feature_dim = dim;
        self
    }

    /// Scaled event count (at least 8).
    pub fn scaled_events(&self) -> usize {
        ((self.num_events as f64 * self.scale).round() as usize).max(8)
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// Sources (and, in bipartite profiles, items) are drawn from a
    /// *sliding activity window*: node populations arrive, stay hot for a
    /// stretch, and fade — the churn real interaction data exhibits. This
    /// bounds any node's dependency closure the same way it is bounded in
    /// the paper's datasets (Figure 3: even hubs see only 140–175 events
    /// per 900-event batch), which is the property Cascade's endurance
    /// budgeting relies on. Within the active window, activity is skewed
    /// (`skew`) so momentary hubs exist.
    pub fn generate(&self, seed: u64) -> Dataset {
        let n = self.scaled_nodes();
        let m = self.scaled_events();
        let mut rng = DetRng::new(seed);

        let items_start = ((n as f64) * (1.0 - self.item_fraction)) as usize;
        let users = items_start.max(1);
        let items = n - items_start;

        // Activity-window widths (nodes simultaneously active).
        let user_span =
            ((users as f64 * self.pool_fraction.max(0.01) * 4.0) as usize).clamp(1, users);
        let item_span = if items > 0 {
            ((items as f64 * self.pool_fraction.max(0.01) * 8.0) as usize).clamp(1, items)
        } else {
            0
        };

        // Recent partners per user, bounded ring of `partner_cap`.
        let cap = self.partner_cap.max(1);
        let mut recent: Vec<Vec<u32>> = vec![Vec::new(); users];

        let mut events = Vec::with_capacity(m);
        let mut t = 0.0f64;
        for i in 0..m {
            // Bursty inter-arrival.
            let u: f64 = rng.f64().max(1e-12);
            let mut dt = -u.ln();
            if rng.chance(self.burstiness) {
                dt *= 0.05;
            }
            t += dt;

            // Sliding frontier: the population in play at event i.
            let progress = i as f64 / m as f64;
            let user_frontier = user_span + ((users - user_span) as f64 * progress) as usize;
            let src = (user_frontier - 1 - skewed_index(&mut rng, user_span, self.skew)) as u32;

            let dst = if !recent[src as usize].is_empty() && rng.chance(self.repeat_prob) {
                let hist = &recent[src as usize];
                hist[rng.index(hist.len())]
            } else if items > 0 {
                let item_frontier = item_span + ((items - item_span) as f64 * progress) as usize;
                let local = item_frontier - 1 - skewed_index(&mut rng, item_span, self.skew);
                (items_start + local) as u32
            } else {
                // Unipartite: another node from the active window.
                let mut d =
                    (user_frontier - 1 - skewed_index(&mut rng, user_span, self.skew)) as u32;
                if d == src {
                    d = if d + 1 < users as u32 {
                        d + 1
                    } else {
                        d.saturating_sub(1)
                    };
                }
                d
            };

            let hist = &mut recent[src as usize];
            if !hist.contains(&dst) {
                if hist.len() >= cap {
                    hist.remove(0);
                }
                hist.push(dst);
            }

            events.push(Event::new(src, dst, t));
        }

        let stream = EventStream::new(events).expect("generated times are monotone");
        let features = synth_features(stream.len(), self.feature_dim, seed.wrapping_add(1));
        Dataset::new(self.name.clone(), stream, features)
    }
}

/// Samples an index in `[0, n)` with power-law skew `k`: the density of
/// index `x` is proportional to `x^(1/k − 1)` — `k = 1` is uniform, larger
/// `k` concentrates on small indices (hubs).
fn skewed_index(rng: &mut DetRng, n: usize, k: f64) -> usize {
    let u: f64 = rng.f64();
    let idx = (u.powf(k) * n as f64) as usize;
    idx.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::wiki().with_scale(0.01);
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a.num_events(), b.num_events());
        assert_eq!(a.stream().events()[10], b.stream().events()[10]);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthConfig::wiki().with_scale(0.01);
        let a = cfg.generate(1);
        let b = cfg.generate(2);
        assert_ne!(a.stream().events()[0..20], b.stream().events()[0..20]);
    }

    #[test]
    fn scaled_counts_shrink() {
        let cfg = SynthConfig::reddit().with_scale(0.01);
        let d = cfg.generate(0);
        assert!(d.num_events() <= 7000);
        assert!(d.num_nodes() <= 200);
    }

    #[test]
    fn timestamps_monotone() {
        let d = SynthConfig::mooc().with_scale(0.005).generate(3);
        let times: Vec<f64> = d.stream().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn activity_is_skewed() {
        // A small set of hub nodes should absorb a large share of events.
        let d = SynthConfig::wiki().with_scale(0.05).generate(11);
        let mut deg = vec![0usize; d.num_nodes()];
        for e in d.stream() {
            deg[e.src.index()] += 1;
            deg[e.dst.index()] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = deg.iter().take(deg.len() / 10).sum();
        let total: usize = deg.iter().sum();
        assert!(
            top10 as f64 > 0.4 * total as f64,
            "top-10% nodes hold only {}/{} of degree",
            top10,
            total
        );
    }

    #[test]
    fn bipartite_destinations_in_item_range() {
        let cfg = SynthConfig::reddit().with_scale(0.02);
        let d = cfg.generate(5);
        let items_start = ((cfg.scaled_nodes() as f64) * (1.0 - cfg.item_fraction)) as usize;
        // Destinations are items or recent partners (which are items too).
        for e in d.stream() {
            assert!(e.dst.index() >= items_start || e.dst.index() < items_start);
            assert!((e.src.index()) < items_start);
        }
    }

    #[test]
    fn profiles_match_table2_at_full_scale() {
        assert_eq!(SynthConfig::wiki().num_nodes, 9_227);
        assert_eq!(SynthConfig::wiki().num_events, 157_474);
        assert_eq!(SynthConfig::wiki().feature_dim, 172);
        assert_eq!(SynthConfig::reddit().num_events, 672_447);
        assert_eq!(SynthConfig::mooc().feature_dim, 128);
        assert_eq!(SynthConfig::wiki_talk().num_nodes, 2_394_385);
        assert_eq!(SynthConfig::sx_full().num_events, 63_497_050);
        assert_eq!(SynthConfig::gdelt().feature_dim, 186);
        assert_eq!(SynthConfig::mag().num_events, 1_297_748_926);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_bad_scale() {
        let _ = SynthConfig::wiki().with_scale(0.0);
    }
}
