//! Ingest normalization: explicit policies for duplicate and
//! out-of-order event arrival.
//!
//! Every consumer downstream of an [`EventSource`] — the streaming
//! trainer, the pipelined executor, the dist workers, the serving WAL —
//! assumes chronologically ordered, duplicate-free chunks; `EventStream`
//! construction rejects anything else with an `OrderError`. Real feeds
//! are messier: network replays deliver the same event twice and
//! multi-source collectors interleave slightly stale events. A
//! [`ReorderingSource`] makes the tolerance explicit instead of
//! implicit: wrap any source with a [`ReorderPolicy`] and the output is
//! a normalized stream (re-chunked, re-indexed, ordered, deduplicated)
//! that is *bit-identical* to what the well-behaved stream would have
//! produced — the property the `reorder` scenario in `cascade-scenario`
//! asserts end to end against training loss, and the property tests
//! here prove per chunk.
//!
//! Semantics, per policy:
//!
//! - [`Reject`](ReorderPolicy::Reject): pass-through re-chunker; any
//!   timestamp regression is a [`SourceError`]. Duplicates pass (they
//!   are valid self-consistent streams; rejecting them is the caller's
//!   business).
//! - [`DropDuplicates`](ReorderPolicy::DropDuplicates): like `Reject`,
//!   but an event bit-identical to one seen within the trailing
//!   [`DEDUP_HORIZON`] emitted events is silently dropped.
//! - [`BufferedReorder(w)`](ReorderPolicy::BufferedReorder): holds up to
//!   `w` events in a sorted buffer, releasing the oldest only once the
//!   buffer is full — any event displaced by at most `w` positions is
//!   restored to its sorted slot, and exact duplicates within the
//!   buffer-plus-last-`w`-emitted horizon are dropped. An event older
//!   than the newest already-released timestamp exceeded the window and
//!   is a [`SourceError`].
//!
//! "Duplicate" always means bit-identical `(src, dst, time)`: two
//! distinct real events may legitimately share endpoints and differ
//! only in features, but a true replay duplicates all three fields, and
//! timestamps from the generators are strictly increasing, so the
//! triple is a reliable identity.

use std::collections::VecDeque;

use crate::event::Event;
use crate::source::{EventChunk, EventSource, SourceError};

/// How many trailing emitted events [`ReorderPolicy::DropDuplicates`]
/// remembers when testing an incoming event for duplication.
pub const DEDUP_HORIZON: usize = 1024;

/// Tolerance policy for duplicate / out-of-order arrival on an
/// [`EventSource`]; see the module docs for exact semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorderPolicy {
    /// Any timestamp regression is an error; duplicates pass through.
    Reject,
    /// In-order required; bit-identical repeats within
    /// [`DEDUP_HORIZON`] are dropped.
    DropDuplicates,
    /// Sort within a sliding window of this many events and drop
    /// duplicates inside it; displacement beyond the window is an error.
    BufferedReorder(usize),
}

impl ReorderPolicy {
    /// How many trailing emitted events are checked for duplicates.
    fn dedup_horizon(&self) -> usize {
        match self {
            ReorderPolicy::Reject => 0,
            ReorderPolicy::DropDuplicates => DEDUP_HORIZON,
            ReorderPolicy::BufferedReorder(w) => *w,
        }
    }
}

impl std::fmt::Display for ReorderPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReorderPolicy::Reject => write!(f, "reject"),
            ReorderPolicy::DropDuplicates => write!(f, "drop-duplicates"),
            ReorderPolicy::BufferedReorder(w) => write!(f, "buffered-reorder({})", w),
        }
    }
}

/// An [`EventSource`] adapter that normalizes a disordered or
/// duplicated inner stream under a [`ReorderPolicy`], yielding ordered,
/// deduplicated, re-indexed chunks of the inner source's chunk size.
pub struct ReorderingSource<S> {
    inner: S,
    policy: ReorderPolicy,
    declared_events: usize,
    /// Sorted (stable by arrival within equal times) reorder buffer.
    pending: VecDeque<(Event, Vec<f32>)>,
    /// Ring of recently emitted events for duplicate suppression.
    recent: VecDeque<Event>,
    staged_events: Vec<Event>,
    staged_features: Vec<f32>,
    emitted: usize,
    next_index: usize,
    last_time: f64,
    input_done: bool,
}

impl<S: EventSource> ReorderingSource<S> {
    /// Wraps `inner`, declaring the normalized stream's event count to
    /// be `inner.num_events()` (correct when the inner stream contains
    /// no duplicates to drop).
    pub fn new(inner: S, policy: ReorderPolicy) -> Self {
        let declared = inner.num_events();
        Self::with_declared_events(inner, policy, declared)
    }

    /// Wraps `inner`, declaring that normalization yields exactly
    /// `declared_events` events (the inner count minus known injected
    /// duplicates). Consumers size splits and feature tables off this
    /// number *before* the stream is drained, so it must be exact: a
    /// mismatch at end of stream is a [`SourceError`].
    pub fn with_declared_events(inner: S, policy: ReorderPolicy, declared_events: usize) -> Self {
        ReorderingSource {
            inner,
            policy,
            declared_events,
            pending: VecDeque::new(),
            recent: VecDeque::new(),
            staged_events: Vec::new(),
            staged_features: Vec::new(),
            emitted: 0,
            next_index: 0,
            last_time: f64::NEG_INFINITY,
            input_done: false,
        }
    }

    /// The policy this adapter normalizes under.
    pub fn policy(&self) -> ReorderPolicy {
        self.policy
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn is_duplicate(&self, ev: &Event) -> bool {
        let horizon = self.policy.dedup_horizon();
        if horizon == 0 {
            return false;
        }
        let same =
            |o: &Event| o.src == ev.src && o.dst == ev.dst && o.time.to_bits() == ev.time.to_bits();
        self.pending.iter().any(|(o, _)| same(o)) || self.recent.iter().any(same)
    }

    /// Moves one normalized event into the staged output, updating the
    /// order watermark and the dedup ring.
    fn release(&mut self, ev: Event, row: Vec<f32>) {
        self.last_time = ev.time;
        let horizon = self.policy.dedup_horizon();
        if horizon > 0 {
            if self.recent.len() == horizon {
                self.recent.pop_front();
            }
            self.recent.push_back(ev);
        }
        self.staged_events.push(ev);
        self.staged_features.extend_from_slice(&row);
    }

    fn accept(&mut self, chunk_index: usize, ev: Event, row: Vec<f32>) -> Result<(), SourceError> {
        if self.is_duplicate(&ev) {
            return Ok(());
        }
        match self.policy {
            ReorderPolicy::Reject | ReorderPolicy::DropDuplicates => {
                if ev.time < self.last_time {
                    return Err(SourceError::at_chunk(
                        chunk_index,
                        format!(
                            "out-of-order event (src {} dst {} time {}) under {} policy: \
                             stream watermark is {}",
                            ev.src.0, ev.dst.0, ev.time, self.policy, self.last_time
                        ),
                    ));
                }
                self.release(ev, row);
            }
            ReorderPolicy::BufferedReorder(window) => {
                if ev.time < self.last_time {
                    return Err(SourceError::at_chunk(
                        chunk_index,
                        format!(
                            "event (src {} dst {} time {}) arrived {} behind the released \
                             watermark: displacement exceeds the reorder window of {}",
                            ev.src.0,
                            ev.dst.0,
                            ev.time,
                            self.last_time - ev.time,
                            window
                        ),
                    ));
                }
                // Stable sorted insert: after all entries with time <=
                // ev.time, so equal timestamps keep arrival order.
                let pos = self.pending.partition_point(|(o, _)| o.time <= ev.time);
                self.pending.insert(pos, (ev, row));
                if self.pending.len() > window {
                    let (oldest, oldest_row) = self.pending.pop_front().unwrap_or_else(|| {
                        unreachable!("pending is non-empty: an event was just inserted")
                    });
                    self.release(oldest, oldest_row);
                }
            }
        }
        Ok(())
    }

    /// Pulls inner chunks until a full output chunk is staged or the
    /// inner stream ends.
    fn fill(&mut self) -> Result<(), SourceError> {
        let target = self.chunk_size();
        let dim = self.feature_dim();
        while self.staged_events.len() < target && !self.input_done {
            match self.inner.next_chunk()? {
                Some(chunk) => {
                    for (i, ev) in chunk.events.iter().enumerate() {
                        let row = if dim == 0 {
                            Vec::new()
                        } else {
                            chunk.features[i * dim..(i + 1) * dim].to_vec()
                        };
                        self.accept(chunk.index, *ev, row)?;
                    }
                }
                None => {
                    self.input_done = true;
                    while let Some((ev, row)) = self.pending.pop_front() {
                        self.release(ev, row);
                    }
                }
            }
        }
        Ok(())
    }
}

impl<S: EventSource> EventSource for ReorderingSource<S> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    /// The *normalized* event count (post-dedup), as declared at
    /// construction — not the raw inner count.
    fn num_events(&self) -> usize {
        self.declared_events
    }

    fn feature_dim(&self) -> usize {
        self.inner.feature_dim()
    }

    fn chunk_size(&self) -> usize {
        self.inner.chunk_size()
    }

    fn next_chunk(&mut self) -> Result<Option<EventChunk>, SourceError> {
        self.fill()?;
        if self.staged_events.is_empty() {
            if self.emitted != self.declared_events {
                return Err(SourceError::new(format!(
                    "normalized stream ended after {} events but {} were declared \
                     (policy {})",
                    self.emitted, self.declared_events, self.policy
                )));
            }
            return Ok(None);
        }
        let take = self.staged_events.len().min(self.chunk_size());
        let dim = self.feature_dim();
        let events: Vec<Event> = self.staged_events.drain(..take).collect();
        let features: Vec<f32> = self.staged_features.drain(..take * dim).collect();
        let chunk = EventChunk {
            index: self.next_index,
            base: self.emitted,
            events,
            features,
        };
        self.next_index += 1;
        self.emitted += chunk.events.len();
        Ok(Some(chunk))
    }

    fn reset(&mut self) -> Result<(), SourceError> {
        self.inner.reset()?;
        self.pending.clear();
        self.recent.clear();
        self.staged_events.clear();
        self.staged_features.clear();
        self.emitted = 0;
        self.next_index = 0;
        self.last_time = f64::NEG_INFINITY;
        self.input_done = false;
        Ok(())
    }

    fn name(&self) -> String {
        format!("{}+{}", self.inner.name(), self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_util::{check, prop_assert, DetRng};

    /// Minimal in-memory source over explicit event/feature vectors —
    /// unlike `InMemorySource` it accepts disordered streams, which is
    /// the whole point here.
    struct VecSource {
        num_nodes: usize,
        feature_dim: usize,
        chunk_size: usize,
        events: Vec<Event>,
        features: Vec<f32>,
        cursor: usize,
    }

    impl VecSource {
        fn new(
            num_nodes: usize,
            feature_dim: usize,
            chunk_size: usize,
            events: Vec<Event>,
            features: Vec<f32>,
        ) -> Self {
            VecSource {
                num_nodes,
                feature_dim,
                chunk_size,
                events,
                features,
                cursor: 0,
            }
        }
    }

    impl EventSource for VecSource {
        fn num_nodes(&self) -> usize {
            self.num_nodes
        }
        fn num_events(&self) -> usize {
            self.events.len()
        }
        fn feature_dim(&self) -> usize {
            self.feature_dim
        }
        fn chunk_size(&self) -> usize {
            self.chunk_size
        }
        fn next_chunk(&mut self) -> Result<Option<EventChunk>, SourceError> {
            if self.cursor >= self.events.len() {
                return Ok(None);
            }
            let base = self.cursor;
            let end = (base + self.chunk_size).min(self.events.len());
            let chunk = EventChunk {
                index: base / self.chunk_size,
                base,
                events: self.events[base..end].to_vec(),
                features: self.features[base * self.feature_dim..end * self.feature_dim].to_vec(),
            };
            self.cursor = end;
            Ok(Some(chunk))
        }
        fn reset(&mut self) -> Result<(), SourceError> {
            self.cursor = 0;
            Ok(())
        }
    }

    /// Strictly increasing timestamps, distinct node pairs per step.
    fn sorted_events(g: &mut cascade_util::Gen, n: usize, nodes: usize) -> Vec<Event> {
        let mut t = 0.0f64;
        (0..n)
            .map(|_| {
                t += g.f64_in(0.001..1.0);
                Event::new(g.usize_in(0..nodes) as u32, g.usize_in(0..nodes) as u32, t)
            })
            .collect()
    }

    /// Permutes events (and their feature rows) within consecutive
    /// blocks of `window` — max displacement `window - 1`.
    fn shuffle_within_window(
        rng: &mut DetRng,
        events: &mut [Event],
        features: &mut [f32],
        dim: usize,
        window: usize,
    ) {
        let n = events.len();
        let mut start = 0;
        while start < n {
            let end = (start + window).min(n);
            for i in (start + 1..end).rev() {
                let j = start + rng.index(i - start + 1);
                events.swap(i, j);
                for k in 0..dim {
                    features.swap(i * dim + k, j * dim + k);
                }
            }
            start = end;
        }
    }

    fn drain_all(src: &mut impl EventSource) -> Result<(Vec<Event>, Vec<f32>), SourceError> {
        let mut events = Vec::new();
        let mut features = Vec::new();
        let mut next_base = 0usize;
        let mut next_index = 0usize;
        while let Some(chunk) = src.next_chunk()? {
            assert_eq!(chunk.index, next_index, "chunk indices are contiguous");
            assert_eq!(chunk.base, next_base, "chunk bases are contiguous");
            next_index += 1;
            next_base += chunk.events.len();
            events.extend_from_slice(&chunk.events);
            features.extend_from_slice(&chunk.features);
        }
        Ok((events, features))
    }

    fn bits_equal(a: &[Event], fa: &[f32], b: &[Event], fb: &[f32]) -> bool {
        a.len() == b.len()
            && fa.len() == fb.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.src == y.src && x.dst == y.dst && x.time.to_bits() == y.time.to_bits()
            })
            && fa.iter().zip(fb).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn buffered_reorder_restores_shuffled_stream_bit_identically() {
        check("buffered_reorder_restores_sorted", |g| {
            let n = g.usize_in(20..400);
            let dim = g.usize_in(0..5);
            let window = g.usize_in(2..32);
            let chunk = g.usize_in(1..64);
            let events = sorted_events(g, n, 50);
            let features = g.vec_f32(n * dim, -1.0..1.0);

            let mut shuffled = events.clone();
            let mut shuffled_feats = features.clone();
            shuffle_within_window(g.rng(), &mut shuffled, &mut shuffled_feats, dim, window);

            let src = VecSource::new(50, dim, chunk, shuffled, shuffled_feats);
            let mut reorder = ReorderingSource::new(src, ReorderPolicy::BufferedReorder(window));
            let (got, got_feats) = drain_all(&mut reorder).map_err(|e| e.to_string())?;
            prop_assert!(
                bits_equal(&got, &got_feats, &events, &features),
                "normalized stream differs from the sorted original \
                 (n={} dim={} window={} chunk={})",
                n,
                dim,
                window,
                chunk
            );
            Ok(())
        });
    }

    #[test]
    fn buffered_reorder_drops_injected_duplicates() {
        check("buffered_reorder_drops_duplicates", |g| {
            let n = g.usize_in(30..200);
            let dim = g.usize_in(0..4);
            let window = g.usize_in(3..24);
            let events = sorted_events(g, n, 40);
            let features = g.vec_f32(n * dim, -1.0..1.0);

            let mut shuffled = events.clone();
            let mut shuffled_feats = features.clone();
            shuffle_within_window(g.rng(), &mut shuffled, &mut shuffled_feats, dim, window);

            // Duplicate every k-th event right after itself: the copy is
            // displaced by at most the window like everything else.
            let k = g.usize_in(3..9);
            let mut dirty = Vec::new();
            let mut dirty_feats = Vec::new();
            for (i, ev) in shuffled.iter().enumerate() {
                dirty.push(*ev);
                dirty_feats.extend_from_slice(&shuffled_feats[i * dim..(i + 1) * dim]);
                if i % k == k - 1 {
                    dirty.push(*ev);
                    dirty_feats.extend_from_slice(&shuffled_feats[i * dim..(i + 1) * dim]);
                }
            }

            let src = VecSource::new(40, dim, 32, dirty, dirty_feats);
            let mut reorder = ReorderingSource::with_declared_events(
                src,
                ReorderPolicy::BufferedReorder(window),
                n,
            );
            let (got, got_feats) = drain_all(&mut reorder).map_err(|e| e.to_string())?;
            prop_assert!(
                bits_equal(&got, &got_feats, &events, &features),
                "deduped stream differs from the original (n={} window={} k={})",
                n,
                window,
                k
            );
            Ok(())
        });
    }

    #[test]
    fn drop_duplicates_policy_removes_repeats_in_order() {
        let events = vec![
            Event::new(0u32, 1u32, 1.0),
            Event::new(0u32, 1u32, 1.0),
            Event::new(2u32, 3u32, 2.0),
            Event::new(2u32, 3u32, 2.0),
            Event::new(4u32, 0u32, 3.0),
        ];
        let src = VecSource::new(5, 0, 2, events, Vec::new());
        let mut dedup =
            ReorderingSource::with_declared_events(src, ReorderPolicy::DropDuplicates, 3);
        let (got, _) = drain_all(&mut dedup).expect("in-order dedup never fails");
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].time, 1.0);
        assert_eq!(got[1].time, 2.0);
        assert_eq!(got[2].time, 3.0);
    }

    #[test]
    fn reject_policy_errors_on_disorder_and_passes_duplicates() {
        let disordered = vec![Event::new(0u32, 1u32, 2.0), Event::new(1u32, 2u32, 1.0)];
        let src = VecSource::new(3, 0, 8, disordered, Vec::new());
        let mut reject = ReorderingSource::new(src, ReorderPolicy::Reject);
        let err = drain_all(&mut reject).expect_err("regression must be rejected");
        assert!(err.message.contains("out-of-order"));

        let duplicated = vec![Event::new(0u32, 1u32, 1.0), Event::new(0u32, 1u32, 1.0)];
        let src = VecSource::new(3, 0, 8, duplicated, Vec::new());
        let mut reject = ReorderingSource::new(src, ReorderPolicy::Reject);
        let (got, _) = drain_all(&mut reject).expect("duplicates pass under Reject");
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn buffered_reorder_errors_when_window_exceeded() {
        // Displacement of 4 against a window of 2: by the time the late
        // event arrives, a newer one has already been released.
        let events = vec![
            Event::new(0u32, 1u32, 2.0),
            Event::new(1u32, 2u32, 3.0),
            Event::new(2u32, 3u32, 4.0),
            Event::new(3u32, 4u32, 5.0),
            Event::new(4u32, 0u32, 1.0),
        ];
        let src = VecSource::new(5, 0, 8, events, Vec::new());
        let mut reorder = ReorderingSource::new(src, ReorderPolicy::BufferedReorder(2));
        let err = drain_all(&mut reorder).expect_err("window excess must error");
        assert!(err.message.contains("reorder window"));
    }

    #[test]
    fn declared_count_mismatch_is_an_error() {
        let events = vec![Event::new(0u32, 1u32, 1.0), Event::new(0u32, 1u32, 1.0)];
        let src = VecSource::new(2, 0, 8, events, Vec::new());
        // Declares 2 events but dedup yields 1.
        let mut dedup = ReorderingSource::new(src, ReorderPolicy::DropDuplicates);
        let err = drain_all(&mut dedup).expect_err("count mismatch must surface");
        assert!(err.message.contains("declared"));
    }

    #[test]
    fn reset_replays_the_normalized_stream_identically() {
        check("reorder_reset_replays", |g| {
            let n = g.usize_in(10..120);
            let window = g.usize_in(2..16);
            let events = sorted_events(g, n, 20);
            let mut shuffled = events.clone();
            shuffle_within_window(g.rng(), &mut shuffled, &mut [], 0, window);
            let src = VecSource::new(20, 0, 16, shuffled, Vec::new());
            let mut reorder = ReorderingSource::new(src, ReorderPolicy::BufferedReorder(window));
            let (first, _) = drain_all(&mut reorder).map_err(|e| e.to_string())?;
            reorder.reset().map_err(|e| e.to_string())?;
            let (second, _) = drain_all(&mut reorder).map_err(|e| e.to_string())?;
            prop_assert!(
                bits_equal(&first, &[], &second, &[]),
                "reset replay diverged (n={} window={})",
                n,
                window
            );
            Ok(())
        });
    }
}
