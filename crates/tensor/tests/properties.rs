//! Property-based tests for tensor algebra and autograd, running on the
//! in-repo `cascade-util` harness (seeded cases, `CASCADE_PROP_CASES`
//! controls the count, default 64).

use cascade_tensor::{cosine_similarity, Shape, Tensor};
use cascade_util::{check, prop_assert, prop_assert_eq, Gen};

fn small_vec(g: &mut Gen, len: usize) -> Vec<f32> {
    g.vec_f32(len, -10.0..10.0)
}

#[test]
fn add_commutes() {
    check("add_commutes", |g| {
        let ta = Tensor::from_vec(small_vec(g, 12), [3, 4]);
        let tb = Tensor::from_vec(small_vec(g, 12), [3, 4]);
        prop_assert_eq!(ta.add(&tb).to_vec(), tb.add(&ta).to_vec());
        Ok(())
    });
}

#[test]
fn mul_commutes() {
    check("mul_commutes", |g| {
        let ta = Tensor::from_vec(small_vec(g, 8), [8]);
        let tb = Tensor::from_vec(small_vec(g, 8), [8]);
        prop_assert_eq!(ta.mul(&tb).to_vec(), tb.mul(&ta).to_vec());
        Ok(())
    });
}

#[test]
fn add_associates_approximately() {
    check("add_associates_approximately", |g| {
        let ta = Tensor::from_vec(small_vec(g, 6), [6]);
        let tb = Tensor::from_vec(small_vec(g, 6), [6]);
        let tc = Tensor::from_vec(small_vec(g, 6), [6]);
        let lhs = ta.add(&tb).add(&tc).to_vec();
        let rhs = ta.add(&tb.add(&tc)).to_vec();
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-4, "{} vs {}", x, y);
        }
        Ok(())
    });
}

#[test]
fn matmul_identity_is_neutral() {
    check("matmul_identity_is_neutral", |g| {
        let t = Tensor::from_vec(small_vec(g, 9), [3, 3]);
        let i = Tensor::eye(3);
        let lhs = t.matmul(&i).to_vec();
        for (x, y) in lhs.iter().zip(t.to_vec().iter()) {
            prop_assert!((x - y).abs() < 1e-5, "{} vs {}", x, y);
        }
        Ok(())
    });
}

#[test]
fn matmul_distributes_over_add() {
    check("matmul_distributes_over_add", |g| {
        let ta = Tensor::from_vec(small_vec(g, 6), [2, 3]);
        let tb = Tensor::from_vec(small_vec(g, 6), [3, 2]);
        let tc = Tensor::from_vec(small_vec(g, 6), [3, 2]);
        let lhs = ta.matmul(&tb.add(&tc)).to_vec();
        let rhs = ta.matmul(&tb).add(&ta.matmul(&tc)).to_vec();
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
        Ok(())
    });
}

#[test]
fn transpose_involution() {
    check("transpose_involution", |g| {
        let a = small_vec(g, 12);
        let t = Tensor::from_vec(a.clone(), [3, 4]);
        prop_assert_eq!(t.transpose().transpose().to_vec(), a);
        Ok(())
    });
}

#[test]
fn softmax_rows_are_distributions() {
    check("softmax_rows_are_distributions", |g| {
        let s = Tensor::from_vec(small_vec(g, 12), [3, 4]).softmax();
        let v = s.to_vec();
        for r in 0..3 {
            let sum: f32 = v[r * 4..(r + 1) * 4].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {} sums to {}", r, sum);
            prop_assert!(v[r * 4..(r + 1) * 4].iter().all(|&x| x >= 0.0));
        }
        Ok(())
    });
}

#[test]
fn sum_axis_agrees_with_total() {
    check("sum_axis_agrees_with_total", |g| {
        let t = Tensor::from_vec(small_vec(g, 12), [3, 4]);
        let via_axis: f32 = t.sum_axis(0).sum().item();
        let total = t.sum().item();
        prop_assert!((via_axis - total).abs() < 1e-3, "{} vs {}", via_axis, total);
        Ok(())
    });
}

#[test]
fn broadcast_is_consistent_with_explicit_tile() {
    check("broadcast_is_consistent_with_explicit_tile", |g| {
        let row = small_vec(g, 4);
        let mat = small_vec(g, 12);
        let m = Tensor::from_vec(mat.clone(), [3, 4]);
        let r = Tensor::from_vec(row.clone(), [4]);
        let tiled: Vec<f32> = (0..12).map(|i| mat[i] + row[i % 4]).collect();
        prop_assert_eq!(m.add(&r).to_vec(), tiled);
        Ok(())
    });
}

#[test]
fn autograd_matches_finite_differences() {
    check("autograd_matches_finite_differences", |g| {
        let x0 = g.f32_in(-2.0..2.0);
        let x1 = g.f32_in(-2.0..2.0);
        let f = |v: &[f32]| {
            let t = Tensor::from_vec(v.to_vec(), [2]);
            t.tanh().mul(&t.sigmoid()).add(&t.square()).sum()
        };
        let t = Tensor::from_vec(vec![x0, x1], [2]).requires_grad();
        t.tanh().mul(&t.sigmoid()).add(&t.square()).sum().backward();
        let grad = t.grad().unwrap();
        let eps = 1e-2f32;
        for i in 0..2 {
            let mut p = [x0, x1];
            p[i] += eps;
            let mut m = [x0, x1];
            m[i] -= eps;
            let numeric = (f(&p).item() - f(&m).item()) / (2.0 * eps);
            prop_assert!(
                (grad[i] - numeric).abs() < 0.05,
                "analytic {} numeric {}",
                grad[i],
                numeric
            );
        }
        Ok(())
    });
}

#[test]
fn index_select_roundtrip() {
    check("index_select_roundtrip", |g| {
        let t = Tensor::from_vec(small_vec(g, 12), [3, 4]);
        let idx_len = g.usize_in(1..6);
        let idx = g.vec_usize(idx_len, 0..3);
        let gathered = t.index_select(&idx);
        prop_assert_eq!(gathered.dims(), &[idx.len(), 4]);
        for (r, &i) in idx.iter().enumerate() {
            prop_assert_eq!(gathered.row(r), t.row(i));
        }
        Ok(())
    });
}

#[test]
fn cosine_similarity_bounded() {
    check("cosine_similarity_bounded", |g| {
        let a = small_vec(g, 8);
        let b = small_vec(g, 8);
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0001..=1.0001).contains(&s), "cosine {}", s);
        Ok(())
    });
}

#[test]
fn cosine_similarity_scale_invariant() {
    check("cosine_similarity_scale_invariant", |g| {
        let a = small_vec(g, 8);
        let k = g.f32_in(0.1..10.0);
        let scaled: Vec<f32> = a.iter().map(|x| x * k).collect();
        let s = cosine_similarity(&a, &scaled);
        // Zero vectors are defined as similarity 1.
        prop_assert!((s - 1.0).abs() < 1e-3, "cosine {}", s);
        Ok(())
    });
}

#[test]
fn shape_broadcast_symmetric() {
    check("shape_broadcast_symmetric", |g| {
        let d0 = g.usize_in(1..5);
        let d1 = g.usize_in(1..5);
        let a = Shape::new(vec![d0, 1]);
        let b = Shape::new(vec![1, d1]);
        prop_assert_eq!(a.broadcast(&b), b.broadcast(&a));
        prop_assert_eq!(a.broadcast(&b), Some(Shape::new(vec![d0, d1])));
        Ok(())
    });
}
