//! Property-based tests for tensor algebra and autograd.

use cascade_tensor::{cosine_similarity, Shape, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #[test]
    fn add_commutes(a in small_vec(12), b in small_vec(12)) {
        let ta = Tensor::from_vec(a, [3, 4]);
        let tb = Tensor::from_vec(b, [3, 4]);
        prop_assert_eq!(ta.add(&tb).to_vec(), tb.add(&ta).to_vec());
    }

    #[test]
    fn mul_commutes(a in small_vec(8), b in small_vec(8)) {
        let ta = Tensor::from_vec(a, [8]);
        let tb = Tensor::from_vec(b, [8]);
        prop_assert_eq!(ta.mul(&tb).to_vec(), tb.mul(&ta).to_vec());
    }

    #[test]
    fn add_associates_approximately(a in small_vec(6), b in small_vec(6), c in small_vec(6)) {
        let ta = Tensor::from_vec(a, [6]);
        let tb = Tensor::from_vec(b, [6]);
        let tc = Tensor::from_vec(c, [6]);
        let lhs = ta.add(&tb).add(&tc).to_vec();
        let rhs = ta.add(&tb.add(&tc)).to_vec();
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_identity_is_neutral(a in small_vec(9)) {
        let t = Tensor::from_vec(a, [3, 3]);
        let i = Tensor::eye(3);
        let lhs = t.matmul(&i).to_vec();
        for (x, y) in lhs.iter().zip(t.to_vec().iter()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_distributes_over_add(a in small_vec(6), b in small_vec(6), c in small_vec(6)) {
        let ta = Tensor::from_vec(a, [2, 3]);
        let tb = Tensor::from_vec(b, [3, 2]);
        let tc = Tensor::from_vec(c, [3, 2]);
        let lhs = ta.matmul(&tb.add(&tc)).to_vec();
        let rhs = ta.matmul(&tb).add(&ta.matmul(&tc)).to_vec();
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn transpose_involution(a in small_vec(12)) {
        let t = Tensor::from_vec(a.clone(), [3, 4]);
        prop_assert_eq!(t.transpose().transpose().to_vec(), a);
    }

    #[test]
    fn softmax_rows_are_distributions(a in small_vec(12)) {
        let s = Tensor::from_vec(a, [3, 4]).softmax();
        let v = s.to_vec();
        for r in 0..3 {
            let sum: f32 = v[r * 4..(r + 1) * 4].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(v[r * 4..(r + 1) * 4].iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn sum_axis_agrees_with_total(a in small_vec(12)) {
        let t = Tensor::from_vec(a, [3, 4]);
        let via_axis: f32 = t.sum_axis(0).sum().item();
        let total = t.sum().item();
        prop_assert!((via_axis - total).abs() < 1e-3);
    }

    #[test]
    fn broadcast_is_consistent_with_explicit_tile(row in small_vec(4), mat in small_vec(12)) {
        let m = Tensor::from_vec(mat.clone(), [3, 4]);
        let r = Tensor::from_vec(row.clone(), [4]);
        let tiled: Vec<f32> = (0..12).map(|i| mat[i] + row[i % 4]).collect();
        prop_assert_eq!(m.add(&r).to_vec(), tiled);
    }

    #[test]
    fn autograd_matches_finite_differences(x0 in -2.0f32..2.0, x1 in -2.0f32..2.0) {
        let f = |v: &[f32]| {
            let t = Tensor::from_vec(v.to_vec(), [2]);
            t.tanh().mul(&t.sigmoid()).add(&t.square()).sum()
        };
        let t = Tensor::from_vec(vec![x0, x1], [2]).requires_grad();
        t.tanh().mul(&t.sigmoid()).add(&t.square()).sum().backward();
        let g = t.grad().unwrap();
        let eps = 1e-2f32;
        for i in 0..2 {
            let mut p = [x0, x1];
            p[i] += eps;
            let mut m = [x0, x1];
            m[i] -= eps;
            let numeric = (f(&p).item() - f(&m).item()) / (2.0 * eps);
            prop_assert!((g[i] - numeric).abs() < 0.05, "analytic {} numeric {}", g[i], numeric);
        }
    }

    #[test]
    fn index_select_roundtrip(a in small_vec(12), idx in proptest::collection::vec(0usize..3, 1..6)) {
        let t = Tensor::from_vec(a, [3, 4]);
        let g = t.index_select(&idx);
        prop_assert_eq!(g.dims(), &[idx.len(), 4]);
        for (r, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(r), t.row(i));
        }
    }

    #[test]
    fn cosine_similarity_bounded(a in small_vec(8), b in small_vec(8)) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0001..=1.0001).contains(&s));
    }

    #[test]
    fn cosine_similarity_scale_invariant(a in small_vec(8), k in 0.1f32..10.0) {
        let scaled: Vec<f32> = a.iter().map(|x| x * k).collect();
        let s = cosine_similarity(&a, &scaled);
        // Zero vectors are defined as similarity 1.
        prop_assert!((s - 1.0).abs() < 1e-3);
    }

    #[test]
    fn shape_broadcast_symmetric(d0 in 1usize..5, d1 in 1usize..5) {
        let a = Shape::new(vec![d0, 1]);
        let b = Shape::new(vec![1, d1]);
        prop_assert_eq!(a.broadcast(&b), b.broadcast(&a));
        prop_assert_eq!(a.broadcast(&b), Some(Shape::new(vec![d0, d1])));
    }
}
