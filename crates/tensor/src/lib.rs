#![warn(missing_docs)]
//! # cascade-tensor
//!
//! Dense `f32` tensors with reverse-mode automatic differentiation — the
//! numerical substrate of the [Cascade](https://doi.org/10.1145/3676641.3716250)
//! TGNN training framework reproduction.
//!
//! The design is a deliberately small dynamic-graph engine in the spirit of
//! PyTorch: every operation records its parents and a backward closure;
//! calling [`Tensor::backward`] on a scalar loss topologically sorts the
//! graph and accumulates gradients into every tensor created with
//! [`Tensor::requires_grad`].
//!
//! # Examples
//!
//! A two-parameter linear regression step:
//!
//! ```
//! use cascade_tensor::Tensor;
//!
//! let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4, 1]);
//! let t = Tensor::from_vec(vec![3.0, 5.0, 7.0, 9.0], [4, 1]);
//! let w = Tensor::from_vec(vec![0.0], [1, 1]).requires_grad();
//! let b = Tensor::zeros([1]).requires_grad();
//!
//! let pred = x.matmul(&w).add(&b);
//! let loss = pred.sub(&t).square().mean();
//! loss.backward();
//!
//! assert!(w.grad().is_some());
//! assert!(b.grad().is_some());
//! ```
//!
//! # Scope
//!
//! Only what memory-based TGNNs need: broadcasting elementwise algebra,
//! rank-2 matmul, reductions, softmax, row gather/scatter, concatenation,
//! fused TGNN kernels (GRU cell, time encoding, attention scoring), and a
//! handful of activations. Tensors are `Send + Sync` (`Arc`-backed
//! storage) so a batch's independent event shards can be evaluated on
//! worker threads; the deterministic shard-parallel reduction
//! [`Tensor::sharded_sum_scaled`] keeps gradients bit-identical at any
//! thread count by merging per-shard gradient sinks in fixed shard-index
//! order.
//!
//! # Memory model
//!
//! Intermediate buffers — op outputs, gradients, scratch — come from a
//! thread-local recycling [`arena`] instead of the global allocator. When
//! a tensor's last handle drops (the autograd graph dying at the end of a
//! batch), its buffers flow back into the arena and are reused by the next
//! batch's ops. Reads take cheap `Arc` snapshots ([`Tensor::data`]), so
//! forward passes over frozen parameters never hold a lock; writes go
//! through copy-on-write. Call [`arena::reset`] at batch boundaries to
//! trim the pool to its steady-state working set.

pub mod arena;

mod autograd;
mod grad;
mod ops;
mod shape;
mod tensor;

pub use grad::AutogradError;
pub use shape::Shape;
pub use tensor::{DataRef, Tensor};

/// Cosine similarity between two equal-length vectors.
///
/// Returns 1.0 for two zero vectors (a stabilized node whose memory never
/// moved is by definition similar to itself), and 0.0 when exactly one of
/// the vectors is zero.
///
/// This runs outside the autograd graph: the SG-Filter of the Cascade
/// framework consumes raw memory snapshots.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use cascade_tensor::cosine_similarity;
///
/// let sim = cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]);
/// assert!((sim - 1.0).abs() < 1e-6);
/// assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
/// ```
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity length mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_similarity_basics() {
        assert!((cosine_similarity(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn cosine_similarity_rejects_ragged() {
        let _ = cosine_similarity(&[1.0], &[1.0, 2.0]);
    }
}
