//! Tensor shapes and the index arithmetic used by every operation.

use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor).
///
/// A shape is an ordered list of dimension sizes in row-major order. A
/// zero-dimensional shape (`Shape::scalar()`) denotes a scalar holding one
/// element.
///
/// # Examples
///
/// ```
/// use cascade_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3]);
/// assert_eq!(s.len(), 6);
/// assert_eq!(s.ndim(), 2);
/// assert_eq!(s.dims(), &[2, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from explicit dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates the zero-dimensional (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension sizes in row-major order.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// `true` if the shape contains zero elements (some dimension is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides for this shape (in elements, not bytes).
    ///
    /// ```
    /// use cascade_tensor::Shape;
    /// assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Computes the broadcast of two shapes following NumPy semantics.
    ///
    /// Dimensions are aligned from the trailing side; a dimension of size 1
    /// stretches to match the other operand.
    ///
    /// Returns `None` if the shapes are incompatible.
    ///
    /// ```
    /// use cascade_tensor::Shape;
    /// let a = Shape::new(vec![4, 1]);
    /// let b = Shape::new(vec![3]);
    /// assert_eq!(a.broadcast(&b), Some(Shape::new(vec![4, 3])));
    /// ```
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let n = self.ndim().max(other.ndim());
        let mut dims = vec![0; n];
        for i in 0..n {
            let a = dim_from_end(&self.dims, i);
            let b = dim_from_end(&other.dims, i);
            let d = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return None;
            };
            dims[n - 1 - i] = d;
        }
        Some(Shape { dims })
    }
}

fn dim_from_end(dims: &[usize], i: usize) -> usize {
    if i < dims.len() {
        dims[dims.len() - 1 - i]
    } else {
        1
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

/// Iterates over all multi-dimensional indices of `shape` in row-major
/// order, mapping each to the flat offset of a *broadcast source* with the
/// given source dims.
///
/// Used to implement broadcasting without materializing the expanded
/// operand.
pub(crate) fn broadcast_offset(
    out_idx: &[usize],
    src_dims: &[usize],
    src_strides: &[usize],
) -> usize {
    let offset_dims = out_idx.len() - src_dims.len();
    let mut off = 0;
    for (i, (&d, &s)) in src_dims.iter().zip(src_strides.iter()).enumerate() {
        let idx = out_idx[offset_dims + i];
        // A size-1 source dim is stretched: index 0 regardless of out index.
        off += if d == 1 { 0 } else { idx * s };
    }
    off
}

/// Advances a row-major multi-index in place; returns `false` on wrap-around.
pub(crate) fn advance_index(idx: &mut [usize], dims: &[usize]) -> bool {
    for i in (0..dims.len()).rev() {
        idx[i] += 1;
        if idx[i] < dims[i] {
            return true;
        }
        idx[i] = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.len(), 1);
        assert_eq!(s.ndim(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn broadcast_matching() {
        let a = Shape::new(vec![2, 3]);
        assert_eq!(a.broadcast(&a), Some(a.clone()));
    }

    #[test]
    fn broadcast_row_vector() {
        let a = Shape::new(vec![4, 3]);
        let b = Shape::new(vec![3]);
        assert_eq!(a.broadcast(&b), Some(Shape::new(vec![4, 3])));
        assert_eq!(b.broadcast(&a), Some(Shape::new(vec![4, 3])));
    }

    #[test]
    fn broadcast_column_vector() {
        let a = Shape::new(vec![4, 1]);
        let b = Shape::new(vec![1, 3]);
        assert_eq!(a.broadcast(&b), Some(Shape::new(vec![4, 3])));
    }

    #[test]
    fn broadcast_scalar() {
        let a = Shape::new(vec![2, 2]);
        let s = Shape::scalar();
        assert_eq!(a.broadcast(&s), Some(a.clone()));
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Shape::new(vec![2, 3]);
        let b = Shape::new(vec![2, 4]);
        assert_eq!(a.broadcast(&b), None);
    }

    #[test]
    fn advance_index_covers_all() {
        let dims = [2, 3];
        let mut idx = [0, 0];
        let mut count = 1;
        while advance_index(&mut idx, &dims) {
            count += 1;
        }
        assert_eq!(count, 6);
    }

    #[test]
    fn broadcast_offset_stretches_unit_dims() {
        // src shape [1, 3] with strides [3, 1] broadcast to out [2, 3]
        let src_dims = [1, 3];
        let src_strides = [3, 1];
        assert_eq!(broadcast_offset(&[1, 2], &src_dims, &src_strides), 2);
        assert_eq!(broadcast_offset(&[0, 2], &src_dims, &src_strides), 2);
    }
}
