//! Gradient routing for the thread-capable autograd engine.
//!
//! The backward pass threads a [`GradCtx`] through every op closure. In the
//! ordinary (serial) case the context is a no-op passthrough: gradients
//! accumulate directly into each tensor's grad slot, exactly as the
//! original single-threaded engine did. In the shard-parallel case
//! ([`Tensor::sharded_sum_scaled`]) each worker runs its shard's backward
//! pass with a private [`GradSink`] that captures the gradients of every
//! *shared* tensor — trainable leaves (parameters) and explicit barrier
//! tensors — instead of touching the shared grad slots concurrently. After
//! all workers join, the sinks are merged serially in shard-index order, so
//! every float accumulation happens in one fixed order regardless of how
//! many threads ran the shards. That ordering argument is what makes
//! `compute_threads = N` bit-identical to `compute_threads = 1`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Typed error for the fallible backward entry points.
///
/// [`Tensor::backward`] keeps its panicking contract for library misuse;
/// the pipelined executor's hot path calls [`Tensor::try_backward`] and
/// maps this error into a `PipelineError` instead of unwinding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AutogradError {
    /// `backward()` was called on a tensor that is not a scalar.
    NonScalarOutput {
        /// Display form of the offending shape.
        shape: String,
    },
    /// `backward_with()` received an upstream gradient of the wrong length.
    UpstreamLengthMismatch {
        /// The tensor's element count.
        expected: usize,
        /// The upstream gradient's length.
        got: usize,
    },
}

impl fmt::Display for AutogradError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutogradError::NonScalarOutput { shape } => {
                write!(f, "backward() requires a scalar output, got {shape}")
            }
            AutogradError::UpstreamLengthMismatch { expected, got } => {
                write!(
                    f,
                    "upstream gradient length mismatch: tensor has {expected} elements, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for AutogradError {}

/// Per-shard gradient buffer: gradients destined for tensors shared across
/// shards are parked here instead of being accumulated concurrently.
///
/// Keyed by tensor id in a `BTreeMap` so merging iterates in id order —
/// ids are assigned in creation order, and every sink-eligible tensor
/// (parameters, barrier tensors) is created on the driver thread before
/// any worker runs, so the merge order is identical across runs and thread
/// counts.
pub(crate) struct GradSink {
    slots: BTreeMap<u64, (Tensor, Vec<f32>)>,
}

impl GradSink {
    pub(crate) fn new() -> GradSink {
        GradSink {
            slots: BTreeMap::new(),
        }
    }

    /// Accumulates `g` into this sink's slot for `t`.
    pub(crate) fn accumulate(&mut self, t: &Tensor, g: &[f32]) {
        match self.slots.get_mut(&t.id()) {
            Some((_, existing)) => {
                for (e, &v) in existing.iter_mut().zip(g) {
                    *e += v;
                }
            }
            None => {
                self.slots
                    .insert(t.id(), (t.clone(), crate::arena::take_copy(g)));
            }
        }
    }

    /// Owned-buffer variant of [`GradSink::accumulate`]: the buffer becomes
    /// the slot when empty, else it is added and recycled.
    pub(crate) fn accumulate_owned(&mut self, t: &Tensor, g: Vec<f32>) {
        match self.slots.get_mut(&t.id()) {
            Some((_, existing)) => {
                for (e, &v) in existing.iter_mut().zip(g.iter()) {
                    *e += v;
                }
                crate::arena::recycle(g);
            }
            None => {
                self.slots.insert(t.id(), (t.clone(), g));
            }
        }
    }

    /// Flushes every parked gradient into its tensor's real grad slot, in
    /// ascending id order.
    pub(crate) fn merge(self) {
        for (_, (tensor, grad)) in self.slots {
            tensor.accumulate_grad_owned(grad);
        }
    }
}

/// The routing context threaded through every backward closure.
pub(crate) struct GradCtx<'a> {
    sink: Option<&'a mut GradSink>,
    barrier: Option<&'a BTreeSet<u64>>,
}

impl<'a> GradCtx<'a> {
    /// Direct accumulation: the serial engine's behavior.
    pub(crate) fn direct() -> GradCtx<'static> {
        GradCtx {
            sink: None,
            barrier: None,
        }
    }

    /// Shard-worker context: leaf and barrier gradients divert into
    /// `sink`, and the traversal stops at `barrier` ids.
    pub(crate) fn sharded(sink: &'a mut GradSink, barrier: &'a BTreeSet<u64>) -> GradCtx<'a> {
        GradCtx {
            sink: Some(sink),
            barrier: Some(barrier),
        }
    }

    /// Whether the backward traversal must not descend past `id` (it is a
    /// shared subgraph boundary that finishes serially on the driver).
    pub(crate) fn stops_at(&self, id: u64) -> bool {
        self.barrier.is_some_and(|b| b.contains(&id))
    }

    /// Accumulates `g` into `t`, diverting into the sink when this context
    /// belongs to a shard worker and `t` is shared (a leaf or a barrier).
    pub(crate) fn accumulate(&mut self, t: &Tensor, g: &[f32]) {
        if let Some(sink) = self.sink.as_deref_mut() {
            let shared = t.is_leaf() || self.barrier.is_some_and(|b| b.contains(&t.id()));
            if shared {
                sink.accumulate(t, g);
                return;
            }
        }
        t.accumulate_grad(g);
    }

    /// Owned-buffer variant of [`GradCtx::accumulate`]: moves the buffer
    /// into the destination slot instead of copying it, recycling it when
    /// the slot already holds a gradient.
    pub(crate) fn accumulate_owned(&mut self, t: &Tensor, g: Vec<f32>) {
        if let Some(sink) = self.sink.as_deref_mut() {
            let shared = t.is_leaf() || self.barrier.is_some_and(|b| b.contains(&t.id()));
            if shared {
                sink.accumulate_owned(t, g);
                return;
            }
        }
        t.accumulate_grad_owned(g);
    }
}

impl Tensor {
    /// Deterministic shard-parallel sum: `scale * Σᵢ shards[i]`, where every
    /// shard is a scalar (typically one shard's loss contribution).
    ///
    /// The forward value is a left-associated serial sum, so it does not
    /// depend on `threads`. The backward pass evaluates each shard's
    /// subgraph on `std::thread::scope` workers (contiguous shard chunks
    /// per worker), parking gradients of shared tensors in per-shard
    /// [`GradSink`]s, then merges the sinks serially in shard-index order —
    /// making gradients bit-identical at any thread count.
    ///
    /// `shared` lists tensors at the shard-subgraph boundary that are
    /// reachable from several shards *and* have autograd history of their
    /// own (for a memory TGNN: the mailbox-updated memory block). They
    /// become the node's parents, so after the merged gradients land, the
    /// outer engine continues through them serially. Trainable leaves need
    /// not be listed — leaf gradients always divert into the sinks.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or any shard is not a scalar.
    pub fn sharded_sum_scaled(
        shards: &[Tensor],
        scale: f32,
        shared: &[Tensor],
        threads: usize,
    ) -> Tensor {
        assert!(!shards.is_empty(), "sharded_sum_scaled of zero shards");
        for s in shards {
            assert_eq!(
                s.len(),
                1,
                "sharded_sum_scaled shard must be scalar, got {}",
                s.shape()
            );
        }
        let mut total = 0.0f32;
        for s in shards {
            total += s.item();
        }
        total *= scale;

        let shards: Vec<Tensor> = shards.to_vec();
        let barrier: BTreeSet<u64> = shared.iter().map(Tensor::id).collect();
        let parents: Vec<Tensor> = shared.to_vec();
        Tensor::from_op_rooted(
            vec![total],
            Shape::scalar(),
            parents,
            Box::new(move |_out, grad, _parents, _ctx| {
                let upstream = [grad[0] * scale];
                crate::arena::recycle(grad);
                let n = shards.len();
                let mut sinks: Vec<GradSink> = (0..n).map(|_| GradSink::new()).collect();
                let workers = threads.max(1).min(n);
                if workers <= 1 {
                    for (shard, sink) in shards.iter().zip(sinks.iter_mut()) {
                        let mut ctx = GradCtx::sharded(sink, &barrier);
                        shard
                            .run_backward(&upstream, &mut ctx)
                            .expect("shard upstream is scalar by construction");
                    }
                } else {
                    let chunk = n.div_ceil(workers);
                    let barrier = &barrier;
                    let upstream = &upstream;
                    std::thread::scope(|scope| {
                        for (sink_chunk, shard_chunk) in
                            sinks.chunks_mut(chunk).zip(shards.chunks(chunk))
                        {
                            scope.spawn(move || {
                                for (sink, shard) in sink_chunk.iter_mut().zip(shard_chunk.iter()) {
                                    let mut ctx = GradCtx::sharded(sink, barrier);
                                    shard
                                        .run_backward(upstream, &mut ctx)
                                        .expect("shard upstream is scalar by construction");
                                }
                            });
                        }
                    });
                }
                // Fixed shard-index order, then fixed id order inside each
                // sink: the accumulation order is a pure function of the
                // graph, never of thread scheduling.
                for sink in sinks {
                    sink.merge();
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy "model": per-shard losses (w*x_i)^2 sharing parameter w.
    fn shard_losses(w: &Tensor, xs: &[f32]) -> Vec<Tensor> {
        xs.iter().map(|&x| w.mul_scalar(x).square().sum()).collect()
    }

    #[test]
    fn matches_serial_sum_forward() {
        let w = Tensor::from_vec(vec![2.0], [1]).requires_grad();
        let shards = shard_losses(&w, &[1.0, 2.0, 3.0]);
        let total = Tensor::sharded_sum_scaled(&shards, 0.5, &[], 1);
        // 0.5 * (4 + 16 + 36) = 28
        assert!((total.item() - 28.0).abs() < 1e-5);
    }

    #[test]
    fn gradients_bit_identical_across_thread_counts() {
        let grads: Vec<Vec<f32>> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                let w = Tensor::from_vec(vec![1.5, -0.5], [2]).requires_grad();
                let shards: Vec<Tensor> = (0..8)
                    .map(|i| w.mul_scalar(i as f32 * 0.37 - 1.0).square().sum())
                    .collect();
                let loss = Tensor::sharded_sum_scaled(&shards, 0.125, &[], threads);
                loss.backward();
                w.grad().expect("w must receive a gradient")
            })
            .collect();
        assert_eq!(grads[0], grads[1]);
        assert_eq!(grads[0], grads[2]);
    }

    #[test]
    fn shared_barrier_continues_serially() {
        // base has history of its own (depends on w); shards branch off it.
        let w = Tensor::from_vec(vec![3.0], [1]).requires_grad();
        let base = w.mul_scalar(2.0); // 6, d(base)/dw = 2
        let shards: Vec<Tensor> = (1..=3).map(|i| base.mul_scalar(i as f32).sum()).collect();
        // loss = Σ i*base = 6*base ; dloss/dw = 12
        let loss = Tensor::sharded_sum_scaled(&shards, 1.0, std::slice::from_ref(&base), 2);
        assert!((loss.item() - 36.0).abs() < 1e-5);
        loss.backward();
        assert!((w.grad().expect("w grad")[0] - 12.0).abs() < 1e-4);
    }

    #[test]
    fn error_displays_match_panic_messages() {
        let e = AutogradError::NonScalarOutput {
            shape: "[2]".to_string(),
        };
        assert!(e.to_string().contains("requires a scalar output"));
        let e = AutogradError::UpstreamLengthMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("length mismatch"));
    }
}
