//! Elementwise unary operations and activations.

use crate::arena;
use crate::grad::GradCtx;
use crate::tensor::Tensor;

fn unary(
    t: &Tensor,
    forward: impl Fn(f32) -> f32,
    // dy/dx expressed from (x, y) so activations can reuse the output.
    backward: impl Fn(f32, f32) -> f32 + Send + Sync + 'static,
) -> Tensor {
    let src = t.data();
    let mut data = arena::take_empty(src.len());
    data.extend(src.iter().map(|&x| forward(x)));
    drop(src);
    let shape = t.shape().clone();
    Tensor::from_op(
        data,
        shape,
        vec![t.clone()],
        Box::new(move |out, mut grad, parents, ctx: &mut GradCtx| {
            let p = &parents[0];
            if !p.is_requires_grad() {
                arena::recycle(grad);
                return;
            }
            // The upstream buffer is owned: scale it by dy/dx in place and
            // pass it along without a copy.
            let x = p.data();
            let y = out.data();
            for (g, (&x, &y)) in grad.iter_mut().zip(x.iter().zip(y.iter())) {
                *g *= backward(x, y);
            }
            drop(x);
            drop(y);
            ctx.accumulate_owned(p, grad);
        }),
    )
}

impl Tensor {
    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        unary(self, |x| -x, |_, _| -1.0)
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Tensor {
        unary(self, f32::exp, |_, y| y)
    }

    /// Elementwise natural logarithm.
    ///
    /// Inputs must be positive for meaningful gradients; non-positive
    /// inputs produce `-inf`/`NaN` as in IEEE arithmetic.
    pub fn log(&self) -> Tensor {
        unary(self, f32::ln, |x, _| 1.0 / x)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        unary(self, f32::sqrt, |_, y| 0.5 / y)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        unary(self, |x| x * x, |x, _| 2.0 * x)
    }

    /// Elementwise absolute value (subgradient 0 at 0).
    pub fn abs(&self) -> Tensor {
        unary(self, f32::abs, |x, _| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        unary(self, f32::tanh, |_, y| 1.0 - y * y)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        unary(self, |x| 1.0 / (1.0 + (-x).exp()), |_, y| y * (1.0 - y))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&self) -> Tensor {
        unary(self, |x| x.max(0.0), |x, _| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Elementwise leaky ReLU with slope `alpha` on the negative side.
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        unary(
            self,
            move |x| if x > 0.0 { x } else { alpha * x },
            move |x, _| if x > 0.0 { 1.0 } else { alpha },
        )
    }

    /// Elementwise cosine (used by sinusoidal time encodings).
    pub fn cos(&self) -> Tensor {
        unary(self, f32::cos, |x, _| -x.sin())
    }

    /// Elementwise sine.
    pub fn sin(&self) -> Tensor {
        unary(self, f32::sin, |x, _| x.cos())
    }

    /// Elementwise power with constant exponent.
    pub fn powf(&self, e: f32) -> Tensor {
        unary(self, move |x| x.powf(e), move |x, _| e * x.powf(e - 1.0))
    }

    /// Clamps every element into `[lo, hi]` (zero gradient outside).
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        unary(
            self,
            move |x| x.clamp(lo, hi),
            move |x, _| if x >= lo && x <= hi { 1.0 } else { 0.0 },
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn neg_exp_log() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        assert_eq!(t.neg().to_vec(), vec![-1.0, -2.0]);
        assert!(close(t.exp().at(0), std::f32::consts::E));
        assert!(close(t.log().at(0), 0.0));
    }

    #[test]
    fn sigmoid_values() {
        let t = Tensor::from_vec(vec![0.0], [1]);
        assert!(close(t.sigmoid().item(), 0.5));
    }

    #[test]
    fn relu_and_leaky() {
        let t = Tensor::from_vec(vec![-2.0, 3.0], [2]);
        assert_eq!(t.relu().to_vec(), vec![0.0, 3.0]);
        assert_eq!(t.leaky_relu(0.1).to_vec(), vec![-0.2, 3.0]);
    }

    #[test]
    fn tanh_backward() {
        let t = Tensor::from_vec(vec![0.5], [1]).requires_grad();
        t.tanh().sum().backward();
        let y = 0.5f32.tanh();
        assert!(close(t.grad().unwrap()[0], 1.0 - y * y));
    }

    #[test]
    fn sigmoid_backward() {
        let t = Tensor::from_vec(vec![0.0], [1]).requires_grad();
        t.sigmoid().sum().backward();
        assert!(close(t.grad().unwrap()[0], 0.25));
    }

    #[test]
    fn relu_backward_gates() {
        let t = Tensor::from_vec(vec![-1.0, 2.0], [2]).requires_grad();
        t.relu().sum().backward();
        assert_eq!(t.grad().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn square_and_sqrt_backward() {
        let t = Tensor::from_vec(vec![3.0], [1]).requires_grad();
        t.square().sum().backward();
        assert!(close(t.grad().unwrap()[0], 6.0));

        let u = Tensor::from_vec(vec![4.0], [1]).requires_grad();
        u.sqrt().sum().backward();
        assert!(close(u.grad().unwrap()[0], 0.25));
    }

    #[test]
    fn clamp_gradient_gates() {
        let t = Tensor::from_vec(vec![-2.0, 0.5, 2.0], [3]).requires_grad();
        t.clamp(0.0, 1.0).sum().backward();
        assert_eq!(t.grad().unwrap(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn trig_roundtrip() {
        let t = Tensor::from_vec(vec![0.0], [1]);
        assert!(close(t.cos().item(), 1.0));
        assert!(close(t.sin().item(), 0.0));
    }
}
