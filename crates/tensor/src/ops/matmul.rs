//! Dense matrix multiplication.
//!
//! The kernels keep the `ikj` accumulation discipline — for any output
//! element, contributions arrive in ascending-`p` order and `a`-side zeros
//! are skipped — so results are bit-identical to the naive triple loop.
//! On top of that discipline they add cache blocking over the shared
//! dimension (a `KC`-wide panel of `b` stays hot across all rows of `a`)
//! and a 4-way unroll of the panel loop whose separate `o += aᵢ·bᵢ[j]`
//! statements preserve the per-element rounding order while exposing four
//! independent streams to the auto-vectorizer.

use crate::arena;
use crate::grad::GradCtx;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Panel width over the shared dimension: 128 rows of `b` (at the typical
/// `n ≤ 256` of TGNN hidden layers) fit comfortably in L2.
const KC: usize = 128;

/// `out[m×n] += a[m×k] · b[k×n]` with the historical skip-zero semantics.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut p0 = 0;
    while p0 < k {
        let p_end = (p0 + KC).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..][..n];
            let mut p = p0;
            while p + 4 <= p_end {
                let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
                if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                    let b0 = &b[p * n..][..n];
                    let b1 = &b[(p + 1) * n..][..n];
                    let b2 = &b[(p + 2) * n..][..n];
                    let b3 = &b[(p + 3) * n..][..n];
                    for j in 0..n {
                        // Four separate additions: identical rounding to the
                        // sequential p loop, but independent loads per lane.
                        let mut acc = out_row[j];
                        acc += a0 * b0[j];
                        acc += a1 * b1[j];
                        acc += a2 * b2[j];
                        acc += a3 * b3[j];
                        out_row[j] = acc;
                    }
                } else {
                    // A zero in the quad: fall back to the skip-zero scalar
                    // loop so the additions performed match the naive kernel.
                    for q in p..p + 4 {
                        let av = a_row[q];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[q * n..][..n];
                        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += av * bv;
                        }
                    }
                }
                p += 4;
            }
            for q in p..p_end {
                let av = a_row[q];
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[q * n..][..n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
        p0 = p_end;
    }
}

/// `out[m×n] += a[k×m]ᵀ · b[k×n]` (A transposed), used by backward.
///
/// Output-row-resident form: each `out` row is swept `k` times while hot
/// instead of streaming the whole `m×n` output once per `p` as the old
/// `p`-outer loop did. Per-element accumulation order (ascending `p`,
/// `a`-side zeros skipped) is unchanged.
pub(crate) fn matmul_at_b(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let out_row = &mut out[i * n..][..n];
        for p in 0..k {
            let av = a[p * m + i];
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..][..n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `out[m×k] += a[m×n] · b[k×n]ᵀ` (B transposed), used by backward.
///
/// Dot-product form: both operand rows are contiguous and each output
/// element is one strictly ascending reduction, so there is nothing to
/// reorder.
pub(crate) fn matmul_a_bt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * k);
    for i in 0..m {
        let a_row = &a[i * n..(i + 1) * n];
        let out_row = &mut out[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * n..(j + 1) * n];
            let mut acc = 0.0;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *o += acc;
        }
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.dims().len(),
            2,
            "matmul lhs must be rank-2, got {}",
            self.shape()
        );
        assert_eq!(
            other.dims().len(),
            2,
            "matmul rhs must be rank-2, got {}",
            other.shape()
        );
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k,
            k2,
            "matmul inner dimensions disagree: {} vs {}",
            self.shape(),
            other.shape()
        );

        let mut out = arena::take_zeroed(m * n);
        matmul_into(&self.data(), &other.data(), &mut out, m, k, n);

        Tensor::from_op(
            out,
            Shape::new(vec![m, n]),
            vec![self.clone(), other.clone()],
            Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
                let (a, b) = (&parents[0], &parents[1]);
                if a.is_requires_grad() {
                    // dA = dOut · Bᵀ  : [m,n]·[k,n]ᵀ → [m,k]
                    let mut ga = arena::take_zeroed(m * k);
                    matmul_a_bt(&grad, &b.data(), &mut ga, m, n, k);
                    ctx.accumulate_owned(a, ga);
                }
                if b.is_requires_grad() {
                    // dB = Aᵀ · dOut : [m,k]ᵀ·[m,n] → [k,n]
                    let mut gb = arena::take_zeroed(k * n);
                    matmul_at_b(&a.data(), &grad, &mut gb, m, k, n);
                    ctx.accumulate_owned(b, gb);
                }
                arena::recycle(grad);
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn small_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], [3, 2]);
        assert_eq!(a.matmul(&b).dims(), &[2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).to_vec(), a.to_vec());
        assert_eq!(i.matmul(&a).to_vec(), a.to_vec());
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn backward_matches_manual() {
        // f = sum(A·B); dA = 1·Bᵀ-row-sums, dB = Aᵀ-col-sums
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]).requires_grad();
        a.matmul(&b).sum().backward();
        // dA[i][p] = sum_j B[p][j]
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        // dB[p][j] = sum_i A[i][p]
        assert_eq!(b.grad().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn zero_rows_ok() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[0, 2]);
        assert!(c.is_empty());
    }

    #[test]
    fn unrolled_kernel_matches_naive_reference() {
        // Sizes straddling the unroll factor (4) and the panel width (128),
        // with planted zeros so both the quad fast path and the skip-zero
        // fallback run; results must match the naive triple loop exactly.
        let mut rng = 0x12345u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((rng >> 33) as f32) / ((1u64 << 31) as f32) - 0.5;
            if v.abs() < 0.02 {
                0.0
            } else {
                v
            }
        };
        for &(m, k, n) in &[(3, 5, 7), (4, 130, 9), (2, 257, 3), (1, 4, 1)] {
            let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
            let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
            let mut fast = vec![0.0f32; m * n];
            super::matmul_into(&a, &b, &mut fast, m, k, n);
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for p in 0..k {
                    let av = a[i * k + p];
                    if av == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        naive[i * n + j] += av * b[p * n + j];
                    }
                }
            }
            assert_eq!(fast, naive, "mismatch at ({m},{k},{n})");
        }
    }
}
