//! Dense matrix multiplication.
//!
//! The `ikj` loop order keeps the inner loop contiguous over both the
//! right-hand operand and the output row, which auto-vectorizes well; the
//! amortization of per-batch overhead over large `[B, d] × [d, d]` products
//! is the hardware effect Cascade's adaptive batching exploits.

use crate::grad::GradCtx;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// `out[m×n] = a[m×k] · b[k×n]`, writing into a zeroed `out`.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `out[m×n] += a[k×m]ᵀ · b[k×n]` (A transposed), used by backward.
fn matmul_at_b(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `out[m×k] += a[m×n] · b[k×n]ᵀ` (B transposed), used by backward.
fn matmul_a_bt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    for i in 0..m {
        let a_row = &a[i * n..(i + 1) * n];
        let out_row = &mut out[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * n..(j + 1) * n];
            let mut acc = 0.0;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *o += acc;
        }
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank-2 or the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.dims().len(),
            2,
            "matmul lhs must be rank-2, got {}",
            self.shape()
        );
        assert_eq!(
            other.dims().len(),
            2,
            "matmul rhs must be rank-2, got {}",
            other.shape()
        );
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k,
            k2,
            "matmul inner dimensions disagree: {} vs {}",
            self.shape(),
            other.shape()
        );

        let mut out = vec![0.0; m * n];
        matmul_into(&self.data(), &other.data(), &mut out, m, k, n);

        Tensor::from_op(
            out,
            Shape::new(vec![m, n]),
            vec![self.clone(), other.clone()],
            Box::new(move |out, parents, ctx: &mut GradCtx| {
                let grad = out.grad().expect("backward without gradient");
                let (a, b) = (&parents[0], &parents[1]);
                if a.is_requires_grad() {
                    // dA = dOut · Bᵀ  : [m,n]·[k,n]ᵀ → [m,k]
                    let mut ga = vec![0.0; m * k];
                    matmul_a_bt(&grad, &b.data(), &mut ga, m, n, k);
                    ctx.accumulate(a, &ga);
                }
                if b.is_requires_grad() {
                    // dB = Aᵀ · dOut : [m,k]ᵀ·[m,n] → [k,n]
                    let mut gb = vec![0.0; k * n];
                    matmul_at_b(&a.data(), &grad, &mut gb, m, k, n);
                    ctx.accumulate(b, &gb);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn small_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], [3, 2]);
        assert_eq!(a.matmul(&b).dims(), &[2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).to_vec(), a.to_vec());
        assert_eq!(i.matmul(&a).to_vec(), a.to_vec());
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn backward_matches_manual() {
        // f = sum(A·B); dA = 1·Bᵀ-row-sums, dB = Aᵀ-col-sums
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]).requires_grad();
        a.matmul(&b).sum().backward();
        // dA[i][p] = sum_j B[p][j]
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        // dB[p][j] = sum_i A[i][p]
        assert_eq!(b.grad().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn zero_rows_ok() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[0, 2]);
        assert!(c.is_empty());
    }
}
