//! Tensor operations.
//!
//! Every op creates a new [`Tensor`](crate::Tensor) node whose backward
//! closure knows how to push gradients to the op's parents. Ops whose
//! inputs do not require gradients skip recording history entirely.

mod binary;
mod fused;
mod matmul;
mod reduce;
mod select;
mod shape_ops;
mod unary;
