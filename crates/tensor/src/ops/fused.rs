//! Fused TGNN kernels: GRU cell, sinusoidal time encoding, and attention
//! scoring/combination as single graph nodes.
//!
//! The composed-op forms of these layers (see `cascade-nn`) build 10–20
//! graph nodes per call, each with its own output buffer, parent vector,
//! and boxed backward closure. For the small `[B, H]` working sets of TGNN
//! batches the node bookkeeping costs as much as the arithmetic. Each
//! kernel here runs the whole forward as chunked slice loops over a
//! handful of arena buffers and records ONE node whose backward closure
//! replays the chain rule in place.
//!
//! Numerics: every kernel performs the same per-element float operations
//! in the same order as the op chain it replaces (matmuls go through the
//! shared skip-zero kernels in `ops::matmul`, elementwise chains keep
//! their evaluation order), so swapping a layer to its fused form does not
//! perturb training trajectories.

use crate::arena;
use crate::grad::GradCtx;
use crate::ops::matmul::{matmul_a_bt, matmul_at_b, matmul_into};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Column sums of a `[rows, cols]` buffer into an owned `[cols]` buffer,
/// rows in ascending order (the bias-gradient reduction).
fn col_sums(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = arena::take_zeroed(cols);
    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        for (o, &v) in out.iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
    out
}

impl Tensor {
    /// Fused GRU cell step: the single-node form of
    /// [`GruCell`](../../cascade_nn/struct.GruCell.html)'s recurrence
    ///
    /// ```text
    /// r  = σ(x·W_xr + h·W_hr + b_r)
    /// z  = σ(x·W_xz + h·W_hz + b_z)
    /// n  = tanh(x·W_xn + r ⊙ (h·W_hn) + b_n)
    /// h' = (1 − z) ⊙ n + z ⊙ h
    /// ```
    ///
    /// `params` is `[w_xr, w_hr, b_r, w_xz, w_hz, b_z, w_xn, w_hn, b_n]`
    /// with weights `[in, H]` / `[H, H]` and biases `[H]`.
    ///
    /// # Panics
    ///
    /// Panics on any shape inconsistency.
    pub fn gru_cell_fused(x: &Tensor, h: &Tensor, params: &[&Tensor; 9]) -> Tensor {
        let [w_xr, w_hr, b_r, w_xz, w_hz, b_z, w_xn, w_hn, b_n] = *params;
        assert_eq!(x.dims().len(), 2, "gru_cell_fused x must be rank-2");
        assert_eq!(h.dims().len(), 2, "gru_cell_fused h must be rank-2");
        let (b, in_dim) = (x.dims()[0], x.dims()[1]);
        let hd = h.dims()[1];
        assert_eq!(h.dims()[0], b, "gru_cell_fused batch mismatch");
        for (w, rows, name) in [
            (w_xr, in_dim, "w_xr"),
            (w_hr, hd, "w_hr"),
            (w_xz, in_dim, "w_xz"),
            (w_hz, hd, "w_hz"),
            (w_xn, in_dim, "w_xn"),
            (w_hn, hd, "w_hn"),
        ] {
            assert_eq!(w.dims(), &[rows, hd], "gru_cell_fused {name} shape");
        }
        for (bias, name) in [(b_r, "b_r"), (b_z, "b_z"), (b_n, "b_n")] {
            assert_eq!(bias.len(), hd, "gru_cell_fused {name} length");
        }

        let bh = b * hd;
        let xd = x.data();
        let hdat = h.data();

        // Six projections through the shared skip-zero matmul kernel.
        let mut xr = arena::take_zeroed(bh);
        matmul_into(&xd, &w_xr.data(), &mut xr, b, in_dim, hd);
        let mut hr = arena::take_zeroed(bh);
        matmul_into(&hdat, &w_hr.data(), &mut hr, b, hd, hd);
        let mut xz = arena::take_zeroed(bh);
        matmul_into(&xd, &w_xz.data(), &mut xz, b, in_dim, hd);
        let mut hz = arena::take_zeroed(bh);
        matmul_into(&hdat, &w_hz.data(), &mut hz, b, hd, hd);
        let mut xn = arena::take_zeroed(bh);
        matmul_into(&xd, &w_xn.data(), &mut xn, b, in_dim, hd);
        let mut hn = arena::take_zeroed(bh);
        matmul_into(&hdat, &w_hn.data(), &mut hn, b, hd, hd);

        // Gate chains, elementwise, same evaluation order as the op chain:
        // ((x·W + h·W) + bias) then the activation.
        let brd = b_r.data();
        let bzd = b_z.data();
        let bnd = b_n.data();
        let mut r = arena::take_empty(bh);
        let mut z = arena::take_empty(bh);
        for i in 0..bh {
            let j = i % hd;
            let pre_r = (xr[i] + hr[i]) + brd[j];
            r.push(1.0 / (1.0 + (-pre_r).exp()));
            let pre_z = (xz[i] + hz[i]) + bzd[j];
            z.push(1.0 / (1.0 + (-pre_z).exp()));
        }
        let mut n = arena::take_empty(bh);
        for i in 0..bh {
            let j = i % hd;
            let pre_n = (xn[i] + (r[i] * hn[i])) + bnd[j];
            n.push(pre_n.tanh());
        }
        let mut out = arena::take_empty(bh);
        for i in 0..bh {
            out.push(((-z[i] + 1.0) * n[i]) + (z[i] * hdat[i]));
        }
        drop((brd, bzd, bnd, xd, hdat));
        arena::recycle(xr);
        arena::recycle(hr);
        arena::recycle(xz);
        arena::recycle(hz);
        arena::recycle(xn);

        let parents = vec![
            x.clone(),
            h.clone(),
            w_xr.clone(),
            w_hr.clone(),
            b_r.clone(),
            w_xz.clone(),
            w_hz.clone(),
            b_z.clone(),
            w_xn.clone(),
            w_hn.clone(),
            b_n.clone(),
        ];
        Tensor::from_op(
            out,
            Shape::new(vec![b, hd]),
            parents,
            Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
                let (px, ph) = (&parents[0], &parents[1]);
                let (pwxr, pwhr, pbr) = (&parents[2], &parents[3], &parents[4]);
                let (pwxz, pwhz, pbz) = (&parents[5], &parents[6], &parents[7]);
                let (pwxn, pwhn, pbn) = (&parents[8], &parents[9], &parents[10]);
                let need_x = px.is_requires_grad();
                let need_h = ph.is_requires_grad();
                let hdat = ph.data();

                // Pre-activation gradients for the three gates.
                let mut dpre_n = arena::take_empty(bh);
                let mut dpre_z = arena::take_empty(bh);
                for i in 0..bh {
                    let dn = grad[i] * (1.0 - z[i]);
                    dpre_n.push(dn * (1.0 - n[i] * n[i]));
                    let dz = grad[i] * (hdat[i] - n[i]);
                    dpre_z.push(dz * z[i] * (1.0 - z[i]));
                }
                let mut dpre_r = arena::take_empty(bh);
                let mut dhn = arena::take_empty(bh);
                for i in 0..bh {
                    let dr = dpre_n[i] * hn[i];
                    dpre_r.push(dr * r[i] * (1.0 - r[i]));
                    dhn.push(dpre_n[i] * r[i]);
                }

                // Input-side gradients.
                if need_x {
                    let mut dx = arena::take_zeroed(b * in_dim);
                    matmul_a_bt(&dpre_r, &pwxr.data(), &mut dx, b, hd, in_dim);
                    matmul_a_bt(&dpre_z, &pwxz.data(), &mut dx, b, hd, in_dim);
                    matmul_a_bt(&dpre_n, &pwxn.data(), &mut dx, b, hd, in_dim);
                    ctx.accumulate_owned(px, dx);
                }
                if need_h {
                    let mut dh = arena::take_empty(bh);
                    for i in 0..bh {
                        dh.push(grad[i] * z[i]);
                    }
                    matmul_a_bt(&dhn, &pwhn.data(), &mut dh, b, hd, hd);
                    matmul_a_bt(&dpre_r, &pwhr.data(), &mut dh, b, hd, hd);
                    matmul_a_bt(&dpre_z, &pwhz.data(), &mut dh, b, hd, hd);
                    ctx.accumulate_owned(ph, dh);
                }
                arena::recycle(grad);

                // Parameter gradients: dW_x* = xᵀ·dpre_*, dW_h* = hᵀ·dpre_*
                // (hᵀ·dhn for the candidate gate), db_* = column sums.
                let xd = px.data();
                for (w, dpre) in [(pwxr, &dpre_r), (pwxz, &dpre_z), (pwxn, &dpre_n)] {
                    if w.is_requires_grad() {
                        let mut dw = arena::take_zeroed(in_dim * hd);
                        matmul_at_b(&xd, dpre, &mut dw, b, in_dim, hd);
                        ctx.accumulate_owned(w, dw);
                    }
                }
                drop(xd);
                for (w, dpre) in [(pwhr, &dpre_r), (pwhz, &dpre_z), (pwhn, &dhn)] {
                    if w.is_requires_grad() {
                        let mut dw = arena::take_zeroed(hd * hd);
                        matmul_at_b(&hdat, dpre, &mut dw, b, hd, hd);
                        ctx.accumulate_owned(w, dw);
                    }
                }
                drop(hdat);
                for (bias, dpre) in [(pbr, &dpre_r), (pbz, &dpre_z), (pbn, &dpre_n)] {
                    if bias.is_requires_grad() {
                        ctx.accumulate_owned(bias, col_sums(dpre, b, hd));
                    }
                }
                arena::recycle(dpre_n);
                arena::recycle(dpre_z);
                arena::recycle(dpre_r);
                arena::recycle(dhn);
            }),
        )
    }

    /// Fused sinusoidal time encoding: `out[b][j] = cos(Δt_b·ω_j + φ_j)`
    /// for `dts: [B, 1]`, `omega: [1, D]`, `phase: [D]`.
    ///
    /// # Panics
    ///
    /// Panics on any shape inconsistency.
    pub fn time_encode_fused(dts: &Tensor, omega: &Tensor, phase: &Tensor) -> Tensor {
        assert_eq!(dts.dims().len(), 2, "time_encode_fused dts must be [B, 1]");
        assert_eq!(dts.dims()[1], 1, "time_encode_fused dts must be [B, 1]");
        let b = dts.dims()[0];
        assert_eq!(
            omega.dims().len(),
            2,
            "time_encode_fused omega must be [1, D]"
        );
        assert_eq!(omega.dims()[0], 1, "time_encode_fused omega must be [1, D]");
        let d = omega.dims()[1];
        assert_eq!(phase.len(), d, "time_encode_fused phase length mismatch");

        let dt = dts.data();
        let w = omega.data();
        let ph = phase.data();
        let mut pre = arena::take_empty(b * d);
        let mut out = arena::take_empty(b * d);
        for bi in 0..b {
            let t = dt[bi];
            for j in 0..d {
                let p = t * w[j] + ph[j];
                pre.push(p);
                out.push(p.cos());
            }
        }
        drop((dt, w, ph));

        Tensor::from_op(
            out,
            Shape::new(vec![b, d]),
            vec![dts.clone(), omega.clone(), phase.clone()],
            Box::new(move |_out, mut grad, parents, ctx: &mut GradCtx| {
                let (pdts, pomega, pphase) = (&parents[0], &parents[1], &parents[2]);
                // In place: grad ← −sin(pre) ⊙ grad (cosine backward).
                for (g, &p) in grad.iter_mut().zip(pre.iter()) {
                    *g *= -p.sin();
                }
                if pdts.is_requires_grad() {
                    let w = pomega.data();
                    let mut ddt = arena::take_empty(b);
                    for bi in 0..b {
                        let row = &grad[bi * d..(bi + 1) * d];
                        let mut acc = 0.0;
                        for (&g, &wj) in row.iter().zip(w.iter()) {
                            acc += g * wj;
                        }
                        ddt.push(acc);
                    }
                    ctx.accumulate_owned(pdts, ddt);
                }
                if pomega.is_requires_grad() {
                    let dt = pdts.data();
                    let mut dw = arena::take_zeroed(d);
                    for bi in 0..b {
                        let t = dt[bi];
                        let row = &grad[bi * d..(bi + 1) * d];
                        for (o, &g) in dw.iter_mut().zip(row.iter()) {
                            *o += t * g;
                        }
                    }
                    ctx.accumulate_owned(pomega, dw);
                }
                if pphase.is_requires_grad() {
                    ctx.accumulate_owned(pphase, col_sums(&grad, b, d));
                }
                arena::recycle(grad);
            }),
        )
    }

    /// Fused attention score assembly for a `B × K` sampled neighborhood
    /// with a self-loop in column 0:
    ///
    /// ```text
    /// out[b][0]   = e_self[b]
    /// out[b][1+j] = LeakyReLU₀.₂(e_src[b] + e_dst[b·K+j]) · m + (m − 1)·1e9
    /// ```
    ///
    /// where `m = mask[b·K + j]` (1.0 valid, 0.0 padding — padded slots
    /// score −1e9 so softmax zeroes them). `e_self`/`e_src` are `[B, 1]`,
    /// `e_dst` is `[B·K, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on any shape inconsistency or `k == 0`.
    pub fn attn_scores_fused(
        e_self: &Tensor,
        e_src: &Tensor,
        e_dst: &Tensor,
        mask: &[f32],
        k: usize,
    ) -> Tensor {
        assert!(k > 0, "attn_scores_fused requires k > 0");
        assert_eq!(
            e_self.dims().len(),
            2,
            "attn_scores_fused e_self must be [B, 1]"
        );
        assert_eq!(
            e_self.dims()[1],
            1,
            "attn_scores_fused e_self must be [B, 1]"
        );
        let b = e_self.dims()[0];
        assert_eq!(
            e_src.dims(),
            &[b, 1],
            "attn_scores_fused e_src must be [B, 1]"
        );
        assert_eq!(
            e_dst.len(),
            b * k,
            "attn_scores_fused e_dst must be [B*K, 1]"
        );
        assert_eq!(mask.len(), b * k, "attn_scores_fused mask length mismatch");

        let es = e_self.data();
        let ec = e_src.data();
        let ed = e_dst.data();
        let cols = k + 1;
        let mut pre = arena::take_empty(b * k);
        let mut out = arena::take_empty(b * cols);
        for bi in 0..b {
            out.push(es[bi]);
            for j in 0..k {
                let p = ec[bi] + ed[bi * k + j];
                pre.push(p);
                let lr = if p > 0.0 { p } else { 0.2 * p };
                let m = mask[bi * k + j];
                out.push(lr * m + (m - 1.0) * 1e9);
            }
        }
        drop((es, ec, ed));
        let mask: Vec<f32> = mask.to_vec();

        Tensor::from_op(
            out,
            Shape::new(vec![b, cols]),
            vec![e_self.clone(), e_src.clone(), e_dst.clone()],
            Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
                let (pself, psrc, pdst) = (&parents[0], &parents[1], &parents[2]);
                if pself.is_requires_grad() {
                    let mut gs = arena::take_empty(b);
                    for bi in 0..b {
                        gs.push(grad[bi * cols]);
                    }
                    ctx.accumulate_owned(pself, gs);
                }
                let need_src = psrc.is_requires_grad();
                let need_dst = pdst.is_requires_grad();
                if need_src || need_dst {
                    let mut gsrc = arena::take_empty(if need_src { b } else { 0 });
                    let mut gdst = arena::take_empty(if need_dst { b * k } else { 0 });
                    for bi in 0..b {
                        let mut acc = 0.0;
                        for j in 0..k {
                            let p = pre[bi * k + j];
                            let slope = if p > 0.0 { 1.0 } else { 0.2 };
                            let gpre = grad[bi * cols + 1 + j] * mask[bi * k + j] * slope;
                            acc += gpre;
                            if need_dst {
                                gdst.push(gpre);
                            }
                        }
                        if need_src {
                            gsrc.push(acc);
                        }
                    }
                    if need_src {
                        ctx.accumulate_owned(psrc, gsrc);
                    } else {
                        arena::recycle(gsrc);
                    }
                    if need_dst {
                        ctx.accumulate_owned(pdst, gdst);
                    } else {
                        arena::recycle(gdst);
                    }
                }
                arena::recycle(grad);
            }),
        )
    }

    /// Fused attention-weighted combine with the self-loop in `alpha`
    /// column 0 and a ReLU on the way out:
    ///
    /// ```text
    /// out[b][o] = ReLU(α[b][0]·wh_c[b][o] + Σ_j α[b][1+j]·wh_n[b·K+j][o])
    /// ```
    ///
    /// `wh_c: [B, out]`, `wh_n: [B·K, out]`, `alpha: [B, K+1]`.
    ///
    /// # Panics
    ///
    /// Panics on any shape inconsistency or `k == 0`.
    pub fn attn_combine_fused(wh_c: &Tensor, wh_n: &Tensor, alpha: &Tensor, k: usize) -> Tensor {
        assert!(k > 0, "attn_combine_fused requires k > 0");
        assert_eq!(
            wh_c.dims().len(),
            2,
            "attn_combine_fused wh_c must be rank-2"
        );
        let (b, od) = (wh_c.dims()[0], wh_c.dims()[1]);
        assert_eq!(
            wh_n.dims(),
            &[b * k, od],
            "attn_combine_fused wh_n must be [B*K, out]"
        );
        assert_eq!(
            alpha.dims(),
            &[b, k + 1],
            "attn_combine_fused alpha must be [B, K+1]"
        );

        let wc = wh_c.data();
        let wn = wh_n.data();
        let al = alpha.data();
        let cols = k + 1;
        let mut out = arena::take_empty(b * od);
        for bi in 0..b {
            let a0 = al[bi * cols];
            for o in 0..od {
                // Ascending-j accumulation matches the composed
                // mul-then-sum_axis evaluation order.
                let mut nv = 0.0;
                for j in 0..k {
                    nv += wn[(bi * k + j) * od + o] * al[bi * cols + 1 + j];
                }
                out.push((wc[bi * od + o] * a0 + nv).max(0.0));
            }
        }
        drop((wc, wn, al));

        Tensor::from_op(
            out,
            Shape::new(vec![b, od]),
            vec![wh_c.clone(), wh_n.clone(), alpha.clone()],
            Box::new(move |out, mut grad, parents, ctx: &mut GradCtx| {
                let (pc, pn, pa) = (&parents[0], &parents[1], &parents[2]);
                // ReLU gate in place on the owned upstream buffer.
                let y = out.data();
                for (g, &yv) in grad.iter_mut().zip(y.iter()) {
                    if yv <= 0.0 {
                        *g = 0.0;
                    }
                }
                drop(y);
                let al = pa.data();
                if pc.is_requires_grad() {
                    let mut gc = arena::take_empty(b * od);
                    for bi in 0..b {
                        let a0 = al[bi * cols];
                        for o in 0..od {
                            gc.push(grad[bi * od + o] * a0);
                        }
                    }
                    ctx.accumulate_owned(pc, gc);
                }
                if pn.is_requires_grad() {
                    let mut gn = arena::take_empty(b * k * od);
                    for bi in 0..b {
                        for j in 0..k {
                            let a = al[bi * cols + 1 + j];
                            for o in 0..od {
                                gn.push(grad[bi * od + o] * a);
                            }
                        }
                    }
                    ctx.accumulate_owned(pn, gn);
                }
                drop(al);
                if pa.is_requires_grad() {
                    let wc = pc.data();
                    let wn = pn.data();
                    let mut ga = arena::take_empty(b * cols);
                    for bi in 0..b {
                        let grow = &grad[bi * od..(bi + 1) * od];
                        let mut acc = 0.0;
                        for (&g, &w) in grow.iter().zip(wc[bi * od..].iter()) {
                            acc += g * w;
                        }
                        ga.push(acc);
                        for j in 0..k {
                            let wrow = &wn[(bi * k + j) * od..(bi * k + j + 1) * od];
                            let mut acc = 0.0;
                            for (&g, &w) in grow.iter().zip(wrow.iter()) {
                                acc += g * w;
                            }
                            ga.push(acc);
                        }
                    }
                    ctx.accumulate_owned(pa, ga);
                }
                arena::recycle(grad);
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f32) / ((1u64 << 31) as f32) - 0.5
        }
    }

    fn rand_tensor(dims: [usize; 2], seed: u64) -> Tensor {
        let mut next = lcg(seed);
        let n = dims[0] * dims[1];
        Tensor::from_vec((0..n).map(|_| next()).collect(), dims).requires_grad()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what} length");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() <= tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    /// The composed-op GRU recurrence the fused kernel replaces.
    fn gru_composed(x: &Tensor, h: &Tensor, p: &[&Tensor; 9]) -> Tensor {
        let [w_xr, w_hr, b_r, w_xz, w_hz, b_z, w_xn, w_hn, b_n] = *p;
        let r = x.matmul(w_xr).add(&h.matmul(w_hr)).add(b_r).sigmoid();
        let z = x.matmul(w_xz).add(&h.matmul(w_hz)).add(b_z).sigmoid();
        let n = x.matmul(w_xn).add(&r.mul(&h.matmul(w_hn))).add(b_n).tanh();
        z.neg().add_scalar(1.0).mul(&n).add(&z.mul(h))
    }

    #[test]
    fn gru_fused_matches_composed() {
        let (b, in_dim, hd) = (3, 4, 5);
        let make = || {
            let x = rand_tensor([b, in_dim], 1);
            let h = rand_tensor([b, hd], 2);
            let params = [
                rand_tensor([in_dim, hd], 3),
                rand_tensor([hd, hd], 4),
                Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.0, -0.1], [hd]).requires_grad(),
                rand_tensor([in_dim, hd], 5),
                rand_tensor([hd, hd], 6),
                Tensor::from_vec(vec![-0.3, 0.2, 0.0, 0.1, 0.2], [hd]).requires_grad(),
                rand_tensor([in_dim, hd], 7),
                rand_tensor([hd, hd], 8),
                Tensor::from_vec(vec![0.05, 0.0, -0.05, 0.15, -0.15], [hd]).requires_grad(),
            ];
            (x, h, params)
        };

        let (x1, h1, p1) = make();
        let refs1: [&Tensor; 9] = std::array::from_fn(|i| &p1[i]);
        let fused = Tensor::gru_cell_fused(&x1, &h1, &refs1);
        let (x2, h2, p2) = make();
        let refs2: [&Tensor; 9] = std::array::from_fn(|i| &p2[i]);
        let composed = gru_composed(&x2, &h2, &refs2);

        // Forward replicates the op chain exactly.
        assert_eq!(fused.to_vec(), composed.to_vec());

        fused
            .mul(&rand_tensor([b, hd], 99).detach())
            .sum()
            .backward();
        composed
            .mul(&rand_tensor([b, hd], 99).detach())
            .sum()
            .backward();
        assert_close(&x1.grad().unwrap(), &x2.grad().unwrap(), 1e-5, "dx");
        assert_close(&h1.grad().unwrap(), &h2.grad().unwrap(), 1e-5, "dh");
        for (i, (a, b)) in p1.iter().zip(p2.iter()).enumerate() {
            assert_close(
                &a.grad().unwrap(),
                &b.grad().unwrap(),
                1e-5,
                &format!("param {i}"),
            );
        }
    }

    #[test]
    fn gru_fused_skips_frozen_inputs() {
        let x = Tensor::ones([2, 3]);
        let h = Tensor::zeros([2, 4]);
        let params: Vec<Tensor> = vec![
            rand_tensor([3, 4], 1),
            rand_tensor([4, 4], 2),
            Tensor::zeros([4]).requires_grad(),
            rand_tensor([3, 4], 3),
            rand_tensor([4, 4], 4),
            Tensor::zeros([4]).requires_grad(),
            rand_tensor([3, 4], 5),
            rand_tensor([4, 4], 6),
            Tensor::zeros([4]).requires_grad(),
        ];
        let refs: [&Tensor; 9] = std::array::from_fn(|i| &params[i]);
        Tensor::gru_cell_fused(&x, &h, &refs).sum().backward();
        assert!(x.grad().is_none(), "frozen x must receive no grad");
        assert!(h.grad().is_none(), "frozen h must receive no grad");
        for p in &params {
            assert!(p.grad().is_some(), "parameter missing grad");
        }
    }

    #[test]
    fn time_encode_fused_matches_composed() {
        let d = 6;
        let make = || {
            let dts = Tensor::from_vec(vec![0.0, 1.5, 100.0, -2.0], [4, 1]).requires_grad();
            let omega = rand_tensor([1, d], 11);
            let phase =
                Tensor::from_vec((0..d).map(|i| i as f32 * 0.1).collect(), [d]).requires_grad();
            (dts, omega, phase)
        };
        let (d1, o1, p1) = make();
        let fused = Tensor::time_encode_fused(&d1, &o1, &p1);
        let (d2, o2, p2) = make();
        let composed = d2.matmul(&o2).add(&p2).cos();

        assert_eq!(fused.dims(), &[4, d]);
        assert_close(&fused.to_vec(), &composed.to_vec(), 1e-6, "forward");

        fused.sum().backward();
        composed.sum().backward();
        assert_close(&d1.grad().unwrap(), &d2.grad().unwrap(), 1e-5, "ddts");
        assert_close(&o1.grad().unwrap(), &o2.grad().unwrap(), 1e-5, "domega");
        assert_close(&p1.grad().unwrap(), &p2.grad().unwrap(), 1e-5, "dphase");
    }

    #[test]
    fn attn_scores_fused_matches_composed() {
        let (b, k) = (3, 2);
        let mask = [1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let make = || {
            (
                rand_tensor([b, 1], 21),
                rand_tensor([b, 1], 22),
                rand_tensor([b * k, 1], 23),
            )
        };
        let (s1, c1, d1) = make();
        let fused = Tensor::attn_scores_fused(&s1, &c1, &d1, &mask, k);
        let (s2, c2, d2) = make();
        let e_neigh = c2.add(&d2.reshape([b, k])).leaky_relu(0.2);
        let mask_t = Tensor::from_vec(mask.to_vec(), [b, k]);
        let neg_inf = mask_t.sub_scalar(1.0).mul_scalar(1e9);
        let e_neigh = e_neigh.mul(&mask_t).add(&neg_inf);
        let composed = Tensor::concat_cols(&[&s2, &e_neigh]);

        assert_eq!(fused.dims(), &[b, k + 1]);
        assert_eq!(fused.to_vec(), composed.to_vec());

        fused.softmax().sum().backward();
        composed.softmax().sum().backward();
        assert_close(&s1.grad().unwrap(), &s2.grad().unwrap(), 1e-5, "de_self");
        assert_close(&c1.grad().unwrap(), &c2.grad().unwrap(), 1e-5, "de_src");
        assert_close(&d1.grad().unwrap(), &d2.grad().unwrap(), 1e-5, "de_dst");
    }

    #[test]
    fn attn_combine_fused_matches_composed() {
        let (b, k, od) = (2, 3, 4);
        let make = || {
            let logits = rand_tensor([b, k + 1], 33);
            (
                rand_tensor([b, od], 31),
                rand_tensor([b * k, od], 32),
                logits.softmax(),
                logits,
            )
        };
        let (c1, n1, a1, l1) = make();
        let fused = Tensor::attn_combine_fused(&c1, &n1, &a1, k);
        let (c2, n2, a2, l2) = make();
        let alpha_self = a2.slice_cols(0, 1);
        let alpha_n = a2.slice_cols(1, k + 1).reshape([b * k, 1]);
        let composed = c2
            .mul(&alpha_self)
            .add(&n2.mul(&alpha_n).reshape([b, k, od]).sum_axis(1))
            .relu();

        assert_eq!(fused.dims(), &[b, od]);
        assert_close(&fused.to_vec(), &composed.to_vec(), 1e-6, "forward");

        fused.sum().backward();
        composed.sum().backward();
        assert_close(&c1.grad().unwrap(), &c2.grad().unwrap(), 1e-5, "dwh_c");
        assert_close(&n1.grad().unwrap(), &n2.grad().unwrap(), 1e-5, "dwh_n");
        assert_close(&l1.grad().unwrap(), &l2.grad().unwrap(), 1e-5, "dlogits");
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn gru_fused_rejects_batch_mismatch() {
        let params: Vec<Tensor> = vec![
            Tensor::zeros([2, 2]),
            Tensor::zeros([2, 2]),
            Tensor::zeros([2]),
            Tensor::zeros([2, 2]),
            Tensor::zeros([2, 2]),
            Tensor::zeros([2]),
            Tensor::zeros([2, 2]),
            Tensor::zeros([2, 2]),
            Tensor::zeros([2]),
        ];
        let refs: [&Tensor; 9] = std::array::from_fn(|i| &params[i]);
        let _ = Tensor::gru_cell_fused(&Tensor::zeros([2, 2]), &Tensor::zeros([3, 2]), &refs);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn attn_scores_fused_rejects_bad_mask() {
        let _ = Tensor::attn_scores_fused(
            &Tensor::zeros([2, 1]),
            &Tensor::zeros([2, 1]),
            &Tensor::zeros([4, 1]),
            &[1.0; 3],
            2,
        );
    }
}
