//! Shape manipulation: `reshape`, `transpose`, `concat`, and row slicing.
//!
//! `reshape` (and full-range `slice_rows`) are zero-copy views: they share
//! the source's `Arc` buffer and rely on copy-on-write in the storage
//! layer, so reinterpreting a batch tensor costs one refcount bump instead
//! of a full copy.

use crate::arena;
use crate::grad::GradCtx;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Returns a tensor with the same data viewed under a new shape.
    ///
    /// Zero-copy: the view shares the source buffer (copy-on-write makes
    /// later writes to either side unobservable from the other).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.len(),
            "reshape from {} to {} changes element count",
            self.shape(),
            shape
        );
        Tensor::from_op_arc(
            self.share_data(),
            shape,
            vec![self.clone()],
            Box::new(|_out, grad, parents, ctx: &mut GradCtx| {
                let p = &parents[0];
                if p.is_requires_grad() {
                    // A reshape is the identity on the flat buffer: the
                    // owned upstream moves straight through.
                    ctx.accumulate_owned(p, grad);
                } else {
                    arena::recycle(grad);
                }
            }),
        )
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(
            self.dims().len(),
            2,
            "transpose requires rank-2, got {}",
            self.shape()
        );
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let data = self.data();
        let mut out = arena::take_zeroed(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = data[i * n + j];
            }
        }
        drop(data);
        Tensor::from_op(
            out,
            Shape::new(vec![n, m]),
            vec![self.clone()],
            Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
                let p = &parents[0];
                if !p.is_requires_grad() {
                    arena::recycle(grad);
                    return;
                }
                let mut g = arena::take_zeroed(m * n);
                for j in 0..n {
                    for i in 0..m {
                        g[i * n + j] = grad[j * m + i];
                    }
                }
                arena::recycle(grad);
                ctx.accumulate_owned(p, g);
            }),
        )
    }

    /// Concatenates rank-2 tensors along columns (`axis = 1`).
    ///
    /// All operands must have the same number of rows.
    ///
    /// # Panics
    ///
    /// Panics on empty input, rank ≠ 2, or row-count mismatch.
    pub fn concat_cols(tensors: &[&Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "concat_cols of zero tensors");
        let rows = tensors[0].dims()[0];
        for t in tensors {
            assert_eq!(t.dims().len(), 2, "concat_cols requires rank-2 tensors");
            assert_eq!(t.dims()[0], rows, "concat_cols row mismatch");
        }
        let widths: Vec<usize> = tensors.iter().map(|t| t.dims()[1]).collect();
        let total_w: usize = widths.iter().sum();
        let mut out = arena::take_zeroed(rows * total_w);
        let mut col = 0;
        for (t, &w) in tensors.iter().zip(widths.iter()) {
            let data = t.data();
            for r in 0..rows {
                out[r * total_w + col..r * total_w + col + w]
                    .copy_from_slice(&data[r * w..(r + 1) * w]);
            }
            col += w;
        }
        let parents: Vec<Tensor> = tensors.iter().map(|t| (*t).clone()).collect();
        Tensor::from_op(
            out,
            Shape::new(vec![rows, total_w]),
            parents,
            Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
                let mut col = 0;
                for (p, &w) in parents.iter().zip(widths.iter()) {
                    if p.is_requires_grad() {
                        let mut g = arena::take_zeroed(rows * w);
                        for r in 0..rows {
                            g[r * w..(r + 1) * w]
                                .copy_from_slice(&grad[r * total_w + col..r * total_w + col + w]);
                        }
                        ctx.accumulate_owned(p, g);
                    }
                    col += w;
                }
                arena::recycle(grad);
            }),
        )
    }

    /// Concatenates rank-2 tensors along rows (`axis = 0`).
    ///
    /// All operands must have the same number of columns.
    ///
    /// # Panics
    ///
    /// Panics on empty input, rank ≠ 2, or column-count mismatch.
    pub fn concat_rows(tensors: &[&Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "concat_rows of zero tensors");
        let cols = tensors[0].dims()[1];
        for t in tensors {
            assert_eq!(t.dims().len(), 2, "concat_rows requires rank-2 tensors");
            assert_eq!(t.dims()[1], cols, "concat_rows column mismatch");
        }
        let heights: Vec<usize> = tensors.iter().map(|t| t.dims()[0]).collect();
        let total_h: usize = heights.iter().sum();
        let mut out = arena::take_empty(total_h * cols);
        for t in tensors {
            out.extend_from_slice(&t.data());
        }
        let parents: Vec<Tensor> = tensors.iter().map(|t| (*t).clone()).collect();
        Tensor::from_op(
            out,
            Shape::new(vec![total_h, cols]),
            parents,
            Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
                let mut row = 0;
                for (p, &h) in parents.iter().zip(heights.iter()) {
                    if p.is_requires_grad() {
                        ctx.accumulate(p, &grad[row * cols..(row + h) * cols]);
                    }
                    row += h;
                }
                arena::recycle(grad);
            }),
        )
    }

    /// Extracts columns `[start, end)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or the tensor is not rank-2.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.dims().len(), 2, "slice_cols requires rank-2");
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        assert!(
            start <= end && end <= cols,
            "slice_cols range {}..{} out of {} cols",
            start,
            end,
            cols
        );
        let w = end - start;
        let data = self.data();
        let mut out = arena::take_empty(rows * w);
        for r in 0..rows {
            out.extend_from_slice(&data[r * cols + start..r * cols + end]);
        }
        drop(data);
        Tensor::from_op(
            out,
            Shape::new(vec![rows, w]),
            vec![self.clone()],
            Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
                let p = &parents[0];
                if !p.is_requires_grad() {
                    arena::recycle(grad);
                    return;
                }
                let mut g = arena::take_zeroed(rows * cols);
                for r in 0..rows {
                    g[r * cols + start..r * cols + end].copy_from_slice(&grad[r * w..(r + 1) * w]);
                }
                arena::recycle(grad);
                ctx.accumulate_owned(p, g);
            }),
        )
    }

    /// Extracts rows `[start, end)` of a rank-2 tensor.
    ///
    /// A full-range slice is a zero-copy view of the source buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or the tensor is not rank-2.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.dims().len(), 2, "slice_rows requires rank-2");
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        assert!(
            start <= end && end <= rows,
            "slice_rows range {}..{} out of {} rows",
            start,
            end,
            rows
        );
        let full = start == 0 && end == rows;
        let backward = Box::new(
            move |_out: &Tensor, grad: Vec<f32>, parents: &[Tensor], ctx: &mut GradCtx| {
                let p = &parents[0];
                if !p.is_requires_grad() {
                    arena::recycle(grad);
                    return;
                }
                if full {
                    ctx.accumulate_owned(p, grad);
                    return;
                }
                let mut g = arena::take_zeroed(rows * cols);
                g[start * cols..end * cols].copy_from_slice(&grad);
                arena::recycle(grad);
                ctx.accumulate_owned(p, g);
            },
        );
        let shape = Shape::new(vec![end - start, cols]);
        if full {
            Tensor::from_op_arc(self.share_data(), shape, vec![self.clone()], backward)
        } else {
            let data = arena::take_copy(&self.data()[start * cols..end * cols]);
            Tensor::from_op(data, shape, vec![self.clone()], backward)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let r = t.reshape([4]);
        assert_eq!(r.dims(), &[4]);
        assert_eq!(r.to_vec(), t.to_vec());
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        let _ = Tensor::zeros([2, 2]).reshape([3]);
    }

    #[test]
    fn reshape_backward_flows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        t.reshape([4]).mul_scalar(2.0).sum().backward();
        assert_eq!(t.grad().unwrap(), vec![2.0; 4]);
    }

    #[test]
    fn transpose_square_and_rect() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_backward() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], [2, 2]);
        t.transpose().mul(&w).sum().backward();
        // Only out[0][0] contributes, which is t[0][0].
        assert_eq!(t.grad().unwrap(), vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![9.0, 8.0], [2, 1]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn concat_cols_backward_splits() {
        let a = Tensor::ones([2, 2]).requires_grad();
        let b = Tensor::ones([2, 1]).requires_grad();
        Tensor::concat_cols(&[&a, &b]).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0; 4]);
        assert_eq!(b.grad().unwrap(), vec![1.0; 2]);
    }

    #[test]
    fn concat_rows_layout() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], [2, 2]);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_rows_extracts() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_rows_backward_pads() {
        let t = Tensor::ones([3, 2]).requires_grad();
        t.slice_rows(0, 1).sum().backward();
        assert_eq!(t.grad().unwrap(), vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn slice_rows_full_range_is_view() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        let s = t.slice_rows(0, 2);
        assert_eq!(s.to_vec(), t.to_vec());
        s.sum().backward();
        assert_eq!(t.grad().unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn slice_cols_extracts() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let s = t.slice_cols(1, 3);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![2.0, 3.0, 5.0, 6.0]);
    }

    #[test]
    fn slice_cols_backward_pads() {
        let t = Tensor::ones([2, 3]).requires_grad();
        t.slice_cols(0, 1).sum().backward();
        assert_eq!(t.grad().unwrap(), vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn concat_cols_rejects_row_mismatch() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([3, 2]);
        let _ = Tensor::concat_cols(&[&a, &b]);
    }
}
