//! Reductions (`sum`, `mean`, per-axis variants) and row softmax.

use crate::arena;
use crate::grad::GradCtx;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements, as a scalar tensor.
    pub fn sum(&self) -> Tensor {
        let total: f32 = self.data().iter().sum();
        let n = self.len();
        Tensor::from_op(
            vec![total],
            Shape::scalar(),
            vec![self.clone()],
            Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
                let g = grad[0];
                arena::recycle(grad);
                let p = &parents[0];
                if p.is_requires_grad() {
                    ctx.accumulate_owned(p, arena::take_filled(n, g));
                }
            }),
        )
    }

    /// Mean of all elements, as a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> Tensor {
        let n = self.len();
        assert!(n > 0, "mean of empty tensor");
        self.sum().mul_scalar(1.0 / n as f32)
    }

    /// Sums over `axis`, removing that dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        let dims = self.dims();
        assert!(
            axis < dims.len(),
            "sum_axis axis {} out of range for {}",
            axis,
            self.shape()
        );
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out_dims: Vec<usize> = dims.to_vec();
        out_dims.remove(axis);

        let data = self.data();
        let mut out = arena::take_zeroed(outer * inner);
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                let out_base = o * inner;
                for i in 0..inner {
                    out[out_base + i] += data[base + i];
                }
            }
        }
        drop(data);

        Tensor::from_op(
            out,
            Shape::new(out_dims),
            vec![self.clone()],
            Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
                let p = &parents[0];
                if !p.is_requires_grad() {
                    arena::recycle(grad);
                    return;
                }
                let mut g = arena::take_zeroed(outer * axis_len * inner);
                for o in 0..outer {
                    for a in 0..axis_len {
                        let base = (o * axis_len + a) * inner;
                        let src_base = o * inner;
                        g[base..base + inner].copy_from_slice(&grad[src_base..src_base + inner]);
                    }
                }
                arena::recycle(grad);
                ctx.accumulate_owned(p, g);
            }),
        )
    }

    /// Mean over `axis`, removing that dimension.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or has size 0.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.dims()[axis];
        assert!(n > 0, "mean over empty axis");
        self.sum_axis(axis).mul_scalar(1.0 / n as f32)
    }

    /// Numerically stable softmax over the last axis.
    ///
    /// For a rank-2 tensor this is the familiar row softmax used by
    /// attention layers.
    ///
    /// # Panics
    ///
    /// Panics on rank-0 tensors.
    pub fn softmax(&self) -> Tensor {
        let dims = self.dims();
        assert!(!dims.is_empty(), "softmax requires rank >= 1");
        let cols = *dims.last().unwrap();
        let rows = self.len() / cols.max(1);
        let data = self.data();
        let mut out = arena::take_zeroed(data.len());
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row.iter()) {
                let e = (x - max).exp();
                *o = e;
                denom += e;
            }
            for o in &mut out[r * cols..(r + 1) * cols] {
                *o /= denom;
            }
        }
        drop(data);

        Tensor::from_op(
            out,
            self.shape().clone(),
            vec![self.clone()],
            Box::new(move |out, mut grad, parents, ctx: &mut GradCtx| {
                let p = &parents[0];
                if !p.is_requires_grad() {
                    arena::recycle(grad);
                    return;
                }
                // Per row: dot = y·g first, then g ← y ⊙ (g − dot), all in
                // place on the owned upstream buffer.
                let y = out.data();
                for r in 0..rows {
                    let ys = &y[r * cols..(r + 1) * cols];
                    let gs = &mut grad[r * cols..(r + 1) * cols];
                    let dot: f32 = ys.iter().zip(gs.iter()).map(|(&a, &b)| a * b).sum();
                    for (g, &yi) in gs.iter_mut().zip(ys.iter()) {
                        *g = yi * (*g - dot);
                    }
                }
                drop(y);
                ctx.accumulate_owned(p, grad);
            }),
        )
    }

    /// Largest element (no autograd).
    pub fn max_value(&self) -> f32 {
        self.data()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (no autograd).
    pub fn min_value(&self) -> f32 {
        self.data().iter().cloned().fold(f32::INFINITY, f32::min)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn sum_and_mean() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.sum().item(), 10.0);
        assert_eq!(t.mean().item(), 2.5);
    }

    #[test]
    fn sum_axis_rows_and_cols() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.sum_axis(0).to_vec(), vec![5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis(1).to_vec(), vec![6.0, 15.0]);
        assert_eq!(t.mean_axis(1).to_vec(), vec![2.0, 5.0]);
    }

    #[test]
    fn sum_axis_backward_broadcasts() {
        let t = Tensor::ones([2, 3]).requires_grad();
        t.sum_axis(0).sum().backward();
        assert_eq!(t.grad().unwrap(), vec![1.0; 6]);
    }

    #[test]
    fn softmax_rows_normalize() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], [2, 3]);
        let s = t.softmax();
        let v = s.to_vec();
        assert!(close(v[0] + v[1] + v[2], 1.0));
        assert!(close(v[3], 1.0 / 3.0));
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]).softmax();
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], [1, 3]).softmax();
        for (x, y) in a.to_vec().iter().zip(b.to_vec().iter()) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn softmax_backward_sums_to_zero() {
        // Softmax Jacobian rows sum to zero, so uniform upstream grad
        // yields zero input grad.
        let t = Tensor::from_vec(vec![0.3, -1.2, 2.0], [1, 3]).requires_grad();
        t.softmax().sum().backward();
        for g in t.grad().unwrap() {
            assert!(g.abs() < 1e-5);
        }
    }

    #[test]
    fn min_max_values() {
        let t = Tensor::from_vec(vec![3.0, -1.0, 2.0], [3]);
        assert_eq!(t.max_value(), 3.0);
        assert_eq!(t.min_value(), -1.0);
    }

    #[test]
    fn mean_backward_scales() {
        let t = Tensor::from_vec(vec![1.0, 3.0], [2]).requires_grad();
        t.mean().backward();
        assert_eq!(t.grad().unwrap(), vec![0.5, 0.5]);
    }
}
