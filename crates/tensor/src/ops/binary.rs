//! Broadcasting elementwise binary operations: `add`, `sub`, `mul`, `div`.

use crate::grad::GradCtx;
use crate::shape::{advance_index, broadcast_offset, Shape};
use crate::tensor::Tensor;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }
}

/// Sums `grad` (shaped `out_dims`) over the axes that were broadcast from
/// `src_dims`, producing a gradient of the source shape.
pub(crate) fn reduce_broadcast_grad(
    grad: &[f32],
    out_dims: &[usize],
    src_dims: &[usize],
) -> Vec<f32> {
    if out_dims == src_dims {
        return grad.to_vec();
    }
    let src_len: usize = src_dims.iter().product::<usize>().max(1);
    let mut out = vec![0.0; src_len];
    let src_shape = Shape::new(src_dims.to_vec());
    let src_strides = src_shape.strides();
    let mut idx = vec![0usize; out_dims.len()];
    let mut flat = 0usize;
    loop {
        let off = broadcast_offset(&idx, src_dims, &src_strides);
        out[off] += grad[flat];
        flat += 1;
        if !advance_index(&mut idx, out_dims) {
            break;
        }
    }
    out
}

fn binary(a: &Tensor, b: &Tensor, op: BinOp) -> Tensor {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", a.shape(), b.shape()));

    let a_data = a.data();
    let b_data = b.data();
    let out_data: Vec<f32> = if a.shape() == b.shape() {
        // Fast path: identical shapes.
        a_data
            .iter()
            .zip(b_data.iter())
            .map(|(&x, &y)| op.apply(x, y))
            .collect()
    } else if a.dims().len() == 2 && b.dims().len() == 1 && a.dims()[1] == b.dims()[0] {
        // Fast path: [R, C] op [C] (bias-style row broadcast).
        let c = b.dims()[0];
        a_data
            .iter()
            .enumerate()
            .map(|(i, &x)| op.apply(x, b_data[i % c]))
            .collect()
    } else {
        // General broadcasting path.
        let out_dims = out_shape.dims().to_vec();
        let a_strides = a.shape().strides();
        let b_strides = b.shape().strides();
        let a_dims = a.dims().to_vec();
        let b_dims = b.dims().to_vec();
        let mut out = Vec::with_capacity(out_shape.len());
        if !out_shape.is_empty() {
            let mut idx = vec![0usize; out_dims.len()];
            loop {
                let ai = broadcast_offset(&idx, &a_dims, &a_strides);
                let bi = broadcast_offset(&idx, &b_dims, &b_strides);
                out.push(op.apply(a_data[ai], b_data[bi]));
                if !advance_index(&mut idx, &out_dims) {
                    break;
                }
            }
        }
        out
    };
    drop(a_data);
    drop(b_data);

    let out_dims = out_shape.dims().to_vec();
    Tensor::from_op(
        out_data,
        out_shape,
        vec![a.clone(), b.clone()],
        Box::new(move |out, parents, ctx: &mut GradCtx| {
            let grad = out.grad().expect("backward without gradient");
            let (a, b) = (&parents[0], &parents[1]);
            match op {
                BinOp::Add => {
                    if a.is_requires_grad() {
                        ctx.accumulate(a, &reduce_broadcast_grad(&grad, &out_dims, a.dims()));
                    }
                    if b.is_requires_grad() {
                        ctx.accumulate(b, &reduce_broadcast_grad(&grad, &out_dims, b.dims()));
                    }
                }
                BinOp::Sub => {
                    if a.is_requires_grad() {
                        ctx.accumulate(a, &reduce_broadcast_grad(&grad, &out_dims, a.dims()));
                    }
                    if b.is_requires_grad() {
                        let neg: Vec<f32> = grad.iter().map(|g| -g).collect();
                        ctx.accumulate(b, &reduce_broadcast_grad(&neg, &out_dims, b.dims()));
                    }
                }
                BinOp::Mul => {
                    if a.is_requires_grad() {
                        let g = broadcast_weighted(&grad, b, &out_dims);
                        ctx.accumulate(a, &reduce_broadcast_grad(&g, &out_dims, a.dims()));
                    }
                    if b.is_requires_grad() {
                        let g = broadcast_weighted(&grad, a, &out_dims);
                        ctx.accumulate(b, &reduce_broadcast_grad(&g, &out_dims, b.dims()));
                    }
                }
                BinOp::Div => {
                    // out = a / b
                    if a.is_requires_grad() {
                        let g = broadcast_map(&grad, b, &out_dims, |g, bv| g / bv);
                        ctx.accumulate(a, &reduce_broadcast_grad(&g, &out_dims, a.dims()));
                    }
                    if b.is_requires_grad() {
                        let a_vals = expand(a, &out_dims);
                        let b_vals = expand(b, &out_dims);
                        let g: Vec<f32> = grad
                            .iter()
                            .zip(a_vals.iter().zip(b_vals.iter()))
                            .map(|(g, (av, bv))| -g * av / (bv * bv))
                            .collect();
                        ctx.accumulate(b, &reduce_broadcast_grad(&g, &out_dims, b.dims()));
                    }
                }
            }
        }),
    )
}

/// `grad[i] * broadcast(src)[i]`.
fn broadcast_weighted(grad: &[f32], src: &Tensor, out_dims: &[usize]) -> Vec<f32> {
    broadcast_map(grad, src, out_dims, |g, s| g * s)
}

fn broadcast_map(
    grad: &[f32],
    src: &Tensor,
    out_dims: &[usize],
    f: impl Fn(f32, f32) -> f32,
) -> Vec<f32> {
    let vals = expand(src, out_dims);
    grad.iter()
        .zip(vals.iter())
        .map(|(&g, &v)| f(g, v))
        .collect()
}

/// Materializes `src` broadcast to `out_dims`.
fn expand(src: &Tensor, out_dims: &[usize]) -> Vec<f32> {
    let data = src.data();
    if src.dims() == out_dims {
        return data.clone();
    }
    let strides = src.shape().strides();
    let dims = src.dims().to_vec();
    let total: usize = out_dims.iter().product::<usize>().max(1);
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; out_dims.len()];
    loop {
        out.push(data[broadcast_offset(&idx, &dims, &strides)]);
        if !advance_index(&mut idx, out_dims) {
            break;
        }
    }
    out
}

impl Tensor {
    /// Elementwise addition with NumPy-style broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn add(&self, other: &Tensor) -> Tensor {
        binary(self, other, BinOp::Add)
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        binary(self, other, BinOp::Sub)
    }

    /// Elementwise multiplication with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        binary(self, other, BinOp::Mul)
    }

    /// Elementwise division with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn div(&self, other: &Tensor) -> Tensor {
        binary(self, other, BinOp::Div)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, v: f32) -> Tensor {
        self.add(&Tensor::scalar(v))
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, v: f32) -> Tensor {
        self.mul(&Tensor::scalar(v))
    }

    /// Subtracts a scalar from every element.
    pub fn sub_scalar(&self, v: f32) -> Tensor {
        self.sub(&Tensor::scalar(v))
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], [2]);
        assert_eq!(a.add(&b).to_vec(), vec![4.0, 6.0]);
    }

    #[test]
    fn sub_mul_div() {
        let a = Tensor::from_vec(vec![6.0, 8.0], [2]);
        let b = Tensor::from_vec(vec![2.0, 4.0], [2]);
        assert_eq!(a.sub(&b).to_vec(), vec![4.0, 4.0]);
        assert_eq!(a.mul(&b).to_vec(), vec![12.0, 32.0]);
        assert_eq!(a.div(&b).to_vec(), vec![3.0, 2.0]);
    }

    #[test]
    fn add_row_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let bias = Tensor::from_vec(vec![10.0, 20.0], [2]);
        assert_eq!(a.add(&bias).to_vec(), vec![11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn mul_column_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let col = Tensor::from_vec(vec![10.0, 100.0], [2, 1]);
        assert_eq!(a.mul(&col).to_vec(), vec![10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn scalar_helpers() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        assert_eq!(a.add_scalar(1.0).to_vec(), vec![2.0, 3.0]);
        assert_eq!(a.mul_scalar(2.0).to_vec(), vec![2.0, 4.0]);
        assert_eq!(a.sub_scalar(1.0).to_vec(), vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 4]);
        let _ = a.add(&b);
    }

    #[test]
    fn add_backward_broadcast_sums() {
        let a = Tensor::ones([2, 2]).requires_grad();
        let bias = Tensor::ones([2]).requires_grad();
        let out = a.add(&bias);
        out.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0; 4]);
        // bias gradient sums over the broadcast (row) axis
        assert_eq!(bias.grad().unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    fn mul_backward_products() {
        let a = Tensor::from_vec(vec![2.0, 3.0], [2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 7.0], [2]).requires_grad();
        a.mul(&b).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn div_backward() {
        let a = Tensor::from_vec(vec![6.0], [1]).requires_grad();
        let b = Tensor::from_vec(vec![2.0], [1]).requires_grad();
        a.div(&b).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![0.5]);
        assert_eq!(b.grad().unwrap(), vec![-1.5]);
    }
}
