//! Broadcasting elementwise binary operations: `add`, `sub`, `mul`, `div`.
//!
//! The forward pass classifies the operand shapes once into a
//! [`Broadcast`] kind; the hot TGNN shapes — identical shapes, `[R, C] op
//! [C]` bias rows, `[R, C] op [R, 1]` attention columns, and scalar
//! operands — run as fused chunked-slice loops, while arbitrary NumPy
//! broadcasting falls back to the general odometer walk. Backward closures
//! own their upstream buffer and transform it in place wherever an operand
//! shape matches the output, so the common case moves gradients without a
//! single copy. Every fast-path reduction sweeps the output in flat
//! row-major order, matching the general path bit for bit.

use crate::arena;
use crate::grad::GradCtx;
use crate::shape::{advance_index, broadcast_offset, Shape};
use crate::tensor::Tensor;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }
}

/// Shape relationship of the two operands, classified once at forward
/// time so both passes dispatch to the right fused loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Broadcast {
    /// Identical shapes.
    Same,
    /// `[R, C] op [C]`: bias-style row broadcast.
    Row { rows: usize, cols: usize },
    /// `[R, C] op [R, 1]`: attention-style column broadcast.
    Col { rows: usize, cols: usize },
    /// `b` is a single element and the output has `a`'s shape.
    ScalarB,
    /// `a` is a single element and the output has `b`'s shape.
    ScalarA,
    /// Anything else: general odometer broadcasting.
    General,
}

fn classify(a: &Tensor, b: &Tensor, out_dims: &[usize]) -> Broadcast {
    if a.shape() == b.shape() {
        return Broadcast::Same;
    }
    if b.len() == 1 && out_dims == a.dims() {
        return Broadcast::ScalarB;
    }
    if a.len() == 1 && out_dims == b.dims() {
        return Broadcast::ScalarA;
    }
    if a.dims().len() == 2 && b.dims().len() == 1 && a.dims()[1] == b.dims()[0] {
        return Broadcast::Row {
            rows: a.dims()[0],
            cols: a.dims()[1],
        };
    }
    if a.dims().len() == 2 && b.dims().len() == 2 && a.dims()[0] == b.dims()[0] && b.dims()[1] == 1
    {
        return Broadcast::Col {
            rows: a.dims()[0],
            cols: a.dims()[1],
        };
    }
    Broadcast::General
}

/// Sums `grad` (shaped `out_dims`) over the axes that were broadcast from
/// `src_dims`, producing a gradient of the source shape (arena-backed).
pub(crate) fn reduce_broadcast_grad(
    grad: &[f32],
    out_dims: &[usize],
    src_dims: &[usize],
) -> Vec<f32> {
    if out_dims == src_dims {
        return arena::take_copy(grad);
    }
    let src_len: usize = src_dims.iter().product::<usize>().max(1);
    let mut out = arena::take_zeroed(src_len);
    let src_shape = Shape::new(src_dims.to_vec());
    let src_strides = src_shape.strides();
    let mut idx = vec![0usize; out_dims.len()];
    let mut flat = 0usize;
    loop {
        let off = broadcast_offset(&idx, src_dims, &src_strides);
        out[off] += grad[flat];
        flat += 1;
        if !advance_index(&mut idx, out_dims) {
            break;
        }
    }
    out
}

/// Column sums: `out[c] = Σ_r w[r·cols + c]` in ascending-`r` order.
fn reduce_to_row(w: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = arena::take_zeroed(cols);
    for r in 0..rows {
        for (o, &v) in out.iter_mut().zip(&w[r * cols..(r + 1) * cols]) {
            *o += v;
        }
    }
    out
}

/// Row sums: `out[r] = Σ_c w[r·cols + c]` in ascending-`c` order.
fn reduce_to_col(w: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = arena::take_empty(rows);
    for r in 0..rows {
        let mut acc = 0.0;
        for &v in &w[r * cols..(r + 1) * cols] {
            acc += v;
        }
        out.push(acc);
    }
    out
}

fn total(w: &[f32]) -> f32 {
    let mut acc = 0.0;
    for &v in w {
        acc += v;
    }
    acc
}

/// Materializes `src` (shaped `src_dims`) broadcast to `out_dims`
/// (general path only; fast paths never expand).
fn expand_slice(src: &[f32], src_dims: &[usize], out_dims: &[usize]) -> Vec<f32> {
    if src_dims == out_dims {
        return arena::take_copy(src);
    }
    let shape = Shape::new(src_dims.to_vec());
    let strides = shape.strides();
    let total: usize = out_dims.iter().product::<usize>().max(1);
    let mut out = arena::take_empty(total);
    let mut idx = vec![0usize; out_dims.len()];
    loop {
        out.push(src[broadcast_offset(&idx, src_dims, &strides)]);
        if !advance_index(&mut idx, out_dims) {
            break;
        }
    }
    out
}

fn binary(a: &Tensor, b: &Tensor, op: BinOp) -> Tensor {
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .unwrap_or_else(|| panic!("cannot broadcast {} with {}", a.shape(), b.shape()));
    let kind = classify(a, b, out_shape.dims());

    let a_data = a.data();
    let b_data = b.data();
    let mut out = arena::take_empty(out_shape.len());
    match kind {
        Broadcast::Same => {
            out.extend(
                a_data
                    .iter()
                    .zip(b_data.iter())
                    .map(|(&x, &y)| op.apply(x, y)),
            );
        }
        Broadcast::Row { rows, cols } => {
            for r in 0..rows {
                out.extend(
                    a_data[r * cols..(r + 1) * cols]
                        .iter()
                        .zip(b_data.iter())
                        .map(|(&x, &y)| op.apply(x, y)),
                );
            }
        }
        Broadcast::Col { rows, cols } => {
            for r in 0..rows {
                let y = b_data[r];
                out.extend(
                    a_data[r * cols..(r + 1) * cols]
                        .iter()
                        .map(|&x| op.apply(x, y)),
                );
            }
        }
        Broadcast::ScalarB => {
            let y = b_data[0];
            out.extend(a_data.iter().map(|&x| op.apply(x, y)));
        }
        Broadcast::ScalarA => {
            let x = a_data[0];
            out.extend(b_data.iter().map(|&y| op.apply(x, y)));
        }
        Broadcast::General => {
            let out_dims = out_shape.dims();
            let a_strides = a.shape().strides();
            let b_strides = b.shape().strides();
            if !out_shape.is_empty() {
                let mut idx = vec![0usize; out_dims.len()];
                loop {
                    let ai = broadcast_offset(&idx, a.dims(), &a_strides);
                    let bi = broadcast_offset(&idx, b.dims(), &b_strides);
                    out.push(op.apply(a_data[ai], b_data[bi]));
                    if !advance_index(&mut idx, out_dims) {
                        break;
                    }
                }
            }
        }
    }
    drop(a_data);
    drop(b_data);

    let out_dims = out_shape.dims().to_vec();
    Tensor::from_op(
        out,
        out_shape,
        vec![a.clone(), b.clone()],
        Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
            backward(op, kind, grad, &out_dims, parents, ctx);
        }),
    )
}

/// Routes the owned upstream buffer into the operand gradients.
///
/// Accumulation order is always `a` then `b` for every kind, and `b`'s
/// reductions are computed *before* the buffer is consumed for `a`, so the
/// float accumulation order is a pure function of the shapes.
fn backward(
    op: BinOp,
    kind: Broadcast,
    mut grad: Vec<f32>,
    out_dims: &[usize],
    parents: &[Tensor],
    ctx: &mut GradCtx,
) {
    let (a, b) = (&parents[0], &parents[1]);
    let (a_req, b_req) = (a.is_requires_grad(), b.is_requires_grad());
    if !a_req && !b_req {
        arena::recycle(grad);
        return;
    }
    if kind == Broadcast::General {
        general_backward(op, grad, out_dims, a, b, a_req, b_req, ctx);
        return;
    }
    match op {
        BinOp::Add | BinOp::Sub => {
            // d/da = g; d/db = ±g reduced over the broadcast axes. Reducing
            // first and negating the (exact) sums afterwards is bit-identical
            // to negating before reducing.
            let negate_b = op == BinOp::Sub;
            if kind == Broadcast::ScalarA {
                if a_req {
                    ctx.accumulate(a, &[total(&grad)]);
                }
                if b_req {
                    if negate_b {
                        for g in grad.iter_mut() {
                            *g = -*g;
                        }
                    }
                    ctx.accumulate_owned(b, grad);
                } else {
                    arena::recycle(grad);
                }
                return;
            }
            let gb = if b_req {
                let mut gb = match kind {
                    Broadcast::Same => arena::take_copy(&grad),
                    Broadcast::Row { rows, cols } => reduce_to_row(&grad, rows, cols),
                    Broadcast::Col { rows, cols } => reduce_to_col(&grad, rows, cols),
                    Broadcast::ScalarB => arena::take_copy(&[total(&grad)]),
                    Broadcast::ScalarA | Broadcast::General => unreachable!(),
                };
                if negate_b {
                    for g in gb.iter_mut() {
                        *g = -*g;
                    }
                }
                Some(gb)
            } else {
                None
            };
            if a_req {
                ctx.accumulate_owned(a, grad);
            } else {
                arena::recycle(grad);
            }
            if let Some(gb) = gb {
                ctx.accumulate_owned(b, gb);
            }
        }
        BinOp::Mul => {
            // d/da = g ⊙ b (reduced to a); d/db = g ⊙ a (reduced to b).
            let a_data = a.data();
            let b_data = b.data();
            let gb = if b_req {
                Some(mul_grad_for_b(kind, &grad, &a_data))
            } else {
                None
            };
            if a_req {
                scale_by_b(kind, &mut grad, &b_data);
                if kind == Broadcast::ScalarA {
                    ctx.accumulate(a, &[total(&grad)]);
                    arena::recycle(grad);
                } else {
                    ctx.accumulate_owned(a, grad);
                }
            } else {
                arena::recycle(grad);
            }
            if let Some(gb) = gb {
                ctx.accumulate_owned(b, gb);
            }
        }
        BinOp::Div => {
            // d/da = g / b; d/db = -g ⊙ a / b² (reduced to b).
            let a_data = a.data();
            let b_data = b.data();
            let gb = if b_req {
                Some(div_grad_for_b(kind, &grad, &a_data, &b_data))
            } else {
                None
            };
            if a_req {
                inv_scale_by_b(kind, &mut grad, &b_data);
                if kind == Broadcast::ScalarA {
                    ctx.accumulate(a, &[total(&grad)]);
                    arena::recycle(grad);
                } else {
                    ctx.accumulate_owned(a, grad);
                }
            } else {
                arena::recycle(grad);
            }
            if let Some(gb) = gb {
                ctx.accumulate_owned(b, gb);
            }
        }
    }
}

/// General-path backward: materialize the broadcast weights with the
/// odometer walk, reduce in flat row-major order. This is byte-for-byte
/// the historical semantics; it only runs for exotic shape pairs.
#[allow(clippy::too_many_arguments)]
fn general_backward(
    op: BinOp,
    grad: Vec<f32>,
    out_dims: &[usize],
    a: &Tensor,
    b: &Tensor,
    a_req: bool,
    b_req: bool,
    ctx: &mut GradCtx,
) {
    match op {
        BinOp::Add | BinOp::Sub => {
            if a_req {
                ctx.accumulate_owned(a, reduce_broadcast_grad(&grad, out_dims, a.dims()));
            }
            if b_req {
                let mut gb = reduce_broadcast_grad(&grad, out_dims, b.dims());
                if op == BinOp::Sub {
                    for g in gb.iter_mut() {
                        *g = -*g;
                    }
                }
                ctx.accumulate_owned(b, gb);
            }
        }
        BinOp::Mul => {
            let a_data = a.data();
            let b_data = b.data();
            if a_req {
                let b_vals = expand_slice(&b_data, b.dims(), out_dims);
                let mut w = arena::take_empty(grad.len());
                w.extend(grad.iter().zip(b_vals.iter()).map(|(&g, &v)| g * v));
                arena::recycle(b_vals);
                let ga = reduce_broadcast_grad(&w, out_dims, a.dims());
                arena::recycle(w);
                ctx.accumulate_owned(a, ga);
            }
            if b_req {
                let a_vals = expand_slice(&a_data, a.dims(), out_dims);
                let mut w = arena::take_empty(grad.len());
                w.extend(grad.iter().zip(a_vals.iter()).map(|(&g, &v)| g * v));
                arena::recycle(a_vals);
                let gb = reduce_broadcast_grad(&w, out_dims, b.dims());
                arena::recycle(w);
                ctx.accumulate_owned(b, gb);
            }
        }
        BinOp::Div => {
            let a_data = a.data();
            let b_data = b.data();
            let b_vals = expand_slice(&b_data, b.dims(), out_dims);
            if a_req {
                let mut w = arena::take_empty(grad.len());
                w.extend(grad.iter().zip(b_vals.iter()).map(|(&g, &bv)| g / bv));
                let ga = reduce_broadcast_grad(&w, out_dims, a.dims());
                arena::recycle(w);
                ctx.accumulate_owned(a, ga);
            }
            if b_req {
                let a_vals = expand_slice(&a_data, a.dims(), out_dims);
                let mut w = arena::take_empty(grad.len());
                w.extend(
                    grad.iter()
                        .zip(a_vals.iter().zip(b_vals.iter()))
                        .map(|(&g, (&av, &bv))| -g * av / (bv * bv)),
                );
                arena::recycle(a_vals);
                let gb = reduce_broadcast_grad(&w, out_dims, b.dims());
                arena::recycle(w);
                ctx.accumulate_owned(b, gb);
            }
            arena::recycle(b_vals);
        }
    }
    arena::recycle(grad);
}

/// `Mul` backward for `b`: `g ⊙ a` reduced to `b`'s shape (fast kinds).
fn mul_grad_for_b(kind: Broadcast, grad: &[f32], a_data: &[f32]) -> Vec<f32> {
    match kind {
        Broadcast::Same => {
            let mut gb = arena::take_empty(grad.len());
            gb.extend(grad.iter().zip(a_data.iter()).map(|(&g, &x)| g * x));
            gb
        }
        Broadcast::ScalarA => {
            // a is the scalar: b's gradient has the output shape.
            let av = a_data[0];
            let mut gb = arena::take_empty(grad.len());
            gb.extend(grad.iter().map(|&g| g * av));
            gb
        }
        Broadcast::Row { rows, cols } => {
            let mut gb = arena::take_zeroed(cols);
            for r in 0..rows {
                let base = r * cols;
                for c in 0..cols {
                    gb[c] += grad[base + c] * a_data[base + c];
                }
            }
            gb
        }
        Broadcast::Col { rows, cols } => {
            let mut gb = arena::take_empty(rows);
            for r in 0..rows {
                let base = r * cols;
                let mut acc = 0.0;
                for c in 0..cols {
                    acc += grad[base + c] * a_data[base + c];
                }
                gb.push(acc);
            }
            gb
        }
        Broadcast::ScalarB => {
            let mut acc = 0.0;
            for (&g, &x) in grad.iter().zip(a_data.iter()) {
                acc += g * x;
            }
            arena::take_copy(&[acc])
        }
        Broadcast::General => unreachable!("general kind handled by general_backward"),
    }
}

/// `Div` backward for `b`: `-g ⊙ a / b²` reduced to `b`'s shape.
fn div_grad_for_b(kind: Broadcast, grad: &[f32], a_data: &[f32], b_data: &[f32]) -> Vec<f32> {
    match kind {
        Broadcast::Same => {
            let mut gb = arena::take_empty(grad.len());
            gb.extend(
                grad.iter()
                    .zip(a_data.iter().zip(b_data.iter()))
                    .map(|(&g, (&av, &bv))| -g * av / (bv * bv)),
            );
            gb
        }
        Broadcast::ScalarA => {
            let av = a_data[0];
            let mut gb = arena::take_empty(grad.len());
            gb.extend(
                grad.iter()
                    .zip(b_data.iter())
                    .map(|(&g, &bv)| -g * av / (bv * bv)),
            );
            gb
        }
        Broadcast::Row { rows, cols } => {
            let mut gb = arena::take_zeroed(cols);
            for r in 0..rows {
                let base = r * cols;
                for c in 0..cols {
                    let bv = b_data[c];
                    gb[c] += -grad[base + c] * a_data[base + c] / (bv * bv);
                }
            }
            gb
        }
        Broadcast::Col { rows, cols } => {
            let mut gb = arena::take_empty(rows);
            for (r, &bv) in b_data.iter().enumerate().take(rows) {
                let base = r * cols;
                let mut acc = 0.0;
                for c in 0..cols {
                    acc += -grad[base + c] * a_data[base + c] / (bv * bv);
                }
                gb.push(acc);
            }
            gb
        }
        Broadcast::ScalarB => {
            let bv = b_data[0];
            let mut acc = 0.0;
            for (&g, &av) in grad.iter().zip(a_data.iter()) {
                acc += -g * av / (bv * bv);
            }
            arena::take_copy(&[acc])
        }
        Broadcast::General => unreachable!("general kind handled by general_backward"),
    }
}

/// Scales the owned upstream by broadcast `b` in place (`Mul` backward
/// for `a`; for `ScalarA` the result still needs a total reduction).
fn scale_by_b(kind: Broadcast, grad: &mut [f32], b_data: &[f32]) {
    match kind {
        Broadcast::Same | Broadcast::ScalarA => {
            for (g, &bv) in grad.iter_mut().zip(b_data.iter()) {
                *g *= bv;
            }
        }
        Broadcast::Row { rows, cols } => {
            for r in 0..rows {
                for (g, &bv) in grad[r * cols..(r + 1) * cols].iter_mut().zip(b_data.iter()) {
                    *g *= bv;
                }
            }
        }
        Broadcast::Col { rows, cols } => {
            for r in 0..rows {
                let bv = b_data[r];
                for g in grad[r * cols..(r + 1) * cols].iter_mut() {
                    *g *= bv;
                }
            }
        }
        Broadcast::ScalarB => {
            let bv = b_data[0];
            for g in grad.iter_mut() {
                *g *= bv;
            }
        }
        Broadcast::General => unreachable!("general kind handled by general_backward"),
    }
}

/// Divides the owned upstream by broadcast `b` in place (`Div` backward
/// for `a`).
fn inv_scale_by_b(kind: Broadcast, grad: &mut [f32], b_data: &[f32]) {
    match kind {
        Broadcast::Same | Broadcast::ScalarA => {
            for (g, &bv) in grad.iter_mut().zip(b_data.iter()) {
                *g /= bv;
            }
        }
        Broadcast::Row { rows, cols } => {
            for r in 0..rows {
                for (g, &bv) in grad[r * cols..(r + 1) * cols].iter_mut().zip(b_data.iter()) {
                    *g /= bv;
                }
            }
        }
        Broadcast::Col { rows, cols } => {
            for r in 0..rows {
                let bv = b_data[r];
                for g in grad[r * cols..(r + 1) * cols].iter_mut() {
                    *g /= bv;
                }
            }
        }
        Broadcast::ScalarB => {
            let bv = b_data[0];
            for g in grad.iter_mut() {
                *g /= bv;
            }
        }
        Broadcast::General => unreachable!("general kind handled by general_backward"),
    }
}

impl Tensor {
    /// Elementwise addition with NumPy-style broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn add(&self, other: &Tensor) -> Tensor {
        binary(self, other, BinOp::Add)
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        binary(self, other, BinOp::Sub)
    }

    /// Elementwise multiplication with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        binary(self, other, BinOp::Mul)
    }

    /// Elementwise division with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot be broadcast together.
    pub fn div(&self, other: &Tensor) -> Tensor {
        binary(self, other, BinOp::Div)
    }

    /// Adds a scalar to every element (single-parent fused op: no scalar
    /// tensor, no broadcast machinery).
    pub fn add_scalar(&self, v: f32) -> Tensor {
        scalar_op(self, move |x| x + v, ScalarGrad::PassThrough)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, v: f32) -> Tensor {
        scalar_op(self, move |x| x * v, ScalarGrad::Scale(v))
    }

    /// Subtracts a scalar from every element.
    pub fn sub_scalar(&self, v: f32) -> Tensor {
        scalar_op(self, move |x| x - v, ScalarGrad::PassThrough)
    }
}

enum ScalarGrad {
    PassThrough,
    Scale(f32),
}

fn scalar_op(t: &Tensor, forward: impl Fn(f32) -> f32, grad_rule: ScalarGrad) -> Tensor {
    let src = t.data();
    let mut out = arena::take_empty(src.len());
    out.extend(src.iter().map(|&x| forward(x)));
    drop(src);
    Tensor::from_op(
        out,
        t.shape().clone(),
        vec![t.clone()],
        Box::new(move |_out, mut grad, parents, ctx: &mut GradCtx| {
            let p = &parents[0];
            if !p.is_requires_grad() {
                arena::recycle(grad);
                return;
            }
            if let ScalarGrad::Scale(v) = grad_rule {
                for g in grad.iter_mut() {
                    *g *= v;
                }
            }
            ctx.accumulate_owned(p, grad);
        }),
    )
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], [2]);
        assert_eq!(a.add(&b).to_vec(), vec![4.0, 6.0]);
    }

    #[test]
    fn sub_mul_div() {
        let a = Tensor::from_vec(vec![6.0, 8.0], [2]);
        let b = Tensor::from_vec(vec![2.0, 4.0], [2]);
        assert_eq!(a.sub(&b).to_vec(), vec![4.0, 4.0]);
        assert_eq!(a.mul(&b).to_vec(), vec![12.0, 32.0]);
        assert_eq!(a.div(&b).to_vec(), vec![3.0, 2.0]);
    }

    #[test]
    fn add_row_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let bias = Tensor::from_vec(vec![10.0, 20.0], [2]);
        assert_eq!(a.add(&bias).to_vec(), vec![11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn mul_column_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let col = Tensor::from_vec(vec![10.0, 100.0], [2, 1]);
        assert_eq!(a.mul(&col).to_vec(), vec![10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn scalar_helpers() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        assert_eq!(a.add_scalar(1.0).to_vec(), vec![2.0, 3.0]);
        assert_eq!(a.mul_scalar(2.0).to_vec(), vec![2.0, 4.0]);
        assert_eq!(a.sub_scalar(1.0).to_vec(), vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 4]);
        let _ = a.add(&b);
    }

    #[test]
    fn add_backward_broadcast_sums() {
        let a = Tensor::ones([2, 2]).requires_grad();
        let bias = Tensor::ones([2]).requires_grad();
        let out = a.add(&bias);
        out.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0; 4]);
        // bias gradient sums over the broadcast (row) axis
        assert_eq!(bias.grad().unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    fn mul_backward_products() {
        let a = Tensor::from_vec(vec![2.0, 3.0], [2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 7.0], [2]).requires_grad();
        a.mul(&b).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn div_backward() {
        let a = Tensor::from_vec(vec![6.0], [1]).requires_grad();
        let b = Tensor::from_vec(vec![2.0], [1]).requires_grad();
        a.div(&b).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![0.5]);
        assert_eq!(b.grad().unwrap(), vec![-1.5]);
    }

    #[test]
    fn mul_column_broadcast_backward() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        let col = Tensor::from_vec(vec![10.0, 100.0], [2, 1]).requires_grad();
        a.mul(&col).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![10.0, 10.0, 100.0, 100.0]);
        // column grad is the row sum of a
        assert_eq!(col.grad().unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn scalar_tensor_operand_backward() {
        // [2,2] op [1] exercises the ScalarB kind on both passes.
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).requires_grad();
        let s = Tensor::from_vec(vec![2.0], [1]).requires_grad();
        a.mul(&s).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![2.0; 4]);
        assert_eq!(s.grad().unwrap(), vec![10.0]);

        // ScalarA: scalar on the left of a subtraction.
        let s2 = Tensor::from_vec(vec![5.0], [1]).requires_grad();
        let b = Tensor::from_vec(vec![1.0, 2.0], [2]).requires_grad();
        s2.sub(&b).sum().backward();
        assert_eq!(s2.grad().unwrap(), vec![2.0]);
        assert_eq!(b.grad().unwrap(), vec![-1.0, -1.0]);
    }

    #[test]
    fn general_broadcast_backward() {
        // [2,1] * [3] -> [2,3] takes the general odometer path.
        let a = Tensor::from_vec(vec![2.0, 3.0], [2, 1]).requires_grad();
        let b = Tensor::from_vec(vec![1.0, 10.0, 100.0], [3]).requires_grad();
        let out = a.mul(&b);
        assert_eq!(out.to_vec(), vec![2.0, 20.0, 200.0, 3.0, 30.0, 300.0]);
        out.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![111.0, 111.0]);
        assert_eq!(b.grad().unwrap(), vec![5.0, 5.0, 5.0]);
    }
}
