//! Row gathering and scattering — the embedding-table primitives TGNN
//! memory reads rely on.

use crate::arena;
use crate::grad::GradCtx;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Gathers rows of a rank-2 tensor: `out[i] = self[indices[i]]`.
    ///
    /// The gradient scatter-adds rows back, so repeated indices accumulate
    /// (matching embedding-lookup semantics).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-2 or any index is out of bounds.
    pub fn index_select(&self, indices: &[usize]) -> Tensor {
        assert_eq!(
            self.dims().len(),
            2,
            "index_select requires rank-2, got {}",
            self.shape()
        );
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let data = self.data();
        let mut out = arena::take_empty(indices.len() * cols);
        for &i in indices {
            assert!(i < rows, "index {} out of bounds for {} rows", i, rows);
            out.extend_from_slice(&data[i * cols..(i + 1) * cols]);
        }
        drop(data);
        let idx = indices.to_vec();
        Tensor::from_op(
            out,
            Shape::new(vec![idx.len(), cols]),
            vec![self.clone()],
            Box::new(move |_out, grad, parents, ctx: &mut GradCtx| {
                let p = &parents[0];
                if !p.is_requires_grad() {
                    arena::recycle(grad);
                    return;
                }
                let mut g = arena::take_zeroed(rows * cols);
                for (r, &i) in idx.iter().enumerate() {
                    for c in 0..cols {
                        g[i * cols + c] += grad[r * cols + c];
                    }
                }
                arena::recycle(grad);
                ctx.accumulate_owned(p, g);
            }),
        )
    }

    /// Builds a rank-2 tensor by stacking `rows` (each of equal length).
    ///
    /// This is a leaf constructor: no gradients flow to the sources.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty and
    /// `cols` cannot be inferred.
    pub fn from_rows(rows: &[Vec<f32>]) -> Tensor {
        assert!(!rows.is_empty(), "from_rows of zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows ragged input");
            data.extend_from_slice(r);
        }
        Tensor::from_vec(data, [rows.len(), cols])
    }

    /// Copies row `r` out of a rank-2 tensor (no autograd).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or not rank-2.
    pub fn row(&self, r: usize) -> Vec<f32> {
        assert_eq!(self.dims().len(), 2, "row() requires rank-2");
        let cols = self.dims()[1];
        assert!(r < self.dims()[0], "row {} out of bounds", r);
        self.data()[r * cols..(r + 1) * cols].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn gather_rows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]);
        let g = t.index_select(&[2, 0, 2]);
        assert_eq!(g.dims(), &[3, 2]);
        assert_eq!(g.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn gather_backward_scatter_adds() {
        let t = Tensor::ones([3, 2]).requires_grad();
        t.index_select(&[1, 1, 0]).sum().backward();
        // row 1 selected twice -> grad 2, row 0 once -> 1, row 2 never -> 0
        assert_eq!(t.grad().unwrap(), vec![1.0, 1.0, 2.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rejects_oob() {
        let _ = Tensor::zeros([2, 2]).index_select(&[2]);
    }

    #[test]
    fn from_rows_stacks() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn row_copies() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.row(1), vec![3.0, 4.0]);
    }
}
