//! The tape arena: a thread-local recycling pool for tensor buffers.
//!
//! Every op node in the autograd graph owns an output buffer, and every
//! backward pass materializes gradient buffers of the same shapes. Before
//! this module existed each of those was a fresh heap allocation, freed
//! when the batch's graph dropped — the "substrate tax" measured in
//! `bench_results/parallel_compute.json`. The arena turns that churn into
//! reuse: when a tensor's storage dies (see `Inner::drop` in `tensor.rs`)
//! its buffer is parked in a size-bucketed free list, and the next op of a
//! similar size takes it back instead of calling the allocator.
//!
//! # Lifecycle
//!
//! The pool is *thread-local*: the driver thread that builds a batch's
//! graph and runs its backward pass reuses its own buffers batch after
//! batch, with no locking and no cross-thread traffic. Shard workers
//! (scoped threads) get private pools that die with them.
//!
//! [`reset`] is the batch-boundary hook: it trims the pool back to a
//! bounded steady-state working set, releasing whatever surplus an
//! unusually large batch left behind. It must only be called between
//! batches (when no graph from the previous batch is being built) —
//! cascade-lint's `arena-reset-confined` rule pins call sites to the
//! trainer/executor batch loops.
//!
//! # Determinism
//!
//! Recycling never changes numerics: every buffer handed out by the pool
//! is fully overwritten (zero-filled or element-filled) before use, so a
//! recycled buffer is observationally identical to a fresh one. The
//! [`set_enabled`] toggle exists so the regression suite can prove it:
//! `crates/models/tests/arena_identity.rs` runs the same seeded batch with
//! the arena on and off and asserts bit-identical gradients, memories, and
//! post-step parameters.

use std::cell::RefCell;

/// Buffers with capacity above `1 << MAX_BUCKET_LOG2` are never pooled:
/// a single outlier allocation must not pin hundreds of megabytes.
const MAX_BUCKET_LOG2: usize = 24; // 16M f32 = 64 MiB
/// Hard cap on pooled floats per thread while training (128 MiB).
const MAX_RESIDENT_F32: usize = 32 << 20;
/// After [`reset`], at most this many buffers stay in each size bucket.
const RETAIN_PER_BUCKET: usize = 16;
/// After [`reset`], the pooled working set is at most this many floats
/// (32 MiB) — the steady-state footprint carried across batches.
const RESET_RESIDENT_F32: usize = 8 << 20;

/// Counters describing the pool's behavior since thread start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Allocations served from the pool.
    pub hits: u64,
    /// Allocations that fell through to the system allocator.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
    /// Floats currently parked in the pool.
    pub resident: usize,
}

struct Pool {
    enabled: bool,
    /// `buckets[b]` holds buffers whose capacity lies in `[2^b, 2^(b+1))`.
    buckets: Vec<Vec<Vec<f32>>>,
    resident: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
}

impl Pool {
    const fn new() -> Pool {
        Pool {
            enabled: true,
            buckets: Vec::new(),
            resident: 0,
            hits: 0,
            misses: 0,
            recycled: 0,
        }
    }

    /// Bucket that holds capacity `cap` (`floor(log2(cap))`).
    fn bucket_of(cap: usize) -> usize {
        (usize::BITS - 1 - cap.leading_zeros()) as usize
    }

    /// Bucket whose every member can hold `len` (`ceil(log2(len))`).
    fn bucket_for(len: usize) -> usize {
        Self::bucket_of(len.next_power_of_two())
    }

    fn pop(&mut self, len: usize) -> Option<Vec<f32>> {
        if !self.enabled || len == 0 {
            return None;
        }
        let b = Self::bucket_for(len);
        let v = self.buckets.get_mut(b).and_then(Vec::pop);
        match v {
            Some(v) => {
                debug_assert!(v.capacity() >= len);
                self.resident -= v.capacity();
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn push(&mut self, mut v: Vec<f32>) {
        let cap = v.capacity();
        if !self.enabled
            || cap == 0
            || cap > (1 << MAX_BUCKET_LOG2)
            || self.resident + cap > MAX_RESIDENT_F32
        {
            return; // dropped: the allocator frees it
        }
        let b = Self::bucket_of(cap);
        if self.buckets.len() <= b {
            self.buckets.resize_with(b + 1, Vec::new);
        }
        v.clear();
        self.buckets[b].push(v);
        self.resident += cap;
        self.recycled += 1;
    }

    /// Trims toward the steady-state working set: per-bucket count first,
    /// then total residency, dropping the largest buffers first.
    fn trim(&mut self) {
        for bucket in &mut self.buckets {
            while bucket.len() > RETAIN_PER_BUCKET {
                let v = bucket.pop().expect("bucket length was just checked");
                self.resident -= v.capacity();
            }
        }
        let mut b = self.buckets.len();
        while self.resident > RESET_RESIDENT_F32 && b > 0 {
            b -= 1;
            while let Some(v) = self.buckets[b].pop() {
                self.resident -= v.capacity();
                if self.resident <= RESET_RESIDENT_F32 {
                    break;
                }
            }
        }
    }

    fn drain(&mut self) {
        self.buckets.clear();
        self.resident = 0;
    }
}

thread_local! {
    static POOL: RefCell<Pool> = const { RefCell::new(Pool::new()) };
}

/// Capacity for a pool-miss allocation: the next power of two, so the
/// buffer files back into the exact bucket [`Pool::pop`] will search for
/// this `len` (floor-of-capacity == ceil-of-length). Oversize requests
/// keep their exact capacity — they bypass the pool anyway.
fn alloc_capacity(len: usize) -> usize {
    if len == 0 || len > (1 << MAX_BUCKET_LOG2) {
        len
    } else {
        len.next_power_of_two()
    }
}

/// Takes a zero-filled buffer of exactly `len` elements.
pub(crate) fn take_zeroed(len: usize) -> Vec<f32> {
    let mut v = take_empty(len);
    v.resize(len, 0.0);
    v
}

/// Takes an empty buffer with capacity for at least `len` elements —
/// for `push`/`extend`-style fills that overwrite every slot.
pub(crate) fn take_empty(len: usize) -> Vec<f32> {
    match POOL.with(|p| p.borrow_mut().pop(len)) {
        Some(v) => v,
        None => Vec::with_capacity(alloc_capacity(len)),
    }
}

/// Takes a buffer holding a copy of `src`.
pub(crate) fn take_copy(src: &[f32]) -> Vec<f32> {
    let mut v = take_empty(src.len());
    v.extend_from_slice(src);
    v
}

/// Takes a buffer of `len` elements all equal to `fill`.
pub(crate) fn take_filled(len: usize, fill: f32) -> Vec<f32> {
    let mut v = take_empty(len);
    v.resize(len, fill);
    v
}

/// Returns a dead buffer to the pool (or drops it if the pool is full,
/// disabled, or the buffer is outside the pooled size range).
pub(crate) fn recycle(v: Vec<f32>) {
    POOL.with(|p| p.borrow_mut().push(v));
}

/// Batch-boundary maintenance: trims this thread's pool back to its
/// bounded steady-state working set (surplus buffers from an unusually
/// large batch are released to the allocator). Call between batches only —
/// cascade-lint's `arena-reset-confined` rule enforces the call sites.
pub fn reset() {
    POOL.with(|p| p.borrow_mut().trim());
}

/// Enables or disables pooling on this thread, returning the previous
/// setting. Disabling drains the pool, so every subsequent allocation is
/// fresh — the control arm of the arena-identity regression test.
pub fn set_enabled(on: bool) -> bool {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let was = pool.enabled;
        pool.enabled = on;
        if !on {
            pool.drain();
        }
        was
    })
}

/// This thread's pool counters.
pub fn stats() -> ArenaStats {
    POOL.with(|p| {
        let pool = p.borrow();
        ArenaStats {
            hits: pool.hits,
            misses: pool.misses,
            recycled: pool.recycled,
            resident: pool.resident,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_buffer() {
        set_enabled(true);
        let v = take_zeroed(100);
        let cap = v.capacity();
        let before = stats();
        recycle(v);
        let v2 = take_zeroed(100);
        assert_eq!(v2.len(), 100);
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(v2.capacity(), cap, "same buffer must come back");
        let after = stats();
        assert_eq!(after.recycled, before.recycled + 1);
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn recycled_buffers_are_rezeroed() {
        set_enabled(true);
        let mut v = take_zeroed(8);
        v.iter_mut().for_each(|x| *x = 7.0);
        recycle(v);
        assert!(take_zeroed(8).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn take_filled_and_copy() {
        set_enabled(true);
        assert_eq!(take_filled(3, 2.5), vec![2.5; 3]);
        assert_eq!(take_copy(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn zero_length_is_never_pooled() {
        set_enabled(true);
        recycle(Vec::new());
        assert!(take_zeroed(0).is_empty());
        assert!(take_empty(0).is_empty());
    }

    #[test]
    fn disabled_pool_always_misses() {
        set_enabled(false);
        let before = stats();
        assert_eq!(before.resident, 0, "disabling drains the pool");
        recycle(vec![1.0; 64]);
        let _ = take_zeroed(64);
        let after = stats();
        assert_eq!(after.recycled, before.recycled, "recycle must drop");
        assert_eq!(after.hits, before.hits, "take must not hit");
        set_enabled(true);
    }

    #[test]
    fn reset_trims_to_working_set() {
        set_enabled(true);
        for _ in 0..(RETAIN_PER_BUCKET + 20) {
            recycle(vec![0.0; 1024]);
        }
        reset();
        let per_bucket_cap: usize = RETAIN_PER_BUCKET * 1024;
        assert!(
            stats().resident <= per_bucket_cap.min(RESET_RESIDENT_F32),
            "reset must trim surplus buffers"
        );
    }

    #[test]
    fn oversized_buffers_bypass_pool() {
        set_enabled(true);
        let before = stats();
        recycle(vec![0.0; (1 << MAX_BUCKET_LOG2) + 1]);
        assert_eq!(stats().recycled, before.recycled);
    }
}
