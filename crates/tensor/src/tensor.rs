//! The core [`Tensor`] type: a reference-counted, row-major, `f32` buffer
//! participating in a dynamically-built reverse-mode autograd graph.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};

use cascade_util::DetRng;

use crate::grad::GradCtx;
use crate::shape::Shape;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Backward function of an op node: given the node itself (for its data and
/// gradient), its parents, and the gradient-routing context of the current
/// backward pass, accumulates gradients into the parents via
/// [`GradCtx::accumulate`].
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[Tensor], &mut GradCtx) + Send + Sync>;

pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) shape: Shape,
    pub(crate) data: RwLock<Vec<f32>>,
    pub(crate) grad: Mutex<Option<Vec<f32>>>,
    pub(crate) requires_grad: bool,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
}

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is a cheap-to-clone handle (`Arc` internally); clones alias the
/// same storage and the same autograd node. Operations build a computation
/// graph on the fly; calling [`Tensor::backward`] on a scalar result fills
/// the `grad` buffers of every reachable tensor created with
/// `requires_grad`.
///
/// Tensors are `Send + Sync`: storage lives behind an `RwLock` (data) and a
/// `Mutex` (gradient), so shard workers may evaluate independent subgraphs
/// concurrently. Determinism across thread counts is preserved by the
/// engine, not the locks: shared gradients are reduced in a fixed
/// shard-index order (see [`Tensor::sharded_sum_scaled`]).
///
/// # Examples
///
/// ```
/// use cascade_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let b = Tensor::full([2, 2], 2.0);
/// let c = a.matmul(&b);
/// assert_eq!(c.to_vec(), vec![6.0, 6.0, 14.0, 14.0]);
/// ```
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Arc<Inner>,
}

/// Recovers the read guard even if a worker panicked mid-write; the data
/// underneath is plain `f32`s, never left in a torn state by our writers
/// (every write is a full-buffer overwrite or an elementwise loop).
fn read_data(lock: &RwLock<Vec<f32>>) -> RwLockReadGuard<'_, Vec<f32>> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn lock_grad(lock: &Mutex<Option<Vec<f32>>>) -> MutexGuard<'_, Option<Vec<f32>>> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

impl Tensor {
    pub(crate) fn from_op(
        data: Vec<f32>,
        shape: Shape,
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Tensor {
        debug_assert_eq!(data.len(), shape.len(), "op produced wrong element count");
        let requires_grad = parents.iter().any(|p| p.inner.requires_grad);
        Tensor {
            inner: Arc::new(Inner {
                id: fresh_id(),
                shape,
                data: RwLock::new(data),
                grad: Mutex::new(None),
                requires_grad,
                parents: if requires_grad { parents } else { Vec::new() },
                backward: if requires_grad { Some(backward) } else { None },
            }),
        }
    }

    /// An op node that is a *root* of out-of-graph work: `requires_grad` is
    /// forced on even though `parents` may be empty, because the backward
    /// closure owns subgraphs (shard roots) the engine cannot see. Used by
    /// [`Tensor::sharded_sum_scaled`].
    pub(crate) fn from_op_rooted(
        data: Vec<f32>,
        shape: Shape,
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Tensor {
        debug_assert_eq!(data.len(), shape.len(), "op produced wrong element count");
        Tensor {
            inner: Arc::new(Inner {
                id: fresh_id(),
                shape,
                data: RwLock::new(data),
                grad: Mutex::new(None),
                requires_grad: true,
                parents,
                backward: Some(backward),
            }),
        }
    }

    fn leaf(data: Vec<f32>, shape: Shape, requires_grad: bool) -> Tensor {
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Tensor {
            inner: Arc::new(Inner {
                id: fresh_id(),
                shape,
                data: RwLock::new(data),
                grad: Mutex::new(None),
                requires_grad,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the element count of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Tensor {
        Tensor::leaf(data, shape.into(), false)
    }

    /// Creates a scalar (0-dimensional) tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::leaf(vec![value], Shape::scalar(), false)
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.len();
        Tensor::leaf(vec![0.0; n], shape, false)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Tensor {
        let shape = shape.into();
        let n = shape.len();
        Tensor::leaf(vec![value; n], shape, false)
    }

    /// Creates a tensor with elements drawn uniformly from `[low, high)`,
    /// deterministically seeded.
    pub fn uniform(shape: impl Into<Shape>, low: f32, high: f32, seed: u64) -> Tensor {
        let shape = shape.into();
        let mut rng = DetRng::new(seed);
        let data = (0..shape.len()).map(|_| rng.range_f32(low, high)).collect();
        Tensor::leaf(data, shape, false)
    }

    /// Creates a tensor with standard-normal elements (Box–Muller),
    /// deterministically seeded.
    pub fn randn(shape: impl Into<Shape>, seed: u64) -> Tensor {
        let shape = shape.into();
        let mut rng = DetRng::new(seed);
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // 1 - f32() lies in (0, 1], keeping ln() finite.
            let u1: f32 = (1.0 - rng.f32()).max(f32::EPSILON);
            let u2: f32 = rng.f32();
            let r = (-2.0f32 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor::leaf(data, shape, false)
    }

    /// The identity matrix of size `n`.
    pub fn eye(n: usize) -> Tensor {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::leaf(data, Shape::new(vec![n, n]), false)
    }

    /// Marks this tensor as a trainable leaf: gradients will be accumulated
    /// into it during [`Tensor::backward`].
    ///
    /// Returns a new handle sharing no autograd history (fresh leaf with the
    /// same data).
    pub fn requires_grad(self) -> Tensor {
        if self.inner.requires_grad && self.inner.parents.is_empty() {
            return self;
        }
        let data = read_data(&self.inner.data).clone();
        Tensor::leaf(data, self.inner.shape.clone(), true)
    }

    /// `true` if gradients flow into (or through) this tensor.
    pub fn is_requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// `true` if this tensor has no parents (a graph leaf).
    pub(crate) fn is_leaf(&self) -> bool {
        self.inner.parents.is_empty()
    }

    /// Detaches this tensor from the autograd graph: the result shares the
    /// current values but receives no gradient and holds no history.
    ///
    /// Cascade detaches node memories at batch boundaries, matching the
    /// stop-gradient semantics of memory-based TGNNs.
    pub fn detach(&self) -> Tensor {
        Tensor::leaf(
            read_data(&self.inner.data).clone(),
            self.inner.shape.clone(),
            false,
        )
    }

    /// Unique autograd node id (monotonic creation order).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.inner.shape
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.inner.shape.dims()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.inner.shape.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.inner.shape.is_empty()
    }

    /// Borrows the flat row-major data (shared read lock).
    pub fn data(&self) -> RwLockReadGuard<'_, Vec<f32>> {
        read_data(&self.inner.data)
    }

    /// Copies the data out into a `Vec`.
    pub fn to_vec(&self) -> Vec<f32> {
        read_data(&self.inner.data).clone()
    }

    /// The single element of a scalar or 1-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        let data = read_data(&self.inner.data);
        assert_eq!(
            data.len(),
            1,
            "item() on tensor with {} elements",
            data.len()
        );
        data[0]
    }

    /// Element at flat offset `i`.
    pub fn at(&self, i: usize) -> f32 {
        read_data(&self.inner.data)[i]
    }

    /// Overwrites the data in place without touching autograd history.
    ///
    /// Intended for optimizer steps and memory-store writes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the tensor's element count.
    pub fn set_data(&self, data: &[f32]) {
        let mut d = self.inner.data.write().unwrap_or_else(|e| e.into_inner());
        assert_eq!(d.len(), data.len(), "set_data length mismatch");
        d.copy_from_slice(data);
    }

    /// Applies `f` to the data in place (optimizer updates).
    pub fn update_data(&self, f: impl FnOnce(&mut [f32])) {
        let mut d = self.inner.data.write().unwrap_or_else(|e| e.into_inner());
        f(&mut d);
    }

    /// The accumulated gradient, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        lock_grad(&self.inner.grad).clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *lock_grad(&self.inner.grad) = None;
    }

    /// Replaces the accumulated gradient (used by gradient clipping).
    ///
    /// # Panics
    ///
    /// Panics if `g.len()` differs from the element count.
    pub fn set_grad(&self, g: &[f32]) {
        assert_eq!(g.len(), self.len(), "set_grad length mismatch");
        *lock_grad(&self.inner.grad) = Some(g.to_vec());
    }

    pub(crate) fn accumulate_grad(&self, g: &[f32]) {
        let mut grad = lock_grad(&self.inner.grad);
        match grad.as_mut() {
            Some(existing) => {
                for (e, &v) in existing.iter_mut().zip(g) {
                    *e += v;
                }
            }
            None => *grad = Some(g.to_vec()),
        }
    }

    pub(crate) fn has_grad(&self) -> bool {
        lock_grad(&self.inner.grad).is_some()
    }

    pub(crate) fn clear_grad_internal(&self) {
        *lock_grad(&self.inner.grad) = None;
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = read_data(&self.inner.data);
        let preview: Vec<f32> = data.iter().take(8).copied().collect();
        f.debug_struct("Tensor")
            .field("shape", &self.inner.shape)
            .field("requires_grad", &self.inner.requires_grad)
            .field("data", &preview)
            .finish()
    }
}

impl From<f32> for Tensor {
    fn from(v: f32) -> Self {
        Tensor::scalar(v)
    }
}

impl From<Vec<f32>> for Tensor {
    fn from(v: Vec<f32>) -> Self {
        let n = v.len();
        Tensor::from_vec(v, [n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_wrong_len() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], [2, 2]);
    }

    #[test]
    fn constructors_fill() {
        assert_eq!(Tensor::zeros([3]).to_vec(), vec![0.0; 3]);
        assert_eq!(Tensor::ones([2]).to_vec(), vec![1.0; 2]);
        assert_eq!(Tensor::full([2], 7.0).to_vec(), vec![7.0; 2]);
        assert_eq!(Tensor::eye(2).to_vec(), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn uniform_is_deterministic_and_bounded() {
        let a = Tensor::uniform([100], -0.5, 0.5, 42);
        let b = Tensor::uniform([100], -0.5, 0.5, 42);
        assert_eq!(a.to_vec(), b.to_vec());
        assert!(a.to_vec().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn randn_is_deterministic() {
        let a = Tensor::randn([64], 7);
        let b = Tensor::randn([64], 7);
        assert_eq!(a.to_vec(), b.to_vec());
        // crude sanity: mean near 0
        let mean: f32 = a.to_vec().iter().sum::<f32>() / 64.0;
        assert!(mean.abs() < 0.5);
    }

    #[test]
    fn detach_shares_values_not_history() {
        let a = Tensor::ones([2]).requires_grad();
        let b = a.mul_scalar(3.0);
        let d = b.detach();
        assert_eq!(d.to_vec(), vec![3.0, 3.0]);
        assert!(!d.is_requires_grad());
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn set_data_overwrites() {
        let t = Tensor::zeros([2]);
        t.set_data(&[1.0, 2.0]);
        assert_eq!(t.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn clone_aliases_storage() {
        let t = Tensor::zeros([2]);
        let u = t.clone();
        t.set_data(&[5.0, 6.0]);
        assert_eq!(u.to_vec(), vec![5.0, 6.0]);
    }

    #[test]
    fn requires_grad_roundtrip() {
        let t = Tensor::ones([2]).requires_grad();
        assert!(t.is_requires_grad());
        assert!(t.grad().is_none());
    }

    #[test]
    fn tensor_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }

    #[test]
    fn tensors_cross_threads() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let sum: f32 = std::thread::scope(|s| {
            let h = s.spawn(|| t.to_vec().iter().sum());
            h.join().expect("reader thread must not panic")
        });
        assert_eq!(sum, 3.0);
    }
}
