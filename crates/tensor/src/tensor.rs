//! The core [`Tensor`] type: a reference-counted, row-major, `f32` buffer
//! participating in a dynamically-built reverse-mode autograd graph.
//!
//! # Storage model
//!
//! Each tensor's data lives in an `Arc<Vec<f32>>` behind an `RwLock`. The
//! lock is held only for the instant it takes to clone the `Arc` —
//! [`Tensor::data`] returns an owned [`DataRef`] snapshot, so kernels and
//! backward closures compute over plain slices without ever holding a
//! lock. Writes ([`Tensor::set_data`], [`Tensor::update_data`]) take the
//! write lock and mutate in place when the buffer is unshared, or
//! copy-on-write when snapshots are outstanding — a reader therefore
//! always sees a consistent buffer from some point in time, never a torn
//! mix. Dead buffers are recycled through the thread-local [`crate::arena`]
//! instead of returning to the allocator.

use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockWriteGuard};

use cascade_util::DetRng;

use crate::arena;
use crate::grad::GradCtx;
use crate::shape::Shape;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Backward function of an op node: given the node itself, the *owned*
/// upstream gradient (taken out of the node's grad slot by the engine),
/// its parents, and the gradient-routing context of the current backward
/// pass, accumulates gradients into the parents via [`GradCtx::accumulate`]
/// or [`GradCtx::accumulate_owned`]. Owning the upstream buffer lets
/// closures transform it in place and pass it along without copies; a
/// closure that does not forward it should hand it back via
/// [`arena::recycle`].
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, Vec<f32>, &[Tensor], &mut GradCtx) + Send + Sync>;

pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) shape: Shape,
    pub(crate) data: RwLock<Arc<Vec<f32>>>,
    pub(crate) grad: Mutex<Option<Vec<f32>>>,
    pub(crate) requires_grad: bool,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
}

impl Drop for Inner {
    /// Returns this node's buffers to the thread-local arena. The data
    /// buffer is only reclaimed when no [`DataRef`] snapshot still holds
    /// it (then the allocator frees it once the last snapshot drops).
    fn drop(&mut self) {
        let data = self.data.get_mut().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = Arc::get_mut(data) {
            arena::recycle(std::mem::take(v));
        }
        let grad = self.grad.get_mut().unwrap_or_else(|e| e.into_inner());
        if let Some(g) = grad.take() {
            arena::recycle(g);
        }
    }
}

/// An owned, lock-free read snapshot of a tensor's storage.
///
/// Produced by [`Tensor::data`]: the read lock is held only long enough to
/// clone the internal `Arc`, after which the snapshot can be read for any
/// length of time — across an entire fused kernel or backward closure —
/// without touching a lock. Writes to the tensor after the snapshot was
/// taken copy-on-write and are not visible through it.
pub struct DataRef {
    data: Arc<Vec<f32>>,
}

impl Deref for DataRef {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl AsRef<[f32]> for DataRef {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl fmt::Debug for DataRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.data.iter().take(8)).finish()
    }
}

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is a cheap-to-clone handle (`Arc` internally); clones alias the
/// same storage and the same autograd node. Operations build a computation
/// graph on the fly; calling [`Tensor::backward`] on a scalar result fills
/// the `grad` buffers of every reachable tensor created with
/// `requires_grad`.
///
/// Tensors are `Send + Sync`: reads snapshot the storage (see [`DataRef`])
/// and writes go through a brief write lock, so shard workers may evaluate
/// independent subgraphs concurrently. Determinism across thread counts is
/// preserved by the engine, not the locks: shared gradients are reduced in
/// a fixed shard-index order (see [`Tensor::sharded_sum_scaled`]).
///
/// # Examples
///
/// ```
/// use cascade_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let b = Tensor::full([2, 2], 2.0);
/// let c = a.matmul(&b);
/// assert_eq!(c.to_vec(), vec![6.0, 6.0, 14.0, 14.0]);
/// ```
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Arc<Inner>,
}

/// Snapshots the storage under a brief read lock (one `Arc` clone).
///
/// Poisoning: recovered with `into_inner` — the data underneath is plain
/// `f32`s behind copy-on-write, so a panicking writer can never leave a
/// buffer visible to readers in a torn state.
fn snapshot_data(lock: &RwLock<Arc<Vec<f32>>>) -> Arc<Vec<f32>> {
    Arc::clone(&lock.read().unwrap_or_else(|e| e.into_inner()))
}

/// Acquires the storage write lock.
///
/// Poisoning: recovered with `into_inner`, same argument as
/// [`snapshot_data`] — every write is a full-buffer overwrite or an
/// elementwise loop over an exclusively-held buffer.
fn write_data(lock: &RwLock<Arc<Vec<f32>>>) -> RwLockWriteGuard<'_, Arc<Vec<f32>>> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Acquires the gradient slot lock.
///
/// Poisoning: recovered with `into_inner` — gradient buffers are replaced
/// or accumulated whole, never left partially written.
fn lock_grad(lock: &Mutex<Option<Vec<f32>>>) -> MutexGuard<'_, Option<Vec<f32>>> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Copy-on-write access to the buffer behind the (held) write lock: in
/// place when unshared, else the buffer is replaced by an arena-sourced
/// copy, leaving outstanding [`DataRef`] snapshots on the old one.
fn cow_mut(d: &mut Arc<Vec<f32>>) -> &mut Vec<f32> {
    if Arc::get_mut(d).is_none() {
        *d = Arc::new(arena::take_copy(d));
    }
    Arc::get_mut(d).expect("buffer is unique after copy-on-write")
}

impl Tensor {
    pub(crate) fn from_op(
        data: Vec<f32>,
        shape: Shape,
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Tensor {
        Tensor::from_op_arc(Arc::new(data), shape, parents, backward)
    }

    /// [`Tensor::from_op`] over already-shared storage: zero-copy ops
    /// (`reshape`, full-range slices) alias their parent's buffer instead
    /// of copying it. Writes through either handle copy-on-write, so
    /// aliasing is never observable.
    pub(crate) fn from_op_arc(
        data: Arc<Vec<f32>>,
        shape: Shape,
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Tensor {
        debug_assert_eq!(data.len(), shape.len(), "op produced wrong element count");
        let requires_grad = parents.iter().any(|p| p.inner.requires_grad);
        Tensor {
            inner: Arc::new(Inner {
                id: fresh_id(),
                shape,
                data: RwLock::new(data),
                grad: Mutex::new(None),
                requires_grad,
                parents: if requires_grad { parents } else { Vec::new() },
                backward: if requires_grad { Some(backward) } else { None },
            }),
        }
    }

    /// An op node that is a *root* of out-of-graph work: `requires_grad` is
    /// forced on even though `parents` may be empty, because the backward
    /// closure owns subgraphs (shard roots) the engine cannot see. Used by
    /// [`Tensor::sharded_sum_scaled`].
    pub(crate) fn from_op_rooted(
        data: Vec<f32>,
        shape: Shape,
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Tensor {
        debug_assert_eq!(data.len(), shape.len(), "op produced wrong element count");
        Tensor {
            inner: Arc::new(Inner {
                id: fresh_id(),
                shape,
                data: RwLock::new(Arc::new(data)),
                grad: Mutex::new(None),
                requires_grad: true,
                parents,
                backward: Some(backward),
            }),
        }
    }

    fn leaf(data: Vec<f32>, shape: Shape, requires_grad: bool) -> Tensor {
        Tensor::leaf_arc(Arc::new(data), shape, requires_grad)
    }

    fn leaf_arc(data: Arc<Vec<f32>>, shape: Shape, requires_grad: bool) -> Tensor {
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Tensor {
            inner: Arc::new(Inner {
                id: fresh_id(),
                shape,
                data: RwLock::new(data),
                grad: Mutex::new(None),
                requires_grad,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the element count of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Tensor {
        Tensor::leaf(data, shape.into(), false)
    }

    /// Creates a scalar (0-dimensional) tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::leaf(vec![value], Shape::scalar(), false)
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.len();
        Tensor::leaf(vec![0.0; n], shape, false)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Tensor {
        let shape = shape.into();
        let n = shape.len();
        Tensor::leaf(vec![value; n], shape, false)
    }

    /// Creates a tensor with elements drawn uniformly from `[low, high)`,
    /// deterministically seeded.
    pub fn uniform(shape: impl Into<Shape>, low: f32, high: f32, seed: u64) -> Tensor {
        let shape = shape.into();
        let mut rng = DetRng::new(seed);
        let data = (0..shape.len()).map(|_| rng.range_f32(low, high)).collect();
        Tensor::leaf(data, shape, false)
    }

    /// Creates a tensor with standard-normal elements (Box–Muller),
    /// deterministically seeded.
    pub fn randn(shape: impl Into<Shape>, seed: u64) -> Tensor {
        let shape = shape.into();
        let mut rng = DetRng::new(seed);
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // 1 - f32() lies in (0, 1], keeping ln() finite.
            let u1: f32 = (1.0 - rng.f32()).max(f32::EPSILON);
            let u2: f32 = rng.f32();
            let r = (-2.0f32 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor::leaf(data, shape, false)
    }

    /// The identity matrix of size `n`.
    pub fn eye(n: usize) -> Tensor {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::leaf(data, Shape::new(vec![n, n]), false)
    }

    /// Marks this tensor as a trainable leaf: gradients will be accumulated
    /// into it during [`Tensor::backward`].
    ///
    /// Returns a new handle sharing no autograd history (fresh leaf with
    /// the same data, shared copy-on-write).
    pub fn requires_grad(self) -> Tensor {
        if self.inner.requires_grad && self.inner.parents.is_empty() {
            return self;
        }
        let data = snapshot_data(&self.inner.data);
        Tensor::leaf_arc(data, self.inner.shape.clone(), true)
    }

    /// `true` if gradients flow into (or through) this tensor.
    pub fn is_requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// `true` if this tensor has no parents (a graph leaf).
    pub(crate) fn is_leaf(&self) -> bool {
        self.inner.parents.is_empty()
    }

    /// Detaches this tensor from the autograd graph: the result shares the
    /// current values (copy-on-write, so no buffer is copied) but receives
    /// no gradient and holds no history.
    ///
    /// Cascade detaches node memories at batch boundaries, matching the
    /// stop-gradient semantics of memory-based TGNNs.
    pub fn detach(&self) -> Tensor {
        Tensor::leaf_arc(
            snapshot_data(&self.inner.data),
            self.inner.shape.clone(),
            false,
        )
    }

    /// Unique autograd node id (monotonic creation order).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.inner.shape
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.inner.shape.dims()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.inner.shape.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.inner.shape.is_empty()
    }

    /// Takes a lock-free read snapshot of the flat row-major data.
    ///
    /// The lock is released before this returns; the [`DataRef`] can be
    /// held across arbitrary computation. Writes made to the tensor after
    /// the snapshot are not visible through it.
    pub fn data(&self) -> DataRef {
        DataRef {
            data: snapshot_data(&self.inner.data),
        }
    }

    /// Shares the underlying storage for zero-copy view ops.
    pub(crate) fn share_data(&self) -> Arc<Vec<f32>> {
        snapshot_data(&self.inner.data)
    }

    /// Copies the data out into a `Vec`.
    pub fn to_vec(&self) -> Vec<f32> {
        snapshot_data(&self.inner.data).as_ref().clone()
    }

    /// The single element of a scalar or 1-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        let data = self.data();
        assert_eq!(
            data.len(),
            1,
            "item() on tensor with {} elements",
            data.len()
        );
        data[0]
    }

    /// Element at flat offset `i`.
    pub fn at(&self, i: usize) -> f32 {
        self.data()[i]
    }

    /// Overwrites the data in place without touching autograd history.
    ///
    /// Intended for optimizer steps and memory-store writes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the tensor's element count.
    pub fn set_data(&self, data: &[f32]) {
        let mut d = write_data(&self.inner.data);
        assert_eq!(d.len(), data.len(), "set_data length mismatch");
        cow_mut(&mut d).copy_from_slice(data);
    }

    /// Applies `f` to the data in place (optimizer updates).
    pub fn update_data(&self, f: impl FnOnce(&mut [f32])) {
        let mut d = write_data(&self.inner.data);
        f(cow_mut(&mut d));
    }

    /// The accumulated gradient, if any (copied out).
    pub fn grad(&self) -> Option<Vec<f32>> {
        lock_grad(&self.inner.grad).clone()
    }

    /// Applies `f` to the accumulated gradient without copying it out.
    /// Returns `None` (without calling `f`) when no gradient is present.
    pub fn with_grad<R>(&self, f: impl FnOnce(&[f32]) -> R) -> Option<R> {
        lock_grad(&self.inner.grad).as_deref().map(f)
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        if let Some(g) = lock_grad(&self.inner.grad).take() {
            arena::recycle(g);
        }
    }

    /// Replaces the accumulated gradient (used by gradient clipping).
    ///
    /// # Panics
    ///
    /// Panics if `g.len()` differs from the element count.
    pub fn set_grad(&self, g: &[f32]) {
        assert_eq!(g.len(), self.len(), "set_grad length mismatch");
        let mut grad = lock_grad(&self.inner.grad);
        match grad.as_mut() {
            Some(existing) => existing.copy_from_slice(g),
            None => *grad = Some(arena::take_copy(g)),
        }
    }

    /// Rescales the accumulated gradient in place; no-op without one.
    pub fn scale_grad(&self, scale: f32) {
        if let Some(g) = lock_grad(&self.inner.grad).as_mut() {
            for x in g.iter_mut() {
                *x *= scale;
            }
        }
    }

    pub(crate) fn accumulate_grad(&self, g: &[f32]) {
        let mut grad = lock_grad(&self.inner.grad);
        match grad.as_mut() {
            Some(existing) => {
                for (e, &v) in existing.iter_mut().zip(g) {
                    *e += v;
                }
            }
            None => *grad = Some(arena::take_copy(g)),
        }
    }

    /// Like [`Tensor::accumulate_grad`] but takes ownership of the buffer:
    /// it becomes the grad slot when empty, else it is added and recycled.
    pub(crate) fn accumulate_grad_owned(&self, g: Vec<f32>) {
        let mut grad = lock_grad(&self.inner.grad);
        match grad.as_mut() {
            Some(existing) => {
                for (e, &v) in existing.iter_mut().zip(g.iter()) {
                    *e += v;
                }
                drop(grad);
                arena::recycle(g);
            }
            None => *grad = Some(g),
        }
    }

    /// Takes the gradient out of the slot, leaving it empty. The engine
    /// uses this to hand each backward closure its owned upstream buffer.
    pub(crate) fn take_grad_raw(&self) -> Option<Vec<f32>> {
        lock_grad(&self.inner.grad).take()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let data = self.data();
        let preview: Vec<f32> = data.iter().take(8).copied().collect();
        f.debug_struct("Tensor")
            .field("shape", &self.inner.shape)
            .field("requires_grad", &self.inner.requires_grad)
            .field("data", &preview)
            .finish()
    }
}

impl From<f32> for Tensor {
    fn from(v: f32) -> Self {
        Tensor::scalar(v)
    }
}

impl From<Vec<f32>> for Tensor {
    fn from(v: Vec<f32>) -> Self {
        let n = v.len();
        Tensor::from_vec(v, [n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_wrong_len() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], [2, 2]);
    }

    #[test]
    fn constructors_fill() {
        assert_eq!(Tensor::zeros([3]).to_vec(), vec![0.0; 3]);
        assert_eq!(Tensor::ones([2]).to_vec(), vec![1.0; 2]);
        assert_eq!(Tensor::full([2], 7.0).to_vec(), vec![7.0; 2]);
        assert_eq!(Tensor::eye(2).to_vec(), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn uniform_is_deterministic_and_bounded() {
        let a = Tensor::uniform([100], -0.5, 0.5, 42);
        let b = Tensor::uniform([100], -0.5, 0.5, 42);
        assert_eq!(a.to_vec(), b.to_vec());
        assert!(a.to_vec().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn randn_is_deterministic() {
        let a = Tensor::randn([64], 7);
        let b = Tensor::randn([64], 7);
        assert_eq!(a.to_vec(), b.to_vec());
        // crude sanity: mean near 0
        let mean: f32 = a.to_vec().iter().sum::<f32>() / 64.0;
        assert!(mean.abs() < 0.5);
    }

    #[test]
    fn detach_shares_values_not_history() {
        let a = Tensor::ones([2]).requires_grad();
        let b = a.mul_scalar(3.0);
        let d = b.detach();
        assert_eq!(d.to_vec(), vec![3.0, 3.0]);
        assert!(!d.is_requires_grad());
    }

    #[test]
    fn detach_is_isolated_from_later_writes() {
        // detach shares storage copy-on-write; writes to either side must
        // not leak into the other.
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let d = a.detach();
        a.set_data(&[9.0, 9.0]);
        assert_eq!(d.to_vec(), vec![1.0, 2.0]);
        d.set_data(&[5.0, 5.0]);
        assert_eq!(a.to_vec(), vec![9.0, 9.0]);
    }

    #[test]
    fn snapshot_survives_later_writes() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let snap = t.data();
        t.set_data(&[7.0, 8.0]);
        assert_eq!(&snap[..], &[1.0, 2.0], "snapshot is frozen at read time");
        assert_eq!(t.to_vec(), vec![7.0, 8.0]);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn set_data_overwrites() {
        let t = Tensor::zeros([2]);
        t.set_data(&[1.0, 2.0]);
        assert_eq!(t.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn clone_aliases_storage() {
        let t = Tensor::zeros([2]);
        let u = t.clone();
        t.set_data(&[5.0, 6.0]);
        assert_eq!(u.to_vec(), vec![5.0, 6.0]);
    }

    #[test]
    fn requires_grad_roundtrip() {
        let t = Tensor::ones([2]).requires_grad();
        assert!(t.is_requires_grad());
        assert!(t.grad().is_none());
    }

    #[test]
    fn with_grad_borrows_without_copy() {
        let t = Tensor::from_vec(vec![3.0, 4.0], [2]).requires_grad();
        assert!(t.with_grad(|_| ()).is_none());
        t.square().sum().backward();
        let norm2 = t
            .with_grad(|g| g.iter().map(|x| x * x).sum::<f32>())
            .expect("gradient was just accumulated");
        assert!((norm2 - (36.0 + 64.0)).abs() < 1e-4);
    }

    #[test]
    fn scale_grad_rescales_in_place() {
        let t = Tensor::from_vec(vec![3.0], [1]).requires_grad();
        t.square().sum().backward(); // grad 6
        t.scale_grad(0.5);
        assert!((t.grad().expect("grad present")[0] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn tensor_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
        assert_send_sync::<DataRef>();
    }

    #[test]
    fn tensors_cross_threads() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let sum: f32 = std::thread::scope(|s| {
            let h = s.spawn(|| t.to_vec().iter().sum());
            h.join().expect("reader thread must not panic")
        });
        assert_eq!(sum, 3.0);
    }
}
