//! Reverse-mode automatic differentiation.

// cascade-lint: allow(det-hash-iter): membership test only, never iterated — traversal order comes from the parents vectors.
use std::collections::HashSet;

use crate::grad::{AutogradError, GradCtx};
use crate::tensor::Tensor;

impl Tensor {
    /// Runs reverse-mode autodiff from this scalar tensor, accumulating
    /// gradients into every reachable tensor that requires them.
    ///
    /// Gradients accumulate across calls; clear them between optimizer
    /// steps via [`Tensor::zero_grad`] (the optimizers in `cascade-nn` do
    /// this for you).
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not hold exactly one element. Hot paths
    /// that must not unwind (the pipelined executor's compute stage) use
    /// [`Tensor::try_backward`] instead.
    pub fn backward(&self) {
        self.try_backward().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Runs backward with an explicit upstream gradient of this tensor's
    /// shape.
    ///
    /// # Panics
    ///
    /// Panics if `upstream.len()` differs from the element count.
    pub fn backward_with(&self, upstream: &[f32]) {
        self.try_backward_with(upstream)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Tensor::backward`]: returns a typed error instead of
    /// panicking when the output is not a scalar.
    pub fn try_backward(&self) -> Result<(), AutogradError> {
        if self.len() != 1 {
            return Err(AutogradError::NonScalarOutput {
                shape: self.shape().to_string(),
            });
        }
        self.try_backward_with(&[1.0])
    }

    /// Fallible [`Tensor::backward_with`]: returns a typed error instead of
    /// panicking on an upstream length mismatch.
    pub fn try_backward_with(&self, upstream: &[f32]) -> Result<(), AutogradError> {
        self.run_backward(upstream, &mut GradCtx::direct())
    }

    /// The engine: validates the upstream gradient, topologically orders
    /// the reachable graph, and fires each node's backward closure with
    /// `ctx` routing the accumulations (directly in the serial case, into
    /// per-shard sinks inside [`Tensor::sharded_sum_scaled`] workers).
    pub(crate) fn run_backward(
        &self,
        upstream: &[f32],
        ctx: &mut GradCtx,
    ) -> Result<(), AutogradError> {
        if upstream.len() != self.len() {
            return Err(AutogradError::UpstreamLengthMismatch {
                expected: self.len(),
                got: upstream.len(),
            });
        }
        if !self.is_requires_grad() {
            return Ok(());
        }
        ctx.accumulate(self, upstream);

        // Iterative post-order DFS to topologically order the graph. The
        // traversal stops at barrier ids (shared subgraph boundaries owned
        // by the driver thread); their gradients are diverted by `ctx` and
        // their subgraphs finish serially in the outer pass.
        let mut order: Vec<Tensor> = Vec::new();
        // cascade-lint: allow(det-hash-iter): membership test only, never
        // iterated — traversal order comes from the parents vectors.
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.id());
        while let Some((node, child)) = stack.pop() {
            if child < node.inner.parents.len() {
                stack.push((node.clone(), child + 1));
                let parent = node.inner.parents[child].clone();
                if parent.is_requires_grad()
                    && !ctx.stops_at(parent.id())
                    && visited.insert(parent.id())
                {
                    stack.push((parent, 0));
                }
            } else {
                order.push(node);
            }
        }

        // Reverse topological order: outputs before inputs. Each node's
        // gradient is *taken* out of its slot and handed to the closure as
        // an owned buffer: intermediate gradients are consumed exactly once
        // (so repeated backward passes accumulate only into leaves) and the
        // buffers flow back into the arena instead of the allocator.
        for node in order.iter().rev() {
            if let Some(backward) = &node.inner.backward {
                // Taking (not cloning) the gradient leaves non-leaf slots
                // empty after their closure fires; leaf slots are never
                // touched, so parameter gradients persist as before.
                if let Some(grad) = node.take_grad_raw() {
                    backward(node, grad, &node.inner.parents, ctx);
                }
            } else if !node.inner.parents.is_empty() {
                node.zero_grad();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::grad::AutogradError;
    use crate::Tensor;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn chain_rule_through_composition() {
        // f(x) = (2x + 1)^2 ; f'(x) = 4(2x+1); at x=1 -> 12
        let x = Tensor::from_vec(vec![1.0], [1]).requires_grad();
        let y = x.mul_scalar(2.0).add_scalar(1.0).square().sum();
        y.backward();
        assert!(close(x.grad().unwrap()[0], 12.0));
    }

    #[test]
    fn diamond_graph_accumulates() {
        // f = x*x + x ; f' = 2x + 1 ; at x=3 -> 7
        let x = Tensor::from_vec(vec![3.0], [1]).requires_grad();
        let y = x.mul(&x).add(&x).sum();
        y.backward();
        assert!(close(x.grad().unwrap()[0], 7.0));
    }

    #[test]
    fn reused_subexpression() {
        // s = x + 1; f = s * s; f' = 2(x+1); at x=2 -> 6
        let x = Tensor::from_vec(vec![2.0], [1]).requires_grad();
        let s = x.add_scalar(1.0);
        s.mul(&s).sum().backward();
        assert!(close(x.grad().unwrap()[0], 6.0));
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let x = Tensor::from_vec(vec![1.0], [1]).requires_grad();
        let y = x.mul_scalar(3.0).sum();
        y.backward();
        y.backward();
        assert!(close(x.grad().unwrap()[0], 6.0));
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn no_grad_inputs_are_skipped() {
        let x = Tensor::from_vec(vec![1.0], [1]); // leaf, no grad
        let y = x.mul_scalar(2.0).sum();
        y.backward(); // no-op, must not panic
        assert!(x.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "requires a scalar output")]
    fn backward_rejects_non_scalar() {
        let x = Tensor::ones([2]).requires_grad();
        x.mul_scalar(1.0).backward();
    }

    #[test]
    fn try_backward_reports_non_scalar() {
        let x = Tensor::ones([2]).requires_grad();
        let err = x
            .mul_scalar(1.0)
            .try_backward()
            .expect_err("non-scalar output must be rejected");
        assert!(matches!(err, AutogradError::NonScalarOutput { .. }));
    }

    #[test]
    fn try_backward_with_reports_length_mismatch() {
        let x = Tensor::ones([3]).requires_grad();
        let y = x.mul_scalar(2.0);
        let err = y
            .try_backward_with(&[1.0])
            .expect_err("wrong upstream length must be rejected");
        assert_eq!(
            err,
            AutogradError::UpstreamLengthMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn try_backward_matches_backward() {
        let x = Tensor::from_vec(vec![1.0], [1]).requires_grad();
        x.mul_scalar(2.0)
            .add_scalar(1.0)
            .square()
            .sum()
            .try_backward()
            .expect("scalar loss must succeed");
        assert!(close(x.grad().unwrap()[0], 12.0));
    }

    #[test]
    fn finite_difference_agreement() {
        // Random-ish composite function: f(x) = sum(sigmoid(W x) * tanh(x))
        let xs = vec![0.3, -0.7, 1.2];
        let x = Tensor::from_vec(xs.clone(), [3, 1]).requires_grad();
        let w = Tensor::from_vec(vec![0.5, -0.2, 0.8, 0.1, 0.9, -0.4, 0.0, 0.3, 0.7], [3, 3]);
        let f = |x: &Tensor| w.matmul(x).sigmoid().mul(&x.tanh()).sum();
        f(&x).backward();
        let analytic = x.grad().unwrap();

        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = xs.clone();
            plus[i] += eps;
            let mut minus = xs.clone();
            minus[i] -= eps;
            let fp = f(&Tensor::from_vec(plus, [3, 1])).item();
            let fm = f(&Tensor::from_vec(minus, [3, 1])).item();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (analytic[i] - numeric).abs() < 1e-2,
                "grad[{}]: analytic {} vs numeric {}",
                i,
                analytic[i],
                numeric
            );
        }
    }
}
