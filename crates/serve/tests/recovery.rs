//! Fault-injection: kill the serving engine at arbitrary points and
//! prove restart reproduces memories **bit-identically** over the acked
//! prefix — the durability contract behind every `/ingest` 200.

use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_serve::{Engine, EngineConfig, ServeError};
use cascade_tgraph::Event;

const NODES: usize = 12;
const FEAT_DIM: usize = 4;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cascade_serve_recovery_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{}_{}", std::process::id(), name));
    std::fs::remove_file(&p).ok();
    p
}

/// The serving base model: every open starts from this exact state, as
/// a restarted server does when reloading the same training checkpoint.
fn base_model() -> MemoryTgnn {
    MemoryTgnn::new(
        ModelConfig::tgn().with_dims(8, 4).with_neighbors(2),
        NODES,
        FEAT_DIM,
        5,
    )
}

/// Deterministic time-ordered event stream with feature rows.
fn batch(range: std::ops::Range<usize>) -> (Vec<Event>, Vec<f32>) {
    let events: Vec<Event> = range
        .clone()
        .map(|i| Event::new((i % NODES) as u32, ((i * 3 + 1) % NODES) as u32, i as f64))
        .collect();
    let feats: Vec<f32> = range
        .flat_map(|i| (0..FEAT_DIM).map(move |j| (i * FEAT_DIM + j) as f32 * 0.01))
        .collect();
    (events, feats)
}

fn config(wal: &std::path::Path, snap: &std::path::Path) -> EngineConfig {
    EngineConfig::new(wal, snap).with_wal_chunk(4)
}

/// Reference: the uninterrupted run over `n` events in ingest calls of
/// `per`, returning the engine's final serialized state.
fn uninterrupted_state(n: usize, per: usize, tag: &str) -> Vec<u8> {
    let wal = tmp(&format!("ref_{}.wal", tag));
    let snap = tmp(&format!("ref_{}.ckpt", tag));
    let mut engine = Engine::open(base_model(), config(&wal, &snap)).unwrap();
    let mut at = 0;
    while at < n {
        let hi = (at + per).min(n);
        let (events, feats) = batch(at..hi);
        engine.ingest(&events, &feats).unwrap();
        at = hi;
    }
    let state = engine.export_state();
    std::fs::remove_file(&wal).ok();
    state
}

#[test]
fn kill_and_restart_is_bit_identical_over_acked_events() {
    let wal = tmp("kill.wal");
    let snap = tmp("kill.ckpt");

    // Serve 10 events in two acked ingests, then die without any
    // orderly shutdown.
    let mut engine = Engine::open(base_model(), config(&wal, &snap)).unwrap();
    let (e1, f1) = batch(0..6);
    let ack = engine.ingest(&e1, &f1).unwrap();
    assert_eq!((ack.acked, ack.total_acked), (6, 6));
    let (e2, f2) = batch(6..10);
    assert_eq!(engine.ingest(&e2, &f2).unwrap().total_acked, 10);
    std::mem::forget(engine); // kill -9

    // Restart from the same base checkpoint: the WAL replays both
    // ingests with their original sub-batch boundaries.
    let restarted = Engine::open(base_model(), config(&wal, &snap)).unwrap();
    assert_eq!(restarted.applied(), 10);
    let rec = restarted.recovery();
    assert_eq!(rec.wal_events, 10);
    assert_eq!(rec.snapshot_events, 0, "no snapshot was ever written");

    assert_eq!(
        restarted.export_state(),
        uninterrupted_state(10, 6, "kill"),
        "restarted memories must match the uninterrupted run bit-for-bit"
    );
    std::fs::remove_file(&wal).ok();
}

#[test]
fn torn_wal_tail_is_discarded_and_prefix_restored_exactly() {
    let wal = tmp("torn.wal");
    let snap = tmp("torn.ckpt");

    let mut engine = Engine::open(base_model(), config(&wal, &snap)).unwrap();
    let (e1, f1) = batch(0..8);
    engine.ingest(&e1, &f1).unwrap();
    std::mem::forget(engine);

    // A kill mid-append leaves half a frame of garbage at the tail.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[0xCD; 23]).unwrap();
    }

    let restarted = Engine::open(base_model(), config(&wal, &snap)).unwrap();
    assert!(restarted.recovery().torn_tail_discarded);
    assert_eq!(restarted.applied(), 8, "only acked events are served");
    assert_eq!(restarted.export_state(), uninterrupted_state(8, 8, "torn"));
    std::fs::remove_file(&wal).ok();
}

#[test]
fn restart_via_snapshot_plus_tail_matches_full_replay() {
    let wal = tmp("snaptail.wal");
    let snap = tmp("snaptail.ckpt");

    // Snapshot cadence 8 with 20 events in 4-event frames: a snapshot
    // lands at watermark 8 and again at 16, leaving a 4-event tail.
    let cfg = config(&wal, &snap).with_snapshot_every(8);
    let mut engine = Engine::open(base_model(), cfg.clone()).unwrap();
    let mut at = 0;
    while at < 20 {
        let (events, feats) = batch(at..at + 4);
        engine.ingest(&events, &feats).unwrap();
        at += 4;
    }
    std::mem::forget(engine);

    let restarted = Engine::open(base_model(), cfg).unwrap();
    let rec = restarted.recovery();
    assert_eq!(rec.wal_events, 20);
    assert_eq!(
        rec.snapshot_events, 16,
        "restart took the snapshot shortcut"
    );
    assert_eq!(restarted.applied(), 20);
    assert_eq!(
        restarted.export_state(),
        uninterrupted_state(20, 4, "snaptail"),
        "snapshot + tail replay must equal replaying everything"
    );
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(&snap).ok();
}

#[test]
fn double_restart_survives_and_keeps_accepting() {
    let wal = tmp("double.wal");
    let snap = tmp("double.ckpt");

    let mut engine = Engine::open(base_model(), config(&wal, &snap)).unwrap();
    let (e1, f1) = batch(0..5);
    engine.ingest(&e1, &f1).unwrap();
    std::mem::forget(engine);

    let mut engine = Engine::open(base_model(), config(&wal, &snap)).unwrap();
    let (e2, f2) = batch(5..9);
    engine.ingest(&e2, &f2).unwrap();
    std::mem::forget(engine);

    let restarted = Engine::open(base_model(), config(&wal, &snap)).unwrap();
    assert_eq!(restarted.applied(), 9);
    assert_eq!(
        restarted.export_state(),
        uninterrupted_state(9, 5, "double")
    );
    std::fs::remove_file(&wal).ok();
}

#[test]
fn snapshot_without_its_wal_is_refused() {
    let wal = tmp("orphan.wal");
    let snap = tmp("orphan.ckpt");

    let cfg = config(&wal, &snap).with_snapshot_every(4);
    let mut engine = Engine::open(base_model(), cfg.clone()).unwrap();
    let (e1, f1) = batch(0..8);
    engine.ingest(&e1, &f1).unwrap();
    std::mem::forget(engine);

    // Losing the WAL strands the snapshot: the tail (and the proof the
    // snapshot matches the log) is gone. That must be a typed refusal,
    // not silent service of unverifiable state.
    std::fs::remove_file(&wal).unwrap();
    assert!(matches!(
        Engine::open(base_model(), cfg),
        Err(ServeError::SnapshotAheadOfWal {
            snapshot: 8,
            wal: 0
        })
    ));
    std::fs::remove_file(&snap).ok();
}

#[test]
fn bad_requests_leave_no_trace_in_the_log() {
    let wal = tmp("badreq.wal");
    let snap = tmp("badreq.ckpt");

    let mut engine = Engine::open(base_model(), config(&wal, &snap)).unwrap();
    let (e1, f1) = batch(0..4);
    engine.ingest(&e1, &f1).unwrap();

    // Out-of-range node, wrong feature width, and a time regression:
    // all rejected before anything is framed.
    let bad_node = vec![Event::new(NODES as u32, 0u32, 100.0)];
    assert!(matches!(
        engine.ingest(&bad_node, &[0.0; FEAT_DIM]),
        Err(ServeError::BadRequest(_))
    ));
    let (e2, _) = batch(4..5);
    assert!(matches!(
        engine.ingest(&e2, &[0.0; FEAT_DIM - 1]),
        Err(ServeError::BadRequest(_))
    ));
    let regress = vec![Event::new(0u32, 1u32, 0.5)];
    assert!(matches!(
        engine.ingest(&regress, &[0.0; FEAT_DIM]),
        Err(ServeError::BadRequest(_))
    ));
    assert_eq!(engine.applied(), 4);
    std::mem::forget(engine);

    let restarted = Engine::open(base_model(), config(&wal, &snap)).unwrap();
    assert_eq!(restarted.recovery().wal_events, 4);
    std::fs::remove_file(&wal).ok();
}
