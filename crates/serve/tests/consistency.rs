//! Read-path consistency: predict handlers score against frozen
//! snapshots, so a concurrent reader can only ever observe one of the
//! states the single-writer ingest thread actually published — never a
//! torn intermediate — and each published state scores bit-identically
//! to offline scoring of the same event prefix.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_serve::{Engine, EngineConfig};
use cascade_tgraph::{EdgeFeatures, Event, NodeId};

const NODES: usize = 10;
const FEAT_DIM: usize = 3;
const QUERY_TIME: f64 = 1.0e6;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cascade_serve_consistency_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{}_{}", std::process::id(), name));
    std::fs::remove_file(&p).ok();
    p
}

fn base_model() -> MemoryTgnn {
    MemoryTgnn::new(ModelConfig::jodie().with_dims(8, 4), NODES, FEAT_DIM, 9)
}

fn batch(range: std::ops::Range<usize>) -> (Vec<Event>, Vec<f32>) {
    let events: Vec<Event> = range
        .clone()
        .map(|i| Event::new((i % NODES) as u32, ((i * 7 + 2) % NODES) as u32, i as f64))
        .collect();
    let feats: Vec<f32> = range
        .flat_map(|i| (0..FEAT_DIM).map(move |j| ((i + j) % 13) as f32 * 0.05))
        .collect();
    (events, feats)
}

fn query(model: &MemoryTgnn, feats: &EdgeFeatures) -> Vec<f32> {
    let dsts: Vec<NodeId> = (1..5).map(|d| NodeId(d as u32)).collect();
    model.score_links(NodeId(0), &dsts, QUERY_TIME, feats)
}

/// Expected scores per watermark, computed from a sequential reference
/// run over the same batches (same sub-batch boundaries: the engine's
/// WAL frame unit).
fn expected_scores(total: usize, per: usize, frame: usize) -> BTreeMap<usize, Vec<f32>> {
    let mut model = base_model();
    let mut feats = EdgeFeatures::new(Vec::new(), FEAT_DIM);
    let mut map = BTreeMap::new();
    map.insert(0, query(&model, &feats));
    let mut at = 0;
    while at < total {
        let hi = (at + per).min(total);
        let (events, rows) = batch(at..hi);
        // Mirror the engine: apply in sub-batches of the frame unit.
        let mut done = 0;
        while done < events.len() {
            let n = (events.len() - done).min(frame);
            let sub = &events[done..done + n];
            feats.push_rows(&rows[done * FEAT_DIM..(done + n) * FEAT_DIM]);
            let fwd = model.forward_batch(sub, at + done, &feats);
            model.apply_batch(sub, at + done, &feats, fwd.pending);
            done += n;
        }
        // Snapshots publish only at ingest-call boundaries.
        map.insert(hi, query(&model, &feats));
        at = hi;
    }
    map
}

#[test]
fn concurrent_predicts_only_ever_see_published_states() {
    const TOTAL: usize = 48;
    const PER: usize = 8;
    const FRAME: usize = 4;

    let wal = tmp("concurrent.wal");
    let snap = tmp("concurrent.ckpt");
    let expected = expected_scores(TOTAL, PER, FRAME);

    let mut engine = Engine::open(
        base_model(),
        EngineConfig::new(&wal, &snap).with_wal_chunk(FRAME),
    )
    .unwrap();
    let shared = engine.shared();
    let stop = Arc::new(AtomicBool::new(false));

    // Reader threads hammer the snapshot while ingest runs, recording
    // every (watermark, scores) pair they observe.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let shared = shared.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut seen: Vec<(usize, Vec<f32>)> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let snap = shared.snapshot();
                seen.push((snap.events, query(&snap.model, &snap.feats)));
            }
            seen
        }));
    }

    let mut at = 0;
    while at < TOTAL {
        let (events, feats) = batch(at..at + PER);
        engine.ingest(&events, &feats).unwrap();
        at += PER;
    }
    stop.store(true, Ordering::Relaxed);

    let mut observations = 0usize;
    let mut watermarks = std::collections::BTreeSet::new();
    for r in readers {
        for (events, scores) in r.join().unwrap() {
            let want = expected
                .get(&events)
                .unwrap_or_else(|| panic!("snapshot at unpublished watermark {}", events));
            assert_eq!(
                &scores, want,
                "torn or non-deterministic read at watermark {}",
                events
            );
            watermarks.insert(events);
            observations += 1;
        }
    }
    assert!(observations > 0, "readers actually ran");
    assert!(
        watermarks.len() > 1 || observations < 3,
        "readers should observe the state advancing (saw {:?})",
        watermarks
    );
    std::fs::remove_file(&wal).ok();
}

#[test]
fn served_snapshot_scores_match_offline_scoring_bitwise() {
    const TOTAL: usize = 24;
    const PER: usize = 6;
    const FRAME: usize = 6;

    let wal = tmp("frozen.wal");
    let snap = tmp("frozen.ckpt");
    let expected = expected_scores(TOTAL, PER, FRAME);

    let mut engine = Engine::open(
        base_model(),
        EngineConfig::new(&wal, &snap).with_wal_chunk(FRAME),
    )
    .unwrap();
    let shared = engine.shared();

    let mut at = 0;
    while at < TOTAL {
        let (events, feats) = batch(at..at + PER);
        engine.ingest(&events, &feats).unwrap();
        at += PER;

        // The snapshot is frozen: scoring it repeatedly gives the same
        // bits, and those bits equal the offline reference.
        let snap = shared.snapshot();
        assert_eq!(snap.events, at);
        let first = query(&snap.model, &snap.feats);
        assert_eq!(first, query(&snap.model, &snap.feats), "re-scoring moved");
        assert_eq!(&first, &expected[&at], "served != offline at {}", at);
    }
    std::fs::remove_file(&wal).ok();
}

#[test]
fn old_snapshots_stay_valid_after_further_ingest() {
    let wal = tmp("held.wal");
    let snap = tmp("held.ckpt");

    let mut engine = Engine::open(
        base_model(),
        EngineConfig::new(&wal, &snap).with_wal_chunk(4),
    )
    .unwrap();
    let shared = engine.shared();

    let (e1, f1) = batch(0..8);
    engine.ingest(&e1, &f1).unwrap();
    let held = shared.snapshot();
    let before = query(&held.model, &held.feats);

    // A reader holding the old Arc is untouched by later ingest.
    let (e2, f2) = batch(8..16);
    engine.ingest(&e2, &f2).unwrap();
    assert_eq!(held.events, 8);
    assert_eq!(query(&held.model, &held.feats), before);
    assert_eq!(shared.snapshot().events, 16);
    std::fs::remove_file(&wal).ok();
}
