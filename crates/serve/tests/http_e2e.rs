//! End-to-end over real sockets: a raw HTTP/1.1 client (std::net only)
//! exercising ingest → predict → stats, error paths, keep-alive, and a
//! full server restart from the write-ahead log.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_serve::{Engine, EngineConfig, Server};
use cascade_util::Json;

const NODES: usize = 8;
const FEAT_DIM: usize = 2;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cascade_serve_e2e_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{}_{}", std::process::id(), name));
    std::fs::remove_file(&p).ok();
    p
}

fn base_model() -> MemoryTgnn {
    MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), NODES, FEAT_DIM, 3)
}

fn start_server(wal: &std::path::Path, snap: &std::path::Path) -> Server {
    let engine =
        Engine::open(base_model(), EngineConfig::new(wal, snap).with_wal_chunk(4)).unwrap();
    Server::start(engine, "127.0.0.1:0", 2).unwrap()
}

/// Reads one HTTP response off `reader`, returning (status, body).
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Json) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (
        status,
        Json::parse(&String::from_utf8(body).unwrap()).unwrap(),
    )
}

fn send_request(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let req = format!(
        "{} {} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{}",
        method,
        path,
        body.len(),
        body
    );
    stream.write_all(req.as_bytes()).unwrap();
    stream.flush().unwrap();
}

/// One-shot request on a fresh connection.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).unwrap();
    send_request(&mut stream, method, path, body);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    read_response(&mut reader)
}

fn ingest_body(range: std::ops::Range<usize>) -> String {
    let events: Vec<String> = range
        .map(|i| {
            format!(
                r#"{{"src": {}, "dst": {}, "time": {}.0, "features": [{}, {}]}}"#,
                i % NODES,
                (i * 3 + 1) % NODES,
                i,
                i as f64 * 0.1,
                0.5
            )
        })
        .collect();
    format!(r#"{{"events": [{}]}}"#, events.join(","))
}

const PREDICT: &str = r#"{"src": 1, "dsts": [2, 3, 4], "time": 1000.0}"#;

#[test]
fn serve_ingest_predict_stats_roundtrip() {
    let wal = tmp("roundtrip.wal");
    let snap = tmp("roundtrip.ckpt");
    let server = start_server(&wal, &snap);
    let addr = server.addr();

    // Ingest two batches; acks carry the durable watermark.
    let (status, body) = request(addr, "POST", "/ingest", &ingest_body(0..6));
    assert_eq!(status, 200, "ingest failed: {}", body);
    assert_eq!(body.get("acked").and_then(Json::as_usize), Some(6));
    assert_eq!(body.get("total_acked").and_then(Json::as_usize), Some(6));
    let (status, body) = request(addr, "POST", "/ingest", &ingest_body(6..10));
    assert_eq!(status, 200);
    assert_eq!(body.get("total_acked").and_then(Json::as_usize), Some(10));

    // Predict sees the full ingested watermark.
    let (status, body) = request(addr, "POST", "/predict", PREDICT);
    assert_eq!(status, 200, "predict failed: {}", body);
    assert_eq!(
        body.get("snapshot_events").and_then(Json::as_usize),
        Some(10)
    );
    let scores = body.get("scores").and_then(Json::as_arr).unwrap();
    assert_eq!(scores.len(), 3);
    assert!(scores.iter().all(|s| s.as_f64().unwrap().is_finite()));

    // Stats reflect the traffic.
    let (status, stats) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stats.get("events_acked").and_then(Json::as_usize), Some(10));
    assert_eq!(
        stats.get("events_published").and_then(Json::as_usize),
        Some(10)
    );
    assert_eq!(stats.get("staleness_lag").and_then(Json::as_usize), Some(0));
    assert_eq!(
        stats.get("queries_served").and_then(Json::as_usize),
        Some(1)
    );
    assert_eq!(
        stats.get("ingest_requests").and_then(Json::as_usize),
        Some(2)
    );
    let lat = stats.get("predict_latency").unwrap();
    assert_eq!(lat.get("count").and_then(Json::as_usize), Some(1));
    assert!(lat.get("p99_ms").and_then(Json::as_f64).unwrap() > 0.0);

    server.shutdown();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn error_paths_return_typed_statuses() {
    let wal = tmp("errors.wal");
    let snap = tmp("errors.ckpt");
    let server = start_server(&wal, &snap);
    let addr = server.addr();

    let (status, body) = request(addr, "POST", "/predict", "this is not json");
    assert_eq!(status, 400);
    assert!(body.get("error").is_some());

    // Out-of-range node id: caught against the live snapshot.
    let (status, _) = request(
        addr,
        "POST",
        "/predict",
        r#"{"src": 99, "dsts": [1], "time": 1.0}"#,
    );
    assert_eq!(status, 400);

    // Engine-level rejection surfaces as 400 too (wrong feature width).
    let (status, _) = request(
        addr,
        "POST",
        "/ingest",
        r#"{"events": [{"src": 0, "dst": 1, "time": 1.0, "features": [0.1]}]}"#,
    );
    assert_eq!(status, 400);

    let (status, _) = request(addr, "GET", "/no-such-endpoint", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "DELETE", "/predict", "");
    assert_eq!(status, 405);

    // Nothing bad was acked.
    let (_, stats) = request(addr, "GET", "/stats", "");
    assert_eq!(stats.get("events_acked").and_then(Json::as_usize), Some(0));

    server.shutdown();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let wal = tmp("keepalive.wal");
    let snap = tmp("keepalive.ckpt");
    let server = start_server(&wal, &snap);

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    send_request(&mut stream, "POST", "/ingest", &ingest_body(0..4));
    let (status, _) = read_response(&mut reader);
    assert_eq!(status, 200);

    send_request(&mut stream, "POST", "/predict", PREDICT);
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(
        body.get("snapshot_events").and_then(Json::as_usize),
        Some(4)
    );

    send_request(&mut stream, "GET", "/stats", "");
    let (status, stats) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(
        stats.get("ingest_requests").and_then(Json::as_usize),
        Some(1)
    );

    server.shutdown();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn restart_from_wal_serves_identical_scores() {
    let wal = tmp("restart.wal");
    let snap = tmp("restart.ckpt");

    let server = start_server(&wal, &snap);
    let addr = server.addr();
    let (status, _) = request(addr, "POST", "/ingest", &ingest_body(0..10));
    assert_eq!(status, 200);
    let (_, before) = request(addr, "POST", "/predict", PREDICT);
    server.shutdown();

    // New process, same WAL: scores at the same watermark are
    // bit-identical, and ingest continues where the log left off.
    let server = start_server(&wal, &snap);
    let addr = server.addr();
    let (status, after) = request(addr, "POST", "/predict", PREDICT);
    assert_eq!(status, 200);
    assert_eq!(
        after.get("snapshot_events").and_then(Json::as_usize),
        Some(10)
    );
    assert_eq!(
        after.get("scores").map(Json::to_string),
        before.get("scores").map(Json::to_string),
        "restarted server must score the acked prefix identically"
    );

    let (status, body) = request(addr, "POST", "/ingest", &ingest_body(10..14));
    assert_eq!(status, 200);
    assert_eq!(body.get("total_acked").and_then(Json::as_usize), Some(14));

    server.shutdown();
    std::fs::remove_file(&wal).ok();
}
