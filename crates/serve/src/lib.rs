#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # cascade-serve
//!
//! Online link-prediction serving over a trained memory-based TGNN,
//! with live event ingest (DESIGN.md §11). The core observation is the
//! one Cascade exploits for training: inference on a memory model is a
//! memory read plus a small forward pass, and ingest is a per-event
//! memory update — so a single writer thread can absorb the event
//! stream while any number of readers score against lock-free frozen
//! snapshots that lag by at most one ingest batch.
//!
//! Pieces:
//!
//! * [`Engine`] — single-writer ingest over a [`MemoryTgnn`]
//!   (`cascade-models`), WAL-durable ([`ChunkWriter::sync`]
//!   frames from `cascade-store`): every acked event is fsynced before
//!   it influences served state, and restart (snapshot + WAL tail
//!   replay, original frame boundaries) reproduces memories
//!   bit-identically.
//! * [`Server`] — a zero-dependency HTTP/1.1 front end over
//!   `std::net`: `POST /predict`, `POST /ingest`, `GET /stats`.
//! * [`Stats`] — counters and log-bucketed latency histograms behind
//!   the `/stats` endpoint and the `serve` bench.
//!
//! The `cascade_serve` binary wires these together:
//! `cascade_serve --load model.ckpt --wal serve.wal --port 8080`.
//!
//! [`MemoryTgnn`]: cascade_models::MemoryTgnn
//! [`ChunkWriter::sync`]: cascade_store::ChunkWriter::sync

mod engine;
mod error;
mod http;
mod persist;
mod proto;
mod server;
mod stats;

pub use engine::{Engine, EngineConfig, IngestAck, RecoveryReport, ServeSnapshot, SharedState};
pub use error::ServeError;
pub use http::{HttpError, Request};
pub use proto::{IngestRequest, PredictRequest};
pub use server::Server;
pub use stats::{LatencyHistogram, Stats, Timer};
