//! `cascade-serve`: online link-prediction serving with live ingest.
//!
//! ```text
//! cascade_train --dataset wiki --model tgn --save model.ckpt
//! cascade_serve --load model.ckpt --nodes 831 --port 8080
//! curl -s localhost:8080/stats
//! curl -s -X POST localhost:8080/predict \
//!     -d '{"src": 3, "dsts": [1, 2], "time": 1e6}'
//! curl -s -X POST localhost:8080/ingest \
//!     -d '{"events": [{"src": 3, "dst": 1, "time": 1e6,
//!          "features": [0,0,0,0,0,0,0,0]}]}'
//! ```
//!
//! Every acked ingest is fsynced to the write-ahead log before it
//! touches served state; killing the process and restarting with the
//! same flags replays the log and reproduces the memories bit-for-bit.

use std::path::PathBuf;

use cascade_models::{load_checkpoint, MemoryTgnn, ModelConfig};
use cascade_serve::{Engine, EngineConfig, Server};

struct Args {
    load: PathBuf,
    arch: String,
    nodes: usize,
    dim: usize,
    feature_dim: usize,
    seed: u64,
    addr: String,
    port: u16,
    wal: PathBuf,
    snapshot: PathBuf,
    snapshot_every: usize,
    wal_chunk: usize,
    workers: usize,
    compute_threads: usize,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut a = Args {
            load: PathBuf::new(),
            arch: "tgn".into(),
            nodes: 0,
            dim: 16,
            feature_dim: 8,
            seed: 42,
            addr: "127.0.0.1".into(),
            port: 8080,
            wal: PathBuf::from("serve.wal"),
            snapshot: PathBuf::from("serve_state.ckpt"),
            snapshot_every: 4096,
            wal_chunk: 256,
            workers: 2,
            compute_threads: 1,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("missing value for {}", name))
            };
            match flag.as_str() {
                "--load" => a.load = PathBuf::from(val("--load")?),
                "--arch" => a.arch = val("--arch")?,
                "--nodes" => a.nodes = parse(&val("--nodes")?)?,
                "--dim" => a.dim = parse(&val("--dim")?)?,
                "--feature-dim" => a.feature_dim = parse(&val("--feature-dim")?)?,
                "--seed" => a.seed = parse(&val("--seed")?)?,
                "--addr" => a.addr = val("--addr")?,
                "--port" => a.port = parse(&val("--port")?)?,
                "--wal" => a.wal = PathBuf::from(val("--wal")?),
                "--snapshot" => a.snapshot = PathBuf::from(val("--snapshot")?),
                "--snapshot-every" => a.snapshot_every = parse(&val("--snapshot-every")?)?,
                "--wal-chunk" => a.wal_chunk = parse(&val("--wal-chunk")?)?,
                "--workers" => a.workers = parse(&val("--workers")?)?,
                "--compute-threads" => a.compute_threads = parse(&val("--compute-threads")?)?,
                "--help" | "-h" => {
                    print_usage();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {}", other)),
            }
        }
        if a.load.as_os_str().is_empty() {
            return Err("--load is required (a .ckpt from cascade_train --save)".into());
        }
        if a.nodes == 0 {
            return Err("--nodes is required (the node count the model was trained with)".into());
        }
        if a.wal_chunk == 0 {
            return Err("--wal-chunk must be positive".into());
        }
        Ok(a)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse '{}'", s))
}

fn print_usage() {
    eprintln!(
        "cascade-serve: online link prediction with live event ingest\n\n\
         --load P             checkpoint from cascade_train / cascade_dist --save\n\
         \u{20}                    (required); accepts parameter (CSC1), full-state\n\
         \u{20}                    (CSC2), or sharded full-state (CSC3) files\n\
         --arch M             jodie|tgn|apan|dysat|tgat       (default tgn)\n\
         --nodes N            node count the model was trained with (required)\n\
         --dim N              memory width used in training     (default 16)\n\
         --feature-dim N      edge-feature width                (default 8)\n\
         --seed N             model build seed                  (default 42)\n\
         --addr A --port P    bind address                      (default 127.0.0.1:8080;\n\
         \u{20}                    port 0 picks an ephemeral port, printed on startup)\n\
         --wal P              write-ahead log path              (default serve.wal)\n\
         --snapshot P         durable state snapshot path       (default serve_state.ckpt)\n\
         --snapshot-every N   events between snapshots, 0 = off (default 4096)\n\
         --wal-chunk N        WAL frame / apply unit            (default 256)\n\
         --workers N          HTTP worker threads               (default 2)\n\
         --compute-threads N  shard-parallel forward workers    (default 1)\n\n\
         endpoints: POST /predict  {{\"src\", \"dsts\", \"time\"}}\n\
         \u{20}          POST /ingest   {{\"events\": [{{\"src\", \"dst\", \"time\", \"features\"}}]}}\n\
         \u{20}          GET  /stats"
    );
}

fn build_model(args: &Args) -> Result<MemoryTgnn, String> {
    let base = match args.arch.to_lowercase().as_str() {
        "jodie" => ModelConfig::jodie(),
        "tgn" => ModelConfig::tgn(),
        "apan" => ModelConfig::apan(),
        "dysat" => ModelConfig::dysat(),
        "tgat" => ModelConfig::tgat(),
        other => return Err(format!("unknown model {}", other)),
    };
    let mut cfg = base.with_dims(args.dim, (args.dim / 2).max(2));
    if cfg.sampling.count() > 4 {
        cfg = cfg.with_neighbors(4);
    }
    Ok(MemoryTgnn::new(
        cfg,
        args.nodes,
        args.feature_dim,
        args.seed,
    ))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {}", e);
        print_usage();
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let mut model = build_model(&args)?;
    match load_checkpoint(&mut model, &args.load).map_err(|e| e.to_string())? {
        Some(applied) => println!(
            "loaded full state from {} ({} events applied)",
            args.load.display(),
            applied
        ),
        None => println!("loaded parameters from {}", args.load.display()),
    }
    model.set_compute_threads(args.compute_threads.max(1));

    let config = EngineConfig::new(&args.wal, &args.snapshot)
        .with_wal_chunk(args.wal_chunk)
        .with_snapshot_every(args.snapshot_every);
    let engine = Engine::open(model, config).map_err(|e| e.to_string())?;
    let rec = engine.recovery();
    if rec.wal_events > 0 || rec.torn_tail_discarded {
        println!(
            "recovered {} events from {} ({} via snapshot, {} replayed{})",
            rec.wal_events,
            args.wal.display(),
            rec.snapshot_events,
            rec.wal_events - rec.snapshot_events,
            if rec.torn_tail_discarded {
                ", torn tail discarded"
            } else {
                ""
            }
        );
    }

    let bind = format!("{}:{}", args.addr, args.port);
    let server = Server::start(engine, &bind, args.workers.max(1)).map_err(|e| e.to_string())?;
    println!("listening on http://{}", server.addr());
    println!(
        "wal {} | snapshot {} every {} events | {} workers",
        args.wal.display(),
        args.snapshot.display(),
        args.snapshot_every,
        args.workers.max(1)
    );

    // Serve until killed: durability never depends on a clean exit —
    // every acked ingest is already fsynced in the WAL.
    loop {
        std::thread::park();
    }
}
