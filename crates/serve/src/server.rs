//! The TCP server: accept loop, predict workers, and the single ingest
//! thread.
//!
//! This is the designated concurrency module of `cascade-serve` (see
//! the `conc-spawn` allowlist in `cascade-lint`): every thread the
//! serving stack spawns is created — and joined — here.
//!
//! Thread topology:
//!
//! * **ingest** (1): owns the [`Engine`] and with it all memory writes;
//!   drains [`IngestJob`]s from an mpsc queue, acks each one after its
//!   WAL sync + apply.
//! * **accept** (1): blocks on `TcpListener::accept`, hands streams to
//!   the worker queue.
//! * **workers** (N): pull connections, answer `/predict` and `/stats`
//!   against lock-free snapshots, forward `/ingest` to the ingest
//!   thread and relay its ack. A keep-alive connection occupies its
//!   worker until the client closes it, so size the pool to the
//!   expected concurrent connections.
//!
//! Shutdown: a shared flag plus a self-connection to unblock `accept`;
//! workers notice the flag at their next read-timeout tick, the stream
//! queue disconnects, and when the last worker (each holding a job
//! sender) exits, the ingest queue disconnects and the ingest thread
//! drains out. [`Server::shutdown`] joins everything.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use cascade_tgraph::{Event, NodeId};
use cascade_util::Json;

use crate::engine::{Engine, IngestAck, SharedState};
use crate::error::ServeError;
use crate::http::{read_request, write_response, HttpError, Request};
use crate::proto::{
    error_response, ingest_response, parse_ingest, parse_predict, predict_response,
};
use crate::stats::Timer;

/// Poll interval at which idle connections re-check the shutdown flag.
const IDLE_TICK: Duration = Duration::from_millis(100);

/// One ingest request in flight to the ingest thread.
struct IngestJob {
    events: Vec<Event>,
    features: Vec<f32>,
    reply: Sender<Result<IngestAck, ServeError>>,
}

/// A running server; dropping it without [`Server::shutdown`] detaches
/// the threads (they exit when the process does).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<SharedState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// thread pool around `engine`.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the listener cannot bind.
    pub fn start(engine: Engine, addr: &str, workers: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = engine.shared();
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        let (job_tx, job_rx) = channel::<IngestJob>();
        threads.push(std::thread::spawn(move || ingest_loop(engine, job_rx)));

        let (conn_tx, conn_rx) = channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        for _ in 0..workers.max(1) {
            let rx = conn_rx.clone();
            let shared = shared.clone();
            let job_tx = job_tx.clone();
            let stop = shutdown.clone();
            threads.push(std::thread::spawn(move || {
                worker_loop(&rx, &shared, &job_tx, &stop)
            }));
        }
        // The workers hold the only long-lived job senders: when they
        // exit, the ingest queue disconnects and the ingest thread
        // finishes. Drop the original here-held sender accordingly.
        drop(job_tx);

        let stop = shutdown.clone();
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &conn_tx, &stop)
        }));

        Ok(Server {
            addr,
            shared,
            shutdown,
            threads,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The state shared with this server's workers — for reading stats
    /// in tests and benches.
    pub fn shared(&self) -> Arc<SharedState> {
        self.shared.clone()
    }

    /// Stops accepting, drains the threads, and joins them. All acked
    /// ingests are durable before this returns (they were durable
    /// before they were acked).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        TcpStream::connect(self.addr).ok();
        for t in self.threads.drain(..) {
            t.join().ok();
        }
    }
}

fn ingest_loop(mut engine: Engine, jobs: Receiver<IngestJob>) {
    while let Ok(job) = jobs.recv() {
        let result = engine.ingest(&job.events, &job.features);
        // A dropped reply receiver means the worker gave up on the
        // connection; the events are still durably applied.
        job.reply.send(result).ok();
    }
}

fn accept_loop(listener: &TcpListener, conns: &Sender<TcpStream>, stop: &AtomicBool) {
    loop {
        let accepted = listener.accept();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match accepted {
            Ok((stream, _)) => {
                // Responses are written whole; Nagle would still delay
                // the final segment of multi-segment bodies behind the
                // client's delayed ACK.
                stream.set_nodelay(true).ok();
                if conns.send(stream).is_err() {
                    return;
                }
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake);
                // keep serving.
            }
        }
    }
}

fn worker_loop(
    conns: &Mutex<Receiver<TcpStream>>,
    shared: &Arc<SharedState>,
    jobs: &Sender<IngestJob>,
    stop: &AtomicBool,
) {
    loop {
        let next = {
            let rx = conns.lock().unwrap_or_else(PoisonError::into_inner);
            // cascade-lint: allow(conc-guard-across-blocking): the shared-Receiver-behind-Mutex idiom — the lock exists precisely to serialize recv_timeout among workers, the timeout bounds the hold, and no other lock is ever taken with it
            rx.recv_timeout(IDLE_TICK)
        };
        match next {
            Ok(stream) => handle_connection(stream, shared, jobs, stop),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    shared: &Arc<SharedState>,
    jobs: &Sender<IngestJob>,
    stop: &AtomicBool,
) {
    if stream.set_read_timeout(Some(IDLE_TICK)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(HttpError::Closed) => return,
            Err(HttpError::Idle) => continue,
            Err(HttpError::Malformed(msg)) => {
                write_response(&mut writer, 400, &error_response(&msg).to_string(), false).ok();
                return;
            }
            Err(HttpError::TooLarge(n)) => {
                let msg = format!("body of {} bytes exceeds the limit", n);
                write_response(&mut writer, 400, &error_response(&msg).to_string(), false).ok();
                return;
            }
            Err(HttpError::Io(_)) => return,
        };
        let keep_alive = request.keep_alive;
        let (status, body) = route(&request, shared, jobs);
        if write_response(&mut writer, status, &body.to_string(), keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

fn route(request: &Request, shared: &Arc<SharedState>, jobs: &Sender<IngestJob>) -> (u16, Json) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/predict") => handle_predict(&request.body, shared),
        ("POST", "/ingest") => handle_ingest(&request.body, shared, jobs),
        ("GET", "/stats") => (200, shared.stats.to_json()),
        ("POST" | "GET", _) => (404, error_response("no such endpoint")),
        _ => (405, error_response("method not allowed")),
    }
}

fn handle_predict(body: &str, shared: &Arc<SharedState>) -> (u16, Json) {
    let timer = Timer::start();
    let req = match parse_predict(body) {
        Ok(r) => r,
        Err(e) => return (400, error_response(&e.to_string())),
    };
    let snap = shared.snapshot();
    let num_nodes = snap.model.num_nodes();
    if req.src as usize >= num_nodes || req.dsts.iter().any(|d| *d as usize >= num_nodes) {
        return (
            400,
            error_response(&format!("node ids must be below {}", num_nodes)),
        );
    }
    let dsts: Vec<NodeId> = req.dsts.iter().map(|d| NodeId(*d)).collect();
    let scores = snap
        .model
        .score_links(NodeId(req.src), &dsts, req.time, &snap.feats);
    shared.stats.queries_served.fetch_add(1, Ordering::Relaxed);
    timer.stop(&shared.stats.predict_latency);
    (200, predict_response(&scores, snap.events))
}

fn handle_ingest(body: &str, shared: &Arc<SharedState>, jobs: &Sender<IngestJob>) -> (u16, Json) {
    let timer = Timer::start();
    let feature_dim = shared.snapshot().model.edge_feat_dim();
    let req = match parse_ingest(body, feature_dim) {
        Ok(r) => r,
        Err(e) => return (400, error_response(&e.to_string())),
    };
    let (reply_tx, reply_rx) = channel();
    let job = IngestJob {
        events: req.events,
        features: req.features,
        reply: reply_tx,
    };
    if jobs.send(job).is_err() {
        return (503, error_response("ingest pipeline is shut down"));
    }
    match reply_rx.recv() {
        Ok(Ok(ack)) => {
            shared.stats.ingest_requests.fetch_add(1, Ordering::Relaxed);
            timer.stop(&shared.stats.ingest_latency);
            (200, ingest_response(ack.acked, ack.total_acked))
        }
        Ok(Err(ServeError::BadRequest(msg))) => (400, error_response(&msg)),
        Ok(Err(e)) => (500, error_response(&e.to_string())),
        Err(_) => (503, error_response("ingest pipeline is shut down")),
    }
}
