//! The serving engine: single-writer live ingest over a [`MemoryTgnn`],
//! with WAL durability and lock-free read snapshots.
//!
//! # Ownership and concurrency
//!
//! Exactly one thread owns an [`Engine`] and with it all memory writes;
//! predict handlers never touch the live model. Instead, after every
//! applied ingest request the engine *publishes* an immutable
//! [`ServeSnapshot`] — a clone of the model (shared parameters, deep
//! copy of memories/mailboxes/adjacency) plus the feature history —
//! behind an [`RwLock`]`<Arc<…>>`. Readers hold the lock only long
//! enough to clone the `Arc`, then score against a frozen state with no
//! lock held: a reader can never observe a torn mid-batch state, and
//! ingest never waits for readers. Staleness is bounded by one ingest
//! request (MSPipe-style bounded staleness, DESIGN.md §11).
//!
//! # Durability
//!
//! Each applied sub-batch (at most the WAL frame unit) is first framed
//! and fsynced to the write-ahead log, *then* applied to memory — so
//! every event a client sees acknowledged is on disk before it ever
//! influences served state. Because memory evolution depends on batch
//! boundaries (mailbox consumption is per-batch), frame boundaries are
//! exactly apply boundaries; restart replays the log frame-by-frame and
//! reproduces memories bit-identically. Periodic durable snapshots
//! ([`save_state`](cascade_models::save_state)) bound replay time:
//! restart = load snapshot + replay the WAL tail.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError, RwLock};

use cascade_models::MemoryTgnn;
use cascade_tgraph::{EdgeFeatures, Event};

use crate::error::ServeError;
use crate::persist;
use crate::stats::Stats;

/// Where the engine persists, and how often.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Write-ahead log path (created if missing, recovered if present).
    pub wal_path: PathBuf,
    /// Durable state-snapshot path.
    pub snapshot_path: PathBuf,
    /// WAL frame unit: ingest requests are applied (and synced) in
    /// sub-batches of at most this many events.
    pub wal_chunk: usize,
    /// Events between durable snapshots; `0` disables automatic
    /// snapshots (the WAL alone still makes every ack durable).
    pub snapshot_every: usize,
}

impl EngineConfig {
    /// Config with the default frame unit (256) and snapshots disabled.
    pub fn new(wal_path: impl Into<PathBuf>, snapshot_path: impl Into<PathBuf>) -> Self {
        EngineConfig {
            wal_path: wal_path.into(),
            snapshot_path: snapshot_path.into(),
            wal_chunk: 256,
            snapshot_every: 0,
        }
    }

    /// Sets the WAL frame unit.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0` (configuration error, caught at startup).
    pub fn with_wal_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "WAL frame unit must be positive");
        self.wal_chunk = chunk;
        self
    }

    /// Sets the automatic snapshot cadence (events; `0` disables).
    pub fn with_snapshot_every(mut self, events: usize) -> Self {
        self.snapshot_every = events;
        self
    }
}

/// An immutable published state readers score against.
pub struct ServeSnapshot {
    /// Frozen model: shared parameters, deep-copied mutable state.
    pub model: MemoryTgnn,
    /// Feature history aligned with the model's adjacency event ids.
    pub feats: EdgeFeatures,
    /// Events applied when this snapshot was taken (the watermark
    /// reported in `/predict` responses).
    pub events: usize,
}

/// State shared between the ingest thread and predict workers.
pub struct SharedState {
    snapshot: RwLock<Arc<ServeSnapshot>>,
    /// Serving counters and latency histograms.
    pub stats: Stats,
}

impl SharedState {
    /// The current read snapshot; the lock is held only for the `Arc`
    /// clone, so readers never block ingest for the duration of a
    /// score.
    pub fn snapshot(&self) -> Arc<ServeSnapshot> {
        self.snapshot
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn publish(&self, snap: Arc<ServeSnapshot>) {
        *self
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner) = snap;
    }
}

/// What [`Engine::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Events recovered from the WAL (snapshot prefix + replayed tail).
    pub wal_events: usize,
    /// Events restored via the durable snapshot (the replay shortcut).
    pub snapshot_events: usize,
    /// Whether a torn WAL tail was discarded.
    pub torn_tail_discarded: bool,
}

/// Acknowledgement for one ingest request: the events are on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestAck {
    /// Events this request added.
    pub acked: usize,
    /// Total events durably applied since the log began.
    pub total_acked: usize,
}

/// The single-writer serving engine. See the module docs for the
/// ownership and durability story.
pub struct Engine {
    model: MemoryTgnn,
    feats: EdgeFeatures,
    wal: cascade_store::ChunkWriter,
    frame_unit: usize,
    applied: usize,
    last_time: f64,
    since_snapshot: usize,
    config: EngineConfig,
    shared: Arc<SharedState>,
    recovery: RecoveryReport,
}

impl Engine {
    /// Opens the engine: one call covers both the fresh and the restart
    /// path.
    ///
    /// `model` is the serving base state (typically restored from a
    /// training checkpoint). If a WAL exists its valid prefix is
    /// recovered; if a durable snapshot exists it replaces replaying
    /// the prefix it covers, and only the tail beyond it is re-applied.
    /// Either way the resulting memories are bit-identical to the
    /// uninterrupted run over the acked events, because replay applies
    /// the exact original frame boundaries.
    ///
    /// # Errors
    ///
    /// Persistence errors ([`ServeError::Wal`]/[`ServeError::Snapshot`]),
    /// [`ServeError::SnapshotAheadOfWal`] when the snapshot's watermark
    /// exceeds what the WAL holds, and [`ServeError::ShapeMismatch`]
    /// when log, snapshot, and model disagree.
    pub fn open(mut model: MemoryTgnn, config: EngineConfig) -> Result<Engine, ServeError> {
        let num_nodes = model.num_nodes();
        let dim = model.edge_feat_dim();
        let wal = persist::open_wal(&config.wal_path, num_nodes, dim, config.wal_chunk)?;
        let wal_events: usize = wal.frames.iter().map(|f| f.events.len()).sum();

        let snapshot_events = match persist::load_snapshot(&mut model, &config.snapshot_path)? {
            Some(a) => a as usize,
            None => 0,
        };
        if snapshot_events > wal_events {
            return Err(ServeError::SnapshotAheadOfWal {
                snapshot: snapshot_events,
                wal: wal_events,
            });
        }

        let mut feats = if dim == 0 {
            EdgeFeatures::none()
        } else {
            EdgeFeatures::new(Vec::new(), dim)
        };
        let mut applied = 0usize;
        let mut last_time = f64::NEG_INFINITY;
        for frame in &wal.frames {
            let n = frame.events.len();
            feats.push_rows(&frame.features);
            if let Some(e) = frame.events.last() {
                last_time = last_time.max(e.time);
            }
            if applied + n <= snapshot_events {
                // Covered by the snapshot: memories already reflect
                // this frame; only the adjacency (excluded from state
                // blobs) needs rebuilding.
                model.replay_adjacency(&frame.events, applied);
            } else if applied >= snapshot_events {
                // Tail beyond the snapshot: re-apply with the original
                // frame as the batch — boundaries preserved, so the
                // mailbox consumption pattern (and therefore every
                // memory bit) matches the uninterrupted run.
                let fwd = model.forward_batch(&frame.events, applied, &feats);
                model.apply_batch(&frame.events, applied, &feats, fwd.pending);
            } else {
                return Err(ServeError::ShapeMismatch(format!(
                    "snapshot watermark {} falls inside a WAL frame ({}..{}); \
                     snapshots are only taken at frame boundaries",
                    snapshot_events,
                    applied,
                    applied + n
                )));
            }
            applied += n;
        }

        let shared = Arc::new(SharedState {
            snapshot: RwLock::new(Arc::new(ServeSnapshot {
                model: model.clone(),
                feats: feats.clone(),
                events: applied,
            })),
            stats: Stats::default(),
        });
        shared
            .stats
            .events_acked
            .store(applied as u64, Ordering::Relaxed);
        shared
            .stats
            .events_published
            .store(applied as u64, Ordering::Relaxed);
        Ok(Engine {
            model,
            feats,
            frame_unit: wal.chunk_size,
            applied,
            last_time,
            since_snapshot: 0,
            shared,
            recovery: RecoveryReport {
                wal_events,
                snapshot_events,
                torn_tail_discarded: wal.torn_tail.is_some(),
            },
            wal: wal.writer,
            config,
        })
    }

    /// What recovery found when this engine opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The state shared with predict workers (snapshots + stats).
    pub fn shared(&self) -> Arc<SharedState> {
        self.shared.clone()
    }

    /// Events durably applied so far.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// The serialized model state (for bit-identity checks in tests and
    /// tooling).
    pub fn export_state(&self) -> Vec<u8> {
        self.model.export_state()
    }

    /// Durably writes, then acks, then applies `events` to the live
    /// model, and publishes a fresh read snapshot.
    ///
    /// The request is split into sub-batches of at most the WAL frame
    /// unit; each sub-batch is synced to the log *before* it touches
    /// memory, so the returned [`IngestAck`] guarantees every event
    /// survives a kill. Events must be time-ordered and not precede the
    /// served prefix.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for structural problems (out-of-range
    /// nodes, wrong feature width, time regressions) — the log and
    /// model are untouched in that case — and [`ServeError::Wal`] /
    /// [`ServeError::Snapshot`] for persistence failures.
    pub fn ingest(&mut self, events: &[Event], features: &[f32]) -> Result<IngestAck, ServeError> {
        if events.is_empty() {
            return Err(ServeError::BadRequest("empty ingest batch".to_string()));
        }
        let dim = self.model.edge_feat_dim();
        if features.len() != events.len() * dim {
            return Err(ServeError::BadRequest(format!(
                "{} feature values for {} events of width {}",
                features.len(),
                events.len(),
                dim
            )));
        }
        let num_nodes = self.model.num_nodes();
        let mut prev = self.last_time;
        for (i, e) in events.iter().enumerate() {
            if e.src.index() >= num_nodes || e.dst.index() >= num_nodes {
                return Err(ServeError::BadRequest(format!(
                    "event {} references node outside 0..{}",
                    i, num_nodes
                )));
            }
            if !e.time.is_finite() || e.time < prev {
                return Err(ServeError::BadRequest(format!(
                    "event {} breaks time order (t={}, previous {})",
                    i, e.time, prev
                )));
            }
            prev = e.time;
        }

        let mut done = 0usize;
        while done < events.len() {
            let n = (events.len() - done).min(self.frame_unit);
            let sub = &events[done..done + n];
            let rows = &features[done * dim..(done + n) * dim];
            for (i, e) in sub.iter().enumerate() {
                self.wal.push(*e, &rows[i * dim..(i + 1) * dim])?;
            }
            // Durability point: the frame is on disk before it can
            // influence any served score.
            let acked = self.wal.sync()?;
            self.shared
                .stats
                .events_acked
                .store(acked as u64, Ordering::Relaxed);
            self.feats.push_rows(rows);
            let fwd = self.model.forward_batch(sub, self.applied, &self.feats);
            self.model
                .apply_batch(sub, self.applied, &self.feats, fwd.pending);
            self.applied += n;
            self.since_snapshot += n;
            done += n;
        }
        self.last_time = prev;
        self.publish();

        if self.config.snapshot_every > 0 && self.since_snapshot >= self.config.snapshot_every {
            self.snapshot_now()?;
        }
        Ok(IngestAck {
            acked: events.len(),
            total_acked: self.applied,
        })
    }

    /// Forces a durable state snapshot at the current watermark.
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] on checkpoint failures.
    pub fn snapshot_now(&mut self) -> Result<(), ServeError> {
        persist::save_snapshot(&self.model, &self.config.snapshot_path, self.applied as u64)?;
        self.since_snapshot = 0;
        self.shared
            .stats
            .snapshots_written
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn publish(&self) {
        self.shared.publish(Arc::new(ServeSnapshot {
            model: self.model.clone(),
            feats: self.feats.clone(),
            events: self.applied,
        }));
        self.shared
            .stats
            .events_published
            .store(self.applied as u64, Ordering::Relaxed);
    }
}
