//! Wire protocol: JSON request/response shapes for the serving
//! endpoints.
//!
//! Requests are parsed into typed structs with every structural problem
//! reported as [`ServeError::BadRequest`] (which the server maps to
//! HTTP 400); range checks against the live model happen in the engine
//! and worker layers, which know the model's shape.

use cascade_tgraph::Event;
use cascade_util::Json;

use crate::error::ServeError;

/// A parsed `POST /predict` body: score `src → dsts` at `time`.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictRequest {
    /// Query source node.
    pub src: u32,
    /// Candidate destination nodes (non-empty).
    pub dsts: Vec<u32>,
    /// Query timestamp.
    pub time: f64,
}

/// A parsed `POST /ingest` body: temporal events with feature rows.
#[derive(Clone, Debug, PartialEq)]
pub struct IngestRequest {
    /// Events in stream order.
    pub events: Vec<Event>,
    /// Row-major features, `feature_dim` floats per event.
    pub features: Vec<f32>,
}

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::BadRequest(msg.into())
}

fn field_u32(obj: &Json, key: &str) -> Result<u32, ServeError> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("missing or non-numeric field '{}'", key)))?;
    if v < 0.0 || v.fract() != 0.0 || v > u32::MAX as f64 {
        return Err(bad(format!("field '{}' is not a valid node id", key)));
    }
    Ok(v as u32)
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, ServeError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("missing or non-numeric field '{}'", key)))
}

/// Parses a `/predict` body.
///
/// # Errors
///
/// [`ServeError::BadRequest`] on any structural problem (missing
/// fields, empty candidate list, non-finite time).
pub fn parse_predict(body: &str) -> Result<PredictRequest, ServeError> {
    let json = Json::parse(body).map_err(|e| bad(format!("invalid JSON: {}", e)))?;
    let src = field_u32(&json, "src")?;
    let time = field_f64(&json, "time")?;
    if !time.is_finite() {
        return Err(bad("field 'time' must be finite"));
    }
    let dsts_json = json
        .get("dsts")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing array field 'dsts'"))?;
    if dsts_json.is_empty() {
        return Err(bad("'dsts' must name at least one candidate"));
    }
    let mut dsts = Vec::with_capacity(dsts_json.len());
    for d in dsts_json {
        let v = d
            .as_f64()
            .ok_or_else(|| bad("'dsts' entries must be node ids"))?;
        if v < 0.0 || v.fract() != 0.0 || v > u32::MAX as f64 {
            return Err(bad("'dsts' entries must be valid node ids"));
        }
        dsts.push(v as u32);
    }
    Ok(PredictRequest { src, dsts, time })
}

/// Parses an `/ingest` body against the model's `feature_dim`.
///
/// Every event must carry a `features` array of exactly `feature_dim`
/// floats (omitted entirely when the model was trained featureless).
///
/// # Errors
///
/// [`ServeError::BadRequest`] on any structural problem.
pub fn parse_ingest(body: &str, feature_dim: usize) -> Result<IngestRequest, ServeError> {
    let json = Json::parse(body).map_err(|e| bad(format!("invalid JSON: {}", e)))?;
    let events_json = json
        .get("events")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing array field 'events'"))?;
    if events_json.is_empty() {
        return Err(bad("'events' must hold at least one event"));
    }
    let mut events = Vec::with_capacity(events_json.len());
    let mut features = Vec::with_capacity(events_json.len() * feature_dim);
    for (i, e) in events_json.iter().enumerate() {
        let src = field_u32(e, "src").map_err(|err| bad(format!("event {}: {}", i, err)))?;
        let dst = field_u32(e, "dst").map_err(|err| bad(format!("event {}: {}", i, err)))?;
        let time = field_f64(e, "time").map_err(|err| bad(format!("event {}: {}", i, err)))?;
        if !time.is_finite() {
            return Err(bad(format!("event {}: time must be finite", i)));
        }
        match e.get("features").and_then(Json::as_arr) {
            Some(row) => {
                if row.len() != feature_dim {
                    return Err(bad(format!(
                        "event {}: {} feature values, model expects {}",
                        i,
                        row.len(),
                        feature_dim
                    )));
                }
                for v in row {
                    let x = v
                        .as_f64()
                        .ok_or_else(|| bad(format!("event {}: non-numeric feature", i)))?;
                    features.push(x as f32);
                }
            }
            None => {
                if feature_dim != 0 {
                    return Err(bad(format!(
                        "event {}: missing 'features' ({} values expected)",
                        i, feature_dim
                    )));
                }
            }
        }
        events.push(Event::new(src, dst, time));
    }
    Ok(IngestRequest { events, features })
}

/// Encodes a `/predict` response: per-candidate scores plus the
/// snapshot watermark they were computed against.
pub fn predict_response(scores: &[f32], snapshot_events: usize) -> Json {
    Json::Obj(vec![
        (
            "scores".to_string(),
            Json::Arr(scores.iter().map(|s| Json::from(*s as f64)).collect()),
        ),
        ("snapshot_events".to_string(), Json::from(snapshot_events)),
    ])
}

/// Encodes an `/ingest` response: what this request added and the total
/// durable watermark. A client seeing this response may assume the
/// events survive a server kill.
pub fn ingest_response(acked: usize, total_acked: usize) -> Json {
    Json::Obj(vec![
        ("acked".to_string(), Json::from(acked)),
        ("total_acked".to_string(), Json::from(total_acked)),
    ])
}

/// Encodes an error body.
pub fn error_response(msg: &str) -> Json {
    Json::Obj(vec![("error".to_string(), Json::from(msg))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_roundtrip() {
        let req = parse_predict(r#"{"src": 3, "dsts": [1, 2, 5], "time": 42.5}"#).unwrap();
        assert_eq!(
            req,
            PredictRequest {
                src: 3,
                dsts: vec![1, 2, 5],
                time: 42.5
            }
        );
    }

    #[test]
    fn predict_rejects_structural_problems() {
        for body in [
            "not json",
            r#"{"dsts": [1], "time": 1.0}"#,
            r#"{"src": 1, "dsts": [], "time": 1.0}"#,
            r#"{"src": -2, "dsts": [1], "time": 1.0}"#,
            r#"{"src": 1.5, "dsts": [1], "time": 1.0}"#,
            r#"{"src": 1, "dsts": [1]}"#,
        ] {
            assert!(
                matches!(parse_predict(body), Err(ServeError::BadRequest(_))),
                "should reject: {}",
                body
            );
        }
    }

    #[test]
    fn ingest_parses_events_with_features() {
        let body = r#"{"events": [
            {"src": 0, "dst": 1, "time": 1.0, "features": [0.5, -1.0]},
            {"src": 2, "dst": 3, "time": 2.0, "features": [1.5, 2.0]}
        ]}"#;
        let req = parse_ingest(body, 2).unwrap();
        assert_eq!(req.events.len(), 2);
        assert_eq!(req.features, vec![0.5, -1.0, 1.5, 2.0]);
    }

    #[test]
    fn ingest_enforces_feature_width() {
        let body = r#"{"events": [{"src": 0, "dst": 1, "time": 1.0, "features": [0.5]}]}"#;
        assert!(matches!(
            parse_ingest(body, 2),
            Err(ServeError::BadRequest(_))
        ));
        let no_feats = r#"{"events": [{"src": 0, "dst": 1, "time": 1.0}]}"#;
        assert!(parse_ingest(no_feats, 0).is_ok());
        assert!(matches!(
            parse_ingest(no_feats, 2),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn responses_are_well_formed_json() {
        let p = predict_response(&[0.25, 0.75], 12).to_string();
        let parsed = Json::parse(&p).unwrap();
        assert_eq!(
            parsed.get("snapshot_events").and_then(Json::as_usize),
            Some(12)
        );
        assert_eq!(
            parsed
                .get("scores")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
        let i = ingest_response(3, 10).to_string();
        let parsed = Json::parse(&i).unwrap();
        assert_eq!(parsed.get("total_acked").and_then(Json::as_usize), Some(10));
    }
}
