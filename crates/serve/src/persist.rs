//! Serving persistence: the write-ahead log and durable state
//! snapshots.
//!
//! This is the designated I/O module of `cascade-serve` (see the
//! `io-fs-confined` allowlist in `cascade-lint`): every filesystem
//! touch of the serving stack lives here, routed through the typed
//! `cascade-store` WAL primitives and the `cascade-models` checkpoint
//! layer.
//!
//! Durability protocol (DESIGN.md §11): each applied ingest sub-batch
//! is one synced WAL frame, so frame boundaries *are* apply boundaries
//! — restart replays the log batch-for-batch and reproduces memories
//! bit-identically. On recovery the valid frame prefix is rewritten to
//! a fresh log (temp file + rename, so a crash mid-rewrite keeps the
//! old log) which both discards any torn tail and leaves an open
//! writer positioned to append.

use std::path::Path;

use cascade_models::{load_checkpoint, save_state, CheckpointError, MemoryTgnn};
use cascade_store::{recover_log, ChunkWriter, StoreError, StoredChunk};

use crate::error::ServeError;

/// An open write-ahead log plus whatever was recovered from it.
pub struct WalState {
    /// Writer positioned after the last recovered frame.
    pub writer: ChunkWriter,
    /// The log's frame unit: ingest sub-batches must not exceed this,
    /// so that frame boundaries stay equal to apply boundaries.
    pub chunk_size: usize,
    /// Recovered frames in apply order (empty for a fresh log).
    pub frames: Vec<StoredChunk>,
    /// The discarded torn tail, if recovery found one.
    pub torn_tail: Option<StoreError>,
}

/// Opens the WAL at `path`, recovering it if it exists or creating a
/// fresh one sized for `num_nodes`/`feature_dim` if not.
///
/// An existing log is validated against the model's shape, then its
/// valid frame prefix is rewritten to `<path>.tmp` (one sync per frame,
/// preserving the original apply boundaries) and renamed over the old
/// log; the returned writer appends to the renamed file.
///
/// # Errors
///
/// [`ServeError::Wal`] on store-level failures and
/// [`ServeError::ShapeMismatch`] when an existing log disagrees with
/// the model's node count or feature width.
pub fn open_wal(
    path: &Path,
    num_nodes: usize,
    feature_dim: usize,
    chunk_size: usize,
) -> Result<WalState, ServeError> {
    if !path.exists() {
        let writer = ChunkWriter::create(path, num_nodes, feature_dim, chunk_size)?;
        return Ok(WalState {
            writer,
            chunk_size,
            frames: Vec::new(),
            torn_tail: None,
        });
    }
    let rec = recover_log(path)?;
    if rec.meta.num_nodes != num_nodes || rec.meta.feature_dim != feature_dim {
        return Err(ServeError::ShapeMismatch(format!(
            "WAL written for {} nodes / feature dim {}, model has {} / {}",
            rec.meta.num_nodes, rec.meta.feature_dim, num_nodes, feature_dim
        )));
    }
    // Keep the recovered log's frame unit: recovered frames can be as
    // large as it, and future sub-batches must fit one frame each.
    let unit = rec.meta.chunk_size.max(chunk_size);
    let tmp = path.with_extension("wal_tmp");
    let mut writer = ChunkWriter::create(&tmp, num_nodes, feature_dim, unit)?;
    for f in &rec.frames {
        for (i, e) in f.events.iter().enumerate() {
            writer.push(*e, &f.features[i * feature_dim..(i + 1) * feature_dim])?;
        }
        writer.sync()?;
    }
    // The writer's descriptor survives the rename (same inode), so
    // appends after this land in the live log at `path`.
    std::fs::rename(&tmp, path).map_err(StoreError::from)?;
    Ok(WalState {
        writer,
        chunk_size: unit,
        frames: rec.frames,
        torn_tail: rec.torn_tail,
    })
}

/// Loads the snapshot at `path` into `model`, returning its
/// events-applied watermark — or `None` when no snapshot exists yet.
///
/// Accepts any full-state checkpoint format, monolithic (CSC2) or
/// sharded (CSC3) — a server can boot directly from the state a
/// `cascade-dist` run saved with
/// [`cascade_models::save_sharded_state`], whatever shard count it was
/// trained with. Parameter-only files (CSC1) are rejected: a snapshot
/// must carry memories and a watermark, or replay would silently start
/// from event zero.
///
/// # Errors
///
/// [`ServeError::Snapshot`] on checkpoint-level failures (including a
/// detected partial snapshot) and for a parameter-only file.
pub fn load_snapshot(model: &mut MemoryTgnn, path: &Path) -> Result<Option<u64>, ServeError> {
    if !path.exists() {
        return Ok(None);
    }
    match load_checkpoint(model, path)? {
        Some(events_applied) => Ok(Some(events_applied)),
        None => Err(ServeError::Snapshot(CheckpointError::StateMismatch(
            "snapshot is a parameter-only checkpoint with no events-applied watermark".into(),
        ))),
    }
}

/// Durably snapshots `model` (tagged with `events_applied`) to `path`,
/// atomically — see [`cascade_models::save_state`].
///
/// # Errors
///
/// [`ServeError::Snapshot`] on checkpoint-level failures.
pub fn save_snapshot(
    model: &MemoryTgnn,
    path: &Path,
    events_applied: u64,
) -> Result<(), ServeError> {
    Ok(save_state(model, path, events_applied)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cascade_tgraph::Event;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cascade_serve_persist_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{}", std::process::id(), name))
    }

    #[test]
    fn fresh_wal_then_reopen_preserves_frame_boundaries() {
        let path = tmp("reopen.wal");
        std::fs::remove_file(&path).ok();
        let mut st = open_wal(&path, 8, 2, 16).unwrap();
        assert!(st.frames.is_empty());
        for i in 0..5u32 {
            st.writer
                .push(Event::new(i, i + 1, i as f64), &[i as f32, 0.0])
                .unwrap();
        }
        st.writer.sync().unwrap();
        for i in 5..8u32 {
            st.writer
                .push(Event::new(i % 8, (i + 1) % 8, i as f64), &[i as f32, 0.0])
                .unwrap();
        }
        st.writer.sync().unwrap();
        std::mem::forget(st.writer); // simulate kill

        let st2 = open_wal(&path, 8, 2, 16).unwrap();
        assert_eq!(st2.frames.len(), 2, "frame boundaries preserved");
        assert_eq!(st2.frames[0].events.len(), 5);
        assert_eq!(st2.frames[1].events.len(), 3);
        assert!(st2.torn_tail.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends_to_the_rewritten_log() {
        let path = tmp("append.wal");
        std::fs::remove_file(&path).ok();
        let mut st = open_wal(&path, 8, 0, 16).unwrap();
        st.writer.push(Event::new(0u32, 1u32, 1.0), &[]).unwrap();
        st.writer.sync().unwrap();
        std::mem::forget(st.writer);

        let mut st2 = open_wal(&path, 8, 0, 16).unwrap();
        assert_eq!(st2.frames.len(), 1);
        st2.writer.push(Event::new(2u32, 3u32, 2.0), &[]).unwrap();
        st2.writer.sync().unwrap();
        std::mem::forget(st2.writer);

        let st3 = open_wal(&path, 8, 0, 16).unwrap();
        assert_eq!(
            st3.frames.len(),
            2,
            "append after rename reached the live log"
        );
        assert_eq!(st3.frames[1].events[0], Event::new(2u32, 3u32, 2.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let path = tmp("shape.wal");
        std::fs::remove_file(&path).ok();
        let st = open_wal(&path, 8, 2, 16).unwrap();
        std::mem::forget(st.writer);
        assert!(matches!(
            open_wal(&path, 9, 2, 16),
            Err(ServeError::ShapeMismatch(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_is_none() {
        use cascade_models::{MemoryTgnn, ModelConfig};
        let mut m = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 2, 1);
        let got = load_snapshot(&mut m, &tmp("never_written.ckpt")).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn sharded_snapshot_boots_the_server() {
        use cascade_models::{save_sharded_state, MemoryTgnn, ModelConfig};
        use cascade_tgraph::EdgeFeatures;
        let cfg = ModelConfig::tgn().with_dims(8, 4);
        let mut trained = MemoryTgnn::new(cfg.clone(), 6, 2, 1);
        let events = [Event::new(0u32, 1u32, 1.0), Event::new(2u32, 3u32, 2.0)];
        let mut feats = EdgeFeatures::zeros(2, 2);
        feats.set_row(0, &[0.5, -0.5]);
        feats.set_row(1, &[1.0, 0.25]);
        let fwd = trained.forward_batch(&events, 0, &feats);
        trained.apply_batch(&events, 0, &feats, fwd.pending);

        // A dist run saves with the shard layout it trained under; the
        // server boots from it with a plain monolithic model.
        let path = tmp("sharded_boot.ckpt");
        save_sharded_state(&trained, &path, 2, 3).unwrap();
        let mut served = MemoryTgnn::new(cfg, 6, 2, 1);
        let applied = load_snapshot(&mut served, &path).unwrap();
        assert_eq!(applied, Some(2), "watermark survives the shard layout");
        assert_eq!(
            served.export_state(),
            trained.export_state(),
            "memories and mailboxes reassemble bit-identically from shards"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parameter_only_snapshot_is_rejected() {
        use cascade_models::{save_parameters, MemoryTgnn, ModelConfig};
        let m = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 2, 1);
        let path = tmp("params_only.ckpt");
        save_parameters(&m, &path).unwrap();
        let mut fresh = MemoryTgnn::new(ModelConfig::tgn().with_dims(8, 4), 6, 2, 1);
        assert!(
            matches!(
                load_snapshot(&mut fresh, &path),
                Err(ServeError::Snapshot(_))
            ),
            "a watermark-less checkpoint must not silently boot a server"
        );
        std::fs::remove_file(&path).ok();
    }
}
