//! Typed serving errors.

use std::fmt;

use cascade_models::CheckpointError;
use cascade_store::StoreError;

/// Everything that can go wrong while opening or running a serving
/// engine.
#[derive(Debug)]
pub enum ServeError {
    /// WAL read/write failure (typed store error underneath).
    Wal(StoreError),
    /// Snapshot save/load failure (typed checkpoint error underneath).
    Snapshot(CheckpointError),
    /// The snapshot claims more applied events than the WAL holds — the
    /// WAL was truncated or swapped out from under its snapshot, so the
    /// tail needed to reach the snapshot's state is gone.
    SnapshotAheadOfWal {
        /// Events the snapshot has applied.
        snapshot: usize,
        /// Events recoverable from the WAL.
        wal: usize,
    },
    /// The WAL or snapshot disagrees with the model's shape (node count
    /// or feature width).
    ShapeMismatch(String),
    /// A client request was malformed or out of range.
    BadRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Wal(e) => write!(f, "write-ahead log error: {}", e),
            ServeError::Snapshot(e) => write!(f, "snapshot error: {}", e),
            ServeError::SnapshotAheadOfWal { snapshot, wal } => write!(
                f,
                "snapshot has applied {} events but the WAL only holds {}; \
                 the log this snapshot depends on is gone",
                snapshot, wal
            ),
            ServeError::ShapeMismatch(msg) => write!(f, "shape mismatch: {}", msg),
            ServeError::BadRequest(msg) => write!(f, "bad request: {}", msg),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Wal(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Wal(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Snapshot(e)
    }
}
