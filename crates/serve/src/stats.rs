//! Serving telemetry: counters and latency histograms.
//!
//! This is the one module in `cascade-serve` allowed to read clocks
//! (see the `det-wallclock` allowlist in `cascade-lint`): timings here
//! land in `/stats` payloads and bench reports, never in ingest
//! decisions — the served state is a pure function of the event log,
//! and stays that way.
//!
//! Everything is atomic so predict workers and the ingest thread can
//! record without locks; relaxed ordering is enough because readers
//! only ever want a statistically consistent view, not a linearizable
//! one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cascade_util::Json;

/// Number of log-spaced latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds, so 26 buckets reach ~67 s.
const BUCKETS: usize = 26;

/// Lock-free log-bucketed latency histogram (microsecond samples).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn record(&self, micros: u64) {
        let idx = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile in microseconds (upper bucket bound —
    /// log-bucket resolution, so within 2x of the true sample).
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        self.max_micros.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds.
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_micros.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest sample seen, in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros.load(Ordering::Relaxed)
    }

    /// Summary as a JSON object (milliseconds, bench-report friendly).
    pub fn to_json(&self) -> Json {
        let ms = |us: u64| us as f64 / 1000.0;
        Json::Obj(vec![
            ("count".to_string(), Json::from(self.count() as usize)),
            (
                "mean_ms".to_string(),
                Json::from(self.mean_micros() / 1000.0),
            ),
            (
                "p50_ms".to_string(),
                Json::from(ms(self.quantile_micros(0.50))),
            ),
            (
                "p95_ms".to_string(),
                Json::from(ms(self.quantile_micros(0.95))),
            ),
            (
                "p99_ms".to_string(),
                Json::from(ms(self.quantile_micros(0.99))),
            ),
            ("max_ms".to_string(), Json::from(ms(self.max_micros()))),
        ])
    }
}

/// A running latency measurement; drop-free (call [`Timer::stop`]).
pub struct Timer(Instant);

impl Timer {
    /// Starts timing now.
    pub fn start() -> Self {
        Timer(Instant::now())
    }

    /// Stops and records into `hist`.
    pub fn stop(self, hist: &LatencyHistogram) {
        hist.record(self.0.elapsed().as_micros() as u64);
    }
}

/// Shared serving counters, written by workers and the ingest thread,
/// read by `/stats` handlers.
#[derive(Debug, Default)]
pub struct Stats {
    /// Events durably framed in the WAL (the ack watermark).
    pub events_acked: AtomicU64,
    /// Events applied to memory *and published* as a read snapshot.
    pub events_published: AtomicU64,
    /// `/predict` queries answered.
    pub queries_served: AtomicU64,
    /// `/ingest` requests accepted.
    pub ingest_requests: AtomicU64,
    /// Durable state snapshots written.
    pub snapshots_written: AtomicU64,
    /// `/predict` end-to-end handler latency.
    pub predict_latency: LatencyHistogram,
    /// `/ingest` end-to-end handler latency (includes fsync + apply).
    pub ingest_latency: LatencyHistogram,
}

impl Stats {
    /// Memory-staleness lag: acked events not yet visible to readers.
    /// Acked runs ahead of published only transiently (within one
    /// ingest batch), so this is the instantaneous staleness bound.
    pub fn staleness_lag(&self) -> u64 {
        let acked = self.events_acked.load(Ordering::Relaxed);
        let published = self.events_published.load(Ordering::Relaxed);
        acked.saturating_sub(published)
    }

    /// The `/stats` payload.
    pub fn to_json(&self) -> Json {
        let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed) as usize);
        Json::Obj(vec![
            ("events_acked".to_string(), load(&self.events_acked)),
            ("events_published".to_string(), load(&self.events_published)),
            (
                "staleness_lag".to_string(),
                Json::from(self.staleness_lag() as usize),
            ),
            ("queries_served".to_string(), load(&self.queries_served)),
            ("ingest_requests".to_string(), load(&self.ingest_requests)),
            (
                "snapshots_written".to_string(),
                load(&self.snapshots_written),
            ),
            (
                "predict_latency".to_string(),
                self.predict_latency.to_json(),
            ),
            ("ingest_latency".to_string(), self.ingest_latency.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for us in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 100_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_micros(0.50);
        assert!((64..=256).contains(&p50), "p50 {} brackets 80-160us", p50);
        let p99 = h.quantile_micros(0.99);
        assert!(p99 >= 100_000, "p99 {} reaches the outlier", p99);
        assert_eq!(h.max_micros(), 100_000);
        assert!(h.mean_micros() > 0.0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.99), 0);
        assert_eq!(h.mean_micros(), 0.0);
    }

    #[test]
    fn staleness_lag_is_acked_minus_published() {
        let s = Stats::default();
        s.events_acked.store(120, Ordering::Relaxed);
        s.events_published.store(100, Ordering::Relaxed);
        assert_eq!(s.staleness_lag(), 20);
        // Published can never exceed acked; saturate instead of wrap.
        s.events_published.store(200, Ordering::Relaxed);
        assert_eq!(s.staleness_lag(), 0);
    }

    #[test]
    fn stats_json_has_the_documented_fields() {
        let s = Stats::default();
        s.predict_latency.record(500);
        let j = s.to_json();
        assert!(j.get("staleness_lag").is_some());
        let p = j.get("predict_latency").expect("predict_latency present");
        assert_eq!(p.get("count").and_then(Json::as_usize), Some(1));
        assert!(p.get("p99_ms").and_then(Json::as_f64).is_some());
    }
}
