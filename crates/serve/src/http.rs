//! A deliberately small HTTP/1.1 subset: request parsing and response
//! writing over a [`TcpStream`], enough for the serving endpoints and
//! nothing more (no chunked encoding, no continuations, no TLS).
//!
//! Zero-dependency policy: this replaces an HTTP crate, not the
//! protocol — requests are `METHOD PATH HTTP/1.x`, headers until a
//! blank line, and an optional `Content-Length` body. Every deviation
//! is a typed [`HttpError`], never a panic, so a hostile or broken
//! client can at worst get its own connection closed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request body, in bytes (a 16 MiB ingest batch).
pub const MAX_BODY: usize = 16 << 20;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target, e.g. `/predict`.
    pub path: String,
    /// Decoded body (empty without `Content-Length`).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure.
    Io(std::io::Error),
    /// The bytes were not a well-formed request.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY`].
    TooLarge(usize),
    /// The client closed the connection cleanly at a request boundary.
    Closed,
    /// A read timeout fired at a request boundary (nothing of a next
    /// request read yet) — the connection is idle, not broken; the
    /// caller may poll again.
    Idle,
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from `reader` (a buffered wrapper the caller keeps
/// alive across keep-alive requests, so pipelined bytes are not lost).
///
/// # Errors
///
/// [`HttpError::Closed`] when the connection ends cleanly at a request
/// boundary (the normal end of a keep-alive connection) and
/// [`HttpError::Idle`] when a read timeout fires there — poll again.
/// Everything else is a real error: [`HttpError::Malformed`] for
/// protocol violations (including a timeout mid-request),
/// [`HttpError::TooLarge`] for oversized bodies, [`HttpError::Io`] for
/// transport failures.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, HttpError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(HttpError::Closed),
        Ok(_) => {}
        Err(e) if is_timeout(&e) && line.is_empty() => return Err(HttpError::Idle),
        Err(e) if is_timeout(&e) => {
            return Err(HttpError::Malformed("timed out mid-request".to_string()))
        }
        Err(e) => return Err(HttpError::Io(e)),
    }
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), p.to_string(), v)
        }
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line: {:?}",
                line
            )))
        }
    };
    // HTTP/1.1 defaults to keep-alive, 1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err(HttpError::Malformed("eof inside headers".to_string())),
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                return Err(HttpError::Malformed("timed out in headers".to_string()))
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
        let header = header.trim_end();
        if header.is_empty() {
            if content_length > MAX_BODY {
                return Err(HttpError::TooLarge(content_length));
            }
            let mut body = vec![0u8; content_length];
            if content_length > 0 {
                read_exact_with_timeout(reader, &mut body)?;
            }
            let body = String::from_utf8(body)
                .map_err(|_| HttpError::Malformed("body is not UTF-8".to_string()))?;
            return Ok(Request {
                method,
                path,
                body,
                keep_alive,
            });
        }
        let (name, value) = match header.split_once(':') {
            Some((n, v)) => (n.trim(), v.trim()),
            None => return Err(HttpError::Malformed(format!("bad header: {:?}", header))),
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length: {:?}", value)))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    Err(HttpError::Malformed("too many headers".to_string()))
}

fn read_exact_with_timeout(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
) -> Result<(), HttpError> {
    let mut got = 0usize;
    while got < buf.len() {
        match reader.read(&mut buf[got..]) {
            Ok(0) => return Err(HttpError::Malformed("eof inside body".to_string())),
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                return Err(HttpError::Malformed("timed out in body".to_string()))
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(())
}

/// Writes one response with a JSON body.
///
/// # Errors
///
/// [`std::io::Error`] on transport failure (the caller drops the
/// connection).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    // One write per response: splitting head and body into separate
    // segments interacts with Nagle + delayed ACK and costs ~40ms per
    // round-trip on loopback.
    let response = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n{}",
        status,
        reason,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
        body,
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
