//! End-to-end training benchmarks: the Figure 2 batch-size sweep and the
//! Figure 10 Cascade-vs-TGL comparison as Criterion targets (compute-only;
//! the `repro` binary reports the accelerator-modeled latencies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cascade_core::{train, CascadeConfig, CascadeScheduler, FixedBatching, TrainConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_tgraph::{Dataset, SynthConfig};

fn bench_data() -> Dataset {
    SynthConfig::wiki()
        .with_scale(0.008)
        .with_node_scale(0.027)
        .with_feature_dim(8)
        .generate(42)
}

fn one_epoch_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 1,
        lr: 1e-3,
        eval_batch_size: 64,
        clip_norm: Some(5.0),
        ..TrainConfig::default()
    }
}

fn bench_batch_size_sweep(c: &mut Criterion) {
    let data = bench_data();
    let mut g = c.benchmark_group("batch_size_sweep_tgn");
    g.sample_size(10);
    for bs in [32usize, 64, 128, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            b.iter(|| {
                let mut model = MemoryTgnn::new(
                    ModelConfig::tgn().with_dims(16, 8).with_neighbors(4),
                    data.num_nodes(),
                    data.features().dim(),
                    1,
                );
                let mut s = FixedBatching::new(bs);
                black_box(train(&mut model, &data, &mut s, &one_epoch_cfg()))
            });
        });
    }
    g.finish();
}

fn bench_cascade_vs_tgl(c: &mut Criterion) {
    let data = bench_data();
    let mut g = c.benchmark_group("cascade_vs_tgl_tgn");
    g.sample_size(10);
    g.bench_function("tgl", |b| {
        b.iter(|| {
            let mut model = MemoryTgnn::new(
                ModelConfig::tgn().with_dims(16, 8).with_neighbors(4),
                data.num_nodes(),
                data.features().dim(),
                1,
            );
            let mut s = FixedBatching::new(64);
            black_box(train(&mut model, &data, &mut s, &one_epoch_cfg()))
        });
    });
    g.bench_function("cascade", |b| {
        b.iter(|| {
            let mut model = MemoryTgnn::new(
                ModelConfig::tgn().with_dims(16, 8).with_neighbors(4),
                data.num_nodes(),
                data.features().dim(),
                1,
            );
            let mut s = CascadeScheduler::new(CascadeConfig {
                preset_batch_size: 64,
                ..CascadeConfig::default()
            });
            black_box(train(&mut model, &data, &mut s, &one_epoch_cfg()))
        });
    });
    g.finish();
}

fn bench_chunked_preprocessing(c: &mut Criterion) {
    let data = SynthConfig::gdelt()
        .with_scale(4e-5)
        .with_feature_dim(8)
        .generate(9);
    let mut g = c.benchmark_group("chunked_preprocessing_jodie");
    g.sample_size(10);
    for (label, chunk) in [("dense", None), ("chunked", Some(1000usize))] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut model = MemoryTgnn::new(
                    ModelConfig::jodie().with_dims(16, 8),
                    data.num_nodes(),
                    data.features().dim(),
                    1,
                );
                let mut cfg = CascadeConfig {
                    preset_batch_size: 64,
                    ..CascadeConfig::default()
                };
                if let Some(ch) = chunk {
                    cfg = cfg.with_chunk_size(ch);
                }
                let mut s = CascadeScheduler::new(cfg);
                black_box(train(&mut model, &data, &mut s, &one_epoch_cfg()))
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = end_to_end;
    config = Criterion::default();
    targets = bench_batch_size_sweep, bench_cascade_vs_tgl, bench_chunked_preprocessing
);
criterion_main!(end_to_end);
