//! End-to-end training benchmarks: the Figure 2 batch-size sweep and the
//! Figure 10 Cascade-vs-TGL comparison (compute-only; the `repro` binary
//! reports the accelerator-modeled latencies).
//!
//! Runs on the in-repo `cascade-util` micro-bench harness: under
//! `cargo bench` the report lands in `bench_results/end_to_end.json`;
//! under `cargo test` each target trains once as a smoke test.

use std::hint::black_box;

use cascade_core::{train, CascadeConfig, CascadeScheduler, FixedBatching, TrainConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_tgraph::{Dataset, SynthConfig};
use cascade_util::BenchSuite;

fn bench_data() -> Dataset {
    SynthConfig::wiki()
        .with_scale(0.008)
        .with_node_scale(0.027)
        .with_feature_dim(8)
        .generate(42)
}

fn one_epoch_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 1,
        lr: 1e-3,
        eval_batch_size: 64,
        clip_norm: Some(5.0),
        ..TrainConfig::default()
    }
}

fn tgn_model(data: &Dataset) -> MemoryTgnn {
    MemoryTgnn::new(
        ModelConfig::tgn().with_dims(16, 8).with_neighbors(4),
        data.num_nodes(),
        data.features().dim(),
        1,
    )
}

fn bench_batch_size_sweep(suite: &mut BenchSuite, data: &Dataset) {
    for bs in [32usize, 64, 128, 256] {
        suite.bench(&format!("batch_size_sweep_tgn/{}", bs), || {
            let mut model = tgn_model(data);
            let mut s = FixedBatching::new(bs);
            black_box(train(&mut model, data, &mut s, &one_epoch_cfg()))
        });
    }
}

fn bench_cascade_vs_tgl(suite: &mut BenchSuite, data: &Dataset) {
    suite.bench("cascade_vs_tgl_tgn/tgl", || {
        let mut model = tgn_model(data);
        let mut s = FixedBatching::new(64);
        black_box(train(&mut model, data, &mut s, &one_epoch_cfg()))
    });
    suite.bench("cascade_vs_tgl_tgn/cascade", || {
        let mut model = tgn_model(data);
        let mut s = CascadeScheduler::new(CascadeConfig {
            preset_batch_size: 64,
            ..CascadeConfig::default()
        });
        black_box(train(&mut model, data, &mut s, &one_epoch_cfg()))
    });
}

fn bench_chunked_preprocessing(suite: &mut BenchSuite) {
    let data = SynthConfig::gdelt()
        .with_scale(4e-5)
        .with_feature_dim(8)
        .generate(9);
    for (label, chunk) in [("dense", None), ("chunked", Some(1000usize))] {
        let data = &data;
        suite.bench(
            &format!("chunked_preprocessing_jodie/{}", label),
            move || {
                let mut model = MemoryTgnn::new(
                    ModelConfig::jodie().with_dims(16, 8),
                    data.num_nodes(),
                    data.features().dim(),
                    1,
                );
                let mut cfg = CascadeConfig {
                    preset_batch_size: 64,
                    ..CascadeConfig::default()
                };
                if let Some(ch) = chunk {
                    cfg = cfg.with_chunk_size(ch);
                }
                let mut s = CascadeScheduler::new(cfg);
                black_box(train(&mut model, data, &mut s, &one_epoch_cfg()))
            },
        );
    }
}

fn main() {
    let mut suite = BenchSuite::new("end_to_end").with_seed(42);
    let data = bench_data();
    bench_batch_size_sweep(&mut suite, &data);
    bench_cascade_vs_tgl(&mut suite, &data);
    bench_chunked_preprocessing(&mut suite);
    suite.finish();
}
