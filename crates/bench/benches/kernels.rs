//! Kernel microbenchmarks: the primitives whose costs the paper's
//! latency/space analysis (Figures 13–14) decomposes, plus the matmul
//! amortization curve the batching argument rests on.
//!
//! Runs on the in-repo `cascade-util` micro-bench harness: under
//! `cargo bench` each target runs warmup + timed iterations and the
//! median/p10/p90 report lands in `bench_results/kernels.json`; under
//! `cargo test` each target runs once as a smoke test.

use std::hint::black_box;

use cascade_core::{max_endurance_profiling, DependencyTable, SgFilter, TgDiffuser};
use cascade_models::MemoryDelta;
use cascade_nn::{GatLayer, GruCell, TimeEncode};
use cascade_tensor::Tensor;
use cascade_tgraph::{AdjacencyStore, NodeId, SynthConfig};
use cascade_util::BenchSuite;

fn bench_tensor_matmul(suite: &mut BenchSuite) {
    // The amortization curve: one [B, 64] × [64, 64] product per batch —
    // per-event cost falls as B grows.
    for b in [16usize, 64, 256, 1024] {
        let x = Tensor::randn([b, 64], 1);
        let w = Tensor::randn([64, 64], 2);
        suite.bench(&format!("tensor_matmul/{}", b), || black_box(x.matmul(&w)));
    }
}

fn bench_fused_layers(suite: &mut BenchSuite) {
    // The fused TGNN layer kernels, forward + backward at a TGN-typical
    // batch and hidden width. Each closure builds the layer's graph node
    // and runs its backward pass — the per-batch unit of work the arena
    // and the fused closures optimize.
    let b = 256;

    let gru = GruCell::new(32, 32, 5);
    let gx = Tensor::randn([b, 32], 11);
    let gh = Tensor::randn([b, 32], 12).requires_grad();
    suite.bench("gru_cell/fwd_bwd_256x32", || {
        let out = gru.forward(&gx, &gh);
        out.sum().backward();
        gh.zero_grad();
        for p in cascade_nn::Module::parameters(&gru) {
            p.zero_grad();
        }
        black_box(out.len())
    });

    let enc = TimeEncode::new(32);
    let dts = Tensor::randn([b, 1], 13);
    suite.bench("time_encode/fwd_bwd_256x32", || {
        let out = enc.forward(&dts);
        out.sum().backward();
        for p in cascade_nn::Module::parameters(&enc) {
            p.zero_grad();
        }
        black_box(out.len())
    });

    let k = 8;
    let gat = GatLayer::new(32, 32, 6);
    let center = Tensor::randn([b, 32], 14);
    let neighbors = Tensor::randn([b * k, 32], 15);
    let mask: Vec<f32> = (0..b * k)
        .map(|i| if i % 5 == 0 { 0.0 } else { 1.0 })
        .collect();
    suite.bench("gat_attention/fwd_bwd_256x32k8", || {
        let out = gat.forward(&center, &neighbors, &mask, k);
        out.sum().backward();
        for p in cascade_nn::Module::parameters(&gat) {
            p.zero_grad();
        }
        black_box(out.len())
    });
}

fn bench_dependency_table(suite: &mut BenchSuite) {
    let data = SynthConfig::wiki()
        .with_scale(0.05)
        .with_node_scale(0.1)
        .with_feature_dim(0)
        .generate(7);
    let events = data.stream().events();
    let n = data.num_nodes();

    suite.bench("dependency_table/dense_build", || {
        black_box(DependencyTable::build(events, n))
    });
    suite.bench("dependency_table/chunked_build", || {
        for (i, chunk) in events.chunks(1000).enumerate() {
            black_box(DependencyTable::build_range(chunk, n, i * 1000));
        }
    });
}

fn bench_diffuser_lookup(suite: &mut BenchSuite) {
    let data = SynthConfig::wiki()
        .with_scale(0.05)
        .with_node_scale(0.1)
        .with_feature_dim(0)
        .generate(7);
    let events = data.stream().events();
    let table = DependencyTable::build(events, data.num_nodes());
    let stable = vec![false; data.num_nodes()];

    suite.bench("diffuser_full_partition", || {
        let mut d = TgDiffuser::new(table.clone(), 32);
        let mut start = 0;
        while start < events.len() {
            start = d.next_boundary(start, events.len(), &stable);
        }
        black_box(start)
    });
}

fn bench_sgfilter_kernel(suite: &mut BenchSuite) {
    let deltas: Vec<MemoryDelta> = (0..512)
        .map(|i| MemoryDelta {
            node: NodeId((i % 100) as u32),
            pre: (0..100).map(|j| (i * j) as f32 * 0.01).collect(),
            post: (0..100).map(|j| (i * j) as f32 * 0.011).collect(),
        })
        .collect();
    suite.bench("sgfilter_observe_512x100d", || {
        let mut f = SgFilter::new(100, 0.9);
        f.observe(black_box(&deltas));
        black_box(f.stable_count())
    });
}

fn bench_sampler(suite: &mut BenchSuite) {
    let data = SynthConfig::wiki()
        .with_scale(0.02)
        .with_node_scale(0.05)
        .with_feature_dim(0)
        .generate(3);
    let mut adj = AdjacencyStore::new(data.num_nodes());
    for (i, e) in data.stream().iter().enumerate() {
        adj.insert_event(e, i);
    }
    let nodes: Vec<NodeId> = (0..data.num_nodes() as u32).map(NodeId).collect();

    suite.bench("neighbor_sampler/most_recent_10", || {
        for &n in &nodes {
            black_box(adj.most_recent(n, 10));
        }
    });
    suite.bench("neighbor_sampler/uniform_10", || {
        for &n in &nodes {
            black_box(adj.uniform(n, 10));
        }
    });
}

fn bench_endurance_profiling(suite: &mut BenchSuite) {
    let data = SynthConfig::wiki()
        .with_scale(0.05)
        .with_node_scale(0.1)
        .with_feature_dim(0)
        .generate(7);
    let table = DependencyTable::build(data.stream().events(), data.num_nodes());
    suite.bench("abs_max_endurance_profiling", || {
        black_box(max_endurance_profiling(&table, data.num_events(), 64, 0))
    });
}

fn main() {
    let mut suite = BenchSuite::new("kernels").with_seed(7);
    bench_tensor_matmul(&mut suite);
    bench_fused_layers(&mut suite);
    bench_dependency_table(&mut suite);
    bench_diffuser_lookup(&mut suite);
    bench_sgfilter_kernel(&mut suite);
    bench_sampler(&mut suite);
    bench_endurance_profiling(&mut suite);
    suite.finish();
}
