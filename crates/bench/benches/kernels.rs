//! Kernel microbenchmarks: the primitives whose costs the paper's
//! latency/space analysis (Figures 13–14) decomposes, plus the matmul
//! amortization curve the batching argument rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cascade_core::{max_endurance_profiling, DependencyTable, SgFilter, TgDiffuser};
use cascade_models::MemoryDelta;
use cascade_tensor::Tensor;
use cascade_tgraph::{AdjacencyStore, NodeId, SynthConfig};

fn bench_tensor_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor_matmul");
    // The amortization curve: one [B, 64] × [64, 64] product per batch —
    // per-event cost falls as B grows.
    for b in [16usize, 64, 256, 1024] {
        let x = Tensor::randn([b, 64], 1);
        let w = Tensor::randn([64, 64], 2);
        g.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            bench.iter(|| black_box(x.matmul(&w)));
        });
    }
    g.finish();
}

fn bench_dependency_table(c: &mut Criterion) {
    let data = SynthConfig::wiki()
        .with_scale(0.05)
        .with_node_scale(0.1)
        .with_feature_dim(0)
        .generate(7);
    let events = data.stream().events();
    let n = data.num_nodes();

    let mut g = c.benchmark_group("dependency_table");
    g.bench_function("dense_build", |b| {
        b.iter(|| black_box(DependencyTable::build(events, n)));
    });
    g.bench_function("chunked_build", |b| {
        b.iter(|| {
            for (i, chunk) in events.chunks(1000).enumerate() {
                black_box(DependencyTable::build_range(chunk, n, i * 1000));
            }
        });
    });
    g.finish();
}

fn bench_diffuser_lookup(c: &mut Criterion) {
    let data = SynthConfig::wiki()
        .with_scale(0.05)
        .with_node_scale(0.1)
        .with_feature_dim(0)
        .generate(7);
    let events = data.stream().events();
    let table = DependencyTable::build(events, data.num_nodes());
    let stable = vec![false; data.num_nodes()];

    c.bench_function("diffuser_full_partition", |b| {
        b.iter(|| {
            let mut d = TgDiffuser::new(table.clone(), 32);
            let mut start = 0;
            while start < events.len() {
                start = d.next_boundary(start, events.len(), &stable);
            }
            black_box(start)
        });
    });
}

fn bench_sgfilter_kernel(c: &mut Criterion) {
    let deltas: Vec<MemoryDelta> = (0..512)
        .map(|i| MemoryDelta {
            node: NodeId((i % 100) as u32),
            pre: (0..100).map(|j| (i * j) as f32 * 0.01).collect(),
            post: (0..100).map(|j| (i * j) as f32 * 0.011).collect(),
        })
        .collect();
    c.bench_function("sgfilter_observe_512x100d", |b| {
        b.iter(|| {
            let mut f = SgFilter::new(100, 0.9);
            f.observe(black_box(&deltas));
            black_box(f.stable_count())
        });
    });
}

fn bench_sampler(c: &mut Criterion) {
    let data = SynthConfig::wiki()
        .with_scale(0.02)
        .with_node_scale(0.05)
        .with_feature_dim(0)
        .generate(3);
    let mut adj = AdjacencyStore::new(data.num_nodes());
    for (i, e) in data.stream().iter().enumerate() {
        adj.insert_event(e, i);
    }
    let nodes: Vec<NodeId> = (0..data.num_nodes() as u32).map(NodeId).collect();

    let mut g = c.benchmark_group("neighbor_sampler");
    g.bench_function("most_recent_10", |b| {
        b.iter(|| {
            for &n in &nodes {
                black_box(adj.most_recent(n, 10));
            }
        });
    });
    g.bench_function("uniform_10", |b| {
        b.iter(|| {
            for &n in &nodes {
                black_box(adj.uniform(n, 10));
            }
        });
    });
    g.finish();
}

fn bench_endurance_profiling(c: &mut Criterion) {
    let data = SynthConfig::wiki()
        .with_scale(0.05)
        .with_node_scale(0.1)
        .with_feature_dim(0)
        .generate(7);
    let table = DependencyTable::build(data.stream().events(), data.num_nodes());
    c.bench_function("abs_max_endurance_profiling", |b| {
        b.iter(|| black_box(max_endurance_profiling(&table, data.num_events(), 64, 0)));
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets =
        bench_tensor_matmul,
        bench_dependency_table,
        bench_diffuser_lookup,
        bench_sgfilter_kernel,
        bench_sampler,
        bench_endurance_profiling
);
criterion_main!(kernels);
