//! Shard-parallel batch compute: forward + backward throughput at 1, 2,
//! 4, and 8 compute threads on a wiki-profile synthetic graph.
//!
//! Under `cargo bench` the report lands in
//! `bench_results/parallel_compute.json`, extended with a `speedup`
//! object holding the threads-vs-speedup curve (median single-thread
//! time over median N-thread time). Shard-parallel compute is
//! bit-identical at every thread count, so the curve measures pure
//! wall-clock gain. Under `cargo test` each target runs once as a
//! smoke test.

use std::hint::black_box;

use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_tgraph::{Dataset, SynthConfig};
use cascade_util::{BenchSuite, Json};

const BATCH: usize = 256;
const BATCHES: usize = 5;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Median serial (`threads1`) time from the committed PR 9 baseline run of
/// this bench (`bench_results/parallel_compute.json`). The speedup curve
/// normalizes by the *current* serial median, so it silently forgives
/// serial regressions; the `serial_baseline` report entry pins this
/// constant next to the fresh measurement to make serial drift visible.
const SERIAL_BASELINE_NS: f64 = 36_667_148.5;

fn bench_data() -> Dataset {
    SynthConfig::wiki()
        .with_scale(0.02)
        .with_node_scale(0.05)
        .with_feature_dim(8)
        .generate(7)
}

fn bench_model(data: &Dataset, threads: usize) -> MemoryTgnn {
    let mut model = MemoryTgnn::new(
        ModelConfig::tgn().with_dims(32, 16).with_neighbors(4),
        data.num_nodes(),
        data.features().dim(),
        1,
    );
    model.set_compute_threads(threads);
    model
}

/// One forward + backward pass over the first `BATCHES` training
/// batches. Memories and mailboxes are never applied, so every call
/// does identical work — exactly the compute stage the shard workers
/// parallelize, with the serial scan/update stages excluded.
fn compute_pass(model: &MemoryTgnn, data: &Dataset) -> f32 {
    let events = data.stream().events();
    let mut total = 0.0;
    for b in 0..BATCHES {
        let start = b * BATCH;
        let end = (start + BATCH).min(data.train_range().end);
        let fwd = model.forward_batch(&events[start..end], start, data.features());
        total += fwd.loss.item();
        fwd.loss.backward();
    }
    total
}

fn main() {
    let data = bench_data();
    assert!(
        data.train_range().end >= BATCH * BATCHES,
        "synthetic graph too small for {} batches of {}",
        BATCHES,
        BATCH
    );

    let mut suite = BenchSuite::new("parallel_compute").with_seed(7);
    let mut medians: Vec<(usize, f64)> = Vec::new();
    for threads in THREADS {
        let model = bench_model(&data, threads);
        let id = format!("forward_backward/threads{}", threads);
        suite.bench(&id, || black_box(compute_pass(&model, &data)));
        if let Some(s) = suite.stats().iter().find(|s| s.id == id) {
            medians.push((threads, s.median_ns));
        }
    }

    // In measurement mode, append the threads-vs-speedup curve to the
    // report so plots can read it directly instead of re-deriving it
    // from the raw stats.
    if let Some(path) = suite.finish() {
        let base = medians
            .iter()
            .find(|(t, _)| *t == 1)
            .map(|(_, ns)| *ns)
            .expect("single-thread baseline measured");
        let curve: Vec<Json> = medians
            .iter()
            .map(|(threads, ns)| {
                Json::Obj(vec![
                    ("threads".into(), Json::from(*threads)),
                    ("median_ns".into(), Json::from(*ns)),
                    ("speedup".into(), Json::from(base / ns)),
                ])
            })
            .collect();
        // The curve is only meaningful relative to the cores the host
        // actually grants (`host_parallelism`, emitted with the suite
        // header): on a single-core box every multi-thread entry
        // degenerates to scheduler churn.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot re-read {}: {}", path.display(), e));
        let mut report = Json::parse(&raw).expect("suite report is valid JSON");
        if let Json::Obj(fields) = &mut report {
            fields.push(("speedup".into(), Json::Arr(curve)));
            fields.push((
                "serial_baseline".into(),
                Json::Obj(vec![
                    ("baseline_ns".into(), Json::from(SERIAL_BASELINE_NS)),
                    ("current_ns".into(), Json::from(base)),
                    ("drift".into(), Json::from(base / SERIAL_BASELINE_NS)),
                ]),
            ));
        }
        std::fs::write(&path, report.to_string())
            .unwrap_or_else(|e| panic!("cannot write {}: {}", path.display(), e));
        for (threads, ns) in &medians {
            eprintln!(
                "[bench parallel_compute] threads {}: {:.2}x vs serial",
                threads,
                base / ns
            );
        }
        eprintln!(
            "[bench parallel_compute] serial drift: {:.3}x vs committed baseline \
             ({:.1} ms now, {:.1} ms at baseline)",
            base / SERIAL_BASELINE_NS,
            base / 1e6,
            SERIAL_BASELINE_NS / 1e6
        );
        if cores < 2 {
            eprintln!(
                "[bench parallel_compute] host grants {} core(s); \
                 speedup requires a multi-core host",
                cores
            );
        }
        eprintln!(
            "[bench parallel_compute] appended speedup curve to {}",
            path.display()
        );
    }
}
