//! cascade-serve load generator: HTTP round-trip micro-benches plus a
//! concurrent open-loop phase (predict clients hammering the server
//! while an ingest client streams events) measuring tail latency and
//! throughput.
//!
//! Under `cargo bench` the report lands in `bench_results/serve.json`,
//! extended with a `load_gen` object holding client-side p50/p95/p99
//! latency, events/sec, queries/sec, and the server's own `/stats`
//! view of the same run. Under `cargo test` each target runs once as a
//! smoke test and the load-gen phase shrinks to a handful of requests.
//!
//! Numbers from the 1-core dev container measure the serial HTTP +
//! scoring path, not multi-core capacity; see EXPERIMENTS.md.

use std::hint::black_box;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_serve::{Engine, EngineConfig, Server};
use cascade_util::{BenchSuite, Json};

const NODES: usize = 128;
const FEAT_DIM: usize = 8;
const INGEST_BATCH: usize = 64;

/// Globally monotonic event clock shared by every ingest source, so the
/// engine's time-ordering validation holds across bench targets.
static EVENT_CLOCK: AtomicUsize = AtomicUsize::new(0);

fn bench_model() -> MemoryTgnn {
    MemoryTgnn::new(
        ModelConfig::tgn().with_dims(16, 8).with_neighbors(4),
        NODES,
        FEAT_DIM,
        1,
    )
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cascade_serve_bench");
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let p = dir.join(format!("{}_{}", std::process::id(), name));
    std::fs::remove_file(&p).ok();
    p
}

// ---------------------------------------------------------------- client --

fn send_request(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let req = format!(
        "{} {} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{}",
        method,
        path,
        body.len(),
        body
    );
    stream.write_all(req.as_bytes()).expect("request written");
}

fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code present")
        .parse()
        .expect("status code numeric");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length numeric");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body read");
    (status, String::from_utf8(body).expect("utf8 body"))
}

/// A keep-alive connection issuing sequential requests.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("server reachable");
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().expect("stream clones"));
        Client { stream, reader }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        send_request(&mut self.stream, method, path, body);
        read_response(&mut self.reader)
    }
}

fn predict_body(src: usize) -> String {
    format!(
        r#"{{"src": {}, "dsts": [1, 2, 3, 4], "time": 1.0e9}}"#,
        src % NODES
    )
}

/// Next ingest batch off the shared event clock.
fn ingest_body(n: usize) -> String {
    let base = EVENT_CLOCK.fetch_add(n, Ordering::Relaxed);
    let events: Vec<String> = (base..base + n)
        .map(|i| {
            let feats: Vec<String> = (0..FEAT_DIM)
                .map(|j| format!("{:.3}", ((i + j) % 17) as f64 * 0.05))
                .collect();
            format!(
                r#"{{"src": {}, "dst": {}, "time": {}.0, "features": [{}]}}"#,
                i % NODES,
                (i * 7 + 3) % NODES,
                i,
                feats.join(",")
            )
        })
        .collect();
    format!(r#"{{"events": [{}]}}"#, events.join(","))
}

// -------------------------------------------------------------- load gen --

struct LoadGenResult {
    clients: usize,
    queries: usize,
    events: usize,
    wall_secs: f64,
    predict_us: Vec<f64>,
    ingest_us: Vec<f64>,
}

/// `clients` predict connections fire `queries_per_client` requests each
/// while the calling thread streams `batches` ingest batches over its
/// own connection: open-loop, no coordination beyond the shared server.
fn run_load(
    addr: SocketAddr,
    clients: usize,
    queries_per_client: usize,
    batches: usize,
) -> LoadGenResult {
    let start = Instant::now();
    let mut readers = Vec::new();
    for c in 0..clients {
        readers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr);
            let mut lat = Vec::with_capacity(queries_per_client);
            for q in 0..queries_per_client {
                let body = predict_body(c * 31 + q);
                let t = Instant::now();
                let (status, resp) = client.request("POST", "/predict", &body);
                lat.push(t.elapsed().as_secs_f64() * 1e6);
                assert_eq!(status, 200, "predict failed under load: {}", resp);
            }
            lat
        }));
    }

    let mut ingest_client = Client::connect(addr);
    let mut ingest_us = Vec::with_capacity(batches);
    for _ in 0..batches {
        let body = ingest_body(INGEST_BATCH);
        let t = Instant::now();
        let (status, resp) = ingest_client.request("POST", "/ingest", &body);
        ingest_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(status, 200, "ingest failed under load: {}", resp);
    }

    let mut predict_us = Vec::new();
    for r in readers {
        predict_us.extend(r.join().expect("predict client finished"));
    }
    LoadGenResult {
        clients,
        queries: clients * queries_per_client,
        events: batches * INGEST_BATCH,
        wall_secs: start.elapsed().as_secs_f64(),
        predict_us,
        ingest_us,
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn latency_json(mut samples: Vec<f64>) -> Json {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let max = samples.last().copied().unwrap_or(0.0);
    Json::Obj(vec![
        ("count".into(), Json::from(samples.len())),
        (
            "p50_ms".into(),
            Json::from(percentile(&samples, 0.50) / 1e3),
        ),
        (
            "p95_ms".into(),
            Json::from(percentile(&samples, 0.95) / 1e3),
        ),
        (
            "p99_ms".into(),
            Json::from(percentile(&samples, 0.99) / 1e3),
        ),
        ("max_ms".into(), Json::from(max / 1e3)),
    ])
}

// ------------------------------------------------------------------ main --

fn main() {
    let wal = tmp("bench.wal");
    let snap = tmp("bench.ckpt");
    let engine = Engine::open(
        bench_model(),
        EngineConfig::new(&wal, &snap).with_wal_chunk(INGEST_BATCH),
    )
    .expect("engine opens on a fresh WAL");
    // Each keep-alive connection occupies a worker for its lifetime, so
    // the pool must cover the peak concurrent connections below (two
    // predict clients + one ingest client + one stats probe).
    let server = Server::start(engine, "127.0.0.1:0", 4).expect("server starts");
    let addr = server.addr();
    let shared = server.shared();

    // Micro-benches: single-request round-trip over one keep-alive
    // connection, through the full parse → route → score/WAL → respond
    // path.
    let mut suite = BenchSuite::new("serve").with_seed(1);
    let mut client = Client::connect(addr);
    let mut q = 0usize;
    suite.bench("http/predict_roundtrip", || {
        q += 1;
        let (status, resp) = client.request("POST", "/predict", &predict_body(q));
        assert_eq!(status, 200, "{}", resp);
        black_box(resp.len())
    });
    suite.bench("http/ingest_roundtrip_batch64", || {
        let (status, resp) = client.request("POST", "/ingest", &ingest_body(INGEST_BATCH));
        assert_eq!(status, 200, "{}", resp);
        black_box(resp.len())
    });
    suite.bench("http/stats_roundtrip", || {
        let (status, resp) = client.request("GET", "/stats", "");
        assert_eq!(status, 200, "{}", resp);
        black_box(resp.len())
    });

    // Free the micro-bench connection's worker before the load-gen
    // phase opens its own connections.
    drop(client);

    // Load-gen phase: sized down to a handful of requests in smoke mode
    // (no report file), real volume under `cargo bench`.
    let report_path = suite.finish();
    let load = if report_path.is_some() {
        run_load(addr, 2, 300, 32)
    } else {
        run_load(addr, 1, 20, 4)
    };
    let (status, server_stats) = Client::connect(addr).request("GET", "/stats", "");
    assert_eq!(status, 200);
    assert!(
        load.predict_us.len() == load.queries,
        "all queries answered"
    );

    if let Some(path) = report_path {
        let load_json = Json::Obj(vec![
            ("predict_clients".into(), Json::from(load.clients)),
            ("queries".into(), Json::from(load.queries)),
            ("events_ingested".into(), Json::from(load.events)),
            ("wall_secs".into(), Json::from(load.wall_secs)),
            (
                "queries_per_sec".into(),
                Json::from(load.queries as f64 / load.wall_secs),
            ),
            (
                "events_per_sec".into(),
                Json::from(load.events as f64 / load.wall_secs),
            ),
            (
                "predict_latency".into(),
                latency_json(load.predict_us.clone()),
            ),
            (
                "ingest_latency".into(),
                latency_json(load.ingest_us.clone()),
            ),
        ]);
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot re-read {}: {}", path.display(), e));
        let mut report = Json::parse(&raw).expect("suite report is valid JSON");
        if let Json::Obj(fields) = &mut report {
            fields.push(("load_gen".into(), load_json));
            fields.push((
                "server_stats".into(),
                Json::parse(&server_stats).expect("/stats is valid JSON"),
            ));
        }
        std::fs::write(&path, report.to_string())
            .unwrap_or_else(|e| panic!("cannot write {}: {}", path.display(), e));

        let mut p = load.predict_us.clone();
        p.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        eprintln!(
            "[bench serve] {} queries / {} events in {:.2}s: \
             {:.0} q/s, {:.0} ev/s; predict p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms",
            load.queries,
            load.events,
            load.wall_secs,
            load.queries as f64 / load.wall_secs,
            load.events as f64 / load.wall_secs,
            percentile(&p, 0.50) / 1e3,
            percentile(&p, 0.95) / 1e3,
            percentile(&p, 0.99) / 1e3,
        );
        eprintln!(
            "[bench serve] appended load_gen report to {}",
            path.display()
        );
    }

    // Staleness contract held throughout: everything acked was published.
    assert_eq!(shared.stats.staleness_lag(), 0);
    server.shutdown();
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(&snap).ok();
}
