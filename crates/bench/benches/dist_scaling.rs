//! Data-parallel training throughput at 1, 2, and 4 in-process workers
//! on a wiki-profile synthetic graph — the cascade-dist counterpart of
//! `parallel_compute`.
//!
//! Under `cargo bench` the report lands in
//! `bench_results/dist_scaling.json`, extended with a `scaling` object
//! holding the workers-vs-throughput curve (events per second, and the
//! ratio over the single-worker run) plus `host_parallelism` — on a
//! single-core host every multi-worker entry measures scheduler churn,
//! not scaling, so the grant travels with the numbers. Under
//! `cargo test` each target runs once as a smoke test.

use std::hint::black_box;

use cascade_dist::{train_dist, DistConfig};
use cascade_models::ModelConfig;
use cascade_tgraph::{Dataset, SynthConfig};
use cascade_util::{BenchSuite, Json};

const WORKERS: [usize; 3] = [1, 2, 4];

fn bench_data() -> Dataset {
    SynthConfig::wiki()
        .with_scale(0.003)
        .with_feature_dim(8)
        .generate(7)
}

fn dist_cfg(workers: usize) -> DistConfig {
    DistConfig {
        workers,
        chunk_size: 128,
        batch_size: 64,
        epochs: 1,
        lr: 1e-3,
        clip_norm: Some(5.0),
        seed: 7,
    }
}

fn main() {
    let data = bench_data();
    let model_cfg = ModelConfig::tgn().with_dims(16, 8).with_neighbors(4);

    let mut suite = BenchSuite::new("dist_scaling").with_seed(7);
    let mut medians: Vec<(usize, f64)> = Vec::new();
    for workers in WORKERS {
        let id = format!("train_epoch/workers{}", workers);
        suite.bench(&id, || {
            black_box(train_dist(&data, &model_cfg, &dist_cfg(workers)))
        });
        if let Some(s) = suite.stats().iter().find(|s| s.id == id) {
            medians.push((workers, s.median_ns));
        }
    }

    if let Some(path) = suite.finish() {
        let events = data.num_events() as f64;
        let base = medians
            .iter()
            .find(|(w, _)| *w == 1)
            .map(|(_, ns)| *ns)
            .expect("single-worker baseline measured");
        let curve: Vec<Json> = medians
            .iter()
            .map(|(workers, ns)| {
                Json::Obj(vec![
                    ("workers".into(), Json::from(*workers)),
                    ("median_ns".into(), Json::from(*ns)),
                    ("events_per_sec".into(), Json::from(events * 1e9 / ns)),
                    ("throughput_ratio".into(), Json::from(base / ns)),
                ])
            })
            .collect();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot re-read {}: {}", path.display(), e));
        let mut report = Json::parse(&raw).expect("suite report is valid JSON");
        // `host_parallelism` arrives with the suite header; only the
        // scaling curve is appended here.
        if let Json::Obj(fields) = &mut report {
            fields.push(("scaling".into(), Json::Arr(curve)));
        }
        std::fs::write(&path, report.to_string())
            .unwrap_or_else(|e| panic!("cannot write {}: {}", path.display(), e));
        for (workers, ns) in &medians {
            eprintln!(
                "[bench dist_scaling] workers {}: {:.0} events/s ({:.2}x vs 1 worker)",
                workers,
                events * 1e9 / ns,
                base / ns
            );
        }
        if cores < 2 {
            eprintln!(
                "[bench dist_scaling] host grants {} core(s); the curve \
                 measures coordination overhead, not scaling",
                cores
            );
        }
        eprintln!(
            "[bench dist_scaling] appended scaling curve to {}",
            path.display()
        );
    }
}
