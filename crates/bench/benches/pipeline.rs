//! Pipelined-executor micro-benchmarks: one serial Cascade epoch against
//! `cascade-exec` at prefetch depths 1, 2, and 4.
//!
//! Under `cargo bench` the report lands in `bench_results/pipeline.json`,
//! extended with an `overlap` object holding the per-stage busy/stall
//! telemetry of one depth-2 pipelined run — the numbers behind the claim
//! that the driver's stall time stays below the total stage busy time
//! (i.e. the pipeline overlaps, rather than serializes, the stages).
//! Under `cargo test` each target trains once as a smoke test.

use std::hint::black_box;

use cascade_core::{train, CascadeConfig, CascadeScheduler, StageTimings, TrainConfig};
use cascade_exec::{train_pipelined, PipelineConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_tgraph::{Dataset, SynthConfig};
use cascade_util::{BenchSuite, Json};

fn bench_data() -> Dataset {
    SynthConfig::wiki()
        .with_scale(0.008)
        .with_node_scale(0.027)
        .with_feature_dim(8)
        .generate(42)
}

fn one_epoch_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 1,
        lr: 1e-3,
        eval_batch_size: 64,
        clip_norm: Some(5.0),
        ..TrainConfig::default()
    }
}

fn tgn_model(data: &Dataset) -> MemoryTgnn {
    MemoryTgnn::new(
        ModelConfig::tgn().with_dims(16, 8).with_neighbors(4),
        data.num_nodes(),
        data.features().dim(),
        1,
    )
}

fn scheduler() -> CascadeScheduler {
    CascadeScheduler::new(CascadeConfig {
        preset_batch_size: 64,
        ..CascadeConfig::default()
    })
}

fn run_pipelined(data: &Dataset, pcfg: &PipelineConfig) -> StageTimings {
    let mut model = tgn_model(data);
    let mut s = scheduler();
    train_pipelined(&mut model, data, &mut s, &one_epoch_cfg(), pcfg)
        .expect("pipelined bench run failed")
        .stages
}

fn stage_json(name: &str, busy_ns: f64, stall_ns: f64, items: usize) -> (String, Json) {
    (
        name.to_string(),
        Json::Obj(vec![
            ("busy_ns".into(), Json::from(busy_ns)),
            ("stall_ns".into(), Json::from(stall_ns)),
            ("items".into(), Json::from(items)),
        ]),
    )
}

/// The per-stage overlap telemetry of one pipelined run as JSON. The
/// interesting comparison is `driver_stall_ns` (time stages B/C spent
/// waiting on queues) against `total_busy_ns` (time all three stages
/// spent working): overlap means stalls stay a small fraction of work.
fn overlap_json(stages: &StageTimings, depth: usize, staleness: usize) -> Json {
    let ns = |d: std::time::Duration| d.as_nanos() as f64;
    Json::Obj(vec![
        ("depth".into(), Json::from(depth)),
        ("staleness".into(), Json::from(staleness)),
        (
            "scan".into(),
            stage_json(
                "scan",
                ns(stages.scan.busy),
                ns(stages.scan.stall),
                stages.scan.items,
            )
            .1,
        ),
        (
            "compute".into(),
            stage_json(
                "compute",
                ns(stages.compute.busy),
                ns(stages.compute.stall),
                stages.compute.items,
            )
            .1,
        ),
        (
            "update".into(),
            stage_json(
                "update",
                ns(stages.update.busy),
                ns(stages.update.stall),
                stages.update.items,
            )
            .1,
        ),
        ("total_busy_ns".into(), Json::from(ns(stages.total_busy()))),
        (
            "driver_stall_ns".into(),
            Json::from(ns(stages.driver_stall())),
        ),
        (
            "stall_below_busy".into(),
            Json::from(stages.driver_stall() < stages.total_busy()),
        ),
    ])
}

fn main() {
    let mut suite = BenchSuite::new("pipeline").with_seed(42);
    let data = bench_data();

    suite.bench("train_tgn_cascade/serial", || {
        let mut model = tgn_model(&data);
        let mut s = scheduler();
        black_box(train(&mut model, &data, &mut s, &one_epoch_cfg()))
    });
    for depth in [1usize, 2, 4] {
        let pcfg = PipelineConfig::default()
            .with_depth(depth)
            .with_staleness(depth.saturating_sub(1));
        suite.bench(
            &format!("train_tgn_cascade/pipelined_depth{}", depth),
            || black_box(run_pipelined(&data, &pcfg)),
        );
    }

    // One instrumented run at depth 2 supplies the overlap telemetry;
    // measured only when the suite itself is measuring (finish() returns
    // the report path), so `cargo test` smoke runs stay fast and
    // write-free.
    if let Some(path) = suite.finish() {
        let pcfg = PipelineConfig::default().with_depth(2).with_staleness(1);
        let stages = run_pipelined(&data, &pcfg);
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot re-read {}: {}", path.display(), e));
        let mut report = Json::parse(&raw).expect("suite report is valid JSON");
        if let Json::Obj(fields) = &mut report {
            fields.push(("overlap".into(), overlap_json(&stages, 2, 1)));
        }
        std::fs::write(&path, report.to_string())
            .unwrap_or_else(|e| panic!("cannot write {}: {}", path.display(), e));
        eprintln!(
            "[bench pipeline] appended overlap telemetry to {}",
            path.display()
        );
    }
}
