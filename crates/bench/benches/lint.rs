//! Lint self-benchmark: times a whole-workspace `cascade-lint` scan —
//! walk, lex, token rules, item parse, intraprocedural flow, and the
//! interprocedural call-graph fixpoints — over this very repository.
//!
//! The gate runs on every CI push and inside `cargo test` (self_gate),
//! so its wall time is a developer-facing latency budget: the ISSUE-8
//! ceiling is 10 s single-core for the full workspace. This bench pins
//! that number in `bench_results/lint.json` so a regression in the
//! fixpoint loops or the lexer shows up as a curve, not an anecdote.
//!
//! Run with `cargo bench -p cascade-bench --bench lint`.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use cascade_lint::{find_root, scan_workspace, workspace_files};
use cascade_util::{BenchSuite, Json};

fn repo_root() -> PathBuf {
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    find_root(&here).expect("bench crate lives inside the workspace")
}

fn main() {
    let mut suite = BenchSuite::new("lint");
    let root = repo_root();

    suite.bench("lint/walk_workspace", || {
        black_box(
            workspace_files(&root)
                .expect("workspace walk succeeds")
                .len(),
        )
    });
    suite.bench("lint/scan_workspace", || {
        let (findings, suppressed, files) =
            scan_workspace(&root).expect("workspace sources are readable");
        black_box((findings.len(), suppressed, files))
    });

    // One instrumented pass supplies the budget record: absolute wall
    // time against the 10 s single-core ceiling, plus the scan counters
    // so the artifact is self-describing. Measured only when the suite
    // itself is measuring, so `cargo test` smoke runs stay write-free.
    if let Some(path) = suite.finish() {
        let t0 = Instant::now();
        let (findings, suppressed, files) =
            scan_workspace(&root).expect("workspace sources are readable");
        let wall = t0.elapsed();

        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot re-read {}: {}", path.display(), e));
        let mut report = Json::parse(&raw).expect("suite report is valid JSON");
        if let Json::Obj(fields) = &mut report {
            fields.push((
                "workspace_scan".into(),
                Json::Obj(vec![
                    ("files_scanned".into(), Json::from(files)),
                    ("findings".into(), Json::from(findings.len())),
                    ("suppressed".into(), Json::from(suppressed)),
                    ("wall_ns".into(), Json::from(wall.as_nanos() as f64)),
                    (
                        "budget_secs".into(),
                        // The acceptance ceiling from ISSUE 8; the gate
                        // below turns a breach into a bench failure.
                        Json::from(10.0),
                    ),
                    (
                        "within_budget".into(),
                        Json::from(wall.as_secs_f64() < 10.0),
                    ),
                ]),
            ));
        }
        std::fs::write(&path, report.to_string())
            .unwrap_or_else(|e| panic!("cannot write {}: {}", path.display(), e));
        eprintln!(
            "[bench lint] scanned {} files in {:.3}s ({} finding(s), {} suppressed); \
             report at {}",
            files,
            wall.as_secs_f64(),
            findings.len(),
            suppressed,
            path.display()
        );
        assert!(
            wall.as_secs_f64() < 10.0,
            "whole-workspace lint took {:.3}s — over the 10s single-core budget",
            wall.as_secs_f64()
        );
    }
}
