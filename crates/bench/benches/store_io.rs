//! `cascade-store` I/O micro-benchmarks: chunked write throughput, then
//! a blocking read against a prefetched read, both paired with the
//! per-chunk dependency-table build the streaming trainer performs.
//!
//! Under `cargo bench` the report lands in `bench_results/store_io.json`,
//! extended with a `prefetch_overlap` object comparing one instrumented
//! blocking pass against one prefetched pass: with the store's read-ahead
//! thread, chunk `k + 1`'s decode + CRC check overlaps chunk `k`'s table
//! build, so the prefetched pass's wall time drops below the blocking
//! pass's sum. Under `cargo test` each target runs once as a smoke test.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use cascade_core::TableSpec;
use cascade_store::{export_dataset, ChunkReader, StreamingEventSource};
use cascade_tgraph::{Dataset, EventSource, SynthConfig};
use cascade_util::{BenchSuite, Json};

const CHUNK: usize = 512;

fn bench_data() -> Dataset {
    SynthConfig::wiki()
        .with_scale(0.05)
        .with_node_scale(0.05)
        .with_feature_dim(8)
        .generate(42)
}

fn store_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cascade-bench-store-{}-{}.evt",
        tag,
        std::process::id()
    ))
}

/// One blocking pass: read every chunk serially, build its table, and
/// fold a value so nothing is optimized away.
fn blocking_pass(path: &std::path::Path, spec: TableSpec) -> usize {
    let mut reader = ChunkReader::open(path).expect("store opens");
    let mut acc = 0usize;
    while let Some(chunk) = reader.next_frame().expect("store reads cleanly") {
        let table = spec.build(chunk.base, &chunk.events);
        acc += table.end() + chunk.events.len();
    }
    acc
}

/// One prefetched pass: the store's read-ahead thread decodes and
/// CRC-checks chunks while this thread builds tables.
fn prefetched_pass(path: &std::path::Path, spec: TableSpec) -> usize {
    let mut source = StreamingEventSource::open(path, 2).expect("store opens");
    let mut acc = 0usize;
    while let Some(chunk) = source.next_chunk().expect("store streams cleanly") {
        let table = spec.build(chunk.base, &chunk.events);
        acc += table.end() + chunk.events.len();
    }
    acc
}

fn main() {
    let mut suite = BenchSuite::new("store_io").with_seed(42);
    let data = bench_data();
    let spec = TableSpec {
        num_nodes: data.num_nodes(),
        incident_only: false,
    };

    let write_path = store_path("write");
    suite.bench("store/write", || {
        black_box(export_dataset(&data, &write_path, CHUNK).expect("export succeeds"))
    });

    let read_path = store_path("read");
    export_dataset(&data, &read_path, CHUNK).expect("export succeeds");
    suite.bench("store/read_blocking_with_table_build", || {
        black_box(blocking_pass(&read_path, spec))
    });
    suite.bench("store/read_prefetch_with_table_build", || {
        black_box(prefetched_pass(&read_path, spec))
    });

    // One instrumented pass of each flavor supplies the overlap record;
    // measured only when the suite itself is measuring, so `cargo test`
    // smoke runs stay fast and write-free.
    if let Some(path) = suite.finish() {
        let t0 = Instant::now();
        let a = blocking_pass(&read_path, spec);
        let blocking = t0.elapsed();
        let t1 = Instant::now();
        let b = prefetched_pass(&read_path, spec);
        let prefetched = t1.elapsed();
        assert_eq!(a, b, "blocking and prefetched passes saw different data");

        let overlap_fraction = 1.0 - prefetched.as_secs_f64() / blocking.as_secs_f64().max(1e-12);
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot re-read {}: {}", path.display(), e));
        let mut report = Json::parse(&raw).expect("suite report is valid JSON");
        if let Json::Obj(fields) = &mut report {
            fields.push((
                "prefetch_overlap".into(),
                Json::Obj(vec![
                    ("chunk_size".into(), Json::from(CHUNK)),
                    ("blocking_ns".into(), Json::from(blocking.as_nanos() as f64)),
                    (
                        "prefetched_ns".into(),
                        Json::from(prefetched.as_nanos() as f64),
                    ),
                    ("overlap_fraction".into(), Json::from(overlap_fraction)),
                ]),
            ));
        }
        std::fs::write(&path, report.to_string())
            .unwrap_or_else(|e| panic!("cannot write {}: {}", path.display(), e));
        eprintln!(
            "[bench store_io] appended prefetch_overlap telemetry to {}",
            path.display()
        );
    }
    std::fs::remove_file(&write_path).ok();
    std::fs::remove_file(&read_path).ok();
}
