//! Shared experiment plumbing: scaled datasets, model construction, and
//! single-run execution.

use cascade_baselines::{tgl, tgl_lb, tglite, Etc, NeutronStream};
use cascade_core::{
    train, BatchingStrategy, CascadeConfig, CascadeScheduler, TrainConfig, TrainReport,
};
use cascade_exec::{train_pipelined, PipelineConfig};
use cascade_models::{MemoryTgnn, ModelConfig};
use cascade_tgraph::{Dataset, SynthConfig};

/// Which scheduler a run uses (plus the paired model-execution mode).
#[derive(Clone, Debug, PartialEq)]
pub enum StrategyKind {
    /// TGL: fixed batching at the preset size.
    Tgl,
    /// TGL with an enlarged fixed batch (Figure 12(b)).
    TglLb(usize),
    /// TGLite: fixed batching + redundancy-eliminating model execution.
    TgLite,
    /// Full Cascade.
    Cascade,
    /// Cascade + TGLite model execution ("Cascade-Lite").
    CascadeLite,
    /// Cascade without the SG-Filter ("Cascade-TB", §5.3).
    CascadeTb,
    /// Cascade with a custom θ_sim (Figure 13(a)).
    CascadeTheta(f32),
    /// Cascade with chunk-based pipelined preprocessing ("Cascade_EX").
    CascadeEx(usize),
    /// NeutronStream dependency batching.
    Neutron,
    /// ETC information-loss-bounded batching.
    Etc,
}

impl StrategyKind {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            StrategyKind::Tgl => "TGL".into(),
            StrategyKind::TglLb(b) => format!("TGL-LB({})", b),
            StrategyKind::TgLite => "TGLite".into(),
            StrategyKind::Cascade => "Cascade".into(),
            StrategyKind::CascadeLite => "Cascade-Lite".into(),
            StrategyKind::CascadeTb => "Cascade-TB".into(),
            StrategyKind::CascadeTheta(t) => format!("Cascade(θ={})", t),
            StrategyKind::CascadeEx(_) => "Cascade_EX".into(),
            StrategyKind::Neutron => "NeutronStream".into(),
            StrategyKind::Etc => "ETC".into(),
        }
    }

    /// Whether the paired model runs in TGLite execution mode.
    pub fn lite_model(&self) -> bool {
        matches!(self, StrategyKind::TgLite | StrategyKind::CascadeLite)
    }

    fn build(&self, preset: usize, seed: u64) -> Box<dyn BatchingStrategy + Send> {
        let cascade = CascadeConfig {
            preset_batch_size: preset,
            seed,
            ..CascadeConfig::default()
        };
        match self {
            StrategyKind::Tgl => Box::new(tgl(preset)),
            StrategyKind::TglLb(b) => Box::new(tgl_lb(*b)),
            StrategyKind::TgLite => Box::new(tglite(preset)),
            StrategyKind::Cascade | StrategyKind::CascadeLite => {
                Box::new(CascadeScheduler::new(cascade))
            }
            StrategyKind::CascadeTb => Box::new(CascadeScheduler::new(cascade.without_sg_filter())),
            StrategyKind::CascadeTheta(t) => {
                Box::new(CascadeScheduler::new(cascade.with_theta(*t)))
            }
            StrategyKind::CascadeEx(chunk) => {
                Box::new(CascadeScheduler::new(cascade.with_chunk_size(*chunk)))
            }
            StrategyKind::Neutron => Box::new(NeutronStream::new(preset)),
            StrategyKind::Etc => Box::new(Etc::new(preset)),
        }
    }
}

/// One (dataset, model, strategy) run request.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Dataset profile name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Strategy.
    pub strategy: StrategyKind,
}

/// The outcome of a run: the trainer's full report plus the display label.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Strategy label (Cascade, TGL, …).
    pub label: String,
    /// The measured report.
    pub report: TrainReport,
}

/// Global experiment knobs.
///
/// The defaults scale the paper's setup (A100, batch 900, dim 100,
/// 100 epochs, full datasets) down to a single CPU core: the event
/// streams shrink proportionally per dataset (preserving each dataset's
/// average degree — the property the speedup ordering depends on), the
/// preset batch scales from 900 to 64, and model widths from 100 to 16.
/// Environment variables `CASCADE_EVENTS`, `CASCADE_EPOCHS`,
/// `CASCADE_DIM`, and `CASCADE_PRESET` override the corresponding knobs
/// for larger runs.
#[derive(Clone, Debug)]
pub struct Harness {
    /// Target event count for moderate-profile datasets.
    pub moderate_events: usize,
    /// Target event count for the billion-scale profiles (GDELT, MAG).
    pub large_events: usize,
    /// Node-memory width.
    pub memory_dim: usize,
    /// Time-encoding width.
    pub time_dim: usize,
    /// Edge-feature width used at runtime (profiles report the paper's
    /// widths; compute uses this).
    pub feature_dim: usize,
    /// Cap on sampled neighbors for the 10-neighbor models.
    pub neighbor_cap: usize,
    /// Training epochs per run.
    pub epochs: usize,
    /// Preset small batch size (the scaled analogue of the paper's 900).
    pub preset_batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for shard-parallel batch compute (bit-identical
    /// results at any value; wall-clock only).
    pub compute_threads: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            moderate_events: 4_000,
            large_events: 12_000,
            memory_dim: 16,
            time_dim: 8,
            feature_dim: 8,
            neighbor_cap: 4,
            epochs: 4,
            preset_batch: 64,
            lr: 1e-3,
            seed: 42,
            compute_threads: 1,
        }
    }
}

impl Harness {
    /// Defaults overridden by `CASCADE_*` environment variables.
    pub fn from_env() -> Self {
        let mut h = Harness::default();
        let get = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(v) = get("CASCADE_EVENTS") {
            h.moderate_events = v;
            h.large_events = v * 3;
        }
        if let Some(v) = get("CASCADE_EPOCHS") {
            h.epochs = v.max(1);
        }
        if let Some(v) = get("CASCADE_DIM") {
            h.memory_dim = v.max(2);
        }
        if let Some(v) = get("CASCADE_PRESET") {
            h.preset_batch = v.max(2);
        }
        if let Some(v) = get("CASCADE_THREADS") {
            h.compute_threads = v.max(1);
        }
        h
    }

    /// Generates a profile scaled to the harness target.
    pub fn dataset(&self, profile: SynthConfig) -> Dataset {
        let target = if profile.name == "GDELT" || profile.name == "MAG" {
            self.large_events
        } else {
            self.moderate_events
        };
        let scale = (target as f64 / profile.num_events as f64).min(1.0);
        // Nodes shrink more gently than events (exponent 0.85): scaling
        // both linearly would make hubs adjacent to most of the graph,
        // saturating the dependency table in a way real datasets do not.
        let node_scale = if profile.name == "MAG" {
            // MAG is the node-heavy profile (121.75 M nodes): its
            // preprocessing and lookup costs are driven by the node
            // dimension, so its node count shrinks more gently to keep
            // that cost visible at reproduction scale.
            scale.powf(0.7)
        } else {
            scale.powf(0.75)
        };
        profile
            .with_scale(scale)
            .with_node_scale(node_scale)
            .with_feature_dim(self.feature_dim)
            .generate(self.seed)
    }

    /// All five moderate datasets in the paper's order.
    pub fn moderate_datasets(&self) -> Vec<Dataset> {
        SynthConfig::moderate_profiles()
            .into_iter()
            .map(|p| self.dataset(p))
            .collect()
    }

    /// A model configuration scaled to the harness dimensions.
    pub fn model_cfg(&self, base: ModelConfig, lite: bool) -> ModelConfig {
        let mut cfg = base.with_dims(self.memory_dim, self.time_dim);
        if cfg.sampling.count() > self.neighbor_cap {
            cfg = cfg.with_neighbors(self.neighbor_cap);
        }
        if lite {
            cfg = cfg.with_lite();
        }
        cfg
    }

    /// All five scaled model configurations in the paper's plot order.
    pub fn model_cfgs(&self) -> Vec<ModelConfig> {
        ModelConfig::all()
            .into_iter()
            .map(|m| self.model_cfg(m, false))
            .collect()
    }

    /// The trainer configuration, including the accelerator overhead
    /// model scaled from the paper's calibration (4877 event-equivalents
    /// per 900-event batch).
    pub fn train_cfg(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            lr: self.lr,
            eval_batch_size: self.preset_batch,
            clip_norm: Some(5.0),
            sim_batch_overhead_events: 4877.0 * self.preset_batch as f64 / 900.0,
            scale_lr_with_batch: true,
            compute_threads: self.compute_threads,
        }
    }

    /// Builds a fresh model (identical weights for every strategy so loss
    /// comparisons are apples-to-apples).
    pub fn build_model(&self, data: &Dataset, base: ModelConfig, lite: bool) -> MemoryTgnn {
        MemoryTgnn::new(
            self.model_cfg(base, lite),
            data.num_nodes(),
            data.features().dim(),
            self.seed,
        )
    }

    /// Runs one (dataset, model, strategy) training and returns the
    /// outcome.
    pub fn run(&self, data: &Dataset, base: ModelConfig, strategy: &StrategyKind) -> RunOutcome {
        let mut model = self.build_model(data, base, strategy.lite_model());
        let mut strat = strategy.build(self.preset_batch, self.seed);
        let report = train(&mut model, data, strat.as_mut(), &self.train_cfg());
        RunOutcome {
            label: strategy.label(),
            report,
        }
    }

    /// Runs one (dataset, model, strategy) training through the
    /// three-stage pipelined executor (`cascade-exec`).
    ///
    /// # Panics
    ///
    /// Panics if a pipeline stage fails; the harness strategies are
    /// well-formed, so a failure is a bug worth aborting on.
    pub fn run_pipelined(
        &self,
        data: &Dataset,
        base: ModelConfig,
        strategy: &StrategyKind,
        pcfg: &PipelineConfig,
    ) -> RunOutcome {
        let mut model = self.build_model(data, base, strategy.lite_model());
        let mut strat = strategy.build(self.preset_batch, self.seed);
        let report = train_pipelined(&mut model, data, strat.as_mut(), &self.train_cfg(), pcfg)
            .unwrap_or_else(|e| panic!("pipelined run failed: {}", e));
        RunOutcome {
            label: format!(
                "{}+pipe(d{},s{})",
                strategy.label(),
                pcfg.depth,
                pcfg.effective_staleness()
            ),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Harness {
        Harness {
            moderate_events: 600,
            large_events: 800,
            epochs: 1,
            preset_batch: 32,
            memory_dim: 8,
            time_dim: 4,
            feature_dim: 4,
            neighbor_cap: 2,
            ..Harness::default()
        }
    }

    #[test]
    fn datasets_hit_target_size() {
        let h = tiny();
        let d = h.dataset(SynthConfig::wiki());
        assert!((d.num_events() as i64 - 600).abs() < 10);
        assert_eq!(d.features().dim(), 4);
    }

    #[test]
    fn model_cfg_caps_neighbors() {
        let h = tiny();
        let cfg = h.model_cfg(ModelConfig::tgat(), false);
        assert_eq!(cfg.sampling.count(), 2);
        let cfg = h.model_cfg(ModelConfig::tgn(), false);
        assert_eq!(cfg.sampling.count(), 1); // under the cap: unchanged
    }

    #[test]
    fn run_produces_report() {
        let h = tiny();
        let d = h.dataset(SynthConfig::wiki());
        let out = h.run(&d, ModelConfig::jodie(), &StrategyKind::Tgl);
        assert_eq!(out.label, "TGL");
        assert!(out.report.val_loss.is_finite());
    }

    #[test]
    fn cascade_run_beats_tgl_batch_size() {
        let h = tiny();
        let d = h.dataset(SynthConfig::wiki());
        let tgl = h.run(&d, ModelConfig::jodie(), &StrategyKind::Tgl);
        let cas = h.run(&d, ModelConfig::jodie(), &StrategyKind::Cascade);
        assert!(cas.report.avg_batch_size >= tgl.report.avg_batch_size);
    }

    #[test]
    fn labels_cover_all_variants() {
        assert_eq!(StrategyKind::CascadeEx(100).label(), "Cascade_EX");
        assert_eq!(StrategyKind::TglLb(400).label(), "TGL-LB(400)");
        assert!(StrategyKind::CascadeLite.lite_model());
        assert!(!StrategyKind::Cascade.lite_model());
    }
}
