//! Minimal aligned-column text tables for experiment output.

use std::fmt::Write as _;

/// An aligned ASCII table builder.
///
/// # Examples
///
/// ```
/// use cascade_bench::TextTable;
///
/// let mut t = TextTable::new(&["dataset", "speedup"]);
/// t.row(&["WIKI", "2.5x"]);
/// let s = t.to_string();
/// assert!(s.contains("WIKI"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table as CSV (header + rows; cells containing commas are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
        }
        out.push('\n');
        for (i, _) in (0..cols).enumerate() {
            let _ = write!(out, "{}  ", "-".repeat(widths[i]));
        }
        out.push('\n');
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        }
        f.write_str(&out)
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{:.2}", v)
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{:.3}", v)
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a"]);
        t.row(&["x", "y"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(0.5), "0.500");
        assert_eq!(pct(0.123), "12.3%");
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_quotes_commas() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["x,y", "plain"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",plain\n");
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = TextTable::new(&["a"]);
        t.row(&["say \"hi\""]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }
}
