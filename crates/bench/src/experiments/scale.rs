//! Large-scale scalability: Figure 14 on the GDELT and MAG profiles,
//! including the chunk-based Cascade_EX optimization.

use cascade_models::ModelConfig;

use crate::harness::StrategyKind;
use crate::table::{f2, pct, TextTable};

use super::session::{Session, LARGE};

fn chunk_size(session: &Session) -> usize {
    // The paper chunks 191M-1.3B event streams at one million events
    // (~1/200 of the stream); the scaled analogue keeps the ratio coarse
    // enough that several chunks exist.
    (session.harness().large_events / 4).max(64)
}

fn scale_models() -> Vec<ModelConfig> {
    vec![
        ModelConfig::jodie(),
        ModelConfig::tgn(),
        ModelConfig::dysat(),
    ]
}

/// Figure 14(a): speedups of Cascade and Cascade_EX over TGL on the
/// billion-event profiles.
pub fn fig14a(session: &Session) -> String {
    let chunk = chunk_size(session);
    let mut t = TextTable::new(&["Dataset", "Model", "Cascade speedup", "Cascade_EX speedup"]);
    for name in LARGE {
        for model in scale_models() {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let ex = session.run(name, model.clone(), &StrategyKind::CascadeEx(chunk));
            let base = tgl.report.modeled_time.as_secs_f64();
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                format!("{:.2}x", base / cas.report.modeled_time.as_secs_f64()),
                format!("{:.2}x", base / ex.report.modeled_time.as_secs_f64()),
            ]);
        }
    }
    format!(
        "Figure 14(a): large-scale speedups (chunk = {} events)\n\
         Paper: Cascade 1.7x/1.3x on GDELT/MAG; chunked Cascade_EX lifts\n\
         these to 2.0x/1.7x by cutting preprocessing.\n{}",
        chunk, t
    )
}

/// Figure 14(b): validation losses on the large profiles, normalized to
/// TGL.
pub fn fig14b(session: &Session) -> String {
    let chunk = chunk_size(session);
    let mut t = TextTable::new(&["Dataset", "Model", "Cascade/TGL", "Cascade_EX/TGL"]);
    for name in LARGE {
        for model in scale_models() {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let ex = session.run(name, model.clone(), &StrategyKind::CascadeEx(chunk));
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                f2(cas.report.val_loss as f64 / tgl.report.val_loss as f64),
                f2(ex.report.val_loss as f64 / tgl.report.val_loss as f64),
            ]);
        }
    }
    format!(
        "Figure 14(b): large-scale validation losses (paper: 97.9%-99.0% of TGL)\n{}",
        t
    )
}

/// Figure 14(c): latency breakdown on the large profiles, with and
/// without chunked preprocessing.
pub fn fig14c(session: &Session) -> String {
    let chunk = chunk_size(session);
    let mut t = TextTable::new(&[
        "Dataset",
        "Model",
        "Variant",
        "BuildTable",
        "Lookup&Update",
        "ModelTraining",
    ]);
    for name in LARGE {
        for model in scale_models() {
            for strat in [StrategyKind::Cascade, StrategyKind::CascadeEx(chunk)] {
                let out = session.run(name, model.clone(), &strat);
                let r = &out.report;
                let total = r.modeled_time.as_secs_f64().max(1e-12);
                t.row(&[
                    name.to_string(),
                    model.name.to_string(),
                    out.label.clone(),
                    pct(r.build_time.as_secs_f64() / total),
                    pct(r.lookup_time.as_secs_f64() / total),
                    pct(
                        (total - r.build_time.as_secs_f64() - r.lookup_time.as_secs_f64()).max(0.0)
                            / total,
                    ),
                ]);
            }
        }
    }
    format!(
        "Figure 14(c): large-scale latency breakdown\n\
         Paper: preprocessing grows to ~36.6% unchunked; chunking cuts it ~35%.\n{}",
        t
    )
}
