//! Design-choice ablations beyond the paper's own (§5.3): what each
//! piece of the Cascade design buys.
//!
//! * **Neighbor-future events** (Algorithm 2, step 2): dropping them
//!   leaves incident-only dependency tables — batches grow much larger
//!   (fewer constraints) but neighbor-propagated staleness goes
//!   unprotected, the failure mode the paper's design exists to prevent.
//! * **Max_r decay** (Equation 5): freezing `Max_r` at its initial value
//!   removes the convergence-feedback loop.
//! * **Max_r initialization**: `mr_mean` vs the paper's `2·mr_mean` vs
//!   `mr_max`.

use cascade_core::{train, CascadeConfig, CascadeScheduler};
use cascade_models::ModelConfig;

use crate::harness::StrategyKind;
use crate::table::{f2, f3, TextTable};

use super::session::Session;

/// `repro ablation` — the full ablation grid on WIKI and REDDIT with TGN.
pub fn ablation(session: &Session) -> String {
    let h = session.harness();
    let mut t = TextTable::new(&[
        "Dataset",
        "Variant",
        "AvgBatch",
        "Speedup vs TGL",
        "ValLoss",
        "Loss vs TGL",
    ]);

    for name in ["WIKI", "REDDIT"] {
        let data = session.dataset(name);
        let tgl = session.run(name, ModelConfig::tgn(), &StrategyKind::Tgl);
        let base_time = tgl.report.modeled_time.as_secs_f64();
        let base_loss = tgl.report.val_loss as f64;

        let variants: Vec<(&str, CascadeConfig)> = vec![
            (
                "Cascade (full)",
                CascadeConfig {
                    preset_batch_size: h.preset_batch,
                    seed: h.seed,
                    ..CascadeConfig::default()
                },
            ),
            (
                "no SG-Filter (TB)",
                CascadeConfig {
                    preset_batch_size: h.preset_batch,
                    seed: h.seed,
                    ..CascadeConfig::default()
                }
                .without_sg_filter(),
            ),
            (
                "incident-only table",
                CascadeConfig {
                    preset_batch_size: h.preset_batch,
                    seed: h.seed,
                    ..CascadeConfig::default()
                }
                .with_incident_only_table(),
            ),
            (
                "frozen Max_r",
                CascadeConfig {
                    preset_batch_size: h.preset_batch,
                    seed: h.seed,
                    ..CascadeConfig::default()
                }
                .with_frozen_max_r(),
            ),
        ];

        for (label, cfg) in variants {
            let mut model = h.build_model(&data, ModelConfig::tgn(), false);
            let mut strat = CascadeScheduler::new(cfg);
            let report = train(&mut model, &data, &mut strat, &h.train_cfg());
            t.row(&[
                name.to_string(),
                label.to_string(),
                f2(report.avg_batch_size),
                format!("{:.2}x", base_time / report.modeled_time.as_secs_f64()),
                f3(report.val_loss as f64),
                f2(report.val_loss as f64 / base_loss),
            ]);
        }
    }
    format!(
        "Design-choice ablation (TGN; extensions beyond the paper's §5.3)\n\
         Expected: the incident-only table inflates batches (weaker\n\
         constraints) at a loss cost; freezing Max_r removes the decay\n\
         safety valve; removing the SG-Filter shrinks batches.\n{}",
        t
    )
}
