//! Table 1 (model inventory) and Table 2 (dataset statistics).

use cascade_models::ModelConfig;
use cascade_tgraph::{DatasetStats, SynthConfig};

use crate::table::TextTable;

use super::session::{Session, LARGE, MODERATE};

/// Table 1: the five TGNN configurations.
pub fn table1() -> String {
    let mut t = TextTable::new(&["Model", "Sample", "Memory Update", "Node Embedding"]);
    for m in ModelConfig::all() {
        t.row(&[
            m.name.to_string(),
            format!("{:?}", m.sampling),
            format!("{:?}", m.updater),
            format!("{:?}", m.embedder),
        ]);
    }
    format!("Table 1: TGNN model configurations (paper Table 1)\n{}", t)
}

/// Table 2: dataset statistics — the paper's full-scale numbers from the
/// profiles, plus the scaled instances this reproduction trains on.
pub fn table2(session: &Session) -> String {
    let mut full = TextTable::new(&["Dataset", "# Nodes", "# Edges", "# Edge Features"]);
    for p in SynthConfig::moderate_profiles()
        .into_iter()
        .chain(SynthConfig::large_profiles())
    {
        full.row(&[
            p.name.clone(),
            p.num_nodes.to_string(),
            p.num_events.to_string(),
            p.feature_dim.to_string(),
        ]);
    }

    let mut scaled = TextTable::new(&["Dataset", "Nodes", "Events", "FeatDim", "AvgDeg"]);
    for name in MODERATE.iter().chain(LARGE) {
        let d = session.dataset(name);
        let s = DatasetStats::of(&d);
        scaled.row(&[
            s.name,
            s.nodes.to_string(),
            s.events.to_string(),
            s.feature_dim.to_string(),
            format!("{:.1}", s.avg_degree),
        ]);
    }
    format!(
        "Table 2: dataset statistics\n\n(paper / full-scale profiles)\n{}\n(scaled synthetic instances used by this reproduction)\n{}",
        full, scaled
    )
}
