//! The headline results: Figures 10–12.

use cascade_models::ModelConfig;

use crate::harness::StrategyKind;
use crate::table::{f2, f3, TextTable};

use super::session::{Session, MODERATE};

fn models() -> Vec<ModelConfig> {
    ModelConfig::all()
}

/// Figure 10: training speedups of Cascade vs TGL and Cascade-Lite vs
/// TGLite across all five models and datasets.
pub fn fig10(session: &Session) -> String {
    let mut t = TextTable::new(&[
        "Dataset",
        "Model",
        "TGL(s)",
        "Cascade(s)",
        "Speedup",
        "TGLite(s)",
        "Cascade-Lite(s)",
        "Lite speedup",
    ]);
    let mut speedups = Vec::new();
    for name in MODERATE {
        for model in models() {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let lite = session.run(name, model.clone(), &StrategyKind::TgLite);
            let clite = session.run(name, model.clone(), &StrategyKind::CascadeLite);
            let s = tgl.report.modeled_time.as_secs_f64() / cas.report.modeled_time.as_secs_f64();
            let sl =
                lite.report.modeled_time.as_secs_f64() / clite.report.modeled_time.as_secs_f64();
            speedups.push(s);
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                f2(tgl.report.modeled_time.as_secs_f64()),
                f2(cas.report.modeled_time.as_secs_f64()),
                format!("{:.2}x", s),
                f2(lite.report.modeled_time.as_secs_f64()),
                f2(clite.report.modeled_time.as_secs_f64()),
                format!("{:.2}x", sl),
            ]);
        }
    }
    let geo = geometric_mean(&speedups);
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    format!(
        "Figure 10: Cascade speedups over TGL / TGLite\n\
         Paper: 1.3x-5.1x, average 2.3x; sparser datasets and lighter models gain more.\n{}\n\
         Mean Cascade-vs-TGL speedup: {:.2}x (max {:.2}x)\n",
        t, geo, max
    )
}

/// Figure 11: validation losses normalized to the TGL baseline.
pub fn fig11(session: &Session) -> String {
    let mut t = TextTable::new(&[
        "Dataset",
        "Model",
        "TGL",
        "Cascade",
        "Norm",
        "Cascade-Lite norm",
    ]);
    let mut norms = Vec::new();
    for name in MODERATE {
        for model in models() {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let lite = session.run(name, model.clone(), &StrategyKind::TgLite);
            let clite = session.run(name, model.clone(), &StrategyKind::CascadeLite);
            let norm = cas.report.val_loss as f64 / tgl.report.val_loss as f64;
            let norm_lite = clite.report.val_loss as f64 / lite.report.val_loss as f64;
            norms.push(norm);
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                f3(tgl.report.val_loss as f64),
                f3(cas.report.val_loss as f64),
                f2(norm),
                f2(norm_lite),
            ]);
        }
    }
    let mean = norms.iter().sum::<f64>() / norms.len() as f64;
    format!(
        "Figure 11: validation loss normalized to TGL\n\
         Paper: Cascade averages 99.4% of the baseline loss (i.e. no degradation).\n{}\n\
         Mean normalized loss: {:.3}\n",
        t, mean
    )
}

/// Figure 12(a): achieved batch sizes, TGL vs Cascade.
pub fn fig12a(session: &Session) -> String {
    let mut t = TextTable::new(&[
        "Dataset",
        "Model",
        "TGL batch",
        "Cascade avg batch",
        "Cascade max",
    ]);
    for name in ["WIKI", "REDDIT", "WIKI-TALK"] {
        for model in [ModelConfig::jodie(), ModelConfig::tgn()] {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                f2(tgl.report.avg_batch_size),
                f2(cas.report.avg_batch_size),
                cas.report.max_batch_size.to_string(),
            ]);
        }
    }
    format!(
        "Figure 12(a): batch sizes (paper: Cascade grows 900 to ~4200)\n{}",
        t
    )
}

/// Figure 12(b): validation loss of TGL, TGL-LB (fixed batching at the
/// batch size Cascade achieved), and Cascade.
pub fn fig12b(session: &Session) -> String {
    let mut t = TextTable::new(&[
        "Dataset",
        "Model",
        "TGL",
        "TGL-LB",
        "Cascade",
        "LB/TGL",
        "Cascade/TGL",
    ]);
    for name in ["WIKI", "REDDIT"] {
        for model in [
            ModelConfig::apan(),
            ModelConfig::jodie(),
            ModelConfig::tgn(),
        ] {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let lb_size = (cas.report.avg_batch_size.round() as usize).max(1);
            let lb = session.run(name, model.clone(), &StrategyKind::TglLb(lb_size));
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                f3(tgl.report.val_loss as f64),
                f3(lb.report.val_loss as f64),
                f3(cas.report.val_loss as f64),
                f2(lb.report.val_loss as f64 / tgl.report.val_loss as f64),
                f2(cas.report.val_loss as f64 / tgl.report.val_loss as f64),
            ]);
        }
    }
    format!(
        "Figure 12(b): naive large batches (TGL-LB) hurt loss; Cascade does not\n\
         Paper: TGL-LB degrades loss by 1-83%; Cascade improves it by 1-15%.\n{}",
        t
    )
}

/// Figure 12(c): Cascade-TB (no SG-Filter) vs Cascade speedups.
pub fn fig12c(session: &Session) -> String {
    let mut t = TextTable::new(&["Dataset", "Model", "TB speedup", "Cascade speedup"]);
    for name in ["WIKI", "REDDIT"] {
        for model in [
            ModelConfig::apan(),
            ModelConfig::jodie(),
            ModelConfig::tgn(),
        ] {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let tb = session.run(name, model.clone(), &StrategyKind::CascadeTb);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                format!(
                    "{:.2}x",
                    tgl.report.modeled_time.as_secs_f64() / tb.report.modeled_time.as_secs_f64()
                ),
                format!(
                    "{:.2}x",
                    tgl.report.modeled_time.as_secs_f64() / cas.report.modeled_time.as_secs_f64()
                ),
            ]);
        }
    }
    format!(
        "Figure 12(c): ablation — TG-Diffuser alone (Cascade-TB) vs full Cascade\n\
         Paper: TB averages 1.8x; SG-Filter lifts it to 2.2x, most on APAN.\n{}",
        t
    )
}

/// Figure 12(d): Cascade-TB vs Cascade validation losses.
pub fn fig12d(session: &Session) -> String {
    let mut t = TextTable::new(&["Dataset", "Model", "TB/TGL loss", "Cascade/TGL loss"]);
    for name in ["WIKI", "REDDIT"] {
        for model in [
            ModelConfig::apan(),
            ModelConfig::jodie(),
            ModelConfig::tgn(),
        ] {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let tb = session.run(name, model.clone(), &StrategyKind::CascadeTb);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                f2(tb.report.val_loss as f64 / tgl.report.val_loss as f64),
                f2(cas.report.val_loss as f64 / tgl.report.val_loss as f64),
            ]);
        }
    }
    format!(
        "Figure 12(d): ablation losses (paper: both stay at or below baseline;\n\
         TB can be marginally better since SG-Filter may mispredict stability)\n{}",
        t
    )
}

fn geometric_mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}
