//! Optimization and overhead analysis: Figure 13.

use cascade_models::ModelConfig;

use crate::harness::StrategyKind;
use crate::table::{f2, pct, TextTable};

use super::session::Session;

/// Figure 13(a): latency and validation loss under different SG-Filter
/// similarity thresholds.
pub fn fig13a(session: &Session) -> String {
    let thetas = [0.80f32, 0.85, 0.90, 0.95];
    let mut t = TextTable::new(&["Dataset", "Model", "theta", "NormLatency", "NormValLoss"]);
    for name in ["WIKI", "REDDIT"] {
        for model in [ModelConfig::jodie(), ModelConfig::tgn()] {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            for &theta in &thetas {
                let out = if (theta - 0.9).abs() < 1e-6 {
                    session.run(name, model.clone(), &StrategyKind::Cascade)
                } else {
                    session.run(name, model.clone(), &StrategyKind::CascadeTheta(theta))
                };
                t.row(&[
                    name.to_string(),
                    model.name.to_string(),
                    format!("{:.2}", theta),
                    f2(out.report.modeled_time.as_secs_f64()
                        / tgl.report.modeled_time.as_secs_f64()),
                    f2(out.report.val_loss as f64 / tgl.report.val_loss as f64),
                ]);
            }
        }
    }
    format!(
        "Figure 13(a): θ_sim sweep (normalized to TGL)\n\
         Paper: lower θ -> faster but lossier (θ=0.85: 2.7x, +8% loss);\n\
         higher θ -> safer but slower (θ=0.95: 2.0x, no loss increase).\n{}",
        t
    )
}

/// Figure 13(b): latency breakdown of Cascade — table building, batch
/// lookup & pointer updates, and model training, with the training slice
/// sub-divided into the shard-parallel forward/backward work
/// (`StageTimings::shard_compute`) and the serial remainder (reduction,
/// optimizer, memory write-back, simulated overhead). The four shares
/// sum to 100% of the modeled total by construction.
pub fn fig13b(session: &Session) -> String {
    let mut t = TextTable::new(&[
        "Dataset",
        "Model",
        "BuildTable",
        "Lookup&Update",
        "ShardCompute",
        "SerialRest",
        "Shards",
    ]);
    for name in ["WIKI", "REDDIT", "WIKI-TALK"] {
        for model in [
            ModelConfig::apan(),
            ModelConfig::jodie(),
            ModelConfig::tgn(),
        ] {
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let r = &cas.report;
            let total = r.modeled_time.as_secs_f64().max(1e-12);
            let build = r.build_time.as_secs_f64();
            let lookup = r.lookup_time.as_secs_f64();
            // Per-shard forward/backward busy time is a sub-division of
            // the training slice; whatever the shards did not cover is
            // the serial remainder, so the row always sums to the total.
            let shard = r
                .stages
                .shard_busy_total()
                .as_secs_f64()
                .min((total - build - lookup).max(0.0));
            let rest = (total - build - lookup - shard).max(0.0);
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                pct(build / total),
                pct(lookup / total),
                pct(shard / total),
                pct(rest / total),
                r.stages.shard_compute.len().to_string(),
            ]);
        }
    }
    format!(
        "Figure 13(b): Cascade latency breakdown\n\
         Paper: ~17% total overhead on moderate graphs; table building ~0.1%,\n\
         event lookup ~16%, the rest is model training.\n\
         ShardCompute + SerialRest = the paper's \"model training\" share,\n\
         split into per-shard forward/backward work and the serial\n\
         reduction/optimizer/write-back remainder.\n{}",
        t
    )
}

/// Figure 13(c): space breakdown — dependency table (DT), stable flags
/// (SF), graph, edge features, model, mailbox.
pub fn fig13c(session: &Session) -> String {
    let mut t = TextTable::new(&[
        "Dataset", "Model", "DT", "SF", "Graph", "EdgeFeat", "Model", "Mailbox", "Memory",
    ]);
    for name in ["WIKI", "REDDIT", "WIKI-TALK"] {
        for model in [
            ModelConfig::apan(),
            ModelConfig::jodie(),
            ModelConfig::tgn(),
        ] {
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let s = cas.report.space;
            let fr = s.fractions();
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                pct(fr[0].1),
                pct(fr[1].1),
                pct(fr[2].1),
                pct(fr[3].1),
                pct(fr[4].1),
                pct(fr[5].1),
                pct(fr[6].1),
            ]);
        }
    }
    // The scaled harness trains with narrow edge features; the paper's
    // datasets carry up to 172-wide features that dominate memory.
    // Restate the same measurements with features at each profile's true
    // width so the relative shape is comparable.
    let mut tp = TextTable::new(&[
        "Dataset",
        "Model",
        "DT",
        "SF",
        "Graph",
        "EdgeFeat(paper width)",
        "Model",
        "Mailbox",
        "Memory",
    ]);
    for name in ["WIKI", "REDDIT", "WIKI-TALK"] {
        let paper_dim = super::session::profile_by_name(name)
            .expect("known profile")
            .feature_dim;
        let events = session.dataset(name).num_events();
        for model in [
            ModelConfig::apan(),
            ModelConfig::jodie(),
            ModelConfig::tgn(),
        ] {
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let mut sp = cas.report.space;
            sp.edge_features = events * paper_dim * 4;
            let fr = sp.fractions();
            tp.row(&[
                name.to_string(),
                model.name.to_string(),
                pct(fr[0].1),
                pct(fr[1].1),
                pct(fr[2].1),
                pct(fr[3].1),
                pct(fr[4].1),
                pct(fr[5].1),
                pct(fr[6].1),
            ]);
        }
    }
    format!(
        "Figure 13(c): space breakdown\n\
         Paper: DT + SF below 3% combined; edge features dominate.\n\n\
         (as measured, runtime feature width {})\n{}\n\
         (same run, edge features restated at the paper's per-dataset width)\n{}",
        session.harness().feature_dim,
        t,
        tp
    )
}
