//! The pipelined-executor experiment: serial vs. `cascade-exec`'s
//! three-stage pipeline at several depth/staleness shapes.
//!
//! This goes beyond the paper's artifact set: Cascade's scan and
//! SG-Filter refresh sit on the serial critical path, and the pipeline
//! moves them onto a scout thread (the same overlap MSPipe obtains from
//! bounded staleness). The table reports wall time normalized to the
//! serial Cascade run, plus the stage telemetry backing it.

use cascade_exec::PipelineConfig;
use cascade_models::ModelConfig;

use crate::harness::StrategyKind;
use crate::table::{f2, TextTable};

use super::session::Session;

/// Serial vs. pipelined Cascade training across depth/staleness shapes.
pub fn pipeline(session: &Session) -> String {
    let shapes: [(usize, usize); 3] = [(1, 0), (2, 1), (4, 2)];
    let mut t = TextTable::new(&[
        "Dataset",
        "Model",
        "Executor",
        "Wall(s)",
        "ScanBusy(s)",
        "DriverStall(s)",
        "NormWall",
    ]);
    for name in ["WIKI", "REDDIT"] {
        for model in [ModelConfig::jodie(), ModelConfig::tgn()] {
            let serial = session.run(name, model.clone(), &StrategyKind::Cascade);
            let base = serial.report.total_time.as_secs_f64().max(1e-12);
            let s = &serial.report.stages;
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                "serial".to_string(),
                f2(base),
                f2(s.scan.busy.as_secs_f64()),
                f2(s.driver_stall().as_secs_f64()),
                f2(1.0),
            ]);
            for (depth, staleness) in shapes {
                let pcfg = PipelineConfig::default()
                    .with_depth(depth)
                    .with_staleness(staleness);
                let out = session.run_pipelined(name, model.clone(), &StrategyKind::Cascade, &pcfg);
                let wall = out.report.total_time.as_secs_f64();
                let s = &out.report.stages;
                t.row(&[
                    name.to_string(),
                    model.name.to_string(),
                    format!("pipe(d{},s{})", depth, staleness),
                    f2(wall),
                    f2(s.scan.busy.as_secs_f64()),
                    f2(s.driver_stall().as_secs_f64()),
                    f2(wall / base),
                ]);
            }
        }
    }
    format!(
        "Pipelined executor: serial Cascade vs cascade-exec shapes\n\
         Expectation: staleness 0 (d1,s0) matches serial results exactly and\n\
         pays queue overhead; deeper shapes hide scan/SG-Filter time behind\n\
         model compute, so driver stall stays below serial scan busy.\n{}",
        t
    )
}
