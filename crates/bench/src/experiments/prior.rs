//! Comparison with prior dynamic-batching frameworks: Figures 15 and 16.

use cascade_models::ModelConfig;

use crate::harness::StrategyKind;
use crate::table::{f2, TextTable};

use super::session::{Session, MODERATE};

fn prior_models() -> Vec<ModelConfig> {
    ModelConfig::all()
}

/// Figure 15: speedups of NeutronStream, ETC, and Cascade over TGL.
pub fn fig15(session: &Session) -> String {
    let mut t = TextTable::new(&[
        "Dataset",
        "Model",
        "NeutronStream",
        "ETC",
        "Cascade",
        "Cascade avg batch",
        "ETC avg batch",
    ]);
    for name in MODERATE {
        for model in prior_models() {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let neutron = session.run(name, model.clone(), &StrategyKind::Neutron);
            let etc = session.run(name, model.clone(), &StrategyKind::Etc);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let base = tgl.report.modeled_time.as_secs_f64();
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                format!("{:.2}x", base / neutron.report.modeled_time.as_secs_f64()),
                format!("{:.2}x", base / etc.report.modeled_time.as_secs_f64()),
                format!("{:.2}x", base / cas.report.modeled_time.as_secs_f64()),
                f2(cas.report.avg_batch_size),
                f2(etc.report.avg_batch_size),
            ]);
        }
    }
    format!(
        "Figure 15: speedup vs prior dynamic batching (normalized to TGL)\n\
         Paper: Cascade beats NeutronStream by 3.8x (NeutronStream often\n\
         slower than TGL) and ETC by 1.9x (ETC only grows 900 -> ~1123;\n\
         Cascade reaches ~4255).\n{}",
        t
    )
}

/// Figure 16: validation losses of the same comparison, normalized to
/// TGL.
pub fn fig16(session: &Session) -> String {
    let mut t = TextTable::new(&["Dataset", "Model", "NeutronStream", "ETC", "Cascade"]);
    for name in MODERATE {
        for model in prior_models() {
            let tgl = session.run(name, model.clone(), &StrategyKind::Tgl);
            let neutron = session.run(name, model.clone(), &StrategyKind::Neutron);
            let etc = session.run(name, model.clone(), &StrategyKind::Etc);
            let cas = session.run(name, model.clone(), &StrategyKind::Cascade);
            let base = tgl.report.val_loss as f64;
            t.row(&[
                name.to_string(),
                model.name.to_string(),
                f2(neutron.report.val_loss as f64 / base),
                f2(etc.report.val_loss as f64 / base),
                f2(cas.report.val_loss as f64 / base),
            ]);
        }
    }
    format!(
        "Figure 16: validation losses vs prior dynamic batching (normalized to TGL)\n\
         Paper: all methods stay near the baseline; Cascade averages slightly better.\n{}",
        t
    )
}
